// Regenerates paper Figure 4: latency (a), energy (b) and EDP (c) of the
// uniform epitome versus the two optimizations -- Channel Wrapping and
// Evo-Search -- individually and combined (EPIM-Opt), across a sweep of
// compression points (uniform epitome sizes from gentle to aggressive).
//
// Expected shape (paper): at matched compression, EPIM-Opt achieves up to
// ~3x lower latency, ~2.4x lower energy and ~7x lower EDP than the uniform
// design, with the gap widening at aggressive compression.
//
// Each sweep point drives the Pipeline façade with a one-off design
// override; search variants enable the config's evolutionary refinement.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "pipeline/pipeline.hpp"

namespace epim {
namespace {

struct SweepPoint {
  const char* label;
  std::int64_t rows, cout;
};

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  const Network net = resnet50();
  const Pipeline pipeline{PipelineConfig{}};  // W9A9, analytical backend
  DesignConfig baseline_design;
  baseline_design.policy = DesignPolicy::kBaseline;
  const auto baseline =
      pipeline.compile(net, baseline_design).estimate().cost;

  const SweepPoint points[] = {{"2048x512", 2048, 512},
                               {"1024x256", 1024, 256},
                               {"512x256", 512, 256},
                               {"256x256", 256, 256}};

  TextTable table({"epitome", "variant", "#XB", "lat ms", "mJ", "EDP",
                   "lat x-base", "mJ x-base"});
  double worst_uniform_lat = 0.0, worst_uniform_mj = 0.0,
         worst_uniform_edp = 0.0;
  double best_opt_lat = 1e18, best_opt_mj = 1e18, best_opt_edp = 1e18;
  std::printf("=== Figure 4: uniform vs Channel-Wrapping vs Evo-Search vs "
              "EPIM-Opt (ResNet-50, W9A9) ===\n");
  std::printf("conv baseline: #XB=%lld, lat=%.1f ms, E=%.1f mJ, EDP=%.0f\n\n",
              static_cast<long long>(baseline.num_crossbars),
              baseline.latency_ms, baseline.energy_mj(), baseline.edp());

  for (const auto& point : points) {
    DesignConfig design;
    design.uniform.target_rows = point.rows;
    design.uniform.target_cout = point.cout;
    DesignConfig wrapped = design;
    wrapped.wrap_output = true;
    const auto cost_u = pipeline.compile(net, design).estimate().cost;
    const auto cost_w = pipeline.compile(net, wrapped).estimate().cost;

    // Evo-Search at this point's crossbar budget, without and with wrapping
    // in the candidate pool (the latter = EPIM-Opt).
    auto search = [&](bool wrap, SearchObjective objective) {
      PipelineConfig cfg;
      cfg.search.enabled = true;
      cfg.search.evo.population = 32;
      cfg.search.evo.iterations = 16;
      cfg.search.evo.parents = 8;
      cfg.search.evo.crossbar_budget = cost_u.num_crossbars;
      cfg.search.evo.objective = objective;
      cfg.search.evo.candidates.wrap_output = wrap;
      CompiledModel model = Pipeline(cfg).compile(net);
      return model.search().best_cost;
    };
    const auto cost_e = search(false, SearchObjective::kEdp);
    const auto cost_opt = search(true, SearchObjective::kEdp);

    auto emit = [&](const char* variant, const NetworkCost& c) {
      table.add_row({point.label, variant, std::to_string(c.num_crossbars),
                     fmt(c.latency_ms, 1), fmt(c.energy_mj(), 1),
                     fmt(c.edp(), 0),
                     fmt(c.latency_ms / baseline.latency_ms, 2),
                     fmt(c.energy_mj() / baseline.energy_mj(), 2)});
    };
    emit("uniform", cost_u);
    emit("+ChannelWrapping", cost_w);
    emit("+EvoSearch", cost_e);
    emit("EPIM-Opt (both)", cost_opt);
    worst_uniform_lat = std::max(worst_uniform_lat, cost_u.latency_ms);
    worst_uniform_mj = std::max(worst_uniform_mj, cost_u.energy_mj());
    worst_uniform_edp = std::max(worst_uniform_edp, cost_u.edp());
    best_opt_lat = std::min(best_opt_lat, cost_opt.latency_ms);
    best_opt_mj = std::min(best_opt_mj, cost_opt.energy_mj());
    best_opt_edp = std::min(best_opt_edp, cost_opt.edp());
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline ratios across the sweep, as the paper reports them ("up to").
  std::printf("EPIM-Opt vs uniform, best-case across the sweep (paper: up to "
              "3.07x / 2.36x / 7.13x):\n"
              "  speedup %.2fx, energy %.2fx, EDP %.2fx\n",
              worst_uniform_lat / best_opt_lat,
              worst_uniform_mj / best_opt_mj,
              worst_uniform_edp / best_opt_edp);
  return 0;
}
