// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out:
//  (a) crossbar size sweep          -- how array geometry moves Table 1;
//  (b) memristor cell-bits sweep    -- 1/2/4-bit cells at W9A9;
//  (c) ADC resolution               -- functional clipping error on real MVMs;
//  (d) index-table storage overhead -- cost of the IFAT/IFRT/OFAT datapath;
//  (e) channel-wrapping factor      -- energy vs replication factor r.
//
// Hardware sweeps drive the Pipeline façade (one config per point);
// layer-level probes use the pipeline's estimator.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "datapath/index_tables.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "pim/chip.hpp"
#include "pim/crossbar.hpp"
#include "pim/duplication.hpp"
#include "pipeline/pipeline.hpp"

namespace epim {
namespace {

DesignConfig baseline_design() {
  DesignConfig design;
  design.policy = DesignPolicy::kBaseline;
  return design;
}

void crossbar_size_sweep(const Network& net) {
  std::printf("--- (a) crossbar size sweep (ResNet-50, epitome 1024x256, "
              "W9A9) ---\n");
  TextTable table({"xbar", "#XB", "lat ms", "mJ", "util%"});
  for (const std::int64_t size : {64, 128, 256}) {
    PipelineConfig cfg;
    cfg.hardware.crossbar.rows = cfg.hardware.crossbar.cols = size;
    // Keep the ADC able to resolve a full column of 2-bit cells.
    cfg.hardware.crossbar.adc_bits = size == 256 ? 10 : 9;
    cfg.design.uniform.crossbar_size = size;
    const auto c = Pipeline(cfg).compile(net).estimate().cost;
    table.add_row({std::to_string(size) + "x" + std::to_string(size),
                   std::to_string(c.num_crossbars), fmt(c.latency_ms, 1),
                   fmt(c.energy_mj(), 1), fmt(100 * c.utilization, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void cell_bits_sweep(const Network& net) {
  std::printf("--- (b) memristor cell-bits sweep (W9A9) ---\n");
  TextTable table({"cell bits", "slices", "#XB", "lat ms", "mJ"});
  for (const int cell_bits : {1, 2, 4}) {
    PipelineConfig cfg;
    cfg.hardware.crossbar.cell_bits = cell_bits;
    const auto c = Pipeline(cfg).compile(net).estimate().cost;
    table.add_row({std::to_string(cell_bits),
                   std::to_string(cfg.hardware.crossbar.weight_slices(9)),
                   std::to_string(c.num_crossbars), fmt(c.latency_ms, 1),
                   fmt(c.energy_mj(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void adc_resolution_sweep() {
  std::printf("--- (c) ADC resolution vs functional MVM error ---\n");
  Rng rng(0xADCu);
  const std::int64_t rows = 128, cols = 8;
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols)));
  for (auto& r : w) {
    for (auto& v : r) v = rng.uniform_int(-128, 127);
  }
  std::vector<std::uint32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
  // Exact reference from a generous ADC.
  CrossbarConfig ref_cfg;
  ref_cfg.adc_bits = 14;
  const auto exact = CrossbarArray(ref_cfg, 9, w).mvm(x, 8);
  TextTable table({"adc bits", "clips", "max |err|", "rel err %"});
  for (const int bits : {5, 6, 7, 8, 9, 10}) {
    CrossbarConfig cfg;
    cfg.adc_bits = bits;
    CrossbarArray xbar(cfg, 9, w);
    const auto got = xbar.mvm(x, 8);
    double max_err = 0.0, ref_mag = 1.0;
    for (std::size_t c = 0; c < got.size(); ++c) {
      max_err = std::max(max_err,
                         std::abs(static_cast<double>(got[c] - exact[c])));
      ref_mag = std::max(ref_mag, std::abs(static_cast<double>(exact[c])));
    }
    table.add_row({std::to_string(bits),
                   std::to_string(xbar.last_clip_count()), fmt(max_err, 0),
                   fmt(100.0 * max_err / ref_mag, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void index_table_overhead(const Pipeline& pipeline, const Network& net) {
  std::printf("--- (d) IFAT/IFRT/OFAT storage overhead (epitome 1024x256) "
              "---\n");
  TextTable table({"network", "table entries", "epitome params",
                   "overhead %"});
  const CompiledModel model = pipeline.compile(net);
  const NetworkAssignment& uni = model.assignment();
  std::int64_t entries = 0, params = 0;
  for (std::int64_t i = 0; i < uni.num_layers(); ++i) {
    const auto& choice = uni.choice(i);
    if (!choice.has_value()) continue;
    const SamplePlan plan(*choice,
                          uni.layers()[static_cast<std::size_t>(i)].conv);
    entries += IndexTables(plan).storage_entries();
    params += choice->weight_count();
  }
  table.add_row({net.name(), std::to_string(entries), std::to_string(params),
                 fmt(100.0 * static_cast<double>(entries) /
                         static_cast<double>(params),
                     2)});
  std::printf("%s\n", table.to_string().c_str());
}

void wrap_factor_sweep(const Pipeline& pipeline) {
  std::printf("--- (e) channel-wrapping factor r vs per-layer cost ---\n");
  const PimEstimator& est = pipeline.estimator();
  TextTable table({"r", "rounds", "replicas", "lat ms", "dyn mJ"});
  // One stage-4-like layer; r grows as the epitome's cout_e shrinks.
  const ConvLayerInfo layer{"probe", ConvSpec{512, 512, 3, 3, 1, 1}, 7, 7};
  for (const std::int64_t cout_e : {512, 256, 128, 64}) {
    EpitomeSpec spec{4, 4, 64, cout_e};
    spec.wrap_output = true;
    const LayerCost c = est.eval_epitome_layer(layer, spec, 9, 9);
    table.add_row({std::to_string(512 / cout_e),
                   std::to_string(c.rounds_per_position),
                   std::to_string(c.replicas_per_position),
                   fmt(c.latency_ms, 3), fmt(c.dynamic_energy_mj, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void model_zoo_sweep(const Pipeline& pipeline) {
  std::printf("--- (f) model zoo: uniform 1024x256 epitome across "
              "architectures (W9A9) ---\n");
  TextTable table({"model", "weights M", "#XB conv", "#XB epitome", "XB CR",
                   "param CR", "lat x-conv", "mJ x-conv"});
  const Network nets[] = {resnet18(), resnet34(), resnet50(), resnet101(),
                          vgg16()};
  for (const Network& net : nets) {
    const auto base =
        pipeline.compile(net, baseline_design()).estimate().cost;
    const CompiledModel model = pipeline.compile(net);
    const auto& epi = model.estimate().cost;
    table.add_row(
        {net.name(), fmt(static_cast<double>(net.total_weights()) / 1e6, 1),
         std::to_string(base.num_crossbars),
         std::to_string(epi.num_crossbars),
         fmt(static_cast<double>(base.num_crossbars) /
             static_cast<double>(epi.num_crossbars)),
         fmt(model.assignment().parameter_compression()),
         fmt(epi.latency_ms / base.latency_ms),
         fmt(epi.energy_mj() / base.energy_mj())});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void duplication_sweep(const Pipeline& pipeline, const Network& net) {
  std::printf("--- (g) weight duplication: spend saved crossbars on "
              "parallelism (epitome 1024x256, W9A9) ---\n");
  const auto conv_base =
      pipeline.compile(net, baseline_design()).estimate().cost;
  const CompiledModel model = pipeline.compile(net);
  const auto& epi_base = model.estimate().cost;
  TextTable table({"extra XB budget", "XB total", "lat ms", "speedup",
                   "vs conv baseline"});
  for (const std::int64_t budget : {0, 1000, 2000, 4000}) {
    const auto plan = plan_duplication(pipeline.estimator(),
                                       model.assignment(), model.precision(),
                                       budget);
    table.add_row({std::to_string(budget),
                   std::to_string(epi_base.num_crossbars +
                                  plan.extra_crossbars),
                   fmt(plan.latency_after_ms, 1), fmt(plan.speedup()) + "x",
                   fmt(conv_base.latency_ms / plan.latency_after_ms) + "x"});
  }
  std::printf("(conv baseline: %lld crossbars, %.1f ms)\n%s\n",
              static_cast<long long>(conv_base.num_crossbars),
              conv_base.latency_ms, table.to_string().c_str());
}

void chip_noc_sweep(const Pipeline& pipeline, const Network& net) {
  std::printf("--- (h) chip hierarchy: tiles, mesh NoC, pipelining (W9A9) "
              "---\n");
  TextTable table({"design", "tiles", "mesh", "compute ms", "NoC ms",
                   "NoC mJ", "pipelined ms/img"});
  const struct {
    const char* label;
    CompiledModel model;
  } rows[] = {{"conv baseline", pipeline.compile(net, baseline_design())},
              {"epitome 1024x256", pipeline.compile(net)}};
  for (const auto& row : rows) {
    const ChipModel chip(pipeline.estimator(), TileConfig{});
    const auto c = chip.eval(row.model.assignment(), row.model.precision());
    table.add_row({row.label, std::to_string(c.num_tiles),
                   std::to_string(c.mesh_dim) + "x" +
                       std::to_string(c.mesh_dim),
                   fmt(c.compute.latency_ms, 1), fmt(c.noc_latency_ms, 2),
                   fmt(c.noc_energy_mj, 2), fmt(c.pipelined_latency_ms, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  std::printf("=== EPIM ablation studies ===\n\n");
  const Network net = resnet50();
  const Pipeline pipeline{PipelineConfig{}};  // uniform 1024x256, W9A9
  crossbar_size_sweep(net);
  cell_bits_sweep(net);
  adc_resolution_sweep();
  index_table_overhead(pipeline, net);
  wrap_factor_sweep(pipeline);
  model_zoo_sweep(pipeline);
  duplication_sweep(pipeline, net);
  chip_noc_sweep(pipeline, net);
  return 0;
}
