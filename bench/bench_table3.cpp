// Regenerates paper Table 3: epitome vs epitome + 50% element pruning vs
// PIM-Prune at 50% / 75%, comparing top-1 accuracy and *parameter*
// compression rate (crossbar CR is ill-defined for unstructured pruning,
// exactly as the paper notes).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "prune/pim_prune.hpp"
#include "sim/simulator.hpp"

namespace epim {
namespace {

/// Element-prune the epitome assignment's weights and report the removed
/// weight-energy fraction plus achieved compression.
struct EpitomePruneOutcome {
  double param_compression = 0.0;
  double removed_energy = 0.0;
};

EpitomePruneOutcome prune_epitomes(const NetworkAssignment& assignment,
                                   double ratio, std::uint64_t seed) {
  Rng rng(seed);
  PruneConfig cfg;
  cfg.ratio = ratio;
  cfg.granularity = PruneGranularity::kElement;
  std::int64_t base_params = 0, kept_params = 0;
  double removed_energy = 0.0, total_energy = 0.0;
  for (std::int64_t i = 0; i < assignment.num_layers(); ++i) {
    const ConvLayerInfo& layer =
        assignment.layers()[static_cast<std::size_t>(i)];
    base_params += layer.conv.weight_count();
    const auto& choice = assignment.choice(i);
    const std::int64_t rows =
        choice.has_value() ? choice->rows() : layer.conv.unrolled_rows();
    const std::int64_t cols =
        choice.has_value() ? choice->cout_e : layer.conv.unrolled_cols();
    Tensor w({rows, cols});
    rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.0f,
                    0.05f);
    const PruneResult r = prune_matrix(w, cfg);
    kept_params += w.numel() -
                   static_cast<std::int64_t>(
                       r.achieved_ratio * static_cast<double>(w.numel()) +
                       0.5);
    removed_energy +=
        r.removed_energy_fraction * static_cast<double>(w.numel());
    total_energy += static_cast<double>(w.numel());
  }
  EpitomePruneOutcome out;
  out.param_compression = static_cast<double>(base_params) /
                          static_cast<double>(kept_params);
  out.removed_energy = removed_energy / total_energy;
  return out;
}

void run_model(const char* name, const Network& net,
               const AccuracyAnchors& anchors, double paper_epitome_acc,
               double paper_epitome_cr, double paper_combo_acc,
               double paper_combo_cr, double paper_p50_acc,
               double paper_p50_cr, double paper_p75_acc,
               double paper_p75_cr) {
  const AccuracyProjector proj(anchors);
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});

  TextTable table({"method", "acc%*", "acc%(paper)", "param CR",
                   "CR(paper)"});
  // Row 1: plain epitome (FP32 anchors).
  table.add_row({"Epitome", fmt(anchors.epitome_fp32),
                 fmt(paper_epitome_acc), fmt(uni.parameter_compression()),
                 fmt(paper_epitome_cr)});
  // Row 2: epitome + 50% element pruning.
  const auto combo = prune_epitomes(uni, 0.5, 0xC0'B0u);
  table.add_row(
      {"Epitome + 50% pruning",
       fmt(proj.project_pruned(anchors.epitome_fp32, combo.removed_energy)),
       fmt(paper_combo_acc),
       fmt(uni.parameter_compression() /
           (1.0 - 0.5)),  // surviving params halve again
       fmt(paper_combo_cr)});
  (void)combo.param_compression;
  // Rows 3-4: PIM-Prune baseline at crossbar-row granularity.
  struct PruneRow {
    double ratio, paper_acc, paper_cr;
  };
  const PruneRow prune_rows[] = {{0.5, paper_p50_acc, paper_p50_cr},
                                 {0.75, paper_p75_acc, paper_p75_cr}};
  for (const auto& [ratio, paper_acc, paper_cr] : prune_rows) {
    PruneConfig cfg;
    cfg.ratio = ratio;
    cfg.granularity = PruneGranularity::kCrossbarRow;
    const auto report =
        pim_prune_network(net, cfg, CrossbarConfig{}, 16, 0xB00Fu);
    table.add_row(
        {"PIM-Prune " + fmt(100 * ratio, 0) + "%",
         fmt(proj.project_pruned(anchors.conv_fp32,
                                 report.removed_energy_fraction)),
         fmt(paper_acc), fmt(report.parameter_compression), fmt(paper_cr)});
  }
  std::printf("=== Table 3: %s (measured vs paper) ===\n%s\n", name,
              table.to_string().c_str());
}

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  std::printf("acc%%* = projected accuracy (see EXPERIMENTS.md)\n\n");
  run_model("ResNet-50", resnet50(), AccuracyAnchors::resnet50(),
            74.00, 2.25, 73.18, 3.49, 72.77, 1.80, 72.19, 3.38);
  run_model("ResNet-101", resnet101(), AccuracyAnchors::resnet101(),
            76.56, 2.08, 75.76, 3.64, 75.82, 1.90, 74.80, 3.24);
  return 0;
}
