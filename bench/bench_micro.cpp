// Kernel-level microbenchmarks (google-benchmark): the hot paths of the
// library -- epitome reconstruction, quantization, functional crossbar MVM
// (all three kernel regimes), the datapath executor, whole-network
// estimation, and the thread-scaling sweeps of runtime evaluation and
// evolution search (Arg = thread count).
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/epitome.hpp"
#include "datapath/datapath_sim.hpp"
#include "nn/resnet.hpp"
#include "pim/crossbar.hpp"
#include "quant/epitome_quant.hpp"
#include "runtime/pim_runtime.hpp"
#include "search/evolution.hpp"
#include "sim/simulator.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

void BM_EpitomeReconstruct(benchmark::State& state) {
  Rng rng(1);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.reconstruct());
  }
  state.SetItemsProcessed(state.iterations() * conv.weight_count());
}
BENCHMARK(BM_EpitomeReconstruct);

void BM_RepetitionMap(benchmark::State& state) {
  Rng rng(2);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.repetition_map());
  }
}
BENCHMARK(BM_RepetitionMap);

void BM_EpitomeQuantize(benchmark::State& state) {
  Rng rng(3);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  QuantConfig cfg;
  cfg.bits = static_cast<int>(state.range(0));
  const EpitomeQuantizer quantizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantizer.quantize(e));
  }
}
BENCHMARK(BM_EpitomeQuantize)->Arg(3)->Arg(9);

std::vector<std::vector<int>> mvm_weights(Rng& rng, std::int64_t rows,
                                          std::int64_t cols) {
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols)));
  for (auto& r : w) {
    for (auto& v : r) v = rng.uniform_int(-128, 127);
  }
  return w;
}

/// MVM in all three kernel regimes: ideal wide-ADC (direct int64 path),
/// ideal starved-ADC (integer bit-serial path), and non-ideal (analog path).
void BM_CrossbarMvm(benchmark::State& state) {
  Rng rng(4);
  const std::int64_t rows = 128, cols = 16;
  const auto w = mvm_weights(rng, rows, cols);
  CrossbarConfig cfg;
  cfg.adc_bits = static_cast<int>(state.range(0));
  NonIdealityConfig non_ideal;
  non_ideal.conductance_sigma = state.range(1) != 0 ? 0.1 : 0.0;
  CrossbarArray xbar(cfg, 9, w, non_ideal);
  std::vector<std::uint32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 511));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.mvm(x, 9));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_CrossbarMvm)
    ->ArgNames({"adc", "noisy"})
    ->Args({12, 0})   // ideal, wide ADC: direct integer path
    ->Args({8, 0})    // ideal, starved ADC: integer bit-serial path
    ->Args({12, 1});  // non-ideal: analog path

void BM_DatapathLayer(benchmark::State& state) {
  Rng rng(5);
  const ConvSpec conv{32, 32, 3, 3, 1, 1};
  const ConvLayerInfo layer{"probe", conv, 8, 8};
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 16, 16}, conv, rng);
  DatapathSimulator sim(layer, e);
  Tensor x({32, 8, 8});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(x));
  }
}
BENCHMARK(BM_DatapathLayer);

void BM_EstimateResNet50(benchmark::State& state) {
  const Network net = resnet50();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const auto precision = PrecisionConfig::uniform(9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.eval_network(uni, precision));
  }
}
BENCHMARK(BM_EstimateResNet50);

// ---- thread-scaling sweeps (Arg = thread count) ----

struct DeployedModel {
  SyntheticData data;
  SmallEpitomeNet net;

  static DeployedModel& instance() {
    static DeployedModel* m = [] {
      SyntheticSpec dspec;
      dspec.num_classes = 4;
      dspec.train_per_class = 12;
      dspec.test_per_class = 16;
      auto* model = new DeployedModel{make_synthetic_data(dspec),
                                      SmallEpitomeNet([] {
                                        SmallNetConfig c;
                                        c.num_classes = 4;
                                        return c;
                                      }())};
      TrainConfig tcfg;
      tcfg.epochs = 2;  // throughput benchmark, accuracy irrelevant
      train_model(model->net, model->data, tcfg);
      return model;
    }();
    return *m;
  }
};

/// Whole-dataset on-chip evaluation; images fan out across threads.
void BM_RuntimeEvaluate(benchmark::State& state) {
  auto& m = DeployedModel::instance();
  RuntimeConfig cfg;
  cfg.crossbar.adc_bits = 12;
  PimNetworkRuntime runtime(m.net, m.data.train, cfg);
  set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.evaluate(m.data.test));
  }
  state.SetItemsProcessed(state.iterations() * m.data.test.size());
  set_num_threads(1);
}
BENCHMARK(BM_RuntimeEvaluate)->Arg(1)->Arg(2)->Arg(4);

/// Evolution-search candidate scoring; genomes fan out across threads.
void BM_EvolutionSearch(benchmark::State& state) {
  const Network net = mini_resnet();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg;
  cfg.population = 16;
  cfg.parents = 4;
  cfg.iterations = 4;
  cfg.crossbar_budget = 400;
  set_num_threads(static_cast<int>(state.range(0)));
  std::int64_t evaluations = 0;
  for (auto _ : state) {
    EvolutionSearch search(net, est, cfg);
    const auto result = search.run();
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.best_reward);
  }
  state.SetItemsProcessed(evaluations);
  set_num_threads(1);
}
BENCHMARK(BM_EvolutionSearch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace epim

BENCHMARK_MAIN();
