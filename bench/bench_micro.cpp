// Kernel-level microbenchmarks (google-benchmark): the hot paths of the
// library -- epitome reconstruction, quantization, functional crossbar MVM,
// the datapath executor and whole-network estimation.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/epitome.hpp"
#include "datapath/datapath_sim.hpp"
#include "nn/resnet.hpp"
#include "pim/crossbar.hpp"
#include "quant/epitome_quant.hpp"
#include "sim/simulator.hpp"

namespace epim {
namespace {

void BM_EpitomeReconstruct(benchmark::State& state) {
  Rng rng(1);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.reconstruct());
  }
  state.SetItemsProcessed(state.iterations() * conv.weight_count());
}
BENCHMARK(BM_EpitomeReconstruct);

void BM_RepetitionMap(benchmark::State& state) {
  Rng rng(2);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.repetition_map());
  }
}
BENCHMARK(BM_RepetitionMap);

void BM_EpitomeQuantize(benchmark::State& state) {
  Rng rng(3);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  const Epitome e =
      Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  QuantConfig cfg;
  cfg.bits = static_cast<int>(state.range(0));
  const EpitomeQuantizer quantizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantizer.quantize(e));
  }
}
BENCHMARK(BM_EpitomeQuantize)->Arg(3)->Arg(9);

void BM_CrossbarMvm(benchmark::State& state) {
  Rng rng(4);
  const std::int64_t rows = 128, cols = 16;
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols)));
  for (auto& r : w) {
    for (auto& v : r) v = rng.uniform_int(-128, 127);
  }
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  CrossbarArray xbar(cfg, 9, w);
  std::vector<std::uint32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 511));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.mvm(x, 9));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_CrossbarMvm);

void BM_DatapathLayer(benchmark::State& state) {
  Rng rng(5);
  const ConvSpec conv{32, 32, 3, 3, 1, 1};
  const ConvLayerInfo layer{"probe", conv, 8, 8};
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 16, 16}, conv, rng);
  DatapathSimulator sim(layer, e);
  Tensor x({32, 8, 8});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(x));
  }
}
BENCHMARK(BM_DatapathLayer);

void BM_EstimateResNet50(benchmark::State& state) {
  const Network net = resnet50();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const auto precision = PrecisionConfig::uniform(9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.eval_network(uni, precision));
  }
}
BENCHMARK(BM_EstimateResNet50);

}  // namespace
}  // namespace epim

BENCHMARK_MAIN();
