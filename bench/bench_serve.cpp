// Serving throughput suite -- continues the BENCH_*.json perf trajectory.
//
// Workloads, each recorded as one JSON row ({op, threads, wall_ms,
// items_per_sec, items_per_op}, schema epim-bench-v1):
//
//   artifact_save / artifact_load   durable-artifact round-trip
//                                   (items_per_op = artifact bytes)
//   serve_single                    one request at a time through the
//                                   service, awaiting each future (pays the
//                                   flush deadline per request)
//   serve_batch<k>                  submit_batch bursts of k
//   serve_saturated_w<N>            the whole stream enqueued as ONE burst
//                                   (saturated queue) against a service
//                                   with N continuous-batching workers --
//                                   the PR 5 worker sweep. Every row also
//                                   verifies its logits bit-identical to
//                                   the direct forward_batch reference.
//   direct_evaluate                 PimNetworkRuntime::evaluate, the
//                                   unbatched in-process reference
//   serve_faulted1pct_w2            the saturated workers=2 workload with
//                                   the serve.run_batch fault point armed
//                                   at prob 1% (seeded): items_per_op is
//                                   the mean number of requests that still
//                                   SUCCEEDED per pass, so items_per_sec is
//                                   useful-goodput under injected batch
//                                   faults -- the PR 7 degradation row.
//                                   Surviving logits stay bit-identical to
//                                   the clean reference.
//   serve_telemetry_overhead        the saturated workers=2 workload run
//                                   twice in one binary: metrics recording
//                                   ON (the default) vs OFF
//                                   (telemetry::set_recording(false)).
//                                   wall_ms/items_per_sec describe the ON
//                                   pass; items_per_op is the ON/OFF
//                                   throughput ratio x100 (99 = 0.99x).
//                                   The PR 9 gate: >= 95, i.e. relaxed-
//                                   atomic instrumentation costs at most 5%
//                                   of saturated serving throughput.
//   serve_mixed_priority_w4         caller-side exact p99 latency of
//                                   kInteractive singles while a feeder
//                                   thread keeps a deep kBulk backlog
//                                   queued, measured twice: SLA scheduling
//                                   on (distinct priorities/clients) vs the
//                                   FIFO baseline (everything kNormal, one
//                                   client). wall_ms is the scheduled p99;
//                                   items_per_op is the FIFO/scheduled p99
//                                   ratio x100. The PR 10 gate: >= 143,
//                                   i.e. scheduling cuts interactive p99
//                                   under bulk load to <= 0.7x FIFO.
//   serve_burst_resliced_w4         a 2x-max_batch burst awaited whole
//                                   against 4 workers, re-slicing on vs
//                                   off. Off closes ceil(burst/max_batch)
//                                   greedy batches (2 workers busy); on
//                                   slices it across every idle worker.
//                                   items_per_op is the off/on wall ratio
//                                   x100; the PR 10 gate: >= 120.
//
// Acceptance gates along the BENCH trajectory: serve_batch throughput
// >= 2x serve_single on the same thread budget (PR 3), and the workers=4
// saturated row >= 1.3x the workers=1 row at 4 pool threads (PR 5). The
// worker gate needs real cores to show: multiple workers overlap batch
// formation and per-batch fork/join latency with compute, but a 1-core
// host is work-conserving under a saturated queue, so every worker count
// sustains the same items/s there (the JSON records the host's cpu count
// next to the rows; CI's multi-core perf-smoke run is the arbiter).
//
// Usage: bench_serve [output.json] [--commit=HASH] [--enforce-worker-gate]
//                    [--enforce-telemetry-gate] [--enforce-sched-gate]
// --enforce-worker-gate exits non-zero when the host has >= 4 cpus and the
// saturated workers=4/workers=1 ratio at 4 pool threads falls below 1.3x
// (on hosts with fewer cpus the gate is reported but cannot bind).
// --enforce-telemetry-gate exits non-zero when the recording-on/off ratio
// falls below 0.95x.
// --enforce-sched-gate exits non-zero when the host has >= 4 cpus and
// either scheduling gate fails: mixed-priority p99 ratio < 1.43x or the
// re-slice wall ratio < 1.2x. Like the worker gate, both need real cores
// (a 1-core host serializes batch compute whatever the schedule), so on
// smaller hosts they are reported as warnings and cannot bind. The JSON is
// written before any gate is evaluated.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/build_info.hpp"
#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/parallel.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

using Clock = std::chrono::steady_clock;

struct Record {
  std::string op;
  int threads = 1;
  double wall_ms = 0.0;  ///< per operation
  double items_per_sec = 0.0;
  double items_per_op = 0.0;
};

Record record(std::string op, int threads, double wall_ms,
              double items_per_op) {
  Record r;
  r.op = std::move(op);
  r.threads = threads;
  r.wall_ms = wall_ms;
  r.items_per_op = items_per_op;
  r.items_per_sec = items_per_op / (wall_ms * 1e-3);
  return r;
}

template <typename Fn>
double measure_ms(Fn&& fn, double min_ms = 300.0) {
  fn();  // warmup
  std::int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  } while (elapsed_ms < min_ms);
  return elapsed_ms / static_cast<double>(iters);
}

std::int64_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<std::int64_t>(in.tellg()) : 0;
}

void write_json(const std::vector<Record>& records, const std::string& path,
                const std::string& commit) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"epim-bench-v1\",\n");
  std::fprintf(f, "  \"commit\": \"%s\",\n", commit.c_str());
  // Build context: a lockdep/sanitizer build is not comparable with the
  // committed Release trajectory, so rows carry their flavor.
  std::fprintf(f, "  \"build_flavor\": \"%s\",\n", build_flavor());
  std::fprintf(f, "  \"lock_debug\": %s,\n",
               debug::kLockDebugEnabled ? "true" : "false");
  // Host context: the worker sweep is core-count sensitive (see header).
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"wall_ms\": %.4f, "
                 "\"items_per_sec\": %.1f, \"items_per_op\": %.0f}%s\n",
                 r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec,
                 r.items_per_op, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

std::vector<Record> run_suite() {
  std::vector<Record> records;

  // Fixed workload: a trained small net deployed at W6A8 (accuracy is
  // irrelevant here; the forward pass cost is what we serve). 8x8 inputs
  // keep one request in the low-millisecond range -- the regime where
  // per-request dispatch cost and the flush deadline dominate, i.e. where
  // dynamic batching earns its keep.
  SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 12;
  dspec.test_per_class = 32;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nc;
  nc.num_classes = 4;
  nc.image_size = 8;
  SmallEpitomeNet net(nc);
  TrainConfig tcfg;
  tcfg.epochs = 2;
  train_model(net, data, tcfg);

  PipelineConfig cfg;
  cfg.serve.max_batch = 16;
  cfg.serve.flush_deadline_ms = 2.0;
  Pipeline pipeline(cfg);

  set_num_threads(1);
  const std::string path = "bench_serve.epim";
  {
    DeployedModel chip = pipeline.deploy(net, data.train);
    chip.save(path);  // materialize once so the size is known up front
    const double bytes = static_cast<double>(file_bytes(path));
    records.push_back(record(
        "artifact_save", 1, measure_ms([&] { chip.save(path); }, 100.0),
        bytes));
    records.push_back(record(
        "artifact_load", 1,
        measure_ms([&] { (void)Pipeline::load_deployed(path); }, 100.0),
        bytes));
  }

  // Pre-extract the request stream once, plus the direct forward_batch
  // reference logits every serving row must reproduce bit for bit.
  std::vector<Tensor> stream;
  for (std::int64_t i = 0; i < data.test.size(); ++i) {
    stream.push_back(data.test.sample(i));
  }
  const double n_items = static_cast<double>(stream.size());
  std::vector<Tensor> reference;
  {
    DeployedModel chip = Pipeline::load_deployed(path);
    reference = chip.forward_batch(stream);
  }
  const auto check_identical = [&](const std::vector<InferenceResult>& got,
                                   const char* row) {
    for (std::size_t i = 0; i < got.size(); ++i) {
      const Tensor& want = reference[i];
      bool same = got[i].logits.shape() == want.shape();
      for (std::int64_t j = 0; same && j < want.numel(); ++j) {
        same = got[i].logits.at(j) == want.at(j);
      }
      if (!same) {
        std::fprintf(stderr,
                     "%s: logits diverge from direct forward_batch at image "
                     "%zu -- determinism contract broken\n",
                     row, i);
        std::exit(1);
      }
    }
  };

  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);

    // In-process reference: direct unbatched evaluation.
    {
      DeployedModel chip = Pipeline::load_deployed(path);
      records.push_back(record(
          "direct_evaluate", threads,
          measure_ms([&] { chip.evaluate(data.test); }), n_items));
    }

    // One request at a time: every request waits out the flush deadline
    // alone -- the cost dynamic batching exists to amortize.
    {
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(cfg.serve);
      records.push_back(record(
          "serve_single", threads,
          measure_ms([&] {
            for (Tensor& image : stream) {
              (void)service.submit(image).get();
            }
          }),
          n_items));
    }

    // Bursts: full batches flush immediately and fan out across the pool.
    for (int burst : {4, 16}) {
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(cfg.serve);
      records.push_back(record(
          "serve_batch" + std::to_string(burst), threads,
          measure_ms([&] {
            std::vector<std::future<InferenceResult>> pending;
            for (std::size_t i = 0; i < stream.size();
                 i += static_cast<std::size_t>(burst)) {
              std::vector<Tensor> chunk(
                  stream.begin() + static_cast<std::ptrdiff_t>(i),
                  stream.begin() +
                      static_cast<std::ptrdiff_t>(std::min(
                          stream.size(),
                          i + static_cast<std::size_t>(burst))));
              for (auto& f : service.submit_batch(std::move(chunk))) {
                pending.push_back(std::move(f));
              }
            }
            for (auto& f : pending) (void)f.get();
          }),
          n_items));
    }

    // Worker sweep on a saturated queue: the whole stream lands as one
    // burst, so every worker always finds a full batch to close -- the
    // regime where continuous batching overlaps batch formation and
    // per-batch fork/join latency with compute. Each row first replays the
    // workload once, checking every logit against the direct
    // forward_batch reference (the PR 5 determinism gate).
    for (int workers : {1, 2, 4}) {
      ServeConfig scfg = cfg.serve;
      scfg.workers = workers;
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(scfg);
      const std::string op = "serve_saturated_w" + std::to_string(workers);
      const auto saturated_pass = [&] {
        std::vector<Tensor> burst = stream;
        std::vector<std::future<InferenceResult>> pending =
            service.submit_batch(std::move(burst));
        std::vector<InferenceResult> results;
        results.reserve(pending.size());
        for (auto& f : pending) results.push_back(f.get());
        return results;
      };
      check_identical(saturated_pass(), op.c_str());
      records.push_back(record(op, threads,
                               measure_ms([&] { (void)saturated_pass(); }),
                               n_items));
    }

    // Degradation row: the same saturated workload with 1% of batches
    // failing (seeded, so every run injects the same fault schedule).
    // items_per_op is the mean count of requests that still succeeded per
    // pass -- useful goodput, not offered load -- and every surviving
    // logit must match the clean reference bit for bit.
    {
      ServeConfig scfg = cfg.serve;
      scfg.workers = 2;
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(scfg);
      fault::arm_probability("serve.run_batch", 0.01, 0xBE7Au);
      double ok_total = 0.0;
      double passes = 0.0;
      const auto faulted_pass = [&] {
        std::vector<Tensor> burst = stream;
        std::vector<std::future<InferenceResult>> pending =
            service.submit_batch(std::move(burst));
        for (std::size_t i = 0; i < pending.size(); ++i) {
          try {
            const InferenceResult got = pending[i].get();
            const Tensor& want = reference[i];
            bool same = got.logits.shape() == want.shape();
            for (std::int64_t j = 0; same && j < want.numel(); ++j) {
              same = got.logits.at(j) == want.at(j);
            }
            if (!same) {
              std::fprintf(stderr,
                           "serve_faulted1pct_w2: surviving logits diverge "
                           "at image %zu -- determinism contract broken\n",
                           i);
              std::exit(1);
            }
            ok_total += 1.0;
          } catch (const Error&) {
            // An injected batch fault resolved this request with an error.
          }
        }
        passes += 1.0;
      };
      const double wall = measure_ms(faulted_pass);
      records.push_back(
          record("serve_faulted1pct_w2", threads, wall, ok_total / passes));
      fault::disarm_all();
    }
  }

  // Telemetry overhead: the saturated workers=2 workload with metrics
  // recording ON (default) then OFF, a fresh service per pass. items_per_op
  // carries the on/off throughput ratio x100 -- the PR 9 "effectively free
  // when unscraped" proof (gate >= 95, i.e. >= 0.95x).
  {
    set_num_threads(2);
    ServeConfig scfg = cfg.serve;
    scfg.workers = 2;
    const auto saturated_wall = [&] {
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(scfg);
      return measure_ms([&] {
        std::vector<Tensor> burst = stream;
        for (auto& f : service.submit_batch(std::move(burst))) (void)f.get();
      });
    };
    const double on_wall = saturated_wall();
    telemetry::set_recording(false);
    const double off_wall = saturated_wall();
    telemetry::set_recording(true);
    Record r = record("serve_telemetry_overhead", 2, on_wall, n_items);
    r.items_per_op = (off_wall / on_wall) * 100.0;
    records.push_back(r);
  }

  // Mixed-priority p99: interactive singles racing a feeder-maintained bulk
  // backlog, scheduling on vs the FIFO baseline. 1 pool thread so the
  // workers' own threads carry the compute -- the serving-layer regime
  // where the schedule (not the pool) decides who waits.
  {
    set_num_threads(1);
    const auto interactive_p99 = [&](bool sched_on) {
      ServeConfig scfg = cfg.serve;
      scfg.workers = 4;
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(scfg);
      std::atomic<bool> stop{false};
      std::thread feeder([&] {
        SubmitOptions bulk;
        bulk.priority = sched_on ? Priority::kBulk : Priority::kNormal;
        if (sched_on) bulk.client_id = "background";
        while (!stop.load(std::memory_order_relaxed)) {
          if (service.stats().queued < 64) {
            std::vector<Tensor> burst(stream.begin(), stream.begin() + 16);
            // Abandon the futures: promise-backed futures never block in
            // their destructor, and goodput is not what this row measures.
            (void)service.submit_batch(std::move(burst), bulk);
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      });
      while (service.stats().queued < 32) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      SubmitOptions fg;
      fg.priority = sched_on ? Priority::kInteractive : Priority::kNormal;
      if (sched_on) fg.client_id = "foreground";
      std::vector<double> latencies;
      for (int i = 0; i < 200; ++i) {
        const auto t0 = Clock::now();
        (void)service
            .submit(stream[static_cast<std::size_t>(i) % stream.size()], fg)
            .get();
        latencies.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
      stop.store(true);
      feeder.join();
      // Exact caller-side p99: index ceil(0.99 * N) - 1 of the sorted
      // sample, no histogram-bucket rounding.
      std::sort(latencies.begin(), latencies.end());
      return latencies[(latencies.size() * 99 + 99) / 100 - 1];
    };
    const double sched_p99 = interactive_p99(true);
    const double fifo_p99 = interactive_p99(false);
    Record r = record("serve_mixed_priority_w4", 1, sched_p99, 100.0);
    r.items_per_op = (fifo_p99 / sched_p99) * 100.0;
    records.push_back(r);
  }

  // Burst re-slicing: one 2x-max_batch burst awaited whole, re-slicing on
  // vs off. Off = two greedy max_batch closes (half the pool idle); on =
  // ceil(32/4)-sized slices across all four workers.
  {
    set_num_threads(1);
    const auto burst_wall = [&](bool reslice) {
      ServeConfig scfg = cfg.serve;
      scfg.workers = 4;
      scfg.reslice_bursts = reslice;
      InferenceService service =
          std::move(Pipeline::load_deployed(path)).serve(scfg);
      return measure_ms([&] {
        std::vector<Tensor> burst(stream.begin(), stream.begin() + 32);
        for (auto& f : service.submit_batch(std::move(burst))) (void)f.get();
      });
    };
    const double resliced_wall = burst_wall(true);
    const double serial_wall = burst_wall(false);
    Record r = record("serve_burst_resliced_w4", 1, resliced_wall, 32.0);
    r.items_per_op = (serial_wall / resliced_wall) * 100.0;
    records.push_back(r);
  }
  set_num_threads(1);
  std::remove(path.c_str());
  return records;
}

}  // namespace
}  // namespace epim

int main(int argc, char** argv) {
  std::string out = "BENCH_pr10.json";
  std::string commit = "unknown";
  bool enforce_worker_gate = false;
  bool enforce_telemetry_gate = false;
  bool enforce_sched_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--commit=", 9) == 0) {
      commit = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--enforce-worker-gate") == 0) {
      enforce_worker_gate = true;
    } else if (std::strcmp(argv[i], "--enforce-telemetry-gate") == 0) {
      enforce_telemetry_gate = true;
    } else if (std::strcmp(argv[i], "--enforce-sched-gate") == 0) {
      enforce_sched_gate = true;
    } else {
      out = argv[i];
    }
  }
  const auto records = epim::run_suite();
  // Gate ratio per thread budget (batched vs single under the *same*
  // thread count); the reported figure is the worst budget's ratio, so
  // thread scaling can never mask a batching regression.
  std::map<int, double> single_by_threads, batch_by_threads;
  std::map<int, double> faulted_by_threads;
  std::map<std::pair<int, int>, double> saturated;  // (threads, workers)
  double telemetry_ratio = 0.0;
  double mixed_priority_ratio = 0.0;
  double resliced_ratio = 0.0;
  for (const auto& r : records) {
    std::printf("%-20s threads=%d  %10.4f ms/op  %12.1f items/s\n",
                r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec);
    if (r.op == "serve_single") {
      single_by_threads[r.threads] = r.items_per_sec;
    }
    if (r.op.rfind("serve_batch", 0) == 0) {
      double& best = batch_by_threads[r.threads];
      best = std::max(best, r.items_per_sec);
    }
    if (r.op.rfind("serve_saturated_w", 0) == 0) {
      saturated[{r.threads, std::atoi(r.op.c_str() + 17)}] = r.items_per_sec;
    }
    if (r.op == "serve_faulted1pct_w2") {
      faulted_by_threads[r.threads] = r.items_per_sec;
    }
    if (r.op == "serve_telemetry_overhead") {
      telemetry_ratio = r.items_per_op / 100.0;
    }
    if (r.op == "serve_mixed_priority_w4") {
      mixed_priority_ratio = r.items_per_op / 100.0;
    }
    if (r.op == "serve_burst_resliced_w4") {
      resliced_ratio = r.items_per_op / 100.0;
    }
  }
  // The suite is itself telemetry-instrumented (every service above records
  // under model="default"): surface the totals a fleet scrape would see.
  {
    namespace tm = epim::telemetry;
    tm::Registry& reg = tm::Registry::process();
    const tm::Labels labels{{"model", "default"}};
    // Queue depth is per scheduling class since PR 10: report the max
    // high-water over the three {model, priority} series.
    long long depth_high_water = 0;
    for (const char* priority : {"interactive", "normal", "bulk"}) {
      depth_high_water = std::max(
          depth_high_water,
          static_cast<long long>(
              reg.gauge("epim_serve_queue_depth",
                        {{"model", "default"}, {"priority", priority}})
                  ->high_water()));
    }
    std::printf(
        "telemetry: requests=%lld batches=%lld queue_depth_high_water=%lld "
        "pool_jobs=%lld\n",
        static_cast<long long>(
            reg.counter("epim_serve_requests_total", labels)->value()),
        static_cast<long long>(
            reg.counter("epim_serve_batches_total", labels)->value()),
        depth_high_water,
        static_cast<long long>(reg.counter("epim_pool_jobs_total")->value()));
  }
  std::printf("bit-identity vs direct forward_batch: OK at every workers x "
              "threads x batch point\n");
  double worst_ratio = 0.0;
  for (const auto& [threads, single] : single_by_threads) {
    const auto it = batch_by_threads.find(threads);
    if (it == batch_by_threads.end() || single <= 0.0) continue;
    const double ratio = it->second / single;
    std::printf("batched/single @ %d thread(s): %.2fx\n", threads, ratio);
    worst_ratio = worst_ratio == 0.0 ? ratio : std::min(worst_ratio, ratio);
  }
  std::printf("worst same-budget batched/single: %.2fx (gate: >= 2x)\n",
              worst_ratio);
  // PR 7 degradation: goodput under 1% injected batch faults vs the clean
  // saturated workers=2 row on the same thread budget. Informational --
  // a ~1% batch fault rate should cost roughly its share of goodput, not
  // collapse it.
  for (const auto& [threads, faulted] : faulted_by_threads) {
    const auto clean = saturated.find({threads, 2});
    if (clean == saturated.end() || clean->second <= 0.0) continue;
    std::printf("faulted-1%%/clean goodput @ %d thread(s): %.2fx\n", threads,
                faulted / clean->second);
  }
  epim::write_json(records, out, commit);
  std::printf("wrote %s\n", out.c_str());
  // PR 5 worker gate: saturated-queue workers=4 vs workers=1 at 4 pool
  // threads. On a 1-core host every worker count is work-conserving under
  // saturation (ratio ~1.0); the gate needs real cores to express, so it
  // only *binds* (--enforce-worker-gate) when the host has >= 4 cpus. The
  // JSON above is written regardless of the gate's verdict.
  const unsigned cpus = std::thread::hardware_concurrency();
  const auto w1 = saturated.find({4, 1});
  const auto w4 = saturated.find({4, 4});
  if (w1 != saturated.end() && w4 != saturated.end() && w1->second > 0.0) {
    const double ratio = w4->second / w1->second;
    std::printf(
        "saturated workers=4 / workers=1 @ 4 threads: %.2fx "
        "(gate: >= 1.3x on a multi-core host; this host: %u cpu(s))\n",
        ratio, cpus);
    if (enforce_worker_gate && cpus >= 4 && ratio < 1.3) {
      std::fprintf(stderr,
                   "worker gate FAILED: %.2fx < 1.3x on a %u-cpu host\n",
                   ratio, cpus);
      return 3;
    }
  }
  // PR 9 telemetry gate: recording-on throughput vs recording-off on the
  // same saturated workload -- relaxed-atomic instrumentation must keep at
  // least 95% of uninstrumented throughput.
  if (telemetry_ratio > 0.0) {
    std::printf(
        "telemetry recording on/off throughput: %.2fx (gate: >= 0.95x)\n",
        telemetry_ratio);
    if (enforce_telemetry_gate && telemetry_ratio < 0.95) {
      std::fprintf(stderr, "telemetry gate FAILED: %.2fx < 0.95x\n",
                   telemetry_ratio);
      return 4;
    }
  }
  // PR 10 scheduling gates. Both need real cores to express: with one cpu
  // the four workers time-slice a single core, so batch compute serializes
  // whatever the scheduler decides -- on such hosts the ratios are printed
  // as warnings and --enforce-sched-gate cannot bind (same policy as the
  // worker gate above).
  if (mixed_priority_ratio > 0.0) {
    std::printf(
        "interactive p99 FIFO/scheduled under bulk load: %.2fx "
        "(gate: >= 1.43x, i.e. scheduled p99 <= 0.7x FIFO, on a multi-core "
        "host; this host: %u cpu(s))\n",
        mixed_priority_ratio, cpus);
    if (enforce_sched_gate && cpus >= 4 && mixed_priority_ratio < 1.43) {
      std::fprintf(stderr,
                   "scheduling gate FAILED: mixed-priority p99 ratio %.2fx "
                   "< 1.43x on a %u-cpu host\n",
                   mixed_priority_ratio, cpus);
      return 5;
    }
  }
  if (resliced_ratio > 0.0) {
    std::printf(
        "burst wall re-slicing off/on: %.2fx (gate: >= 1.2x on a multi-core "
        "host; this host: %u cpu(s))\n",
        resliced_ratio, cpus);
    if (enforce_sched_gate && cpus >= 4 && resliced_ratio < 1.2) {
      std::fprintf(stderr,
                   "scheduling gate FAILED: re-slice wall ratio %.2fx < "
                   "1.2x on a %u-cpu host\n",
                   resliced_ratio, cpus);
      return 5;
    }
  }
  return 0;
}
