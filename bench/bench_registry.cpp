// Multi-model registry throughput suite -- continues the BENCH_*.json perf
// trajectory (schema epim-bench-v1).
//
// Workloads, each one JSON row ({op, threads, wall_ms, items_per_sec,
// items_per_op}):
//
//   registry_single        one resident model behind the router, the whole
//                          request stream in bursts of max_batch -- the
//                          same steady-state regime as bench_serve's
//                          serve_batch16, now paying the routing layer
//   registry_fleet3        three resident models, one submitter thread per
//                          model bursting its own stream concurrently;
//                          items/s counts ALL models' completions (fleet
//                          throughput at the same total thread budget)
//   registry_fleet3_w4     same fleet, every service running 4
//                          continuous-batching workers (PR 5 sweep: the
//                          fleet's batch formation overlaps compute; the
//                          shared compute pool still caps the machine-wide
//                          thread budget)
//   registry_churn         resident budget 1, three artifact-backed
//                          models touched round-robin: every request pays
//                          materialize (artifact load + crossbar
//                          programming) + LRU eviction -- the worst-case
//                          cold path (items_per_op = swaps per pass)
//   registry_coldstart_hol resident model B serves its full stream while a
//                          background thread cold-churns the other two
//                          artifact-backed models through the remaining
//                          budget slot. Before PR 8 each materialization
//                          held the registry lock and B's stream stalled
//                          behind disk + crossbar programming
//                          (head-of-line blocking); with lock-dropped
//                          loads this row should track registry_single
//   artifact_load_mmap /   one load_deployed() of the same artifact
//   artifact_load_read     through the mmap (lazy checksum) and read()
//                          (eager checksum) paths -- the materialization
//                          I/O cost the registry pays per cold start
//
// The PR 4 acceptance gate: fleet3 throughput >= 0.8x registry_single on
// the same thread budget -- i.e. hosting three models behind one front door
// costs at most 20% of what one dedicated service delivers, because all
// residents share the one common/parallel pool instead of oversubscribing
// the machine with private pools.
//
// Usage: bench_registry [output.json] [--commit=HASH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.hpp"
#include "common/parallel.hpp"
#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

using Clock = std::chrono::steady_clock;

struct Record {
  std::string op;
  int threads = 1;
  double wall_ms = 0.0;  ///< per operation
  double items_per_sec = 0.0;
  double items_per_op = 0.0;
};

Record record(std::string op, int threads, double wall_ms,
              double items_per_op) {
  Record r;
  r.op = std::move(op);
  r.threads = threads;
  r.wall_ms = wall_ms;
  r.items_per_op = items_per_op;
  r.items_per_sec = items_per_op / (wall_ms * 1e-3);
  return r;
}

template <typename Fn>
double measure_ms(Fn&& fn, double min_ms = 300.0) {
  fn();  // warmup
  std::int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  } while (elapsed_ms < min_ms);
  return elapsed_ms / static_cast<double>(iters);
}

void write_json(const std::vector<Record>& records, const std::string& path,
                const std::string& commit) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"epim-bench-v1\",\n");
  std::fprintf(f, "  \"commit\": \"%s\",\n", commit.c_str());
  // Build context: a lockdep/sanitizer build is not comparable with the
  // committed Release trajectory, so rows carry their flavor.
  std::fprintf(f, "  \"build_flavor\": \"%s\",\n", build_flavor());
  std::fprintf(f, "  \"lock_debug\": %s,\n",
               debug::kLockDebugEnabled ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"wall_ms\": %.4f, "
                 "\"items_per_sec\": %.1f, \"items_per_op\": %.0f}%s\n",
                 r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec,
                 r.items_per_op, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Burst `stream` through `router` at `target` and await every result.
void push_stream(Router& router, const std::string& target,
                 const std::vector<Tensor>& stream, int burst) {
  std::vector<std::future<InferenceResult>> pending;
  pending.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size();
       i += static_cast<std::size_t>(burst)) {
    std::vector<Tensor> chunk(
        stream.begin() + static_cast<std::ptrdiff_t>(i),
        stream.begin() + static_cast<std::ptrdiff_t>(std::min(
                             stream.size(),
                             i + static_cast<std::size_t>(burst))));
    for (auto& f : router.submit_batch(target, std::move(chunk))) {
      pending.push_back(std::move(f));
    }
  }
  for (auto& f : pending) (void)f.get();
}

std::vector<Record> run_suite() {
  std::vector<Record> records;

  // Same fixed workload as bench_serve: a trained small net at W6A8 on 8x8
  // inputs, where dispatch + routing overhead is visible next to the
  // forward cost. Three artifact variants of the SAME deployment, so the
  // single-model and fleet regimes are per-model identical work.
  SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 12;
  dspec.test_per_class = 32;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nc;
  nc.num_classes = 4;
  nc.image_size = 8;
  SmallEpitomeNet net(nc);
  TrainConfig tcfg;
  tcfg.epochs = 2;
  train_model(net, data, tcfg);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(6, 8);
  cfg.serve.max_batch = 16;
  cfg.serve.flush_deadline_ms = 2.0;
  Pipeline pipeline(cfg);

  set_num_threads(1);
  const std::vector<std::string> names = {"zoo_a", "zoo_b", "zoo_c"};
  std::vector<std::string> paths;
  for (const std::string& name : names) {
    const std::string path = "bench_registry_" + name + ".epim";
    pipeline.deploy(net, data.train).save(path);
    paths.push_back(path);
  }

  std::vector<Tensor> stream;
  for (std::int64_t i = 0; i < data.test.size(); ++i) {
    stream.push_back(data.test.sample(i));
  }
  const double n_items = static_cast<double>(stream.size());
  const int burst = cfg.serve.max_batch;

  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);

    // One model behind the front door (the routing-layer overhead row).
    {
      RegistryConfig rcfg;
      rcfg.max_resident_models = 1;
      rcfg.serve = cfg.serve;
      ModelRegistry registry(rcfg);
      registry.register_artifact(names[0], "v1", paths[0]);
      Router router(registry);
      records.push_back(record(
          "registry_single", threads,
          measure_ms([&] { push_stream(router, names[0], stream, burst); }),
          n_items));
    }

    // Three resident models, one submitter per model, all at once. The
    // per-op item count is 3x the stream: fleet throughput, not per-model.
    // Swept over the per-service continuous-batching worker count (PR 5):
    // w1 is the PR 4 baseline shape, w4 runs four batch-closers per model
    // against the same shared compute pool.
    for (const int workers : {1, 4}) {
      RegistryConfig rcfg;
      rcfg.max_resident_models = 3;
      rcfg.serve = cfg.serve;
      rcfg.serve.workers = workers;
      ModelRegistry registry(rcfg);
      for (std::size_t v = 0; v < names.size(); ++v) {
        registry.register_artifact(names[v], "v1", paths[v]);
      }
      Router router(registry);
      records.push_back(record(
          workers == 1 ? "registry_fleet3"
                       : "registry_fleet3_w" + std::to_string(workers),
          threads,
          measure_ms([&] {
            std::vector<std::thread> submitters;
            for (const std::string& name : names) {
              submitters.emplace_back(
                  [&, name] { push_stream(router, name, stream, burst); });
            }
            for (std::thread& t : submitters) t.join();
          }),
          3.0 * n_items));
    }
  }

  // Eviction churn: a budget of 1 with round-robin traffic across three
  // artifact-backed models makes EVERY touch a materialize + evict cycle.
  {
    set_num_threads(1);
    RegistryConfig rcfg;
    rcfg.max_resident_models = 1;
    rcfg.serve = cfg.serve;
    ModelRegistry registry(rcfg);
    for (std::size_t v = 0; v < names.size(); ++v) {
      registry.register_artifact(names[v], "v1", paths[v]);
    }
    Router router(registry);
    constexpr int kSwapsPerPass = 9;
    records.push_back(record(
        "registry_churn", 1,
        measure_ms(
            [&] {
              for (int i = 0; i < kSwapsPerPass; ++i) {
                (void)router
                    .submit(names[static_cast<std::size_t>(i) % names.size()],
                            stream[static_cast<std::size_t>(i) %
                                   stream.size()])
                    .get();
              }
            },
            100.0),
        kSwapsPerPass));
  }

  // Cold-start head-of-line: model B stays resident and serves the full
  // stream while a background churner keeps cold-loading the other two
  // artifact-backed models through the remaining budget slot (each touch
  // is a materialize + LRU evict of the other). The registry lock is
  // dropped during materialization, so B's throughput should track the
  // registry_single row instead of stalling behind every cold load.
  {
    set_num_threads(1);
    RegistryConfig rcfg;
    rcfg.max_resident_models = 2;
    rcfg.serve = cfg.serve;
    ModelRegistry registry(rcfg);
    for (std::size_t v = 0; v < names.size(); ++v) {
      registry.register_artifact(names[v], "v1", paths[v]);
    }
    Router router(registry);
    push_stream(router, names[1], stream, burst);  // warm B resident
    std::atomic<bool> stop{false};
    std::thread churner([&] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& cold = (i++ % 2 == 0) ? names[0] : names[2];
        (void)router.submit(cold, stream[0]).get();
      }
    });
    records.push_back(record(
        "registry_coldstart_hol", 2,
        measure_ms([&] { push_stream(router, names[1], stream, burst); }),
        n_items));
    stop.store(true);
    churner.join();
  }

  // Materialization I/O: one load_deployed() of the same artifact through
  // the mmap (lazy checksum) and read() (eager checksum) paths.
  {
    set_num_threads(1);
    const artifact::IoMode saved = artifact::io_mode();
    for (const artifact::IoMode mode :
         {artifact::IoMode::kMmap, artifact::IoMode::kRead}) {
      artifact::set_io_mode(mode);
      records.push_back(record(mode == artifact::IoMode::kMmap
                                   ? "artifact_load_mmap"
                                   : "artifact_load_read",
                               1,
                               measure_ms(
                                   [&] {
                                     (void)Pipeline::load_deployed(paths[0]);
                                   },
                                   100.0),
                               1.0));
    }
    artifact::set_io_mode(saved);
  }

  set_num_threads(1);
  for (const std::string& path : paths) std::remove(path.c_str());
  return records;
}

}  // namespace
}  // namespace epim

int main(int argc, char** argv) {
  std::string out = "BENCH_pr8.json";
  std::string commit = "unknown";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--commit=", 9) == 0) {
      commit = argv[i] + 9;
    } else {
      out = argv[i];
    }
  }
  const auto records = epim::run_suite();
  // Gate: fleet throughput vs the single-model row at the SAME total
  // thread budget; worst budget reported so thread scaling cannot mask a
  // fleet regression.
  std::map<int, double> single_by_threads, fleet_by_threads;
  for (const auto& r : records) {
    std::printf("%-18s threads=%d  %10.4f ms/op  %12.1f items/s\n",
                r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec);
    if (r.op == "registry_single") single_by_threads[r.threads] = r.items_per_sec;
    if (r.op == "registry_fleet3") fleet_by_threads[r.threads] = r.items_per_sec;
  }
  double worst_ratio = 0.0;
  for (const auto& [threads, single] : single_by_threads) {
    const auto it = fleet_by_threads.find(threads);
    if (it == fleet_by_threads.end() || single <= 0.0) continue;
    const double ratio = it->second / single;
    std::printf("fleet3/single @ %d thread(s): %.2fx\n", threads, ratio);
    worst_ratio = worst_ratio == 0.0 ? ratio : std::min(worst_ratio, ratio);
  }
  std::printf("worst same-budget fleet3/single: %.2fx (gate: >= 0.8x)\n",
              worst_ratio);
  // Fleet telemetry the suite accumulated: the materialize wall-time digest
  // and lifecycle counters a scrape would see for the churned models
  // (registry_churn + registry_coldstart_hol re-materialize these over and
  // over, so the histogram has a real population).
  {
    namespace tm = epim::telemetry;
    tm::Registry& reg = tm::Registry::process();
    for (const char* model : {"zoo_a@v1", "zoo_b@v1", "zoo_c@v1"}) {
      const tm::Labels labels{{"model", model}};
      tm::Histogram* mat =
          reg.histogram("epim_registry_materialize_ms", labels);
      std::printf(
          "telemetry %s: materialize count=%lld p50<=%.3fms p99<=%.3fms "
          "evictions=%lld\n",
          model, static_cast<long long>(mat->count()), mat->quantile(0.5),
          mat->quantile(0.99),
          static_cast<long long>(
              reg.counter("epim_registry_evictions_total", labels)->value()));
    }
  }
  epim::write_json(records, out, commit);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
