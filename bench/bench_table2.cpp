// Regenerates paper Table 2: the epitome-aware quantization ablation
// (naive min/max -> + per-crossbar scaling factors -> + overlap-weighted
// ranges) for ResNet-50/101 at 3-bit and mixed 3-5-bit.
//
// Two complementary experiments:
//  1. Projection path (the paper's scale): measure repetition-weighted
//     quantization noise per scheme on the full ResNet epitome assignments
//     and project ImageNet accuracy.
//  2. Trained-proxy path (end-to-end ground truth at small scale): train the
//     small epitome CNN on synthetic data, quantize with each scheme, and
//     report *real* measured accuracy, validating the trend.
#include <cstdio>

#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "quant/mixed_precision.hpp"
#include "sim/simulator.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

struct PaperTriple {
  double naive, xbar, overlap;
};

void projected_block(const char* name, const Network& net,
                     const AccuracyAnchors& anchors, const PaperTriple& p3,
                     const PaperTriple& p35) {
  EpimSimulator sim;
  const AccuracyProjector proj(anchors);
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig mp;
  const auto alloc = hawq_lite_allocate(uni, mp, sim.crossbar_config());

  TextTable table({"model", "scheme", "acc%* (3-bit)", "paper (3-bit)",
                   "acc%* (3-5 bit)", "paper (3-5 bit)", "wMSE (3-bit)"});
  const RangeScheme schemes[] = {RangeScheme::kMinMax,
                                 RangeScheme::kPerCrossbar,
                                 RangeScheme::kOverlapWeighted};
  const double paper3[] = {p3.naive, p3.xbar, p3.overlap};
  const double paper35[] = {p35.naive, p35.xbar, p35.overlap};
  for (int s = 0; s < 3; ++s) {
    QuantConfig cfg;
    cfg.scheme = schemes[s];
    const auto e3 =
        sim.evaluate(uni, PrecisionConfig::uniform(3, 9), cfg, proj);
    const auto e35 = sim.evaluate(uni, alloc.precision, cfg, proj);
    table.add_row({name, range_scheme_name(schemes[s]),
                   fmt(e3.projected_accuracy), fmt(paper3[s]),
                   fmt(e35.projected_accuracy), fmt(paper35[s]),
                   fmt(e3.weighted_mse, 6)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void trained_proxy_block() {
  std::printf(
      "--- trained-proxy validation (real accuracy, small epitome CNN on "
      "synthetic data) ---\n");
  // A hard enough task that low-bit weight noise visibly costs accuracy
  // (many classes, strong pixel noise, few training samples per class),
  // averaged over independently trained models because accuracy at this
  // scale is lumpy for any single seed.
  constexpr int kSeeds = 3;
  const int bits_grid[] = {2, 3, 4};
  const RangeScheme schemes[] = {RangeScheme::kMinMax,
                                 RangeScheme::kPerCrossbar,
                                 RangeScheme::kOverlapWeighted};
  double acc_sum[3][3] = {}, mse_sum[3][3] = {};
  double fp_acc_sum = 0.0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SyntheticSpec dspec;
    dspec.num_classes = 10;
    dspec.train_per_class = 20;
    dspec.test_per_class = 16;
    dspec.noise = 0.6f;
    dspec.max_shift = 3;
    dspec.seed = 0xDA7Au + static_cast<std::uint64_t>(seed);
    const SyntheticData data = make_synthetic_data(dspec);
    SmallNetConfig nspec;
    nspec.num_classes = 10;
    nspec.seed = 0x5EEDu + static_cast<std::uint64_t>(seed);
    SmallEpitomeNet net(nspec);
    TrainConfig tcfg;
    tcfg.epochs = 10;
    tcfg.seed = 0x7EA1u + static_cast<std::uint64_t>(seed);
    const TrainResult trained = train_model(net, data, tcfg);
    fp_acc_sum += trained.test_accuracy;
    for (int b = 0; b < 3; ++b) {
      for (int s = 0; s < 3; ++s) {
        QuantConfig cfg;
        cfg.bits = bits_grid[b];
        cfg.scheme = schemes[s];
        // Small-net crossbar blocks: match the mapped epitome tile
        // granularity at this model scale.
        cfg.xbar_rows = 64;
        cfg.xbar_cols = 16;
        const auto r = evaluate_quantized(net, data.test, cfg);
        acc_sum[b][s] += r.accuracy;
        mse_sum[b][s] += r.weighted_mse;
      }
    }
  }
  std::printf("fp32 epitome model: mean test acc %.3f over %d seeds\n",
              fp_acc_sum / kSeeds, kSeeds);
  TextTable table({"bits", "scheme", "mean test acc (measured)",
                   "mean wMSE"});
  for (int b = 0; b < 3; ++b) {
    for (int s = 0; s < 3; ++s) {
      table.add_row({std::to_string(bits_grid[b]),
                     range_scheme_name(schemes[s]),
                     fmt(acc_sum[b][s] / kSeeds, 3),
                     fmt(mse_sum[b][s] / kSeeds, 6)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  std::printf("=== Table 2: quantization scheme ablation ===\n");
  std::printf("acc%%* = projected accuracy (see EXPERIMENTS.md)\n\n");
  projected_block("ResNet-50", resnet50(), AccuracyAnchors::resnet50(),
                  {69.95, 71.35, 71.59}, {72.18, 72.83, 72.98});
  projected_block("ResNet-101", resnet101(), AccuracyAnchors::resnet101(),
                  {73.98, 74.96, 74.98}, {75.46, 75.71, 75.80});
  trained_proxy_block();
  return 0;
}
