// Regenerates paper Figure 3: per-layer parameter size, latency and energy
// for three representative ResNet-50 layers (an early, a middle and a late
// layer), with and without the epitome.
//
// The paper labels them Layer 9 / 41 / 67 in its own (BN-inclusive) layer
// numbering; we pick the convs at matching depths: an early stage-1 3x3, a
// middle stage-3 3x3 and a late stage-4 3x3. The expected shape: the late
// layer gives a large parameter saving for a modest latency/energy increase,
// while the early layer saves little but pays a comparable overhead --
// the motivation for layer-wise epitome design (Sec. 5.2).
#include <cstdio>

#include "common/table.hpp"
#include "core/designer.hpp"
#include "nn/resnet.hpp"
#include "pim/estimator.hpp"

namespace epim {
namespace {

const ConvLayerInfo* find_layer(const Network& net, const char* name) {
  for (const auto& l : net.conv_layers()) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});

  // Early / middle / late 3x3 convs (paper's L9 / L41 / L67 depths).
  const struct {
    const char* paper_label;
    const char* layer;
  } picks[] = {{"L9 (early)", "layer1.2.conv2"},
               {"L41 (middle)", "layer3.2.conv2"},
               {"L67 (late)", "layer4.1.conv2"}};

  // Figure 3 uses an aggressive uniform epitome so every layer, even early
  // ones, is compressed (the point is the per-layer sensitivity contrast).
  UniformDesign policy;
  policy.target_rows = 512;
  policy.target_cout = 128;
  policy.skip_small_layers = false;

  TextTable table({"layer", "params k (conv)", "params k (epitome)",
                   "d-params k", "lat ms (conv)", "lat ms (epitome)",
                   "d-lat ms", "mJ (conv)", "mJ (epitome)", "d-mJ"});
  std::printf("=== Figure 3: per-layer cost of epitomes, ResNet-50 ===\n");
  for (const auto& pick : picks) {
    const ConvLayerInfo* layer = find_layer(net, pick.layer);
    if (layer == nullptr) {
      std::printf("layer %s not found\n", pick.layer);
      return 1;
    }
    const auto spec = design_uniform(layer->conv, policy);
    if (!spec.has_value()) {
      std::printf("layer %s not compressible under the Fig.3 policy\n",
                  pick.layer);
      return 1;
    }
    const LayerCost conv = est.eval_conv_layer(*layer, 32, 32);
    const LayerCost epi = est.eval_epitome_layer(*layer, *spec, 32, 32);
    // Per-layer energy: dynamic + this layer's own crossbars leaking for its
    // own runtime (chip-level leakage attribution is a network quantity).
    const HardwareLut lut;
    auto layer_energy = [&](const LayerCost& c) {
      return c.dynamic_energy_mj + lut.leakage_mw_per_xbar *
                                       static_cast<double>(
                                           c.mapping.num_crossbars) *
                                       c.latency_ms * 1e-3;
    };
    table.add_row({std::string(pick.paper_label) + " " + pick.layer,
                   fmt(static_cast<double>(conv.params) / 1e3, 1),
                   fmt(static_cast<double>(epi.params) / 1e3, 1),
                   fmt(static_cast<double>(conv.params - epi.params) / 1e3, 1),
                   fmt(conv.latency_ms, 2), fmt(epi.latency_ms, 2),
                   fmt(epi.latency_ms - conv.latency_ms, 2),
                   fmt(layer_energy(conv), 2), fmt(layer_energy(epi), 2),
                   fmt(layer_energy(epi) - layer_energy(conv), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected shape (paper): the late layer trades a much larger parameter\n"
      "saving for a similar latency/energy increase than the early layer --\n"
      "uniform epitomes are a bad deal early, a good deal late.\n");
  return 0;
}
