// Regenerates paper Table 1: EPIM on ImageNet-scale ResNet-50/101.
//
// Columns: bitwidth, epitome shape, projected top-1 accuracy, #crossbars,
// crossbar compression rate, latency, energy, memristor utilization --
// side by side with the paper's reported values ("paper" columns). Accuracy
// is a projection (see quant/accuracy_model.hpp); hardware numbers come from
// the calibrated behaviour-level estimator. Expect the *shape* to match the
// paper (who wins, roughly by how much), not digit-for-digit equality.
//
// Every row is one Pipeline configuration: design policy + precision plan.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "pipeline/pipeline.hpp"

namespace epim {
namespace {

struct PaperRow {
  const char* bitwidth;
  const char* epitome;
  double accuracy, xbs, cr, latency, energy, util;
};

struct RowSpec {
  std::string label;
  PrecisionPlan plan;
  bool epitome;
  PaperRow paper;
};

void run_model(const char* name, const Network& net,
               const AccuracyAnchors& anchors,
               const std::vector<RowSpec>& rows, bool opt_rows) {
  auto make_config = [&](const PrecisionPlan& plan, DesignPolicy policy) {
    PipelineConfig cfg;
    cfg.anchors = anchors;
    cfg.precision = plan;
    cfg.design.policy = policy;
    return cfg;
  };
  const double base_xb = static_cast<double>(
      Pipeline(make_config(PrecisionPlan::fp32(), DesignPolicy::kBaseline))
          .compile(net)
          .estimate()
          .cost.num_crossbars);

  TextTable table({"config", "epitome", "acc%*", "acc%(paper)", "#XB",
                   "#XB(paper)", "CR", "CR(paper)", "lat ms", "lat(paper)",
                   "mJ", "mJ(paper)", "util%", "util(paper)"});
  auto add_row = [&](const std::string& label, const char* epitome_desc,
                     const CompiledModel::Evaluation& e, const PaperRow& ref) {
    table.add_row({label, epitome_desc, fmt(e.projected_accuracy),
                   fmt(ref.accuracy), std::to_string(e.cost.num_crossbars),
                   fmt(ref.xbs, 0),
                   fmt(base_xb / static_cast<double>(e.cost.num_crossbars)),
                   fmt(ref.cr), fmt(e.cost.latency_ms, 1), fmt(ref.latency, 1),
                   fmt(e.cost.energy_mj(), 1), fmt(ref.energy, 1),
                   fmt(100.0 * e.cost.utilization, 1), fmt(ref.util, 1)});
  };

  for (const RowSpec& row : rows) {
    const auto policy =
        row.epitome ? DesignPolicy::kUniform : DesignPolicy::kBaseline;
    const auto e =
        Pipeline(make_config(row.plan, policy)).compile(net).estimate();
    add_row(row.label, row.epitome ? "1024x256" : "-", e, row.paper);
  }

  if (opt_rows) {
    // Layer-wise designs from the evolutionary search at the W9A9 uniform
    // crossbar count scaled to the paper's latency/energy-opt budgets.
    const auto w9 = make_config(PrecisionPlan::uniform(9, 9),
                                DesignPolicy::kUniform);
    const auto w9_cost = Pipeline(w9).compile(net).estimate().cost;
    for (const auto objective :
         {SearchObjective::kLatency, SearchObjective::kEnergy}) {
      PipelineConfig cfg = w9;
      cfg.search.enabled = true;
      cfg.search.evo.population = 32;
      cfg.search.evo.iterations = 20;
      cfg.search.evo.parents = 8;
      cfg.search.evo.crossbar_budget = (w9_cost.num_crossbars * 3) / 4;
      cfg.search.evo.objective = objective;
      cfg.search.evo.candidates.wrap_output = true;
      CompiledModel model = Pipeline(cfg).compile(net);
      model.search();
      const bool lat = objective == SearchObjective::kLatency;
      const PaperRow ref = lat ? PaperRow{"W9A9", "layer-wise", 73.60, 1080,
                                          12.15, 49.2, 16.4, 93.4}
                               : PaperRow{"W9A9", "layer-wise", 73.15, 1048,
                                          12.52, 50.6, 15.6, 93.2};
      add_row(lat ? "W9A9-Latency-Opt" : "W9A9-Energy-Opt", "layer-wise",
              model.estimate(), ref);
    }
  }

  std::printf("=== Table 1: %s (measured vs paper) ===\n%s\n", name,
              table.to_string().c_str());
}

std::vector<RowSpec> resnet50_rows() {
  std::vector<RowSpec> rows;
  rows.push_back({"FP32 conv", PrecisionPlan::fp32(), false,
                  {"FP32", "-", 76.37, 13120, 1.00, 139.8, 214.0, 94.9}});
  rows.push_back({"FP32 epitome", PrecisionPlan::fp32(), true,
                  {"FP32", "1024x256", 74.00, 5696, 2.30, 167.7, 194.8,
                   96.7}});
  rows.push_back({"W9A9", PrecisionPlan::uniform(9, 9), true,
                  {"W9A9", "1024x256", 73.98, 1424, 9.21, 50.9, 17.0, 96.7}});
  rows.push_back({"W7A9", PrecisionPlan::uniform(7, 9), true,
                  {"W7A9", "1024x256", 73.81, 1076, 12.19, 45.2, 20.5,
                   93.2}});
  rows.push_back({"W5A9", PrecisionPlan::uniform(5, 9), true,
                  {"W5A9", "1024x256", 73.59, 720, 18.12, 39.9, 13.7, 93.2}});
  // W3mp: HAWQ-lite mixed precision between 3 and 5 bits.
  rows.push_back({"W3mpA9 (HAWQ-lite)", PrecisionPlan::hawq_mixed(), true,
                  {"W3mpA9", "1024x256", 72.98, 618, 21.23, 37.0, 10.2,
                   93.2}});
  rows.push_back({"W3A9", PrecisionPlan::uniform(3, 9), true,
                  {"W3A9", "1024x256", 71.59, 428, 30.65, 36.7, 9.3, 93.2}});
  return rows;
}

std::vector<RowSpec> resnet101_rows() {
  std::vector<RowSpec> rows;
  rows.push_back({"FP32 conv", PrecisionPlan::fp32(), false,
                  {"FP32", "-", 78.77, 22912, 1.00, 189.7, 385.7, 94.7}});
  rows.push_back({"FP32 epitome", PrecisionPlan::fp32(), true,
                  {"FP32", "1024x256", 76.56, 10592, 2.16, 263.7, 364.8,
                   98.2}});
  rows.push_back({"W9A9", PrecisionPlan::uniform(9, 9), true,
                  {"W9A9", "1024x256", 76.52, 2648, 8.65, 75.8, 32.2, 98.2}});
  rows.push_back({"W7A9", PrecisionPlan::uniform(7, 9), true,
                  {"W7A9", "1024x256", 76.48, 1994, 11.49, 73.7, 39.5,
                   98.2}});
  rows.push_back({"W5A9", PrecisionPlan::uniform(5, 9), true,
                  {"W5A9", "1024x256", 75.68, 1584, 14.46, 72.1, 29.2,
                   98.2}});
  rows.push_back({"W3mpA9 (HAWQ-lite)", PrecisionPlan::hawq_mixed(), true,
                  {"W3mpA9", "1024x256", 75.80, 1052, 21.78, 65.5, 18.6,
                   98.2}});
  rows.push_back({"W3A9", PrecisionPlan::uniform(3, 9), true,
                  {"W3A9", "1024x256", 74.98, 734, 31.22, 63.4, 17.0,
                   98.2}});
  return rows;
}

}  // namespace
}  // namespace epim

int main() {
  using namespace epim;
  std::printf("acc%%* = projected accuracy (anchored on the paper's FP32 "
              "points; see EXPERIMENTS.md)\n\n");
  run_model("ResNet-50", resnet50(), AccuracyAnchors::resnet50(),
            resnet50_rows(), /*opt_rows=*/true);
  run_model("ResNet-101", resnet101(), AccuracyAnchors::resnet101(),
            resnet101_rows(), /*opt_rows=*/false);
  return 0;
}
