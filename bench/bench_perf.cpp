// Fixed-workload performance suite -- the tracked perf trajectory.
//
// Runs a pinned set of hot-path workloads (crossbar MVM in every kernel
// regime, a seed-layout reference MVM for the speedup ratio, on-chip
// runtime evaluation and evolution search at 1/2/4 threads, float conv2d)
// and writes one JSON record per workload:
//
//   { "op": ..., "threads": N, "wall_ms": per-op, "items_per_sec": ...,
//     "items_per_op": ... }
//
// Every PR appends its BENCH_<pr>.json to the repo, so regressions are
// visible in review. Needs no external dependency (unlike bench_micro's
// google-benchmark): this binary is the CI smoke test.
//
// Usage: bench_perf [output.json] [--commit=HASH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/conv_exec.hpp"
#include "nn/resnet.hpp"
#include "pim/crossbar.hpp"
#include "pim/estimator.hpp"
#include "runtime/pim_runtime.hpp"
#include "search/evolution.hpp"
#include "telemetry/telemetry.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

struct Record {
  std::string op;
  int threads = 1;
  double wall_ms = 0.0;        ///< per operation
  double items_per_sec = 0.0;
  double items_per_op = 0.0;
};

/// Time fn (called repeatedly) until `min_ms` of wall clock accumulates;
/// returns milliseconds per call. One untimed warmup call first.
template <typename Fn>
double measure_ms(Fn&& fn, double min_ms = 200.0) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  std::int64_t iters = 0;
  const auto start = clock::now();
  double elapsed_ms = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(clock::now() -
                                                           start)
                     .count();
  } while (elapsed_ms < min_ms);
  return elapsed_ms / static_cast<double>(iters);
}

Record record(std::string op, int threads, double wall_ms,
              double items_per_op) {
  Record r;
  r.op = std::move(op);
  r.threads = threads;
  r.wall_ms = wall_ms;
  r.items_per_op = items_per_op;
  r.items_per_sec = items_per_op / (wall_ms * 1e-3);
  return r;
}

/// The seed (pre-PR-2) crossbar MVM: nested vector-of-vectors cell store
/// walked bit-serially through double column currents in every mode. Kept
/// here so the tracked JSON always carries the flat-kernel speedup ratio.
struct SeedReferenceMvm {
  std::int64_t rows, cols, slices, offset;
  int adc_bits, cell_bits;
  std::vector<std::vector<std::vector<double>>> cells;

  SeedReferenceMvm(const CrossbarConfig& cfg, int weight_bits,
                   const std::vector<std::vector<int>>& w)
      : rows(static_cast<std::int64_t>(w.size())),
        cols(static_cast<std::int64_t>(w.front().size())),
        slices(cfg.weight_slices(weight_bits)),
        offset(std::int64_t{1} << (weight_bits - 1)),
        adc_bits(cfg.adc_bits),
        cell_bits(cfg.cell_bits) {
    const int radix_mask = (1 << cell_bits) - 1;
    cells.assign(static_cast<std::size_t>(slices),
                 std::vector<std::vector<double>>(
                     static_cast<std::size_t>(rows),
                     std::vector<double>(static_cast<std::size_t>(cols))));
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        std::int64_t stored =
            static_cast<std::int64_t>(
                w[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) +
            offset;
        for (std::int64_t s = 0; s < slices; ++s) {
          cells[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)]
               [static_cast<std::size_t>(c)] =
                   static_cast<double>(stored & radix_mask);
          stored >>= cell_bits;
        }
      }
    }
  }

  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                int act_bits) const {
    const std::int64_t adc_max = (std::int64_t{1} << adc_bits) - 1;
    std::vector<std::int64_t> acc(static_cast<std::size_t>(cols), 0);
    std::vector<double> current(static_cast<std::size_t>(cols));
    std::int64_t input_sum = 0;
    for (int t = 0; t < act_bits; ++t) {
      for (std::int64_t s = 0; s < slices; ++s) {
        const auto& plane = cells[static_cast<std::size_t>(s)];
        std::fill(current.begin(), current.end(), 0.0);
        for (std::int64_t r = 0; r < rows; ++r) {
          if (((input[static_cast<std::size_t>(r)] >> t) & 1u) == 0u) {
            continue;
          }
          const auto& row = plane[static_cast<std::size_t>(r)];
          for (std::int64_t c = 0; c < cols; ++c) {
            current[static_cast<std::size_t>(c)] +=
                row[static_cast<std::size_t>(c)];
          }
        }
        for (std::int64_t c = 0; c < cols; ++c) {
          std::int64_t code = static_cast<std::int64_t>(
              std::llround(current[static_cast<std::size_t>(c)]));
          code = std::clamp<std::int64_t>(code, 0, adc_max);
          acc[static_cast<std::size_t>(c)] +=
              code << (t + static_cast<int>(s) * cell_bits);
        }
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      input_sum += input[static_cast<std::size_t>(r)];
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      acc[static_cast<std::size_t>(c)] -= offset * input_sum;
    }
    return acc;
  }
};

std::vector<Record> run_suite() {
  std::vector<Record> records;
  Rng rng(42);
  const std::int64_t rows = 128, cols = 16;
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols)));
  for (auto& r : w) {
    for (auto& v : r) v = rng.uniform_int(-128, 127);
  }
  std::vector<std::uint32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 511));
  const double mvm_items = static_cast<double>(rows * cols);

  set_num_threads(1);

  // One row_enable mask shared by the timed lambdas: allocations must not
  // leak into the measured kernel.
  const std::vector<bool> all_rows(x.size(), true);
  {
    CrossbarConfig cfg;
    cfg.adc_bits = 12;
    const CrossbarArray xbar(cfg, 9, w);  // ideal + wide ADC: direct path
    std::vector<std::int64_t> acc;
    records.push_back(record(
        "mvm_flat_ideal", 1,
        measure_ms([&] { xbar.mvm(x, all_rows, 9, acc, nullptr); }),
        mvm_items));
  }
  {
    CrossbarConfig cfg;
    cfg.adc_bits = 8;  // starved: ideal integer bit-serial path
    const CrossbarArray xbar(cfg, 9, w);
    std::vector<std::int64_t> acc;
    records.push_back(record(
        "mvm_flat_serial", 1,
        measure_ms([&] { xbar.mvm(x, all_rows, 9, acc, nullptr); }),
        mvm_items));
  }
  {
    CrossbarConfig cfg;
    cfg.adc_bits = 12;
    NonIdealityConfig ni;
    ni.conductance_sigma = 0.1;
    const CrossbarArray xbar(cfg, 9, w, ni);  // analog path
    std::vector<std::int64_t> acc;
    records.push_back(record(
        "mvm_flat_analog", 1,
        measure_ms([&] { xbar.mvm(x, all_rows, 9, acc, nullptr); }),
        mvm_items));
  }
  {
    CrossbarConfig cfg;
    cfg.adc_bits = 12;
    const SeedReferenceMvm seed(cfg, 9, w);
    records.push_back(record(
        "mvm_seed_reference", 1,
        measure_ms([&] {
          volatile std::int64_t sink = seed.mvm(x, 9).back();
          (void)sink;
        }),
        mvm_items));
  }

  // Float reference conv2d (im2col + fused-transpose matmul).
  {
    Rng crng(7);
    Tensor img({32, 16, 16});
    Tensor weight({64, 32, 3, 3});
    crng.fill_normal(img.data(), static_cast<std::size_t>(img.numel()), 0.0f,
                     1.0f);
    crng.fill_normal(weight.data(),
                     static_cast<std::size_t>(weight.numel()), 0.0f, 0.1f);
    const double macs = 64.0 * 32 * 3 * 3 * 16 * 16;
    for (int threads : {1, 4}) {
      set_num_threads(threads);
      records.push_back(record(
          "conv2d_float", threads,
          measure_ms([&] {
            volatile float sink = conv2d(img, weight, 1, 1).at(0);
            (void)sink;
          }),
          macs));
    }
    set_num_threads(1);
  }

  // On-chip runtime evaluation (the deployment hot loop).
  {
    SyntheticSpec dspec;
    dspec.num_classes = 4;
    dspec.train_per_class = 12;
    dspec.test_per_class = 16;
    SyntheticData data = make_synthetic_data(dspec);
    SmallNetConfig nc;
    nc.num_classes = 4;
    SmallEpitomeNet net(nc);
    TrainConfig tcfg;
    tcfg.epochs = 2;  // throughput workload; accuracy irrelevant
    train_model(net, data, tcfg);
    RuntimeConfig rcfg;
    rcfg.crossbar.adc_bits = 12;
    PimNetworkRuntime runtime(net, data.train, rcfg);
    const double images = static_cast<double>(data.test.size());
    for (int threads : {1, 2, 4}) {
      set_num_threads(threads);
      records.push_back(record(
          "runtime_evaluate", threads,
          measure_ms([&] { runtime.evaluate(data.test); }, 400.0), images));
    }
    set_num_threads(1);
  }

  // Evolution search (candidate scoring fan-out).
  {
    const Network net = mini_resnet();
    PimEstimator est(CrossbarConfig{}, HardwareLut{});
    EvoSearchConfig cfg;
    cfg.population = 16;
    cfg.parents = 4;
    cfg.iterations = 4;
    cfg.crossbar_budget = 400;
    const double evals = static_cast<double>(cfg.population) * cfg.iterations;
    for (int threads : {1, 4}) {
      set_num_threads(threads);
      records.push_back(record(
          "evolution_search", threads,
          measure_ms([&] { EvolutionSearch(net, est, cfg).run(); }, 400.0),
          evals));
    }
    set_num_threads(1);
  }

  return records;
}

void write_json(const std::vector<Record>& records, const std::string& path,
                const std::string& commit) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"epim-bench-v1\",\n");
  std::fprintf(f, "  \"commit\": \"%s\",\n", commit.c_str());
  // Build context: a lockdep/sanitizer build is not comparable with the
  // committed Release trajectory, so rows carry their flavor.
  std::fprintf(f, "  \"build_flavor\": \"%s\",\n", build_flavor());
  std::fprintf(f, "  \"lock_debug\": %s,\n",
               debug::kLockDebugEnabled ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"wall_ms\": %.4f, "
                 "\"items_per_sec\": %.1f, \"items_per_op\": %.0f}%s\n",
                 r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec,
                 r.items_per_op, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace epim

int main(int argc, char** argv) {
  std::string out = "BENCH.json";
  std::string commit = "unknown";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--commit=", 9) == 0) {
      commit = argv[i] + 9;
    } else {
      out = argv[i];
    }
  }
  const auto records = epim::run_suite();
  for (const auto& r : records) {
    std::printf("%-20s threads=%d  %10.4f ms/op  %12.1f items/s\n",
                r.op.c_str(), r.threads, r.wall_ms, r.items_per_sec);
  }
  // Pool telemetry the suite accumulated (every parallel region above is a
  // pool job): what a fleet scrape of this process would report.
  {
    namespace tm = epim::telemetry;
    tm::Registry& reg = tm::Registry::process();
    std::printf(
        "telemetry: pool_jobs=%lld pool_queue_depth_high_water=%lld\n",
        static_cast<long long>(reg.counter("epim_pool_jobs_total")->value()),
        static_cast<long long>(
            reg.gauge("epim_pool_queue_depth")->high_water()));
  }
  epim::write_json(records, out, commit);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
