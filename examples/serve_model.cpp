// Serving workflow: train -> deploy -> save artifact -> load -> serve.
//
//  1. Train the small epitome CNN on synthetic data and deploy it onto the
//     simulated chip through the Pipeline façade.
//  2. Persist the deployed model as a `.epim` artifact -- the durable,
//     process-independent unit a serving fleet would distribute.
//  3. Load the artifact back (as another process would) and stand up an
//     InferenceService with dynamic batching in front of it.
//  4. Push traffic through the service, verify the answers are bit-identical
//     to direct on-chip evaluation, and print the throughput/latency stats.
//
// Build & run:   ./build/examples/serve_model
#include <cstdio>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace epim;

  // 1. Train + deploy.
  SyntheticSpec dspec;
  dspec.num_classes = 5;
  dspec.train_per_class = 20;
  dspec.test_per_class = 16;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 5;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  const TrainResult trained = train_model(net, data, tcfg);
  std::printf("trained model:  %.1f%% test accuracy (float)\n",
              100.0 * trained.test_accuracy);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(8, 10);
  cfg.serve.max_batch = 16;
  cfg.serve.flush_deadline_ms = 1.0;
  cfg.serve.workers = 2;  // two batches in flight: formation overlaps compute
  Pipeline pipeline(cfg);
  DeployedModel chip = pipeline.deploy(net, data.train);
  const double direct_acc = chip.evaluate(data.test);
  std::printf("deployed chip:  %.1f%% test accuracy, %lld crossbars\n",
              100.0 * direct_acc,
              static_cast<long long>(chip.total_crossbars()));

  // 2. Persist. The artifact carries the quantized weights, folded
  //    BatchNorms, calibrated activation quantizers and the full
  //    RuntimeConfig -- everything a serving process needs.
  const std::string path = "serve_model_demo.epim";
  chip.save(path);
  const artifact::Info info = artifact::probe(path);
  std::printf("saved artifact: %s (schema v%u, kind %u)\n", path.c_str(),
              info.version, static_cast<unsigned>(info.kind));

  // 3. Load it back and start a batched service (the chip re-programs
  //    deterministically, so this "process" answers bit-identically).
  InferenceService service =
      std::move(Pipeline::load_deployed(path)).serve(cfg.serve);

  // 4. Traffic: submit the whole test set in bursts, then spot-check the
  //    results against the direct runtime.
  std::vector<std::future<InferenceResult>> pending;
  for (std::int64_t i = 0; i < data.test.size(); ++i) {
    pending.push_back(service.submit(data.test.sample(i)));
  }
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < data.test.size(); ++i) {
    const InferenceResult r = pending[static_cast<std::size_t>(i)].get();
    correct += r.predicted == data.test.labels[static_cast<std::size_t>(i)];
  }
  const double served_acc =
      static_cast<double>(correct) / static_cast<double>(data.test.size());
  std::printf("served:         %.1f%% test accuracy -- %s direct\n",
              100.0 * served_acc,
              served_acc == direct_acc ? "bit-identical to" : "DIFFERS from");

  const ServiceStats stats = service.stats();
  std::printf("service stats:  %lld requests in %lld batches (mean %.1f), "
              "%.0f items/s, p50 %.2f ms, p99 %.2f ms, %lld clip events\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches), stats.mean_batch_size,
              stats.items_per_sec, stats.p50_latency_ms, stats.p99_latency_ms,
              static_cast<long long>(stats.clip_events));
  std::remove(path.c_str());
  return served_acc == direct_acc ? 0 : 1;
}
