// Software-stack scenario: train an epitome CNN from scratch (training
// *through* the epitome reconstruction, gradients folded back onto the
// shared cells), then post-training-quantize it with the paper's
// epitome-aware schemes -- each scheme expressed as a Pipeline quant config
// -- and compare real measured accuracy.
//
// Build & run:   ./build/examples/train_and_quantize
#include <cstdio>

#include "common/table.hpp"
#include "pipeline/pipeline.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace epim;

  // Synthetic 8-class dataset (the repo's ImageNet proxy; see DESIGN.md).
  SyntheticSpec dspec;
  dspec.num_classes = 8;
  dspec.train_per_class = 32;
  dspec.test_per_class = 16;
  dspec.noise = 0.5f;
  const SyntheticData data = make_synthetic_data(dspec);
  std::printf("dataset: %lld train / %lld test samples, %d classes\n",
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.test.size()), data.num_classes);

  // Two models: epitome-compressed and plain convolution.
  SmallNetConfig epim_cfg;
  epim_cfg.num_classes = 8;
  epim_cfg.use_epitome = true;
  SmallNetConfig conv_cfg = epim_cfg;
  conv_cfg.use_epitome = false;
  SmallEpitomeNet epim_net(epim_cfg);
  SmallEpitomeNet conv_net(conv_cfg);
  std::printf("epitome model: %lld weights; conv model: %lld weights "
              "(%.2fx compression)\n\n",
              static_cast<long long>(epim_net.weight_parameters()),
              static_cast<long long>(conv_net.weight_parameters()),
              static_cast<double>(conv_net.weight_parameters()) /
                  static_cast<double>(epim_net.weight_parameters()));

  TrainConfig tcfg;
  tcfg.epochs = 10;
  std::printf("training the epitome model...\n");
  const TrainResult epim_result = train_model(epim_net, data, tcfg);
  std::printf("training the conv model...\n");
  const TrainResult conv_result = train_model(conv_net, data, tcfg);
  std::printf("fp32 test accuracy: epitome %.3f vs conv %.3f (loss from "
              "compression: %.3f)\n\n",
              epim_result.test_accuracy, conv_result.test_accuracy,
              conv_result.test_accuracy - epim_result.test_accuracy);

  // Post-training quantization of the epitome model, each point one
  // pipeline configuration.
  TextTable table({"bits", "scheme", "test acc", "weighted MSE"});
  for (const int bits : {2, 3, 4, 6}) {
    for (const auto scheme :
         {RangeScheme::kMinMax, RangeScheme::kPerCrossbar,
          RangeScheme::kOverlapWeighted}) {
      PipelineConfig cfg;
      cfg.quant.bits = bits;
      cfg.quant.scheme = scheme;
      cfg.quant.xbar_rows = 64;
      cfg.quant.xbar_cols = 16;
      const auto r = Pipeline(cfg).evaluate_quantized(epim_net, data.test);
      table.add_row({std::to_string(bits), range_scheme_name(scheme),
                     fmt(r.accuracy, 3), fmt(r.weighted_mse, 6)});
    }
  }
  std::printf("post-training quantization of the epitome model:\n%s",
              table.to_string().c_str());
  std::printf("\nexpected trend (paper Table 2): per-crossbar scaling and "
              "overlap-weighted ranges\nreduce the repetition-weighted "
              "quantization error at every bitwidth.\n");
  return 0;
}
