// End-to-end deployment scenario: fit ResNet-50 onto a crossbar-constrained
// PIM accelerator with the full EPIM recipe -- uniform epitomes, channel
// wrapping, and HAWQ-lite mixed 3/5-bit quantization -- and print the
// deployment report a hardware team would review.
//
// Everything goes through the epim::Pipeline façade: one config aggregate,
// one compile() call, one estimate() per configuration.
//
// Build & run:   ./build/examples/deploy_resnet50
#include <cstdio>

#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "pipeline/pipeline.hpp"

int main() {
  using namespace epim;
  const Network net = resnet50();

  std::printf("deploying %s (%lld weighted layers, %.1fM weights)\n\n",
              net.name().c_str(),
              static_cast<long long>(net.weighted_layers().size()),
              static_cast<double>(net.total_weights()) / 1e6);

  // Step 1: baseline -- does the FP32 convolution model even fit?
  PipelineConfig base_cfg;
  base_cfg.design.policy = DesignPolicy::kBaseline;
  base_cfg.precision = PrecisionPlan::fp32();
  const auto baseline = Pipeline(base_cfg).compile(net).estimate();
  std::printf("step 1  FP32 convolution baseline needs %lld crossbars\n",
              static_cast<long long>(baseline.cost.num_crossbars));

  // Step 2+3: the EPIM deployment pipeline -- 1024x256 epitomes with channel
  // wrapping, HAWQ-lite mixed precision under a crossbar budget.
  PipelineConfig cfg;
  cfg.design.wrap_output = true;
  cfg.precision = PrecisionPlan::hawq_mixed([] {
    MixedPrecisionConfig mp;
    mp.budget_fraction = 0.45;
    return mp;
  }());
  Pipeline pipeline(cfg);
  const CompiledModel model = pipeline.compile(net);

  std::printf("step 2  epitome designer compressed %lld / %lld layers "
              "(parameter compression %.2fx)\n",
              static_cast<long long>(model.assignment().num_epitome_layers()),
              static_cast<long long>(model.assignment().num_layers()),
              model.assignment().parameter_compression());

  const auto& alloc = model.mixed_precision().value();
  std::int64_t high = 0;
  for (const int b : alloc.precision.weight_bits) {
    high += b == cfg.precision.mixed.high_bits ? 1 : 0;
  }
  std::printf("step 3  HAWQ-lite kept %lld sensitive layers at %d bits, "
              "the rest at %d bits (budget %lld crossbars)\n",
              static_cast<long long>(high), cfg.precision.mixed.high_bits,
              cfg.precision.mixed.low_bits,
              static_cast<long long>(alloc.budget_crossbars));
  std::printf("        most sensitive layers: ");
  for (int i = 0; i < 3; ++i) {
    std::printf("%s%s",
                model.assignment()
                    .layers()[static_cast<std::size_t>(
                        alloc.ranking[static_cast<std::size_t>(i)].layer)]
                    .name.c_str(),
                i < 2 ? ", " : "\n");
  }

  // Step 4: the deployment report.
  const auto& deployed = model.estimate();
  TextTable report({"metric", "FP32 conv baseline", "EPIM deployment"});
  report.add_row({"crossbars",
                  std::to_string(baseline.cost.num_crossbars),
                  std::to_string(deployed.cost.num_crossbars)});
  report.add_row({"crossbar compression", "1.00x",
                  fmt(static_cast<double>(baseline.cost.num_crossbars) /
                      static_cast<double>(deployed.cost.num_crossbars)) +
                      "x"});
  report.add_row({"latency (ms)", fmt(baseline.cost.latency_ms, 1),
                  fmt(deployed.cost.latency_ms, 1)});
  report.add_row({"energy (mJ)", fmt(baseline.cost.energy_mj(), 1),
                  fmt(deployed.cost.energy_mj(), 1)});
  report.add_row({"memristor utilization",
                  fmt(100 * baseline.cost.utilization, 1) + "%",
                  fmt(100 * deployed.cost.utilization, 1) + "%"});
  report.add_row({"top-1 accuracy (projected)",
                  fmt(baseline.projected_accuracy),
                  fmt(deployed.projected_accuracy)});
  std::printf("\nstep 4  deployment report\n%s", report.to_string().c_str());

  // The same facts, straight from the façade's own reporter.
  std::printf("\n%s", model.summary().c_str());
  return 0;
}
