// Model-zoo workflow: many deployments behind one admission-controlled
// front door.
//
//  1. Train once, deploy three variants (different precisions -- the same
//     chip family at different design points) and persist each as a `.epim`
//     artifact.
//  2. Register all three in a ModelRegistry under `zoo@v1/v2/v3` with a
//     resident budget of 2: the registry materializes services lazily and
//     LRU-evicts past the budget, so the fleet never holds more than two
//     programmed chips at once.
//  3. Route production traffic through a Router: `zoo@prod` (alias -> v1),
//     then a 90/10 canary split between v1 and v2.
//  4. Promote the canary to 100% and hot-reload v1 from a fresh artifact
//     while traffic keeps flowing -- in-flight requests drain on the old
//     weights, new requests see the new ones.
//  5. Print the fleet snapshot: per-model and fleet items/s, p50/p99,
//     rejects, evictions.
//
// Build & run:   ./build/examples/model_zoo
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

namespace {

void print_snapshot(const epim::ModelRegistry& registry, const char* title) {
  const epim::RegistrySnapshot s = registry.stats();
  std::printf("%s\n", title);
  for (const epim::ModelSnapshot& m : s.models) {
    std::printf("  %s@%-3s %-8s %6lld reqs  %8.0f items/s  p50 %.2f ms  "
                "p99 %.2f ms  %lld rejected  %lld evictions\n",
                m.name.c_str(), m.version.c_str(),
                m.resident ? "resident" : "cold",
                static_cast<long long>(m.stats.requests),
                m.stats.items_per_sec, m.stats.p50_latency_ms,
                m.stats.p99_latency_ms,
                static_cast<long long>(m.stats.rejected),
                static_cast<long long>(m.evictions));
  }
  std::printf("  fleet: %d resident, %lld reqs, %.0f items/s, p50 %.2f ms, "
              "p99 %.2f ms, %lld rejected, %lld evictions\n",
              s.resident, static_cast<long long>(s.requests), s.items_per_sec,
              s.p50_latency_ms, s.p99_latency_ms,
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.evictions));
}

}  // namespace

int main() {
  using namespace epim;

  // 1. Train one small epitome CNN; deploy it at three design points.
  SyntheticSpec dspec;
  dspec.num_classes = 5;
  dspec.train_per_class = 20;
  dspec.test_per_class = 16;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 5;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  train_model(net, data, tcfg);

  const std::vector<std::pair<int, int>> designs = {{8, 10}, {6, 8}, {4, 6}};
  std::vector<std::string> paths;
  for (std::size_t v = 0; v < designs.size(); ++v) {
    PipelineConfig cfg;
    cfg.precision =
        PrecisionPlan::uniform(designs[v].first, designs[v].second);
    const std::string path = "model_zoo_v" + std::to_string(v + 1) + ".epim";
    Pipeline(cfg).deploy(net, data.train).save(path);
    paths.push_back(path);
    std::printf("saved W%dA%d variant -> %s\n", designs[v].first,
                designs[v].second, path.c_str());
  }

  // 2. Registry: three versions, budget two -- lazy + LRU.
  RegistryConfig rcfg;
  rcfg.max_resident_models = 2;
  rcfg.serve.max_batch = 16;
  rcfg.serve.flush_deadline_ms = 1.0;
  ModelRegistry registry(rcfg);
  registry.register_artifact("zoo", "v1", paths[0]);
  registry.register_artifact("zoo", "v2", paths[1]);
  registry.register_artifact("zoo", "v3", paths[2]);
  registry.set_alias("zoo", "prod", "v1");
  Router router(registry, /*seed=*/0xD1CEu);

  const auto push = [&](const std::string& target, int requests) {
    std::vector<std::future<InferenceResult>> pending;
    for (int i = 0; i < requests; ++i) {
      pending.push_back(router.submit(
          target, data.test.sample(i % data.test.size())));
    }
    std::int64_t correct = 0;
    for (int i = 0; i < requests; ++i) {
      correct += pending[static_cast<std::size_t>(i)].get().predicted ==
                 data.test.labels[static_cast<std::size_t>(
                     i % data.test.size())];
    }
    return static_cast<double>(correct) / requests;
  };

  // 3. Production traffic on the alias, then a 90/10 canary on v2.
  std::printf("\nphase 1: 100%% of traffic to zoo@prod (alias -> v1)\n");
  std::printf("  accuracy %.1f%%\n", 100.0 * push("zoo@prod", 64));
  std::printf("phase 2: canary split 90%% v1 / 10%% v2 on bare 'zoo'\n");
  registry.set_split("zoo", {{"v1", 0.9}, {"v2", 0.1}});
  std::printf("  accuracy %.1f%%\n", 100.0 * push("zoo", 64));
  print_snapshot(registry, "after canary phase:");

  // 4. Promote the canary to 100%, repoint prod, and hot-swap v1's
  //    artifact underneath live traffic (v3's weights stand in for a
  //    "newly searched design").
  std::printf("\nphase 3: canary promoted to 100%%, v1 hot-reloaded\n");
  registry.set_split("zoo", {{"v2", 1.0}});
  registry.set_alias("zoo", "prod", "v2");
  registry.reload("zoo", "v1", paths[2]);
  std::printf("  accuracy %.1f%% (all on v2)\n", 100.0 * push("zoo", 64));
  std::printf("  accuracy %.1f%% (reloaded v1 now serves v3 weights)\n",
              100.0 * push("zoo@v1", 32));
  std::printf("phase 4: a burst on cold zoo@v3 -- the budget of 2 evicts "
              "the LRU resident\n");
  std::printf("  accuracy %.1f%%\n", 100.0 * push("zoo@v3", 32));

  // 5. The fleet after churn: at most two residents ever, evictions where
  //    the budget bit, all history retained.
  print_snapshot(registry, "\nfinal fleet snapshot:");

  for (const std::string& path : paths) std::remove(path.c_str());
  return 0;
}
