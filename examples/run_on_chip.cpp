// Full-stack scenario: train an epitome CNN, deploy it onto the simulated
// PIM chip through the Pipeline façade (real quantized weights programmed
// into bit-sliced crossbars, IFAT/IFRT/OFAT execution), and measure the
// accuracy the chip delivers -- including under memristor write variation
// and hard faults.
//
// Build & run:   ./build/examples/run_on_chip
#include <cstdio>

#include "common/table.hpp"
#include "pipeline/pipeline.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace epim;

  // 1. Train.
  SyntheticSpec dspec;
  dspec.num_classes = 8;
  dspec.train_per_class = 20;
  dspec.test_per_class = 12;
  dspec.noise = 0.55f;
  dspec.max_shift = 3;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 8;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 8;
  std::printf("training the epitome CNN...\n");
  const TrainResult trained = train_model(net, data, tcfg);
  std::printf("float model test accuracy: %.3f\n\n", trained.test_accuracy);

  // 2. Deploy at several precisions on a clean chip. The pipeline derives
  // the RuntimeConfig (12-bit deployment ADC, calibration on data.train).
  std::printf("deploying onto the simulated chip (128x128 crossbars, 2-bit "
              "cells, bit-serial inputs)...\n");
  TextTable precisions({"weights", "acts", "crossbars", "chip accuracy",
                        "float accuracy"});
  for (const auto& [wb, ab] : {std::pair{8, 10}, {6, 8}, {4, 6}, {3, 4}}) {
    PipelineConfig cfg;
    cfg.deploy.weight_bits = wb;
    cfg.deploy.act_bits = ab;
    DeployedModel chip = Pipeline(cfg).deploy(net, data.train);
    precisions.add_row({"W" + std::to_string(wb), "A" + std::to_string(ab),
                        std::to_string(chip.total_crossbars()),
                        fmt(chip.evaluate(data.test), 3),
                        fmt(trained.test_accuracy, 3)});
  }
  std::printf("%s\n", precisions.to_string().c_str());

  // 3. Device non-idealities at W6A8.
  std::printf("device variation at W6A8 (write-noise sigma in conductance "
              "levels, stuck-at-fault rates):\n");
  TextTable faults({"sigma", "stuck@0", "stuck@max", "chip accuracy"});
  const struct {
    double sigma, s0, s1;
  } grid[] = {{0.0, 0.0, 0.0}, {0.2, 0.0, 0.0}, {0.5, 0.0, 0.0},
              {0.0, 0.02, 0.0}, {0.0, 0.0, 0.01}, {0.5, 0.02, 0.01}};
  for (const auto& g : grid) {
    PipelineConfig cfg;
    cfg.deploy.weight_bits = 6;
    cfg.deploy.act_bits = 8;
    cfg.deploy.non_ideal.conductance_sigma = g.sigma;
    cfg.deploy.non_ideal.stuck_at_zero_prob = g.s0;
    cfg.deploy.non_ideal.stuck_at_max_prob = g.s1;
    DeployedModel chip = Pipeline(cfg).deploy(net, data.train);
    faults.add_row({fmt(g.sigma, 1), fmt(g.s0, 2), fmt(g.s1, 2),
                    fmt(chip.evaluate(data.test), 3)});
  }
  std::printf("%s", faults.to_string().c_str());
  std::printf("\nevery multiply-accumulate above went through the bit-sliced "
              "crossbar model;\nthe accuracy column is what the simulated "
              "chip actually delivers.\n");
  return 0;
}
