// Design-space exploration scenario: a hardware architect has a fixed
// crossbar budget and wants the fastest layer-wise epitome design for
// ResNet-50 (paper Sec. 5.2, Algorithm 1). Compiles the uniform design with
// the Pipeline façade, then refines it in place with CompiledModel::search()
// and prints the convergence curve plus the per-stage structure of the
// winning design.
//
// Build & run:   ./build/examples/design_space_exploration
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "nn/resnet.hpp"
#include "pipeline/pipeline.hpp"

int main() {
  using namespace epim;
  const Network net = resnet50();

  // The uniform 1024x256 design at W9A9 (the pipeline's defaults).
  PipelineConfig cfg;
  const auto uniform_cost = Pipeline(cfg).compile(net).estimate().cost;

  // The budget: 60% of what the uniform design uses.
  const std::int64_t budget = uniform_cost.num_crossbars * 6 / 10;
  std::printf("uniform 1024x256 design: %lld crossbars, %.1f ms, %.1f mJ\n",
              static_cast<long long>(uniform_cost.num_crossbars),
              uniform_cost.latency_ms, uniform_cost.energy_mj());
  std::printf("crossbar budget for the search: %lld\n\n",
              static_cast<long long>(budget));

  cfg.search.enabled = true;
  cfg.search.evo.population = 40;
  cfg.search.evo.iterations = 25;
  cfg.search.evo.parents = 10;
  cfg.search.evo.crossbar_budget = budget;
  cfg.search.evo.candidates.wrap_output = true;  // EPIM-Opt style
  cfg.search.evo.objective = SearchObjective::kLatency;

  CompiledModel model = Pipeline(cfg).compile(net);
  const EvoSearchResult result = model.search();

  std::printf("search space: %.3g layer-wise combinations (paper: 2.07e7 "
              "for its candidate family)\n",
              result.search_space_size);
  std::printf("evaluated %lld candidates; best latency %.1f ms with %lld "
              "crossbars (uniform: %.1f ms)\n\n",
              static_cast<long long>(result.evaluations),
              result.best_cost.latency_ms,
              static_cast<long long>(result.best_cost.num_crossbars),
              uniform_cost.latency_ms);

  std::printf("convergence (best latency by iteration):\n  ");
  for (std::size_t i = 0; i < result.reward_history.size(); i += 4) {
    std::printf("it%02zu %.1fms  ", i, 1.0 / result.reward_history[i]);
  }
  std::printf("\n\n");

  // Summarize the winning design per ResNet stage: how many layers keep
  // their convolution, and the epitome row-size histogram. The refined
  // assignment now lives inside the compiled model.
  std::map<std::string, std::map<std::string, int>> stage_summary;
  const NetworkAssignment& best = model.assignment();
  for (std::int64_t i = 0; i < best.num_layers(); ++i) {
    const std::string& name = best.layers()[static_cast<std::size_t>(i)].name;
    const std::string stage = name.substr(0, name.find('.'));
    const auto& choice = best.choice(i);
    stage_summary[stage][choice.has_value()
                             ? std::to_string(choice->rows()) + "x" +
                                   std::to_string(choice->cout_e)
                             : "conv"]++;
  }
  TextTable table({"stage", "designs chosen by the search"});
  for (const auto& [stage, counts] : stage_summary) {
    std::string designs;
    for (const auto& [design, count] : counts) {
      designs += design + " x" + std::to_string(count) + "  ";
    }
    table.add_row({stage, designs});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nreading the table: the search keeps cheap early layers as "
              "plain convolutions\nand compresses the parameter-heavy late "
              "stages hardest -- the paper's layer-wise insight.\n");
  return 0;
}
