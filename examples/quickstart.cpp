// Quickstart: the EPIM workflow on a single convolution layer, driven
// through the epim::Pipeline façade.
//
//  1. Describe a one-layer network and let the pipeline compile an epitome
//     design for it.
//  2. Look at the sampling plan (how the crossbars will be activated).
//  3. Run the layer through the IFAT/IFRT/OFAT datapath, check it equals the
//     reference convolution, and confirm the pipeline's two evaluation
//     backends agree on the activity counts.
//  4. Compare hardware cost (crossbars / latency / energy) of the
//     convolution vs the epitome on the behaviour-level PIM model.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "datapath/datapath_sim.hpp"
#include "nn/conv_exec.hpp"
#include "pipeline/pipeline.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace epim;
  Rng rng(2024);

  // A stage-3-style ResNet layer: 256 -> 256 channels, 3x3, on a 14x14 map.
  const ConvLayerInfo layer{"demo.conv",
                            ConvSpec{256, 256, 3, 3, 1, 1}, 14, 14};
  Network net("demo");
  net.add_conv(layer);
  std::printf("layer: %s\n", layer.to_string().c_str());
  std::printf("conv weights: %lld params, unrolled %lld x %lld\n\n",
              static_cast<long long>(layer.conv.weight_count()),
              static_cast<long long>(layer.conv.unrolled_rows()),
              static_cast<long long>(layer.conv.unrolled_cols()));

  // 1. Compile with the paper's uniform 1024x256 policy (the default).
  Pipeline pipeline{PipelineConfig{}};
  const CompiledModel model = pipeline.compile(net);
  const auto& spec = model.assignment().choice(0);
  if (!spec.has_value()) {
    std::printf("layer too small to benefit from an epitome\n");
    return 0;
  }
  std::printf("epitome: %s, %lld params (%.2fx compression)\n",
              spec->to_string().c_str(),
              static_cast<long long>(spec->weight_count()),
              static_cast<double>(layer.conv.weight_count()) /
                  static_cast<double>(spec->weight_count()));

  // 2. The sampling plan: each patch is one crossbar activation round.
  Epitome epitome = Epitome::random(*spec, layer.conv, rng);
  const SamplePlan& plan = epitome.plan();
  std::printf("sampling plan: %lld patches (%lld input groups x %lld output "
              "groups), %lld crossbar rounds per output position\n\n",
              static_cast<long long>(plan.total_patches()),
              static_cast<long long>(plan.num_in_groups()),
              static_cast<long long>(plan.num_out_groups()),
              static_cast<long long>(plan.active_rounds()));

  // 3. Execute through the datapath and verify against the reference conv.
  Tensor x({layer.conv.in_channels, layer.ifm_h, layer.ifm_w});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  DatapathSimulator datapath(layer, epitome);
  const Tensor via_datapath = datapath.run(x);
  const Tensor reference =
      conv2d(x, epitome.reconstruct(), layer.conv.stride, layer.conv.pad);
  std::printf("datapath vs reference conv: max |diff| = %.2e over %lld "
              "outputs\n",
              max_abs_diff(via_datapath, reference),
              static_cast<long long>(reference.numel()));

  // HW/SW agreement: the pipeline's (analytical) backend's activity
  // accounting must match what the functional datapath actually does.
  const DatapathBackend functional(pipeline.config().hardware.crossbar,
                                   pipeline.config().hardware.lut);
  const LayerActivity a = pipeline.backend().layer_activity(layer, *spec, 1);
  const LayerActivity f = functional.layer_activity(layer, *spec, 1);
  std::printf("activity counts, analytical vs functional datapath: "
              "%lld vs %lld crossbar rounds -- %s\n\n",
              static_cast<long long>(a.crossbar_rounds),
              static_cast<long long>(f.crossbar_rounds),
              a == f ? "agree" : "DISAGREE");

  // 4. Hardware cost on the behaviour-level PIM model (W9A9).
  const PimEstimator& estimator = pipeline.estimator();
  const LayerCost conv_cost = estimator.eval_conv_layer(layer, 9, 9);
  const LayerCost epi_cost = estimator.eval_epitome_layer(layer, *spec, 9, 9);
  std::printf("hardware cost @ W9A9 (128x128 crossbars, 2-bit cells):\n");
  std::printf("  convolution: %3lld crossbars, %.3f ms, %.4f mJ dynamic\n",
              static_cast<long long>(conv_cost.mapping.num_crossbars),
              conv_cost.latency_ms, conv_cost.dynamic_energy_mj);
  std::printf("  epitome:     %3lld crossbars, %.3f ms, %.4f mJ dynamic\n",
              static_cast<long long>(epi_cost.mapping.num_crossbars),
              epi_cost.latency_ms, epi_cost.dynamic_energy_mj);
  std::printf("the epitome trades %.1fx fewer crossbars for %.1fx more "
              "rounds -- the EPIM design space.\n",
              static_cast<double>(conv_cost.mapping.num_crossbars) /
                  static_cast<double>(epi_cost.mapping.num_crossbars),
              static_cast<double>(epi_cost.rounds_per_position));
  return 0;
}
