// Tests for the runtime lock-order checker (common/lock_debug.hpp).
//
// The registry is always compiled, so the first half drives it DIRECTLY
// with fake lock addresses: inversions (direct and transitive) fire the
// violation handler with both locks' names, consistent hierarchies stay
// silent, recursive/same-class acquisitions are flagged, try-locks record
// without enforcing. The second half exercises the REAL epim::Mutex hooks
// -- including the registry -> service -> stats chain a live ModelRegistry
// establishes -- and therefore runs only in -DEPIM_LOCK_DEBUG=ON builds
// (the ASan/TSan CI jobs); elsewhere it GTEST_SKIPs.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_debug.hpp"
#include "common/thread_annotations.hpp"
#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

using debug::LockOrderRegistry;

/// Installs a capturing violation handler and clears the acquisition graph
/// around each test, restoring both afterwards. Reports are mutex-guarded
/// (a raw std::mutex -- fine in tests, and pulling in epim::Mutex here
/// would feed the very graph under test): integration tests spawn service
/// workers whose acquisitions run through the registry too.
class LockDebugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockOrderRegistry& reg = LockOrderRegistry::instance();
    reg.reset();
    previous_ = reg.set_violation_handler([this](const std::string& report) {
      std::lock_guard<std::mutex> lock(reports_mu_);
      reports_.push_back(report);
    });
  }

  void TearDown() override {
    LockOrderRegistry& reg = LockOrderRegistry::instance();
    reg.set_violation_handler(std::move(previous_));
    reg.reset();
  }

  std::vector<std::string> reports() {
    std::lock_guard<std::mutex> lock(reports_mu_);
    return reports_;
  }

  std::mutex reports_mu_;
  std::vector<std::string> reports_;
  LockOrderRegistry::ViolationHandler previous_;
};

/// Distinct fake lock instances: the registry only ever compares/stores the
/// addresses, so plain ints serve.
struct FakeLocks {
  int a = 0, b = 0, c = 0;
};

// ---- direct-API tests (run in every build flavor) ----

TEST_F(LockDebugTest, RecordsEdgesAndHeldStack) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  EXPECT_EQ(reg.held_count(), 0u);
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  EXPECT_EQ(reg.held_count(), 2u);
  EXPECT_TRUE(reg.has_edge("A", "B"));
  EXPECT_FALSE(reg.has_edge("B", "A"));
  EXPECT_EQ(reg.edge_count(), 1u);
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
  EXPECT_EQ(reg.held_count(), 0u);
  EXPECT_TRUE(reports().empty());
}

TEST_F(LockDebugTest, InversionReportNamesBothLocks) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  // Establish A -> B, release, then acquire in the reverse order. No actual
  // deadlock interleaving is needed -- exercising the order once suffices.
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
  reg.on_acquire(&fl.b, "B");
  reg.on_acquire(&fl.a, "A");
  reg.on_release(&fl.a);
  reg.on_release(&fl.b);

  const std::vector<std::string> got = reports();
  ASSERT_EQ(got.size(), 1u);
  // The report carries the current stack ("acquiring A while holding B"),
  // the established chain, and the first-recording stack -- both names
  // must be present for the report to be actionable.
  EXPECT_NE(got[0].find("lock-order inversion"), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("acquiring \"A\" while holding [\"B\"]"),
            std::string::npos)
      << got[0];
  EXPECT_NE(got[0].find("\"A\" -> \"B\""), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("acquiring \"B\" while holding [\"A\"]"),
            std::string::npos)
      << got[0];
}

TEST_F(LockDebugTest, InversionIsReportedOncePerEdge) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
  for (int round = 0; round < 3; ++round) {
    reg.on_acquire(&fl.b, "B");
    reg.on_acquire(&fl.a, "A");
    reg.on_release(&fl.a);
    reg.on_release(&fl.b);
  }
  // The bad edge is recorded on first sight, so rounds 2 and 3 see a known
  // edge and stay silent -- one report per distinct bad order, not per hit.
  EXPECT_EQ(reports().size(), 1u);
}

TEST_F(LockDebugTest, TransitiveCycleDetected) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  // A -> B and B -> C established; then C ... A closes the cycle even
  // though A and C were never held together before.
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
  reg.on_acquire(&fl.b, "B");
  reg.on_acquire(&fl.c, "C");
  reg.on_release(&fl.c);
  reg.on_release(&fl.b);
  reg.on_acquire(&fl.c, "C");
  reg.on_acquire(&fl.a, "A");
  reg.on_release(&fl.a);
  reg.on_release(&fl.c);

  const std::vector<std::string> got = reports();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].find("\"A\" -> \"B\" -> \"C\""), std::string::npos)
      << got[0];
  EXPECT_NE(got[0].find("acquiring \"A\" while holding [\"C\"]"),
            std::string::npos)
      << got[0];
}

TEST_F(LockDebugTest, ConsistentHierarchyStaysSilent) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  // Repeated consistent nesting (the registry -> service -> stats shape),
  // plus the skip-level A -> C order, is a DAG: never a report, and each
  // edge is recorded exactly once however often it is re-exercised.
  for (int round = 0; round < 3; ++round) {
    reg.on_acquire(&fl.a, "A");
    reg.on_acquire(&fl.b, "B");
    reg.on_acquire(&fl.c, "C");
    reg.on_release(&fl.c);
    reg.on_release(&fl.b);
    reg.on_release(&fl.a);
    reg.on_acquire(&fl.a, "A");
    reg.on_acquire(&fl.c, "C");
    reg.on_release(&fl.c);
    reg.on_release(&fl.a);
  }
  EXPECT_TRUE(reports().empty());
  EXPECT_TRUE(reg.has_edge("A", "B"));
  EXPECT_TRUE(reg.has_edge("B", "C"));
  EXPECT_TRUE(reg.has_edge("A", "C"));
  EXPECT_EQ(reg.edge_count(), 3u);
}

TEST_F(LockDebugTest, RecursiveAcquisitionReported) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.a, "A");  // same instance: guaranteed self-deadlock
  const std::vector<std::string> got = reports();
  ASSERT_FALSE(got.empty());
  EXPECT_NE(got[0].find("recursive acquisition of \"A\""), std::string::npos)
      << got[0];
  // Held bookkeeping stays balanced even though the handler swallowed the
  // report (the default handler would have aborted).
  EXPECT_EQ(reg.held_count(), 2u);
  reg.on_release(&fl.a);
  reg.on_release(&fl.a);
  EXPECT_EQ(reg.held_count(), 0u);
}

TEST_F(LockDebugTest, SameClassNestingReported) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  // Two INSTANCES of one lock class: the name is the graph node, so nesting
  // them is a self-loop -- the repo has no intra-class hierarchies, and a
  // legitimate one would get distinct names, not a suppression.
  reg.on_acquire(&fl.a, "X");
  reg.on_acquire(&fl.b, "X");
  const std::vector<std::string> got = reports();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].find("\"X\" -> \"X\""), std::string::npos) << got[0];
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
}

TEST_F(LockDebugTest, TryAcquireRecordsWithoutEnforcing) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
  // Inverse order through a successful try-lock: a try-lock would have
  // yielded instead of deadlocking, so the order is recorded as a fact but
  // never reported as a violation.
  reg.on_acquire(&fl.b, "B");
  reg.on_try_acquire(&fl.a, "A");
  reg.on_release(&fl.a);
  reg.on_release(&fl.b);
  EXPECT_TRUE(reports().empty());
  EXPECT_TRUE(reg.has_edge("B", "A"));
}

TEST_F(LockDebugTest, ResetClearsGraphOnly) {
  LockOrderRegistry& reg = LockOrderRegistry::instance();
  FakeLocks fl;
  reg.on_acquire(&fl.a, "A");
  reg.on_acquire(&fl.b, "B");
  reg.reset();
  EXPECT_EQ(reg.edge_count(), 0u);
  EXPECT_FALSE(reg.has_edge("A", "B"));
  // Held stacks survive a reset (they describe live threads, not history).
  EXPECT_EQ(reg.held_count(), 2u);
  reg.on_release(&fl.b);
  reg.on_release(&fl.a);
}

// ---- integration tests (need the Mutex hooks: -DEPIM_LOCK_DEBUG=ON) ----

TEST_F(LockDebugTest, RealMutexInversionDetected) {
  if (!debug::kLockDebugEnabled) {
    GTEST_SKIP() << "built without EPIM_LOCK_DEBUG; Mutex does not feed the "
                    "lockdep registry";
  }
  Mutex a("test::lockdebug::A");
  Mutex b("test::lockdebug::B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // inversion; real deadlock would need a second thread
  }
  const std::vector<std::string> got = reports();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].find("test::lockdebug::A"), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("test::lockdebug::B"), std::string::npos) << got[0];
}

TEST_F(LockDebugTest, RegistryMutexHasNoOutgoingEdges) {
  if (!debug::kLockDebugEnabled) {
    GTEST_SKIP() << "built without EPIM_LOCK_DEBUG; Mutex does not feed the "
                    "lockdep registry";
  }
  // Tiny trained model (smallest synthetic spec that deploys).
  SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_per_class = 6;
  spec.test_per_class = 2;
  SyntheticData data = make_synthetic_data(spec);
  SmallNetConfig nc;
  nc.num_classes = 2;
  SmallEpitomeNet net(nc);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  train_model(net, data, tcfg);

  LockOrderRegistry& reg = LockOrderRegistry::instance();
  RegistryConfig rcfg;
  rcfg.max_resident_models = 1;  // force LRU eviction on the second model
  {
    ModelRegistry registry(rcfg);
    registry.register_model("m", "v1",
                            Pipeline(PipelineConfig{}).deploy(net, data.train));
    registry.register_model("m", "v2",
                            Pipeline(PipelineConfig{}).deploy(net, data.train));
    // Submit to v1 (materializes it), then to v2: materializing v2 exceeds
    // the resident budget of 1, so the registry EVICTS v1 -- draining it
    // via InferenceService::detach()/stats(), which since PR 8 runs with
    // ModelRegistry::mu_ DROPPED (the victim is parked in kDraining).
    registry.submit("m", "v1", data.test.sample(0)).get();
    registry.submit("m", "v2", data.test.sample(0)).get();
    // Exercise the scheduler's full policy surface through the registry:
    // the Scheduler is plain data under InferenceService::mu_, so priority
    // classes, fairness clients, and the per-priority stats fold must add
    // NO lock (and so no edge) to the fleet graph.
    for (int i = 0; i < 6; ++i) {
      SubmitOptions options;
      options.priority = static_cast<Priority>(i % 3);
      options.client_id = "client" + std::to_string(i % 2);
      registry.submit("m", "v2", data.test.sample(0), options).get();
    }
    registry.stats();  // the scrape reads service stats outside mu_ too
  }

  // The PR 8 no-edge invariant, established by real traffic: the registry
  // mutex guards only map lookups and state transitions, so the whole
  // materialize/submit/evict/scrape path acquires NOTHING under it. The
  // only fleet-wide edge left is the service's own mu_ -> stats_mu_.
  EXPECT_FALSE(reg.has_edge("ModelRegistry::mu_", "InferenceService::mu_"));
  EXPECT_FALSE(
      reg.has_edge("ModelRegistry::mu_", "InferenceService::stats_mu_"));
  EXPECT_TRUE(
      reg.has_edge("InferenceService::mu_", "InferenceService::stats_mu_"));
  // And no inversion anywhere in the materialize/submit/evict/teardown path.
  EXPECT_TRUE(reports().empty()) << reports().front();
}

}  // namespace
}  // namespace epim
