// Tests for src/quant: the affine quantizer (Eq. 2-3), the epitome-aware
// range schemes (Eq. 4-5) and their error ordering, HAWQ-lite mixed
// precision, and the accuracy projector.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/resnet.hpp"
#include "quant/accuracy_model.hpp"
#include "quant/epitome_quant.hpp"
#include "quant/mixed_precision.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"

namespace epim {
namespace {

TEST(QuantParams, ScaleFollowsEq3) {
  const QuantParams p = QuantParams::from_range(-1.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(p.scale, 2.0 / 7.0);  // (beta - alpha) / (2^k - 1)
}

TEST(QuantParams, RoundTripWithinHalfStep) {
  const QuantParams p = QuantParams::from_range(-2.0, 2.0, 8);
  for (double r = -2.0; r <= 2.0; r += 0.037) {
    EXPECT_NEAR(p.fake_quantize(r), r, p.scale / 2 + 1e-9);
  }
}

TEST(QuantParams, ClampsOutOfRange) {
  const QuantParams p = QuantParams::from_range(-1.0, 1.0, 4);
  EXPECT_EQ(p.quantize(100.0), p.max_code());
  EXPECT_EQ(p.quantize(-100.0), 0);
}

TEST(QuantParams, DegenerateRangeIsStable) {
  const QuantParams p = QuantParams::from_range(0.5, 0.5, 4);
  EXPECT_NO_THROW(p.quantize(0.5));
}

TEST(QuantParams, RejectsInvertedRange) {
  EXPECT_THROW(QuantParams::from_range(1.0, -1.0, 4), InvalidArgument);
  EXPECT_THROW(QuantParams::from_range(0.0, 1.0, 0), InvalidArgument);
}

TEST(QuantParams, SignedCodesFitTwosComplement) {
  const QuantParams p = QuantParams::from_range(-1.0, 1.0, 3);
  for (std::int64_t code = 0; code <= p.max_code(); ++code) {
    const int s = p.signed_code(code);
    EXPECT_GE(s, -4);
    EXPECT_LE(s, 3);
  }
  EXPECT_THROW(p.signed_code(8), InvalidArgument);
}

TEST(QuantParams, MoreBitsLessError) {
  Rng rng(1);
  Tensor t({1000});
  rng.fill_normal(t.data(), 1000, 0.0f, 1.0f);
  double prev = 1e9;
  for (const int bits : {2, 3, 5, 8}) {
    const QuantParams p = minmax_params(t, bits);
    const Tensor q = fake_quantize_tensor(t, p);
    const double err = mse(t, q);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

// ---- epitome-aware quantization ----

Epitome overlapping_epitome(Rng& rng) {
  // 5x5 plane over a 3x3 kernel: strong centre-vs-border repetition
  // structure, many patches.
  const ConvSpec conv{32, 64, 3, 3, 1, 1};
  return Epitome::random(EpitomeSpec{5, 5, 8, 16}, conv, rng);
}

TEST(EpitomeQuant, OutputShapesAndCodes) {
  Rng rng(2);
  Epitome e = overlapping_epitome(rng);
  QuantConfig cfg;
  cfg.bits = 3;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_EQ(static_cast<std::int64_t>(q.qmatrix.size()), e.spec().rows());
  EXPECT_EQ(static_cast<std::int64_t>(q.qmatrix.front().size()),
            e.spec().cout_e);
  EXPECT_EQ(q.dequant_weights.shape(), e.weights().shape());
  for (const auto& row : q.qmatrix) {
    for (const int v : row) {
      EXPECT_GE(v, -4);
      EXPECT_LE(v, 3);
    }
  }
}

TEST(EpitomeQuant, BlockCountMatchesGeometry) {
  Rng rng(3);
  const ConvSpec conv{512, 512, 3, 3, 1, 1};
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 64, 256}, conv, rng);
  QuantConfig cfg;
  cfg.scheme = RangeScheme::kPerCrossbar;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_EQ(q.blocks_r, 8);   // 1024 / 128
  EXPECT_EQ(q.blocks_c, 2);   // 256 / 128
  EXPECT_EQ(q.block_params.size(), 16u);
}

TEST(EpitomeQuant, SchemeLadderReducesWeightedError) {
  // Table 2's mechanism: naive <= per-crossbar <= overlap-weighted in
  // repetition-weighted error (lower is better). Use a weight distribution
  // with block-to-block spread plus outliers in the rarely-repeated border
  // so the schemes separate.
  Rng rng(4);
  Epitome e = overlapping_epitome(rng);
  // Inject outliers into border (repetition 1) cells.
  const Tensor rep = e.repetition_map();
  const float rep_min = rep.min();
  for (std::int64_t i = 0; i < e.weights().numel(); ++i) {
    if (rep.at(i) == rep_min && rng.flip(0.3)) {
      e.weights().at(i) *= 8.0f;
    }
  }
  auto weighted_err = [&](RangeScheme scheme) {
    QuantConfig cfg;
    cfg.bits = 3;
    cfg.scheme = scheme;
    return EpitomeQuantizer(cfg).quantize(e).weighted_mse;
  };
  const double naive = weighted_err(RangeScheme::kMinMax);
  const double per_xbar = weighted_err(RangeScheme::kPerCrossbar);
  const double overlap = weighted_err(RangeScheme::kOverlapWeighted);
  EXPECT_LE(per_xbar, naive * 1.001);
  EXPECT_LT(overlap, per_xbar);
}

TEST(EpitomeQuant, OverlapFallsBackWhenRepetitionUniform) {
  // Pointwise epitome: no spatial overlap, uniform repetition -> the
  // overlap scheme must degrade gracefully to per-crossbar behaviour.
  Rng rng(5);
  const ConvSpec conv{256, 256, 1, 1, 1, 0};
  Epitome e = Epitome::random(EpitomeSpec{1, 1, 128, 128}, conv, rng);
  QuantConfig a;
  a.bits = 3;
  a.scheme = RangeScheme::kPerCrossbar;
  QuantConfig b = a;
  b.scheme = RangeScheme::kOverlapWeighted;
  const double ea = EpitomeQuantizer(a).quantize(e).weighted_mse;
  const double eb = EpitomeQuantizer(b).quantize(e).weighted_mse;
  EXPECT_NEAR(ea, eb, 1e-12);
}

TEST(EpitomeQuant, WeightedMseUsesRepetition) {
  // For a degenerate epitome (uniform repetition of 1), weighted and plain
  // MSE coincide.
  Rng rng(6);
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  Tensor w({8, 8, 3, 3});
  rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.0f, 1.0f);
  Epitome e = Epitome::from_conv_weights(conv, std::move(w));
  QuantConfig cfg;
  cfg.bits = 4;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_NEAR(q.plain_mse, q.weighted_mse, 1e-12);
}

struct SchemeBitsCase {
  RangeScheme scheme;
  int bits;
};

class QuantBitsSweep : public ::testing::TestWithParam<SchemeBitsCase> {};

TEST_P(QuantBitsSweep, DequantCloseAtHighBitsCoarseAtLow) {
  Rng rng(7);
  Epitome e = overlapping_epitome(rng);
  QuantConfig cfg;
  cfg.bits = GetParam().bits;
  cfg.scheme = GetParam().scheme;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_GT(q.plain_mse, 0.0);
  // 9-bit quantization must be very accurate relative to weight power.
  if (GetParam().bits >= 9) {
    double power = 0.0;
    for (std::int64_t i = 0; i < e.weights().numel(); ++i) {
      power += static_cast<double>(e.weights().at(i)) * e.weights().at(i);
    }
    power /= static_cast<double>(e.weights().numel());
    EXPECT_LT(q.plain_mse / power, 5e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantBitsSweep,
    ::testing::Values(SchemeBitsCase{RangeScheme::kMinMax, 3},
                      SchemeBitsCase{RangeScheme::kPerCrossbar, 3},
                      SchemeBitsCase{RangeScheme::kOverlapWeighted, 3},
                      SchemeBitsCase{RangeScheme::kMinMax, 9},
                      SchemeBitsCase{RangeScheme::kOverlapWeighted, 9},
                      SchemeBitsCase{RangeScheme::kPerCrossbar, 5}));

// ---- mixed precision ----

TEST(MixedPrecision, RespectsBudget) {
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig cfg;
  cfg.budget_fraction = 0.4;
  const auto result = hawq_lite_allocate(a, cfg, CrossbarConfig{});
  EXPECT_LE(result.used_crossbars, result.budget_crossbars);
  EXPECT_EQ(static_cast<std::int64_t>(result.precision.weight_bits.size()),
            a.num_layers());
}

TEST(MixedPrecision, ZeroBudgetAllLow) {
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig cfg;
  cfg.budget_fraction = 0.0;
  const auto result = hawq_lite_allocate(a, cfg, CrossbarConfig{});
  for (const int b : result.precision.weight_bits) {
    EXPECT_EQ(b, cfg.low_bits);
  }
}

TEST(MixedPrecision, FullBudgetAllHigh) {
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig cfg;
  cfg.budget_fraction = 1.0;
  const auto result = hawq_lite_allocate(a, cfg, CrossbarConfig{});
  std::int64_t high = 0;
  for (const int b : result.precision.weight_bits) {
    high += b == cfg.high_bits ? 1 : 0;
  }
  EXPECT_EQ(high, a.num_layers());
}

TEST(MixedPrecision, PromotesMostSensitiveFirst) {
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig cfg;
  cfg.budget_fraction = 0.3;
  const auto result = hawq_lite_allocate(a, cfg, CrossbarConfig{});
  // Ranking must be sorted by score descending.
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_GE(result.ranking[i - 1].score, result.ranking[i].score);
  }
  // The single most sensitive layer must be promoted (its delta fits any
  // non-trivial budget for ResNet-50).
  const auto top = result.ranking.front();
  EXPECT_EQ(result.precision.weight_bits[static_cast<std::size_t>(top.layer)],
            cfg.high_bits);
}

TEST(MixedPrecision, CrossbarCountBetweenUniformExtremes) {
  // Paper Table 1: W3mp sits between W3 and W5 in crossbars.
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  MixedPrecisionConfig cfg;
  const auto result = hawq_lite_allocate(a, cfg, CrossbarConfig{});
  const auto mixed = est.eval_network(a, result.precision);
  const auto low = est.eval_network(a, PrecisionConfig::uniform(3, 9));
  const auto high = est.eval_network(a, PrecisionConfig::uniform(5, 9));
  EXPECT_GT(mixed.num_crossbars, low.num_crossbars);
  EXPECT_LT(mixed.num_crossbars, high.num_crossbars);
}

// ---- accuracy projector ----

TEST(AccuracyProjector, AnchorsAtZeroNoise) {
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  EXPECT_DOUBLE_EQ(proj.project_quantized(0.0, 1.0), 74.00);
}

TEST(AccuracyProjector, MonotoneInNoise) {
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  double prev = 100.0;
  for (const double mse : {1e-6, 1e-4, 1e-2, 1e-1}) {
    const double acc = proj.project_quantized(mse, 1.0);
    EXPECT_LT(acc, prev);
    prev = acc;
  }
}

TEST(AccuracyProjector, PaperRegimeAt3Bit) {
  // 3-bit min/max quantization of ~Gaussian weights has noise amplitude
  // ratio around 0.3; the projected accuracy should land in the paper's
  // 3-bit band (69.9 - 72.5) rather than somewhere wild.
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const double acc = proj.project_quantized(0.09, 1.0);  // sqrt = 0.3
  EXPECT_GT(acc, 69.0);
  EXPECT_LT(acc, 73.0);
}

TEST(AccuracyProjector, PruningPenalty) {
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  EXPECT_DOUBLE_EQ(proj.project_pruned(74.0, 0.0), 74.0);
  EXPECT_LT(proj.project_pruned(74.0, 0.01), 74.0);
  EXPECT_THROW(proj.project_pruned(74.0, 1.5), InvalidArgument);
}

TEST(AccuracyProjector, ResNet101Anchors) {
  const auto a = AccuracyAnchors::resnet101();
  EXPECT_DOUBLE_EQ(a.conv_fp32, 78.77);
  EXPECT_DOUBLE_EQ(a.epitome_fp32, 76.56);
}

}  // namespace
}  // namespace epim
