// Chaos suite for the fault-tolerance tier (common/fault_inject.hpp plus
// the seams it is threaded into): deterministic trigger semantics, atomic
// artifact saves under injected partial writes, worker survival of throwing
// batches, the registry circuit breaker (degraded -> quarantined ->
// half-open probe -> recovery) with its fast-fail-never-touches-the-load-
// path guarantee, Router fallback, and the tentpole invariant -- with any
// single fault point armed at any rate, every submitted request resolves
// (value or pinned epim::Error, no hang within the ctest timeout) and
// successful results stay bit-identical to the fault-free run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/lock_debug.hpp"
#include "common/parallel.hpp"
#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Restore the 1-thread default after a test that resizes the pool.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(1); }
};

/// One trained net + two deployment variants with distinct precisions (so
/// their logits differ), plus a saved `.epim` of variant 1 for
/// artifact-backed registrations. Shared across all tests in this file.
struct FaultZoo {
  SyntheticData data;
  SmallEpitomeNet net;
  std::vector<PipelineConfig> cfgs;
  std::string artifact_path;

  FaultZoo()
      : data(make_synthetic_data([] {
          SyntheticSpec spec;
          spec.num_classes = 2;
          spec.train_per_class = 8;
          spec.test_per_class = 4;
          return spec;
        }())),
        net([] {
          SmallNetConfig nc;
          nc.num_classes = 2;
          return nc;
        }()) {
    TrainConfig tcfg;
    tcfg.epochs = 2;
    train_model(net, data, tcfg);
    for (const auto& [w, a] : {std::pair{6, 8}, {4, 6}}) {
      PipelineConfig cfg;
      cfg.precision = PrecisionPlan::uniform(w, a);
      cfgs.push_back(cfg);
    }
    artifact_path = temp_path("fault_zoo_v1.epim");
    deploy(1).save(artifact_path);
  }

  /// Deployment is deterministic: every call with the same variant yields a
  /// bit-identical model (the reference trick the chaos invariant relies
  /// on).
  DeployedModel deploy(std::size_t variant) const {
    return Pipeline(cfgs.at(variant)).deploy(net, data.train);
  }

  std::vector<Tensor> stream() const {
    std::vector<Tensor> images;
    for (std::int64_t i = 0; i < data.test.size(); ++i) {
      images.push_back(data.test.sample(i));
    }
    return images;
  }

  /// Reference logits of one variant on the serial direct path.
  std::vector<Tensor> reference_logits(std::size_t variant) const {
    DeployedModel chip = deploy(variant);
    std::vector<Tensor> logits;
    for (std::int64_t i = 0; i < data.test.size(); ++i) {
      logits.push_back(chip.forward(data.test.sample(i)));
    }
    return logits;
  }

  static FaultZoo& instance() {
    static FaultZoo zoo;
    return zoo;
  }
};

void expect_same_logits(const Tensor& got, const Tensor& want,
                        const std::string& context) {
  ASSERT_EQ(got.shape(), want.shape()) << context;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got.at(j), want.at(j)) << context << " logit " << j;
  }
}

/// Every test starts and ends with no point armed, so suites compose in any
/// order (and a leaked armed point cannot silently chaos-test a neighbour).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

using FaultInjection = FaultTest;
using ArtifactFault = FaultTest;
using ServiceFault = FaultTest;
using RegistryHealth = FaultTest;
using RegistryLifecycle = FaultTest;
using ChaosInvariant = FaultTest;
using FaultLockdep = FaultTest;

// ---- trigger semantics ----

TEST_F(FaultInjection, NthTriggerFiresExactlyOnTheNthHit) {
  fault::arm_nth("t.nth", 3);
  const std::vector<bool> expected = {false, false, true, false, false};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fault::should_fire("t.nth"), expected[i]) << "hit " << i + 1;
  }
  EXPECT_EQ(fault::hits("t.nth"), 5);
  EXPECT_EQ(fault::fires("t.nth"), 1);
  // Re-arming resets the counters and the one-shot.
  fault::arm_nth("t.nth", 1);
  EXPECT_EQ(fault::hits("t.nth"), 0);
  EXPECT_TRUE(fault::should_fire("t.nth"));
  EXPECT_FALSE(fault::should_fire("t.nth"));
}

TEST_F(FaultInjection, ProbabilityTriggerIsSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    fault::arm_probability("t.prob", 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fault::should_fire("t.prob"));
    return fired;
  };
  const std::vector<bool> first = pattern(42);
  EXPECT_EQ(pattern(42), first);  // same seed, same fault schedule
  EXPECT_GT(fault::fires("t.prob"), 0);
  EXPECT_LT(fault::fires("t.prob"), 64);

  fault::arm_probability("t.prob", 0.0, 42);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(fault::should_fire("t.prob"));
  fault::arm_probability("t.prob", 1.0, 42);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(fault::should_fire("t.prob"));
  EXPECT_THROW(fault::arm_probability("t.prob", 1.5), InvalidArgument);
  EXPECT_THROW(fault::arm_nth("t.prob", 0), InvalidArgument);
}

TEST_F(FaultInjection, DisarmedPointsAreNeverCountedOrFired) {
  // Never-armed points: the inline fast path short-circuits on the global
  // armed count, so nothing is registered and nothing counts.
  EXPECT_FALSE(fault::should_fire("t.never"));
  EXPECT_EQ(fault::hits("t.never"), 0);

  fault::arm_nth("t.off", 1);
  fault::disarm("t.off");
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(fault::should_fire("t.off"));
  EXPECT_EQ(fault::hits("t.off"), 0) << "disarmed evaluation must be free";
  EXPECT_NO_THROW(fault::maybe_fail("t.off"));
}

TEST_F(FaultInjection, MaybeFailThrowsThePinnedInjectedError) {
  fault::arm_nth("t.fail", 1);
  try {
    fault::maybe_fail("t.fail");
    FAIL() << "armed nth:1 point did not throw";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what()).find(fault::kErrInjected),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("t.fail"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultInjection, ArmSpecParsesEntriesAndRejectsMalformedOnes) {
  fault::arm_spec("a.p=nth:2;b.p=prob:1.0:7;;");
  EXPECT_FALSE(fault::should_fire("a.p"));
  EXPECT_TRUE(fault::should_fire("a.p"));
  EXPECT_TRUE(fault::should_fire("b.p"));
  for (const char* bad :
       {"x", "x=", "=nth:1", "x=nth:0", "x=nth:junk", "x=nth:1:2",
        "x=prob:2.0", "x=prob:0.5:1:2", "x=prob:0.5junk", "x=warp:1"}) {
    EXPECT_THROW(fault::arm_spec(bad), InvalidArgument) << bad;
  }
}

TEST_F(FaultInjection, ReloadEnvArmsFromTheEnvironment) {
  ::setenv("EPIM_FAULT", "t.env=nth:1", /*overwrite=*/1);
  EXPECT_EQ(fault::reload_env(), 1);
  ::unsetenv("EPIM_FAULT");
  EXPECT_TRUE(fault::should_fire("t.env"));
  EXPECT_FALSE(fault::should_fire("t.env"));
  EXPECT_EQ(fault::reload_env(), 0);  // no spec, nothing armed
}

// ---- artifact faults + atomic saves ----

TEST_F(ArtifactFault, LoadFaultsSurfaceAsPinnedErrors) {
  FaultZoo& zoo = FaultZoo::instance();

  fault::arm_nth("artifact.open", 1);
  EXPECT_THROW(Pipeline::load_deployed(zoo.artifact_path), Unavailable);
  fault::disarm("artifact.open");

  fault::arm_nth("artifact.read", 1);
  EXPECT_THROW(Pipeline::load_deployed(zoo.artifact_path), Unavailable);
  fault::disarm("artifact.read");

  // The checksum fault drives the REAL corruption-rejection path: the
  // pinned kErrChecksum message, not an injected-fault wrapper.
  fault::arm_nth("artifact.checksum", 1);
  try {
    Pipeline::load_deployed(zoo.artifact_path);
    FAIL() << "armed checksum fault did not reject the artifact";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(artifact::kErrChecksum),
              std::string::npos)
        << e.what();
  }
  fault::disarm("artifact.checksum");

  // Disarmed, the same artifact loads cleanly.
  EXPECT_NO_THROW(Pipeline::load_deployed(zoo.artifact_path));
}

TEST_F(ArtifactFault, PartialWriteNeverClobbersTheExistingArtifact) {
  FaultZoo& zoo = FaultZoo::instance();
  // Own subdirectory: the no-litter scan below must not see OTHER tests'
  // in-flight temp saves when ctest runs suites in parallel.
  const std::string dir = temp_path("fault_atomic_dir");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/fault_atomic.epim";
  zoo.deploy(1).save(path);
  const std::vector<Tensor> before = zoo.reference_logits(1);

  // A deployed artifact has three sections; firing on the second write
  // leaves a half-written temp file -- which must never become `path`.
  fault::arm_nth("artifact.write", 2);
  EXPECT_THROW(zoo.deploy(0).save(path), Unavailable);
  fault::disarm("artifact.write");

  // The destination still holds the COMPLETE old artifact, bit-identically.
  DeployedModel survivor = Pipeline::load_deployed(path);
  for (std::int64_t i = 0; i < zoo.data.test.size(); ++i) {
    expect_same_logits(survivor.forward(zoo.data.test.sample(i)),
                       before[static_cast<std::size_t>(i)],
                       "post-partial-write image " + std::to_string(i));
  }
  // And the aborted save left no temp litter next to it.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(".epim.tmp"), std::string::npos)
        << "leaked temp file: " << entry.path();
  }
  // A clean retry replaces the artifact whole.
  zoo.deploy(0).save(path);
  DeployedModel replaced = Pipeline::load_deployed(path);
  const std::vector<Tensor> want = zoo.reference_logits(0);
  expect_same_logits(replaced.forward(zoo.data.test.sample(0)), want[0],
                     "post-retry");
  std::filesystem::remove_all(dir);
}

TEST_F(ArtifactFault, AbortedFreshSaveLeavesNoFileAtAll) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::string path = temp_path("fault_fresh_never_exists.epim");
  fault::arm_nth("artifact.write", 1);
  EXPECT_THROW(zoo.deploy(0).save(path), Unavailable);
  fault::disarm("artifact.write");
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_THROW(artifact::probe(path), InvalidArgument);
}

// ---- service faults ----

TEST_F(ServiceFault, WorkerSurvivesAThrowingBatchAndKeepsServing) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::vector<Tensor> want = zoo.reference_logits(0);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 16;  // >= the 8-image stream: each burst is ONE batch
  cfg.flush_deadline_ms = 1.0;
  InferenceService service(zoo.deploy(0), cfg);

  // First batch fails wholesale with the pinned injected message...
  fault::arm_nth("serve.run_batch", 1);
  auto doomed = service.submit_batch(zoo.stream());
  for (auto& f : doomed) {
    try {
      f.get();
      FAIL() << "future of a faulted batch resolved with a value";
    } catch (const Unavailable& e) {
      EXPECT_NE(std::string(e.what()).find(fault::kErrInjected),
                std::string::npos)
          << e.what();
    }
  }
  // ...and the SAME worker then serves correct values: the thread survived.
  auto healthy = service.submit_batch(zoo.stream());
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    expect_same_logits(healthy[i].get().logits, want[i],
                       "post-fault image " + std::to_string(i));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(healthy.size()))
      << "faulted requests must not count as completed";
  // Destructor joins cleanly with the worker still alive (ASan/TSan jobs
  // would flag a wedged or dead worker here).
}

TEST_F(ServiceFault, RandomBatchFaultsEveryRequestResolves) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::vector<Tensor> want = zoo.reference_logits(0);
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 2;
  cfg.flush_deadline_ms = 0.5;
  InferenceService service(zoo.deploy(0), cfg);

  fault::arm_probability("serve.run_batch", 0.4, 0xC4A05u);
  std::vector<std::future<InferenceResult>> futures;
  std::vector<std::size_t> image_of;
  for (int round = 0; round < 10; ++round) {
    for (std::int64_t i = 0; i < zoo.data.test.size(); ++i) {
      futures.push_back(service.submit(zoo.data.test.sample(i)));
      image_of.push_back(static_cast<std::size_t>(i));
    }
  }
  int ok = 0;
  int failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      expect_same_logits(futures[i].get().logits, image_of[i] < want.size()
                                                      ? want[image_of[i]]
                                                      : want[0],
                         "chaos image " + std::to_string(i));
      ok += 1;
    } catch (const Error&) {
      failed += 1;
    }
  }
  EXPECT_EQ(ok + failed, static_cast<int>(futures.size()));
  EXPECT_GT(ok, 0) << "a 40% batch fault rate should let some batches pass";
  EXPECT_GT(failed, 0) << "a 40% batch fault rate should fail some batches";
  EXPECT_GT(fault::fires("serve.run_batch"), 0);
}

// The serve.schedule point fires at batch-close selection, AFTER the
// scheduler picked the batch and the queue lock dropped: the pinned chaos
// contract is that an injected fault fails exactly that batch's futures,
// every submitted request still resolves, and the adaptive pool never dips
// below ServeConfig::workers (a scheduling fault must not kill workers).
TEST_F(ServiceFault, ScheduleFaultsResolveAllRequestsAndKeepThePoolFloor) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::vector<Tensor> want = zoo.reference_logits(0);
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_workers = 4;
  cfg.max_batch = 4;
  cfg.flush_deadline_ms = 0.5;
  InferenceService service(zoo.deploy(0), cfg);

  // The satellite rate: 1% per batch close, seeded. Mixed priority classes
  // and fairness clients so the faults land across the whole policy space.
  fault::arm_probability("serve.schedule", 0.01, 0x5C4EDu);
  constexpr Priority kClasses[] = {Priority::kInteractive, Priority::kNormal,
                                   Priority::kBulk};
  std::vector<std::future<InferenceResult>> futures;
  std::vector<std::size_t> image_of;
  for (int i = 0; i < 300; ++i) {
    const std::size_t image =
        static_cast<std::size_t>(i) % static_cast<std::size_t>(
                                          zoo.data.test.size());
    SubmitOptions options;
    options.priority = kClasses[static_cast<std::size_t>(i) % 3];
    options.client_id = "client" + std::to_string(i % 4);
    futures.push_back(service.submit(
        zoo.data.test.sample(static_cast<std::int64_t>(image)), options));
    image_of.push_back(image);
  }
  int ok = 0;
  int injected = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      expect_same_logits(futures[i].get().logits, want[image_of[i]],
                         "schedule-chaos req " + std::to_string(i));
      ok += 1;
    } catch (const Unavailable& e) {
      EXPECT_NE(std::string(e.what()).find(fault::kErrInjected),
                std::string::npos)
          << e.what();
      injected += 1;
    }
  }
  EXPECT_EQ(ok + injected, 300) << "every request must resolve";
  EXPECT_GT(ok, 0);
  EXPECT_GT(fault::hits("serve.schedule"), 0)
      << "batch closes never evaluated the armed point";

  // The pool floor held through the chaos, and recovery is immediate once
  // the point is disarmed: the same service serves bit-identical values.
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.live_workers, cfg.workers)
      << "a scheduling fault must never shrink the pool below the floor";
  fault::disarm("serve.schedule");
  expect_same_logits(service.submit(zoo.data.test.sample(0)).get().logits,
                     want[0], "post-disarm");
  EXPECT_GE(service.stats().live_workers, cfg.workers);
}

// ---- registry circuit breaker ----

TEST_F(RegistryHealth, BreakerDegradesQuarantinesFastFailsAndRecovers) {
  FaultZoo& zoo = FaultZoo::instance();
  RegistryConfig cfg;
  cfg.health.quarantine_after = 2;
  cfg.health.backoff_base_ms = 40.0;
  cfg.health.backoff_max_ms = 400.0;
  cfg.health.jitter = 0.0;  // deterministic windows for the test
  ModelRegistry registry(cfg);
  registry.register_model("m", "v1", zoo.deploy(0));

  fault::arm_probability("registry.materialize", 1.0);

  // Failure 1: a real load attempt (hit 1) -> degraded.
  try {
    registry.submit("m", "v1", zoo.data.test.sample(0));
    FAIL() << "materialization with a certain fault succeeded";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what())
                  .find(ModelRegistry::kErrMaterializeFailed),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kDegraded);
  EXPECT_EQ(fault::hits("registry.materialize"), 1);

  // Inside the backoff window: fast-fail, and -- the acceptance criterion
  // -- the load path is NOT touched: the fault point records no new hit.
  try {
    registry.submit("m", "v1", zoo.data.test.sample(0));
    FAIL() << "backoff window did not fast-fail";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what()).find(ModelRegistry::kErrBackoff),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fault::hits("registry.materialize"), 1)
      << "fast-fail must not touch the load path";

  // Past the window the next request is a half-open probe; it fails too
  // (hit 2) and consecutive failure #2 opens the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_THROW(registry.submit("m", "v1", zoo.data.test.sample(0)),
               Unavailable);
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kQuarantined);
  EXPECT_EQ(fault::hits("registry.materialize"), 2);

  // Breaker open: quarantine fast-fail, still no load-path touch.
  try {
    registry.submit("m", "v1", zoo.data.test.sample(0));
    FAIL() << "quarantine did not fast-fail";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what()).find(ModelRegistry::kErrQuarantined),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fault::hits("registry.materialize"), 2);

  // Fault repaired + window expired: the half-open probe materializes for
  // real, closes the breaker, and the request itself succeeds.
  fault::disarm_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  expect_same_logits(
      registry.submit("m", "v1", zoo.data.test.sample(0)).get().logits,
      zoo.reference_logits(0)[0], "post-recovery");
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kHealthy);

  const RegistrySnapshot snapshot = registry.stats();
  ASSERT_EQ(snapshot.models.size(), 1u);
  EXPECT_EQ(snapshot.models[0].health, HealthState::kHealthy);
  EXPECT_EQ(snapshot.models[0].consecutive_failures, 0);
  EXPECT_EQ(snapshot.models[0].materialize_failures, 2);
  EXPECT_EQ(snapshot.models[0].health_fast_fails, 2);
  EXPECT_EQ(snapshot.quarantined, 0);
  EXPECT_EQ(snapshot.health_fast_fails, 2);
}

TEST_F(RegistryHealth, RouterFallsBackToAHealthyModel) {
  FaultZoo& zoo = FaultZoo::instance();
  RegistryConfig cfg;
  // Keep "a" in backoff for the WHOLE test: nothing below waits the window
  // out, and a sanitizer-slowed fallback burst must not let a half-open
  // probe sneak in and resurrect "a" before the final fast-fail check.
  cfg.health.backoff_base_ms = 600000.0;
  cfg.health.backoff_max_ms = 600000.0;
  cfg.health.jitter = 0.0;
  ModelRegistry registry(cfg);
  registry.register_model("a", "v1", zoo.deploy(0));
  registry.register_model("b", "v1", zoo.deploy(1));
  Router router(registry);

  // nth:1 breaks exactly the FIRST materialization (model "a"); model "b"
  // materializes on hit 2, which does not fire.
  fault::arm_nth("registry.materialize", 1);
  EXPECT_THROW(router.submit("a", zoo.data.test.sample(0)), Unavailable);
  EXPECT_EQ(registry.health("a", "v1"), HealthState::kDegraded);
  EXPECT_EQ(router.fallbacks(), 0);

  // With a fallback configured, the same traffic lands on "b" -- and the
  // values prove it (the variants' logits differ).
  router.set_fallback("a", "b@v1");
  const std::vector<Tensor> want_b = zoo.reference_logits(1);
  auto futures = router.submit_batch("a", zoo.stream());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_same_logits(futures[i].get().logits, want_b[i],
                       "fallback image " + std::to_string(i));
  }
  EXPECT_EQ(router.fallbacks(), 1);  // one burst, one hop
  EXPECT_GT(registry.stats().health_fast_fails, 0);

  // Clearing the fallback restores the raw fast-fail.
  router.clear_fallback("a");
  EXPECT_THROW(router.submit("a", zoo.data.test.sample(0)), Unavailable);
  EXPECT_EQ(router.fallbacks(), 1);
}

// ---- lifecycle: lock-dropped single-flight materialization ----

// Gate semantics: an armed gate counts the hit, then parks the hitting
// thread until open_gate/disarm. Combined with wait_for_hits this replaces
// every sleep-and-hope interleaving below with an exact one.
TEST_F(FaultInjection, GateParksHitsUntilOpenedAndNeverFires) {
  fault::arm_gate("t.gate");
  std::atomic<int> passed{0};
  std::thread blocked([&] {
    EXPECT_FALSE(fault::should_fire("t.gate"));  // parks here
    passed.fetch_add(1);
  });
  fault::wait_for_hits("t.gate", 1);
  EXPECT_EQ(passed.load(), 0) << "gated hit must park, not pass";
  fault::open_gate("t.gate");
  blocked.join();
  EXPECT_EQ(passed.load(), 1);
  // Open gate: later hits pass straight through, still counted, never fire.
  EXPECT_FALSE(fault::should_fire("t.gate"));
  EXPECT_EQ(fault::hits("t.gate"), 2);
  EXPECT_EQ(fault::fires("t.gate"), 0);
  // disarm_all releases parked hits too (the TearDown safety net).
  fault::arm_gate("t.gate");
  std::thread released([&] { EXPECT_FALSE(fault::should_fire("t.gate")); });
  fault::wait_for_hits("t.gate", 1);
  fault::disarm_all();
  released.join();
}

// The tentpole proof, timing-free: with model A's materialization parked at
// a gated fault point -- provably mid-load, registry lock dropped -- model
// B keeps serving bit-identical values and a monitoring scrape completes
// and reports A as loading. Under EPIM_LOCK_DEBUG the same run pins the
// no-edge claim: the registry mutex acquired NOTHING throughout.
TEST_F(RegistryLifecycle, ColdLoadOfOneModelDoesNotBlockAnother) {
  FaultZoo& zoo = FaultZoo::instance();
  if (debug::kLockDebugEnabled) {
    debug::LockOrderRegistry::instance().reset();
  }
  ModelRegistry registry;
  registry.register_model("b", "v1", zoo.deploy(0));
  registry.register_artifact("a", "v1", zoo.artifact_path);  // variant 1
  const std::vector<Tensor> want_b = zoo.reference_logits(0);
  const std::vector<Tensor> want_a = zoo.reference_logits(1);
  // Warm B before freezing the load path.
  expect_same_logits(
      registry.submit("b", "v1", zoo.data.test.sample(0)).get().logits,
      want_b[0], "warmup b");

  fault::arm_gate("registry.materialize");
  std::optional<Tensor> a_logits;
  std::thread loader([&] {
    a_logits =
        registry.submit("a", "v1", zoo.data.test.sample(0)).get().logits;
  });
  fault::wait_for_hits("registry.materialize", 1);

  // A is now provably held inside materialization. B serves a full burst...
  auto futures = registry.submit_batch("b", "v1", zoo.stream());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_same_logits(futures[i].get().logits, want_b[i],
                       "b during a's load, image " + std::to_string(i));
  }
  // ...and a stats scrape completes while the load is still held, seeing
  // the lifecycle mid-flight.
  const RegistrySnapshot snap = registry.stats();
  ASSERT_EQ(snap.models.size(), 2u);  // sorted: a@v1, b@v1
  EXPECT_EQ(snap.models[0].lifecycle, LifecycleState::kLoading);
  EXPECT_FALSE(snap.models[0].resident);
  EXPECT_EQ(snap.models[1].lifecycle, LifecycleState::kResident);
  EXPECT_GT(snap.models[1].stats.requests, 0);

  fault::open_gate("registry.materialize");
  loader.join();
  ASSERT_TRUE(a_logits.has_value());
  expect_same_logits(*a_logits, want_a[0], "a after the gate opened");

  if (debug::kLockDebugEnabled) {
    // Cold load + held load + concurrent traffic + scrape: no lock was
    // ever acquired UNDER the registry mutex.
    debug::LockOrderRegistry& reg = debug::LockOrderRegistry::instance();
    EXPECT_FALSE(
        reg.has_edge("ModelRegistry::mu_", "InferenceService::mu_"));
    EXPECT_FALSE(
        reg.has_edge("ModelRegistry::mu_", "InferenceService::stats_mu_"));
    EXPECT_FALSE(
        reg.has_edge("ModelRegistry::mu_", "fault::FaultRegistry::mu_"));
  }
}

// Single-flight: K concurrent cold submits to one entry perform exactly ONE
// materialization (one registry.materialize hit, one artifact.open hit) and
// every thread still gets bit-identical values.
TEST_F(RegistryLifecycle, ConcurrentColdSubmitsSingleFlightTheLoad) {
  FaultZoo& zoo = FaultZoo::instance();
  ModelRegistry registry;
  registry.register_artifact("m", "v1", zoo.artifact_path);
  const Tensor want = zoo.reference_logits(1)[0];

  // Count-only arming for artifact.open (prob 0 never fires); the gate
  // holds the one loader so the herd provably arrives at an IN-FLIGHT load
  // instead of a fast serial chain.
  fault::arm_probability("artifact.open", 0.0);
  fault::arm_gate("registry.materialize");

  constexpr int kThreads = 6;
  std::vector<std::optional<Tensor>> logits(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      logits[static_cast<std::size_t>(t)] =
          registry.submit("m", "v1", zoo.data.test.sample(0)).get().logits;
    });
  }
  fault::wait_for_hits("registry.materialize", 1);
  fault::open_gate("registry.materialize");
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(fault::hits("registry.materialize"), 1)
      << "exactly one thread may claim the cold load";
  EXPECT_EQ(fault::hits("artifact.open"), 1)
      << "the herd must never pile onto the disk";
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(logits[static_cast<std::size_t>(t)].has_value())
        << "thread " << t;
    expect_same_logits(*logits[static_cast<std::size_t>(t)], want,
                       "thread " + std::to_string(t));
  }
}

// A waiter behind a stuck load sheds at ITS deadline with the pinned
// DeadlineExceeded error (counted in the entry's deadline_misses) instead
// of waiting forever; the gate never opens before the throw, so the
// timeout is certain, not a race.
TEST_F(RegistryLifecycle, WaiterShedsAtItsDeadlineDuringAStuckLoad) {
  FaultZoo& zoo = FaultZoo::instance();
  ModelRegistry registry;
  registry.register_artifact("m", "v1", zoo.artifact_path);
  fault::arm_gate("registry.materialize");
  std::thread loader([&] {
    registry.submit("m", "v1", zoo.data.test.sample(0)).get();
  });
  fault::wait_for_hits("registry.materialize", 1);

  SubmitOptions options;
  options.deadline_ms = 20.0;
  try {
    registry.submit("m", "v1", zoo.data.test.sample(0), options);
    FAIL() << "waiter behind a stuck load did not shed at its deadline";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(
        std::string(e.what()).find(InferenceService::kErrDeadlineExceeded),
        std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("loading"), std::string::npos)
        << e.what();
  }

  fault::open_gate("registry.materialize");
  loader.join();
  const RegistrySnapshot snap = registry.stats();
  ASSERT_EQ(snap.models.size(), 1u);
  EXPECT_EQ(snap.models[0].stats.deadline_misses, 1);
  EXPECT_EQ(snap.deadline_misses, 1);
  // The shed request did not poison the entry: traffic serves fine.
  expect_same_logits(
      registry.submit("m", "v1", zoo.data.test.sample(0)).get().logits,
      zoo.reference_logits(1)[0], "post-release");
}

// reload() while a load is in flight supersedes it: the parked loader's
// publish is discarded, its own retry loop re-materializes from the NEW
// artifact, and nothing is charged to the repointed entry's fresh health.
TEST_F(RegistryLifecycle, ReloadSupersedesAnInFlightLoad) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::string new_path = temp_path("fault_supersede_v0.epim");
  zoo.deploy(0).save(new_path);
  ModelRegistry registry;
  registry.register_artifact("m", "v1", zoo.artifact_path);  // variant 1

  fault::arm_gate("registry.materialize");
  std::optional<Tensor> got;
  std::thread loader([&] {
    got = registry.submit("m", "v1", zoo.data.test.sample(0)).get().logits;
  });
  fault::wait_for_hits("registry.materialize", 1);

  // Repoint the version while its first load is provably in flight.
  registry.reload("m", "v1", new_path);
  fault::open_gate("registry.materialize");
  loader.join();

  // Two real load attempts (the superseded one + the retry), and the
  // caller's future resolved with the NEW artifact's bits.
  ASSERT_TRUE(got.has_value());
  expect_same_logits(*got, zoo.reference_logits(0)[0], "superseded load");
  EXPECT_EQ(fault::hits("registry.materialize"), 2);
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kHealthy);
  const RegistrySnapshot snap = registry.stats();
  ASSERT_EQ(snap.models.size(), 1u);
  EXPECT_EQ(snap.models[0].materialize_failures, 0)
      << "a superseded load must not charge the fresh health";
  std::filesystem::remove(new_path);
}

// ---- the tentpole invariant ----

// With any single fault point armed, concurrent mixed-model traffic must
// (1) resolve every future -- value or epim::Error; a hang here trips the
// ctest timeout -- with successes bit-identical to the fault-free run, and
// (2) recover fully once the fault is disarmed and backoff expires.
TEST_F(ChaosInvariant, EveryPointEveryRequestResolvesAndRecovers) {
  ThreadGuard guard;
  set_num_threads(2);
  FaultZoo& zoo = FaultZoo::instance();
  const std::vector<std::vector<Tensor>> want = {zoo.reference_logits(0),
                                                 zoo.reference_logits(1)};
  const char* points[] = {"registry.materialize", "artifact.open",
                          "artifact.read", "artifact.checksum",
                          "serve.run_batch", "serve.schedule"};
  for (const char* point : points) {
    SCOPED_TRACE(point);
    RegistryConfig cfg;
    cfg.health.quarantine_after = 3;
    cfg.health.backoff_base_ms = 5.0;
    cfg.health.backoff_max_ms = 50.0;
    ServeConfig serve = RegistryConfig::default_serve();
    serve.workers = 2;
    serve.max_batch = 4;
    serve.flush_deadline_ms = 0.5;
    cfg.serve = serve;
    ModelRegistry registry(cfg);
    // v1 is in-memory, v2 re-materializes from disk through every
    // artifact.* fault point.
    registry.register_model("m", "v1", zoo.deploy(0));
    registry.register_artifact("m", "v2", zoo.artifact_path);

    fault::arm_probability(point, 0.25, 0x5EEDu);
    constexpr int kThreads = 3;
    constexpr int kPerThread = 30;
    std::vector<std::vector<std::future<InferenceResult>>> futures(kThreads);
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> meta(
        kThreads);  // (variant, image index)
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kPerThread; ++r) {
          const std::size_t variant = static_cast<std::size_t>((t + r) % 2);
          const std::size_t image = static_cast<std::size_t>(
              r % zoo.data.test.size());
          const std::string version = variant == 0 ? "v1" : "v2";
          try {
            futures[static_cast<std::size_t>(t)].push_back(registry.submit(
                "m", version,
                zoo.data.test.sample(static_cast<std::int64_t>(image))));
            meta[static_cast<std::size_t>(t)].push_back({variant, image});
          } catch (const Error&) {
            // Submission itself may fast-fail (breaker open) -- that IS a
            // resolution for this request.
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    std::int64_t ok = 0;
    std::int64_t failed = 0;
    for (std::size_t t = 0; t < futures.size(); ++t) {
      for (std::size_t i = 0; i < futures[t].size(); ++i) {
        const auto [variant, image] = meta[t][i];
        try {
          expect_same_logits(futures[t][i].get().logits,
                             want[variant][image],
                             "point " + std::string(point) + " thread " +
                                 std::to_string(t) + " req " +
                                 std::to_string(i));
          ok += 1;
        } catch (const Error&) {
          failed += 1;
        }
      }
    }
    EXPECT_GT(ok + failed, 0);
    EXPECT_GT(fault::hits(point), 0)
        << "traffic never evaluated the armed point";

    // Recovery: disarm, wait out any backoff window, and every model must
    // serve bit-identical values again (bounded retry, not a sleep guess).
    fault::disarm_all();
    for (std::size_t variant = 0; variant < 2; ++variant) {
      const std::string version = variant == 0 ? "v1" : "v2";
      bool recovered = false;
      for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
        try {
          expect_same_logits(
              registry.submit("m", version, zoo.data.test.sample(0))
                  .get()
                  .logits,
              want[variant][0], "recovery " + version);
          recovered = true;
        } catch (const Error&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      EXPECT_TRUE(recovered)
          << version << " did not recover after disarming " << point;
    }
  }
}

// Companion smoke used by the CI chaos job with EPIM_FAULT set in the
// environment: whatever the env armed (possibly nothing, when run as part
// of the plain suite), traffic resolves and successes stay bit-identical.
// Deliberately does NOT disarm first -- the env arming must survive into
// the traffic.
TEST(EnvSmoke, TrafficResolvesUnderEnvArmedFaults) {
  FaultZoo& zoo = FaultZoo::instance();
  const std::vector<Tensor> want = zoo.reference_logits(0);
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.flush_deadline_ms = 0.5;
  InferenceService service(zoo.deploy(0), cfg);
  std::vector<std::future<InferenceResult>> futures;
  for (int round = 0; round < 5; ++round) {
    for (std::int64_t i = 0; i < zoo.data.test.size(); ++i) {
      futures.push_back(service.submit(zoo.data.test.sample(i)));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      expect_same_logits(futures[i].get().logits,
                         want[i % want.size()],
                         "env-smoke req " + std::to_string(i));
    } catch (const Error&) {
      // An env-armed fault resolved this request with a pinned error: fine.
    }
  }
  fault::disarm_all();
}

// ---- lock order (needs -DEPIM_LOCK_DEBUG=ON; GTEST_SKIPs elsewhere) ----

TEST_F(FaultLockdep, FaultPointsEvaluateWithNoRegistryLockHeld) {
  if (!debug::kLockDebugEnabled) {
    GTEST_SKIP() << "built without EPIM_LOCK_DEBUG; Mutex does not feed the "
                    "lockdep registry";
  }
  FaultZoo& zoo = FaultZoo::instance();
  debug::LockOrderRegistry& reg = debug::LockOrderRegistry::instance();
  std::vector<std::string> violations;
  auto previous = reg.set_violation_handler(
      [&violations](const std::string& report) {
        violations.push_back(report);
      });
  reg.reset();

  {
    // Armed (prob 0, never fires): materialization evaluates the point --
    // but since PR 8 the load runs with the registry lock DROPPED, so even
    // an armed evaluation records NO edge between the registry mutex and
    // the fault mutex, in either direction. The fault mutex stays a leaf
    // taken with no other epim lock held.
    ModelRegistry registry;
    registry.register_model("m", "v1", zoo.deploy(0));
    fault::arm_probability("registry.materialize", 0.0);
    registry.submit("m", "v1", zoo.data.test.sample(0)).get();
    EXPECT_GT(fault::hits("registry.materialize"), 0)
        << "the armed point was never evaluated";
    EXPECT_FALSE(
        reg.has_edge("ModelRegistry::mu_", "fault::FaultRegistry::mu_"))
        << "materialization must not hold the registry lock at fault points";
    EXPECT_FALSE(
        reg.has_edge("fault::FaultRegistry::mu_", "ModelRegistry::mu_"))
        << "the fault mutex must stay a leaf";
  }

  // The healthy hot path with nothing armed takes NO fault lock at all:
  // a fresh registry driving cold + warm traffic records no such edge.
  fault::disarm_all();
  reg.reset();
  {
    ModelRegistry registry;
    registry.register_model("m", "v1", zoo.deploy(0));
    registry.submit("m", "v1", zoo.data.test.sample(0)).get();  // cold
    registry.submit("m", "v1", zoo.data.test.sample(1)).get();  // warm
    EXPECT_FALSE(
        reg.has_edge("ModelRegistry::mu_", "fault::FaultRegistry::mu_"))
        << "disarmed fault points must not acquire the fault mutex";
  }
  EXPECT_TRUE(violations.empty()) << violations.front();
  reg.set_violation_handler(std::move(previous));
  reg.reset();
}

}  // namespace
}  // namespace epim
