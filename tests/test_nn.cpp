// Unit tests for src/nn: layer geometry, the ResNet-50/101 inventories the
// hardware model depends on, and the reference executor.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/conv_exec.hpp"
#include "nn/network.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "tensor/ops.hpp"

namespace epim {
namespace {

TEST(Layer, ConvSpecDerivedQuantities) {
  ConvSpec c{64, 256, 3, 3, 1, 1};
  EXPECT_EQ(c.weight_count(), 64 * 256 * 9);
  EXPECT_EQ(c.unrolled_rows(), 576);
  EXPECT_EQ(c.unrolled_cols(), 256);
}

TEST(Layer, OutputGeometry) {
  ConvLayerInfo l{"x", ConvSpec{3, 64, 7, 7, 2, 3}, 224, 224};
  EXPECT_EQ(l.ofm_h(), 112);
  EXPECT_EQ(l.ofm_w(), 112);
  EXPECT_EQ(l.output_positions(), 112 * 112);
  EXPECT_EQ(l.macs(), 112 * 112 * 3 * 64 * 49);
}

TEST(Layer, FcAsConv) {
  FcLayerInfo fc{"fc", 2048, 1000};
  const ConvLayerInfo c = fc.as_conv();
  EXPECT_EQ(c.conv.in_channels, 2048);
  EXPECT_EQ(c.conv.out_channels, 1000);
  EXPECT_EQ(c.output_positions(), 1);
  EXPECT_EQ(c.conv.weight_count(), fc.weight_count());
}

TEST(Network, RejectsBadLayers) {
  Network net("n");
  EXPECT_THROW(net.add_conv({"bad", ConvSpec{0, 4, 1, 1, 1, 0}, 8, 8}),
               InvalidArgument);
  EXPECT_THROW(net.add_conv({"bad", ConvSpec{4, 4, 1, 1, 1, 0}, 0, 8}),
               InvalidArgument);
  EXPECT_THROW(net.fc(), InvalidArgument);
}

TEST(ResNet50, LayerInventory) {
  const Network net = resnet50();
  // 1 stem + (3+4+6+3) blocks x 3 convs + 4 downsample projections = 53.
  EXPECT_EQ(net.num_conv_layers(), 53);
  EXPECT_TRUE(net.has_fc());
  EXPECT_EQ(net.weighted_layers().size(), 54u);
}

TEST(ResNet50, ParameterCount) {
  // Weight parameters (convs + fc, no BN/bias): ~25.50M, matching the
  // canonical ResNet-50 within rounding of the BN parameters we exclude.
  const Network net = resnet50();
  EXPECT_NEAR(static_cast<double>(net.total_weights()), 25.50e6, 0.1e6);
}

TEST(ResNet50, MacCount) {
  // ~4.09 GMACs at 224x224 (torchvision reports 4.09e9 multiply-adds).
  const Network net = resnet50();
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 4.09e9, 0.1e9);
}

TEST(ResNet50, StageGeometry) {
  const Network net = resnet50();
  // conv1 at 224, stage1 at 56, stage2 first 3x3 at 56 (stride 2), stage4
  // bulk at 7.
  EXPECT_EQ(net.conv(0).ifm_h, 224);
  EXPECT_EQ(net.conv(1).ifm_h, 56);   // layer1.0.conv1
  const auto& last = net.conv(net.num_conv_layers() - 1);
  EXPECT_EQ(last.ofm_h(), 7);
}

TEST(ResNet50, FinalChannels) {
  const Network net = resnet50();
  EXPECT_EQ(net.fc().in_features, 2048);
  EXPECT_EQ(net.fc().out_features, 1000);
}

TEST(ResNet101, LayerInventory) {
  const Network net = resnet101();
  // 1 + (3+4+23+3)*3 + 4 = 104 convs.
  EXPECT_EQ(net.num_conv_layers(), 104);
  EXPECT_NEAR(static_cast<double>(net.total_weights()), 44.49e6, 0.15e6);
}

TEST(ResNet101, MoreMacsThanResNet50) {
  EXPECT_GT(resnet101().total_macs(), resnet50().total_macs());
  EXPECT_NEAR(static_cast<double>(resnet101().total_macs()), 7.8e9, 0.2e9);
}

TEST(MiniResNet, BuildsAndHasFc) {
  const Network net = mini_resnet();
  EXPECT_GT(net.num_conv_layers(), 10);
  EXPECT_EQ(net.fc().in_features, 64);
}

// Reference conv executor vs a direct nested-loop convolution.
TEST(ConvExec, MatchesNaiveConvolution) {
  Rng rng(3);
  const std::int64_t cin = 3, cout = 5, h = 7, w = 6, k = 3, stride = 2,
                     pad = 1;
  Tensor x({cin, h, w}), wt({cout, cin, k, k});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  rng.fill_normal(wt.data(), static_cast<std::size_t>(wt.numel()), 0.0f,
                  1.0f);
  const Tensor got = conv2d(x, wt, stride, pad);
  const std::int64_t oh = conv_out_dim(h, k, stride, pad);
  const std::int64_t ow = conv_out_dim(w, k, stride, pad);
  ASSERT_EQ(got.shape(), (Shape{cout, oh, ow}));
  for (std::int64_t co = 0; co < cout; ++co) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          for (std::int64_t ky = 0; ky < k; ++ky) {
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t iy = oy * stride + ky - pad;
              const std::int64_t ix = ox * stride + kx - pad;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
              acc += static_cast<double>(x(ci, iy, ix)) * wt(co, ci, ky, kx);
            }
          }
        }
        EXPECT_NEAR(got(co, oy, ox), acc, 1e-3);
      }
    }
  }
}

TEST(ConvExec, RunConvLayerValidatesShapes) {
  ConvLayerInfo l{"x", ConvSpec{3, 4, 3, 3, 1, 1}, 8, 8};
  Tensor x({3, 8, 8}), wt({4, 3, 3, 3});
  EXPECT_NO_THROW(run_conv_layer(l, x, wt));
  Tensor bad_x({3, 9, 8});
  EXPECT_THROW(run_conv_layer(l, bad_x, wt), InvalidArgument);
  Tensor bad_w({5, 3, 3, 3});
  EXPECT_THROW(run_conv_layer(l, x, bad_w), InvalidArgument);
}

TEST(ConvExec, MaxPoolKnownValues) {
  Tensor x({1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  const Tensor p = max_pool2d(x, 2, 2, 0);
  ASSERT_EQ(p.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(p(0, 0, 0), 5.0f);
  EXPECT_EQ(p(0, 1, 1), 15.0f);
}

TEST(ConvExec, GlobalAvgPool) {
  Tensor x({2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor g = global_avg_pool(x);
  EXPECT_FLOAT_EQ(g(0), 2.5f);
  EXPECT_FLOAT_EQ(g(1), 10.0f);
}

TEST(ConvExec, Relu) {
  Tensor x({3}, std::vector<float>{-1, 0, 2});
  const Tensor r = relu(x);
  EXPECT_EQ(r(0), 0.0f);
  EXPECT_EQ(r(1), 0.0f);
  EXPECT_EQ(r(2), 2.0f);
}

// Feature-map sizes chain correctly through an entire ResNet-50: every
// layer's input size must equal what the previous stage produces.
TEST(ResNet50, FeatureMapChainConsistent) {
  const Network net = resnet50();
  for (const auto& layer : net.conv_layers()) {
    EXPECT_GT(layer.ofm_h(), 0) << layer.to_string();
    EXPECT_LE(layer.ofm_h(), layer.ifm_h) << layer.to_string();
  }
  // Bulk of stage-4 layers run at 7x7.
  std::int64_t at7 = 0;
  for (const auto& layer : net.conv_layers()) {
    at7 += layer.ofm_h() == 7 ? 1 : 0;
  }
  EXPECT_GE(at7, 9);
}

TEST(Vgg16, ParameterCount) {
  // VGG-16 has ~138.3M weights, ~89% of them in the classifier FCs.
  const Network net = vgg16();
  EXPECT_NEAR(static_cast<double>(net.total_weights()), 138.3e6, 0.5e6);
  // 13 convs + fc6 + fc7 modelled as weighted layers, fc8 as the head.
  EXPECT_EQ(net.num_conv_layers(), 15);
  EXPECT_EQ(net.fc().out_features, 1000);
}

TEST(Vgg16, Fc6Geometry) {
  const Network net = vgg16();
  const auto& fc6 = net.conv(13);
  EXPECT_EQ(fc6.conv.in_channels, 512 * 7 * 7);
  EXPECT_EQ(fc6.conv.out_channels, 4096);
  EXPECT_EQ(fc6.output_positions(), 1);
}

TEST(ResNet18, Inventory) {
  const Network net = resnet18();
  // 1 stem + 8 blocks x 2 convs + 3 downsamples = 20 convs.
  EXPECT_EQ(net.num_conv_layers(), 20);
  EXPECT_NEAR(static_cast<double>(net.total_weights()), 11.68e6, 0.1e6);
  EXPECT_EQ(net.fc().in_features, 512);
}

TEST(ResNet34, Inventory) {
  const Network net = resnet34();
  // 1 + 16 blocks x 2 + 3 downsamples = 36.
  EXPECT_EQ(net.num_conv_layers(), 36);
  EXPECT_NEAR(static_cast<double>(net.total_weights()), 21.8e6, 0.15e6);
}

TEST(ModelZoo, MacsOrdering) {
  EXPECT_LT(resnet18().total_macs(), resnet34().total_macs());
  EXPECT_LT(resnet34().total_macs(), resnet50().total_macs());
  EXPECT_GT(vgg16().total_macs(), resnet50().total_macs());
}

struct ResNetCase {
  int depth;
  std::int64_t convs;
};

class ResNetDepths : public ::testing::TestWithParam<ResNetCase> {};

TEST_P(ResNetDepths, ConvCountFormula) {
  const auto p = GetParam();
  const Network net = p.depth == 50 ? resnet50() : resnet101();
  EXPECT_EQ(net.num_conv_layers(), p.convs);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetDepths,
                         ::testing::Values(ResNetCase{50, 53},
                                           ResNetCase{101, 104}));

}  // namespace
}  // namespace epim
