// Tests for the shared parallel-execution layer (common/parallel.hpp) and
// the determinism contract it promises: runtime evaluation and evolution
// search must produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "nn/resnet.hpp"
#include "pim/estimator.hpp"
#include "runtime/pim_runtime.hpp"
#include "search/evolution.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

/// Restores the entry thread count on scope exit so tests compose.
struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    const std::int64_t n = 1000;
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    parallel_for(n, [&](std::int64_t i) {
      ++hits[static_cast<std::size_t>(i)];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
    EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
  }
}

TEST(Parallel, EmptyAndTinyTripCounts) {
  ThreadGuard guard;
  set_num_threads(8);
  int calls = 0;
  parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(num_chunks(0), 0);
  // Fewer iterations than threads: one chunk per iteration.
  EXPECT_EQ(num_chunks(3), 3);
  std::vector<std::int64_t> seen;
  parallel_for_chunks(3, [&](int chunk, std::int64_t b, std::int64_t e) {
    EXPECT_EQ(e, b + 1);
    EXPECT_EQ(chunk, static_cast<int>(b));
    (void)seen;
  });
}

TEST(Parallel, ChunkBoundariesDependOnlyOnConfiguration) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> first, second;
  std::mutex m;
  parallel_for_chunks(103, [&](int, std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(m);
    first.emplace_back(b, e);
  });
  parallel_for_chunks(103, [&](int, std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(m);
    second.emplace_back(b, e);
  });
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  EXPECT_EQ(first, second);
  EXPECT_EQ(static_cast<int>(first.size()), num_chunks(103));
}

TEST(Parallel, ChunkedReductionIsThreadCountInvariant) {
  ThreadGuard guard;
  // The blessed reduction pattern: per-chunk partials sized via
  // num_chunks(), passed explicitly to parallel_for_chunks, folded in
  // chunk order. Integer sums are order-independent, so the result is
  // identical at every thread count.
  std::vector<std::int64_t> sums;
  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    const int chunks = std::max(num_chunks(1234), 1);
    std::vector<std::int64_t> partials(static_cast<std::size_t>(chunks), 0);
    parallel_for_chunks(1234, chunks,
                        [&](int chunk, std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i) {
                            partials[static_cast<std::size_t>(chunk)] += i * i;
                          }
                        });
    std::int64_t total = 0;
    for (const std::int64_t p : partials) total += p;
    sums.push_back(total);
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(Parallel, NestedRegionsRunInline) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::int64_t) {
    // Nested region: must not deadlock and must still cover every index.
    parallel_for(10, [&](std::int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::int64_t i) {
                     EPIM_CHECK(i != 57, "boom");
                   }),
      InvalidArgument);
}

TEST(Parallel, SetNumThreadsClampsAndReports) {
  ThreadGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), 1);
  // Huge requests clamp to the hard ceiling instead of fork-bombing.
  set_num_threads(1 << 28);
  EXPECT_EQ(num_threads(), detail::kMaxThreads);
}

TEST(Parallel, ThreadEnvParsingRejectsGarbage) {
  // EPIM_THREADS is read once at pool creation, so the parser is exercised
  // directly: 0 means "invalid, fall back to hardware concurrency".
  EXPECT_EQ(detail::parse_thread_env("0"), 0);
  EXPECT_EQ(detail::parse_thread_env("-1"), 0);
  EXPECT_EQ(detail::parse_thread_env("-999999999999999999"), 0);
  EXPECT_EQ(detail::parse_thread_env("abc"), 0);
  EXPECT_EQ(detail::parse_thread_env("4x"), 0);
  EXPECT_EQ(detail::parse_thread_env(""), 0);
  EXPECT_EQ(detail::parse_thread_env(" "), 0);
  EXPECT_EQ(detail::parse_thread_env(nullptr), 0);
}

TEST(Parallel, ThreadEnvParsingAcceptsAndClampsNumbers) {
  EXPECT_EQ(detail::parse_thread_env("1"), 1);
  EXPECT_EQ(detail::parse_thread_env("16"), 16);
  EXPECT_EQ(detail::parse_thread_env(std::to_string(detail::kMaxThreads)
                                         .c_str()),
            detail::kMaxThreads);
  // Huge (including values that overflow long) clamp to the ceiling.
  EXPECT_EQ(detail::parse_thread_env("1000000"), detail::kMaxThreads);
  EXPECT_EQ(detail::parse_thread_env("999999999999999999999999"),
            detail::kMaxThreads);
}

TEST(Parallel, ConcurrentInitiatorsShareOnePool) {
  // Several threads (one dispatcher per resident model, in serving terms)
  // may each initiate parallel regions at once; every region must still
  // cover every index exactly once with correct results, and the process
  // must never hold more than the configured pool. Repeated rounds shake
  // out job-handoff races.
  ThreadGuard guard;
  set_num_threads(4);
  constexpr int kInitiators = 3;
  constexpr int kRounds = 20;
  constexpr std::int64_t kN = 2000;
  std::vector<std::string> failures(kInitiators);
  std::vector<std::thread> initiators;
  for (int t = 0; t < kInitiators; ++t) {
    initiators.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::int64_t> out(static_cast<std::size_t>(kN), -1);
        parallel_for(kN, [&](std::int64_t i) {
          out[static_cast<std::size_t>(i)] = i * (t + 1) + round;
        });
        for (std::int64_t i = 0; i < kN; ++i) {
          if (out[static_cast<std::size_t>(i)] != i * (t + 1) + round) {
            failures[static_cast<std::size_t>(t)] =
                "round " + std::to_string(round) + " index " +
                std::to_string(i);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : initiators) t.join();
  for (int t = 0; t < kInitiators; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], "") << "initiator " << t;
  }
}

TEST(Parallel, ConcurrentInitiatorExceptionsStayWithTheirRegion) {
  // An exception thrown inside one initiator's region must propagate to
  // that initiator only; the sibling region completes untouched.
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<bool> ok_region_done{false};
  std::atomic<bool> threw{false};
  std::thread throwing([&] {
    try {
      parallel_for(64, [&](std::int64_t i) {
        if (i == 13) throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  std::thread clean([&] {
    std::vector<int> hits(256, 0);
    parallel_for(256, [&](std::int64_t i) {
      ++hits[static_cast<std::size_t>(i)];
    });
    ok_region_done =
        std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; });
  });
  throwing.join();
  clean.join();
  EXPECT_TRUE(threw.load());
  EXPECT_TRUE(ok_region_done.load());
}

TEST(Parallel, NegativeTripCountsAreEmpty) {
  ThreadGuard guard;
  set_num_threads(4);
  int calls = 0;
  parallel_for(-5, [&](std::int64_t) { ++calls; });
  parallel_for_chunks(-5, [&](int, std::int64_t, std::int64_t) { ++calls; });
  parallel_for_chunks(10, /*chunks=*/0,
                      [&](int, std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(num_chunks(-5), 0);
}

TEST(Parallel, FirstFailingChunkWinsExceptionPropagation) {
  ThreadGuard guard;
  set_num_threads(4);
  // Chunks 1 and 3 both throw; the caller must see chunk 1's exception --
  // exactly what serial execution would have thrown first.
  try {
    parallel_for_chunks(
        4, 4, [&](int chunk, std::int64_t, std::int64_t) {
          if (chunk == 3) throw InvalidArgument("chunk 3 failed");
          if (chunk == 1) throw InvalidArgument("chunk 1 failed");
        });
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "chunk 1 failed");
  }
}

TEST(Parallel, NestedRegionExceptionsPropagateThroughOuterRegion) {
  ThreadGuard guard;
  set_num_threads(4);
  // The service's nesting shape: an outer region (batch fan-out) whose
  // chunks issue inner regions (per-image engine loops). An inner failure
  // must surface through both levels, lowest outer chunk first.
  std::atomic<int> completed{0};
  try {
    parallel_for_chunks(8, 8, [&](int chunk, std::int64_t, std::int64_t) {
      parallel_for(4, [&](std::int64_t i) {
        if (chunk >= 5 && i == 2) {
          throw InvalidArgument("inner failure in outer chunk " +
                                std::to_string(chunk));
        }
      });
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "inner failure in outer chunk 5");
  }
  // Chunks before the failing one all completed (chunk order guarantee for
  // the inline nested path is per-chunk, not global, but at least the
  // non-throwing chunks ran).
  EXPECT_EQ(completed.load(), 5);
}

TEST(Parallel, PoolSurvivesExceptionAndKeepsWorking) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(16, [&](std::int64_t i) {
                 EPIM_CHECK(i != 3, "boom");
               }),
               InvalidArgument);
  // The pool must remain usable for the next region.
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(Parallel, MatmulIsThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(11);
  Tensor a({37, 53}), b({29, 53});
  rng.fill_normal(a.data(), static_cast<std::size_t>(a.numel()), 0.0f, 1.0f);
  rng.fill_normal(b.data(), static_cast<std::size_t>(b.numel()), 0.0f, 1.0f);
  set_num_threads(1);
  const Tensor c1 = matmul_nt(a, b);
  set_num_threads(8);
  const Tensor c8 = matmul_nt(a, b);
  ASSERT_EQ(c1.shape(), c8.shape());
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_EQ(c1.at(i), c8.at(i)) << "element " << i;
  }
}

// ---- end-to-end determinism: the acceptance criterion of the PR ----

struct DeployedFixture {
  SyntheticData data;
  SmallEpitomeNet net;
  RuntimeConfig cfg;
};

DeployedFixture& deployed_fixture() {
  static DeployedFixture* f = [] {
    SyntheticSpec dspec;
    dspec.num_classes = 4;
    dspec.train_per_class = 12;
    dspec.test_per_class = 8;
    auto* fx = new DeployedFixture{make_synthetic_data(dspec),
                                   SmallEpitomeNet([] {
                                     SmallNetConfig c;
                                     c.num_classes = 4;
                                     return c;
                                   }()),
                                   RuntimeConfig{}};
    TrainConfig tcfg;
    tcfg.epochs = 2;  // determinism needs a deployed model, not a good one
    train_model(fx->net, fx->data, tcfg);
    fx->cfg.crossbar.adc_bits = 12;
    return fx;
  }();
  return *f;
}

TEST(Determinism, RuntimeEvaluateIdenticalAtAnyThreadCount) {
  ThreadGuard guard;
  auto& f = deployed_fixture();
  set_num_threads(1);
  PimNetworkRuntime runtime(f.net, f.data.train, f.cfg);
  const double acc1 = runtime.evaluate(f.data.test);
  const std::int64_t clips1 = runtime.last_clip_count();
  const Tensor logits1 = runtime.forward(f.data.test.sample(0));
  for (int threads : {2, 8}) {
    set_num_threads(threads);
    const double acc = runtime.evaluate(f.data.test);
    EXPECT_EQ(acc, acc1) << "threads=" << threads;
    EXPECT_EQ(runtime.last_clip_count(), clips1) << "threads=" << threads;
    const Tensor logits = runtime.forward(f.data.test.sample(0));
    for (std::int64_t j = 0; j < logits1.numel(); ++j) {
      EXPECT_EQ(logits.at(j), logits1.at(j))
          << "logit " << j << " threads=" << threads;
    }
  }
}

TEST(Determinism, NoisyRuntimeEvaluateIdenticalAtAnyThreadCount) {
  ThreadGuard guard;
  auto& f = deployed_fixture();
  RuntimeConfig noisy = f.cfg;
  noisy.non_ideal.conductance_sigma = 0.4;
  noisy.non_ideal.stuck_at_zero_prob = 0.02;
  PimNetworkRuntime runtime(f.net, f.data.train, noisy);
  set_num_threads(1);
  const double acc1 = runtime.evaluate(f.data.test);
  set_num_threads(8);
  EXPECT_EQ(runtime.evaluate(f.data.test), acc1);
}

TEST(Determinism, EvolutionSearchIdenticalAtAnyThreadCount) {
  ThreadGuard guard;
  const Network net = mini_resnet();
  PimEstimator estimator(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg;
  cfg.population = 12;
  cfg.parents = 4;
  cfg.iterations = 4;
  cfg.crossbar_budget = 400;

  set_num_threads(1);
  const EvoSearchResult r1 = EvolutionSearch(net, estimator, cfg).run();
  for (int threads : {2, 8}) {
    set_num_threads(threads);
    const EvoSearchResult r = EvolutionSearch(net, estimator, cfg).run();
    EXPECT_EQ(r.best_reward, r1.best_reward) << "threads=" << threads;
    EXPECT_EQ(r.best_cost.num_crossbars, r1.best_cost.num_crossbars);
    EXPECT_EQ(r.best_cost.latency_ms, r1.best_cost.latency_ms);
    EXPECT_EQ(r.reward_history, r1.reward_history);
    ASSERT_EQ(r.best.num_layers(), r1.best.num_layers());
    for (std::int64_t i = 0; i < r.best.num_layers(); ++i) {
      EXPECT_EQ(r.best.choice(i), r1.best.choice(i)) << "layer " << i;
    }
  }
}

}  // namespace
}  // namespace epim
