// Tests for the serving subsystem (serve/artifact.hpp, serve/service.hpp):
// property-based artifact round-trips over randomized configs, corruption
// rejection with pinned error messages, and the InferenceService determinism
// contract (bit-identical to direct runtime evaluation at any batch size
// and thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Restore the 1-thread default after a test that resizes the pool.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(1); }
};

void expect_same_evaluation(const EpimSimulator::Evaluation& a,
                            const EpimSimulator::Evaluation& b) {
  EXPECT_EQ(a.cost.num_crossbars, b.cost.num_crossbars);
  EXPECT_EQ(a.cost.latency_ms, b.cost.latency_ms);
  EXPECT_EQ(a.cost.dynamic_energy_mj, b.cost.dynamic_energy_mj);
  EXPECT_EQ(a.cost.static_energy_mj, b.cost.static_energy_mj);
  EXPECT_EQ(a.cost.utilization, b.cost.utilization);
  EXPECT_EQ(a.cost.params, b.cost.params);
  EXPECT_EQ(a.projected_accuracy, b.projected_accuracy);
  EXPECT_EQ(a.weighted_mse, b.weighted_mse);
  EXPECT_EQ(a.weight_power, b.weight_power);
}

void expect_same_assignment(const NetworkAssignment& a,
                            const NetworkAssignment& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::int64_t i = 0; i < a.num_layers(); ++i) {
    EXPECT_EQ(a.choice(i), b.choice(i)) << "layer " << i;
  }
}

// ---- compiled-model artifacts ----

TEST(ArtifactCompiled, RoundTripsDefaultConfigByteIdentically) {
  const std::string path = temp_path("compiled_default.epim");
  const CompiledModel model = Pipeline{PipelineConfig{}}.compile(resnet18());
  model.save(path);

  const CompiledModel loaded = Pipeline::load(path);
  EXPECT_EQ(loaded.network().name(), "ResNet18");
  expect_same_assignment(loaded.assignment(), model.assignment());
  expect_same_evaluation(loaded.estimate(), model.estimate());
  EXPECT_EQ(loaded.summary(), model.summary());
  std::remove(path.c_str());
}

TEST(ArtifactCompiled, ProbeReportsKindAndVersion) {
  const std::string path = temp_path("compiled_probe.epim");
  Pipeline{PipelineConfig{}}.compile(mini_resnet()).save(path);
  const artifact::Info info = artifact::probe(path);
  EXPECT_EQ(info.version, artifact::kSchemaVersion);
  EXPECT_EQ(info.kind, artifact::Kind::kCompiledModel);
  std::remove(path.c_str());
}

TEST(ArtifactCompiled, PreservesSearchRefinedAssignment) {
  Network net = mini_resnet();
  PipelineConfig cfg;
  cfg.search.enabled = true;
  cfg.search.evo.population = 6;
  cfg.search.evo.iterations = 3;
  cfg.search.evo.parents = 2;
  cfg.search.evo.crossbar_budget = 2000;
  CompiledModel model = Pipeline(cfg).compile(net);
  model.search();

  const std::string path = temp_path("compiled_searched.epim");
  model.save(path);
  const CompiledModel loaded = Pipeline::load(path);
  // The stored choices must reproduce the *searched* assignment, which the
  // design policy alone would not.
  expect_same_assignment(loaded.assignment(), model.assignment());
  expect_same_evaluation(loaded.estimate(), model.estimate());
  EXPECT_EQ(loaded.summary(), model.summary());
  std::remove(path.c_str());
}

/// Draw a random-but-valid PipelineConfig (the property-test generator).
PipelineConfig random_config(Rng& rng) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.rows = 64 << rng.index(3);
  cfg.hardware.crossbar.cols = 64 << rng.index(3);
  cfg.hardware.crossbar.cell_bits = std::vector<int>{1, 2, 4}[static_cast<
      std::size_t>(rng.index(3))];
  cfg.hardware.crossbar.adc_bits = rng.uniform_int(6, 14);
  cfg.hardware.crossbar.adc_share = std::int64_t{1} << rng.uniform_int(2, 4);
  cfg.hardware.lut.adc_pj = rng.uniform(4.0, 12.0);
  cfg.hardware.lut.xbar_ns = rng.uniform(10.0, 50.0);
  cfg.hardware.deploy_adc_bits = rng.uniform_int(12, 16);

  cfg.design.policy =
      rng.flip(0.8) ? DesignPolicy::kUniform : DesignPolicy::kBaseline;
  cfg.design.uniform.target_rows = 256 << rng.index(3);
  cfg.design.uniform.target_cout = 64 << rng.index(3);
  cfg.design.uniform.spatial_slack = rng.index(2);
  cfg.design.wrap_output = rng.flip();

  switch (rng.index(3)) {
    case 0:
      cfg.precision = PrecisionPlan::uniform(rng.uniform_int(3, 9),
                                             rng.uniform_int(4, 10));
      break;
    case 1:
      cfg.precision = PrecisionPlan::fp32();
      break;
    default:
      cfg.precision = PrecisionPlan::hawq_mixed();
      cfg.precision.mixed.budget_fraction = rng.uniform(0.1, 0.9);
      break;
  }

  cfg.quant.bits = rng.uniform_int(3, 9);
  cfg.quant.scheme = std::vector<RangeScheme>{
      RangeScheme::kMinMax, RangeScheme::kPerCrossbar,
      RangeScheme::kOverlapWeighted}[static_cast<std::size_t>(rng.index(3))];
  cfg.quant.w1 = rng.uniform(0.3, 0.9);
  cfg.quant.w2 = 1.0 - cfg.quant.w1;

  cfg.deploy.act_percentile = rng.flip() ? 1.0 : 0.999;
  cfg.serve.max_batch = rng.uniform_int(1, 64);
  cfg.serve.flush_deadline_ms = rng.uniform(0.5, 5.0);
  cfg.serve.workers = rng.uniform_int(1, 8);
  cfg.serve.latency_window = rng.uniform_int(1, 8192);
  cfg.serve.max_queue = rng.flip() ? 0 : rng.uniform_int(1, 2048);
  cfg.serve.max_workers =
      rng.flip() ? 0 : rng.uniform_int(cfg.serve.workers, 16);
  cfg.serve.fairness_quantum = rng.uniform_int(1, 64);
  cfg.serve.reslice_bursts = rng.flip();
  cfg.anchors =
      rng.flip() ? AccuracyAnchors::resnet50() : AccuracyAnchors::resnet101();
  cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return cfg;
}

TEST(ArtifactCompiled, PropertyRandomConfigsRoundTripByteIdentically) {
  Rng rng(0xA27'1FAC7u);
  const Network net = mini_resnet();
  for (int draw = 0; draw < 8; ++draw) {
    SCOPED_TRACE("draw " + std::to_string(draw));
    PipelineConfig cfg = random_config(rng);
    ASSERT_NO_THROW(cfg.validate());
    const CompiledModel model = Pipeline(cfg).compile(net);

    const std::string path = temp_path("compiled_prop.epim");
    model.save(path);
    const CompiledModel loaded = Pipeline::load(path);

    // Byte-identical estimator numbers and report, not merely close.
    expect_same_assignment(loaded.assignment(), model.assignment());
    EXPECT_EQ(loaded.precision().weight_bits, model.precision().weight_bits);
    EXPECT_EQ(loaded.precision().act_bits, model.precision().act_bits);
    expect_same_evaluation(loaded.estimate(), model.estimate());
    EXPECT_EQ(loaded.summary(), model.summary());
    // The embedded config survives, including serving policy.
    EXPECT_EQ(loaded.config().serve.max_batch, cfg.serve.max_batch);
    EXPECT_EQ(loaded.config().serve.flush_deadline_ms,
              cfg.serve.flush_deadline_ms);
    EXPECT_EQ(loaded.config().serve.workers, cfg.serve.workers);
    EXPECT_EQ(loaded.config().serve.latency_window,
              cfg.serve.latency_window);
    EXPECT_EQ(loaded.config().serve.max_queue, cfg.serve.max_queue);
    EXPECT_EQ(loaded.config().serve.max_workers, cfg.serve.max_workers);
    EXPECT_EQ(loaded.config().serve.fairness_quantum,
              cfg.serve.fairness_quantum);
    EXPECT_EQ(loaded.config().serve.reslice_bursts,
              cfg.serve.reslice_bursts);
    EXPECT_EQ(loaded.config().seed, cfg.seed);
    std::remove(path.c_str());
  }
}

// ---- deployed-model artifacts ----

struct DeployedFixture {
  SyntheticData data;
  SmallEpitomeNet net;

  DeployedFixture()
      : data(make_synthetic_data([] {
          SyntheticSpec spec;
          spec.num_classes = 4;
          spec.train_per_class = 12;
          spec.test_per_class = 8;
          return spec;
        }())),
        net([] {
          SmallNetConfig nc;
          nc.num_classes = 4;
          return nc;
        }()) {
    TrainConfig tcfg;
    tcfg.epochs = 2;
    train_model(net, data, tcfg);
  }

  static DeployedFixture& instance() {
    static DeployedFixture fixture;
    return fixture;
  }
};

void expect_bit_identical_logits(DeployedModel& a, DeployedModel& b,
                                 const Dataset& images) {
  for (std::int64_t i = 0; i < images.size(); ++i) {
    const Tensor la = a.forward(images.sample(i));
    const std::int64_t clips_a = a.last_clip_count();
    const Tensor lb = b.forward(images.sample(i));
    ASSERT_EQ(la.shape(), lb.shape());
    for (std::int64_t j = 0; j < la.numel(); ++j) {
      EXPECT_EQ(la.at(j), lb.at(j)) << "image " << i << " logit " << j;
    }
    EXPECT_EQ(clips_a, b.last_clip_count()) << "image " << i;
  }
}

TEST(ArtifactDeployed, RoundTripsBitIdentically) {
  DeployedFixture& fx = DeployedFixture::instance();
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(6, 8);
  Pipeline pipeline(cfg);
  DeployedModel chip = pipeline.deploy(fx.net, fx.data.train);

  const std::string path = temp_path("deployed.epim");
  chip.save(path);
  EXPECT_EQ(artifact::probe(path).kind, artifact::Kind::kDeployedModel);

  DeployedModel loaded = Pipeline::load_deployed(path);
  EXPECT_EQ(loaded.total_crossbars(), chip.total_crossbars());
  EXPECT_EQ(loaded.runtime_config().weight_bits, 6);
  EXPECT_EQ(loaded.runtime_config().act_bits, 8);
  expect_bit_identical_logits(chip, loaded, fx.data.test);
  EXPECT_EQ(loaded.evaluate(fx.data.test), chip.evaluate(fx.data.test));
  std::remove(path.c_str());
}

TEST(ArtifactDeployed, PropertyRandomRuntimeConfigsRoundTripBitIdentically) {
  DeployedFixture& fx = DeployedFixture::instance();
  Rng rng(0xDE9'107u);
  for (int draw = 0; draw < 4; ++draw) {
    SCOPED_TRACE("draw " + std::to_string(draw));
    PipelineConfig cfg;
    cfg.precision = PrecisionPlan::uniform(rng.uniform_int(4, 8),
                                           rng.uniform_int(6, 10));
    cfg.hardware.deploy_adc_bits = rng.uniform_int(9, 14);
    cfg.deploy.act_percentile = rng.flip() ? 1.0 : 0.999;
    if (rng.flip()) {
      // Non-idealities: load must replay the same programming-noise draws.
      cfg.deploy.non_ideal.conductance_sigma = rng.uniform(0.05, 0.3);
      cfg.deploy.non_ideal.stuck_at_zero_prob = rng.uniform(0.0, 0.02);
      cfg.deploy.non_ideal.seed = static_cast<std::uint64_t>(
          rng.uniform_int(1, 1 << 30));
    }
    DeployedModel chip = Pipeline(cfg).deploy(fx.net, fx.data.train);

    const std::string path = temp_path("deployed_prop.epim");
    chip.save(path);
    DeployedModel loaded = Pipeline::load_deployed(path);
    EXPECT_EQ(loaded.total_crossbars(), chip.total_crossbars());
    expect_bit_identical_logits(chip, loaded, fx.data.test);
    std::remove(path.c_str());
  }
}

// ---- corruption rejection (exact messages pinned) ----

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_load_error(const std::string& path, const char* message) {
  try {
    (void)Pipeline::load(path);
    FAIL() << "expected InvalidArgument(\"" << message << "\")";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(message), std::string::npos)
        << "actual: " << e.what();
  }
}

struct CorruptionFixture : ::testing::Test {
  // Per-test file names: gtest_discover_tests runs every TEST_F as its own
  // ctest process and CI uses -j, so shared paths would race.
  std::string good, bad;

  void SetUp() override {
    const std::string test = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    good = temp_path("corrupt_" + test + "_base.epim");
    bad = temp_path("corrupt_" + test + "_case.epim");
    Pipeline{PipelineConfig{}}.compile(mini_resnet()).save(good);
  }
  void TearDown() override {
    std::remove(good.c_str());
    std::remove(bad.c_str());
  }
};

TEST_F(CorruptionFixture, RejectsTruncatedFiles) {
  const std::vector<char> bytes = slurp(good);
  // Cut inside the header, inside a section header, and inside a payload.
  for (const std::size_t cut :
       {std::size_t{4}, std::size_t{19}, std::size_t{21},
        bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    dump(bad, std::vector<char>(bytes.begin(),
                                bytes.begin() +
                                    static_cast<std::ptrdiff_t>(cut)));
    expect_load_error(bad, artifact::kErrTruncated);
  }
}

TEST_F(CorruptionFixture, RejectsForeignFiles) {
  std::vector<char> bytes = slurp(good);
  bytes[0] = 'X';
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadMagic);

  dump(bad, {'n', 'o', 't', ' ', 'e', 'p', 'i', 'm', ' ', 'a', 't', ' ',
             'a', 'l', 'l', '!', '!', '!', '!', '!'});
  expect_load_error(bad, artifact::kErrBadMagic);
}

TEST_F(CorruptionFixture, RejectsUnsupportedSchemaVersions) {
  std::vector<char> bytes = slurp(good);
  bytes[8] = 99;  // version lives right after the 8-byte magic
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadVersion);
  bytes[8] = 0;
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadVersion);
  // Superseded versions are rejected cleanly too: the positional codec
  // cannot decode a v1/v2/v3 payload (ServeConfig grew in v2, v3 and again
  // in v4), so they must fail with the version message, never a misparse
  // deeper in.
  bytes[8] = 1;
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadVersion);
  bytes[8] = 2;
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadVersion);
  bytes[8] = 3;
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadVersion);
}

TEST_F(CorruptionFixture, RejectsKindMismatch) {
  std::vector<char> bytes = slurp(good);
  EXPECT_EQ(bytes[12], 1);  // kind: compiled model
  bytes[12] = 2;            // claim it is a deployed model
  dump(bad, bytes);
  expect_load_error(bad, artifact::kErrBadKind);
  // And the symmetric direction through load_deployed.
  try {
    (void)Pipeline::load_deployed(good);
    FAIL() << "expected kind mismatch";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(artifact::kErrBadKind),
              std::string::npos);
  }
}

TEST_F(CorruptionFixture, RejectsCorruptedSectionPayloads) {
  const std::vector<char> bytes = slurp(good);
  // Flip one bit in the middle and near the end (different sections).
  for (const std::size_t victim : {bytes.size() / 2, bytes.size() - 2}) {
    SCOPED_TRACE("flip at " + std::to_string(victim));
    std::vector<char> corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x40);
    dump(bad, corrupt);
    expect_load_error(bad, artifact::kErrChecksum);
  }
}

TEST_F(CorruptionFixture, RejectsCheckummedTrailingBytes) {
  // A section that carries bytes past its last decoded field -- with a
  // *valid* checksum -- is schema drift, not corruption, and must still be
  // rejected. Grow the first section ("pipecfg") by one byte and recompute
  // its FNV-1a so only the trailing-bytes guard can catch it.
  std::vector<char> bytes = slurp(good);
  const std::size_t size_at = 20 + 8;      // header + section tag
  const std::size_t checksum_at = size_at + 8;
  const std::size_t payload_at = checksum_at + 8;
  std::uint64_t size = 0;
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                bytes[size_at + static_cast<std::size_t>(i)]))
            << (8 * i);
  }
  bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(payload_at + size),
               '\0');
  ++size;
  std::uint64_t checksum = 14695981039346656037ull;
  for (std::uint64_t i = 0; i < size; ++i) {
    checksum ^= static_cast<unsigned char>(
        bytes[payload_at + static_cast<std::size_t>(i)]);
    checksum *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[size_at + static_cast<std::size_t>(i)] =
        static_cast<char>((size >> (8 * i)) & 0xff);
    bytes[checksum_at + static_cast<std::size_t>(i)] =
        static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
  dump(bad, bytes);
  expect_load_error(bad, "artifact section 'pipecfg' has trailing bytes");
}

TEST_F(CorruptionFixture, RejectsMissingFile) {
  try {
    (void)Pipeline::load(temp_path("does_not_exist.epim"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open artifact"),
              std::string::npos);
  }
}

// ---- I/O modes: mmap (lazy checksums) vs read() (eager, golden) ----

/// Restore the process-default I/O mode after a test that switches it.
struct IoModeGuard {
  artifact::IoMode saved = artifact::io_mode();
  ~IoModeGuard() { artifact::set_io_mode(saved); }
};

TEST(ArtifactIoMode, MmapAndReadPathsDecodeBitIdentically) {
  IoModeGuard guard;
  DeployedFixture& fx = DeployedFixture::instance();
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(6, 8);
  DeployedModel chip = Pipeline(cfg).deploy(fx.net, fx.data.train);
  const std::string path = temp_path("iomode_deployed.epim");
  chip.save(path);

  artifact::set_io_mode(artifact::IoMode::kRead);
  DeployedModel via_read = Pipeline::load_deployed(path);
  artifact::set_io_mode(artifact::IoMode::kMmap);
  DeployedModel via_mmap = Pipeline::load_deployed(path);
  expect_bit_identical_logits(via_read, via_mmap, fx.data.test);
  EXPECT_EQ(via_read.evaluate(fx.data.test),
            via_mmap.evaluate(fx.data.test));

  // Compiled artifacts ride the same container reader: both modes decode a
  // model with identical assignment and estimator numbers.
  const std::string cpath = temp_path("iomode_compiled.epim");
  Pipeline{PipelineConfig{}}.compile(mini_resnet()).save(cpath);
  artifact::set_io_mode(artifact::IoMode::kRead);
  const CompiledModel c_read = Pipeline::load(cpath);
  artifact::set_io_mode(artifact::IoMode::kMmap);
  const CompiledModel c_mmap = Pipeline::load(cpath);
  expect_same_assignment(c_read.assignment(), c_mmap.assignment());
  expect_same_evaluation(c_read.estimate(), c_mmap.estimate());
  std::remove(path.c_str());
  std::remove(cpath.c_str());
}

TEST(ArtifactIoMode, MmapLazyChecksumStillRejectsBitFlips) {
  IoModeGuard guard;
  artifact::set_io_mode(artifact::IoMode::kMmap);
  const std::string good_path = temp_path("iomode_corrupt_base.epim");
  const std::string bad_path = temp_path("iomode_corrupt_case.epim");
  Pipeline{PipelineConfig{}}.compile(mini_resnet()).save(good_path);
  const std::vector<char> bytes = slurp(good_path);
  // Flip one bit in the middle and one near the end (different sections):
  // the mmap path defers each section's checksum to its first decode touch,
  // but a flipped payload bit must still surface as the pinned kErrChecksum
  // before any of that section's fields reach a caller.
  for (const std::size_t victim : {bytes.size() / 2, bytes.size() - 2}) {
    SCOPED_TRACE("flip at " + std::to_string(victim));
    std::vector<char> corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x40);
    dump(bad_path, corrupt);
    expect_load_error(bad_path, artifact::kErrChecksum);
  }
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

// Both façade loaders, against both bad-path shapes, with the messages
// pinned: a nonexistent path reports kErrCannotOpen and a directory reports
// kErrNotFile (NOT a misleading "truncated artifact", which is what naively
// ifstream-reading a directory would produce).
TEST(ArtifactErrors, LoadersRejectNonexistentPathsWithPinnedMessage) {
  const std::string missing = temp_path("no_such_artifact.epim");
  for (const bool deployed : {false, true}) {
    SCOPED_TRACE(deployed ? "load_deployed" : "load");
    try {
      if (deployed) {
        (void)Pipeline::load_deployed(missing);
      } else {
        (void)Pipeline::load(missing);
      }
      FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(artifact::kErrCannotOpen),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
          << e.what();
    }
  }
}

TEST(ArtifactErrors, LoadersRejectDirectoriesWithPinnedMessage) {
  // TempDir itself is a convenient directory that certainly exists.
  const std::string dir = ::testing::TempDir();
  for (const bool deployed : {false, true}) {
    SCOPED_TRACE(deployed ? "load_deployed" : "load");
    try {
      if (deployed) {
        (void)Pipeline::load_deployed(dir);
      } else {
        (void)Pipeline::load(dir);
      }
      FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(artifact::kErrNotFile),
                std::string::npos)
          << e.what();
    }
  }
  // probe() guards the same way (the registry probes at registration).
  EXPECT_THROW(artifact::probe(dir), InvalidArgument);
}

// ---- InferenceService ----

TEST(InferenceService, ConfigIsValidated) {
  DeployedFixture& fx = DeployedFixture::instance();
  Pipeline pipeline{PipelineConfig{}};
  ServeConfig bad;
  bad.max_batch = 0;
  EXPECT_THROW(InferenceService(pipeline.deploy(fx.net, fx.data.train), bad),
               InvalidArgument);
  bad.max_batch = 8;
  bad.flush_deadline_ms = 0.0;
  EXPECT_THROW(InferenceService(pipeline.deploy(fx.net, fx.data.train), bad),
               InvalidArgument);
}

TEST(InferenceService, ServeConfigFlowsFromPipelineConfig) {
  DeployedFixture& fx = DeployedFixture::instance();
  PipelineConfig cfg;
  cfg.serve.max_batch = 7;
  cfg.serve.flush_deadline_ms = 3.5;
  DeployedModel chip = Pipeline(cfg).deploy(fx.net, fx.data.train);
  EXPECT_EQ(chip.serve_config().max_batch, 7);
  EXPECT_EQ(chip.serve_config().flush_deadline_ms, 3.5);
}

TEST(InferenceService, ResultsBitIdenticalToDirectRuntime) {
  ThreadGuard guard;
  DeployedFixture& fx = DeployedFixture::instance();
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(6, 8);
  Pipeline pipeline(cfg);

  // Direct reference logits, computed once on the serial path.
  DeployedModel reference = pipeline.deploy(fx.net, fx.data.train);
  std::vector<Tensor> expected;
  std::vector<std::int64_t> expected_clips;
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    expected.push_back(reference.forward(fx.data.test.sample(i)));
    expected_clips.push_back(reference.last_clip_count());
  }

  // The full scheduler grid: pool threads x continuous-batching workers x
  // batch size. Only completion order may vary across the grid; every
  // logit and clip count must match the serial direct path bit for bit.
  for (const int threads : {1, 3}) {
    for (const int workers : {1, 4}) {
      for (const int max_batch : {1, 5, 64}) {
        SCOPED_TRACE("threads " + std::to_string(threads) + " workers " +
                     std::to_string(workers) + " max_batch " +
                     std::to_string(max_batch));
        set_num_threads(threads);
        ServeConfig scfg;
        scfg.max_batch = max_batch;
        scfg.flush_deadline_ms = 1.0;
        scfg.workers = workers;
        InferenceService service =
            std::move(pipeline.deploy(fx.net, fx.data.train)).serve(scfg);

        std::vector<Tensor> burst;
        for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
          burst.push_back(fx.data.test.sample(i));
        }
        auto futures = service.submit_batch(std::move(burst));
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const InferenceResult r = futures[i].get();
          ASSERT_EQ(r.logits.shape(), expected[i].shape());
          for (std::int64_t j = 0; j < r.logits.numel(); ++j) {
            EXPECT_EQ(r.logits.at(j), expected[i].at(j))
                << "image " << i << " logit " << j;
          }
          EXPECT_EQ(r.clip_count, expected_clips[i]) << "image " << i;
        }
      }
    }
  }
}

TEST(InferenceService, SubmitValidatesShapesWithoutPoisoningTheQueue) {
  DeployedFixture& fx = DeployedFixture::instance();
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve();
  EXPECT_THROW(service.submit(Tensor({2, 3})), InvalidArgument);
  EXPECT_THROW(service.submit(Tensor({1, 16, 16})), InvalidArgument);
  // A malformed image inside a burst rejects the whole burst atomically...
  std::vector<Tensor> burst;
  burst.push_back(fx.data.test.sample(0));
  burst.push_back(Tensor({3, 4, 4}));
  EXPECT_THROW(service.submit_batch(std::move(burst)), InvalidArgument);
  EXPECT_EQ(service.stats().queued + service.stats().requests, 0);
  // ...and the service keeps serving valid requests afterwards.
  const InferenceResult r = service.submit(fx.data.test.sample(0)).get();
  EXPECT_EQ(r.logits.numel(), 4);
}

TEST(InferenceService, PredictionMatchesArgmaxAndAccuracy) {
  DeployedFixture& fx = DeployedFixture::instance();
  Pipeline pipeline{PipelineConfig{}};
  DeployedModel reference = pipeline.deploy(fx.net, fx.data.train);
  const double direct_acc = reference.evaluate(fx.data.test);

  InferenceService service =
      std::move(pipeline.deploy(fx.net, fx.data.train)).serve();
  std::int64_t correct = 0;
  std::vector<std::future<InferenceResult>> pending;
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    pending.push_back(service.submit(fx.data.test.sample(i)));
  }
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    const InferenceResult r = pending[static_cast<std::size_t>(i)].get();
    std::int64_t arg = 0;
    for (std::int64_t j = 1; j < r.logits.numel(); ++j) {
      if (r.logits.at(j) > r.logits.at(arg)) arg = j;
    }
    EXPECT_EQ(r.predicted, arg);
    correct += r.predicted == fx.data.test.labels[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(static_cast<double>(correct) /
                static_cast<double>(fx.data.test.size()),
            direct_acc);
}

TEST(InferenceService, StatsSnapshotIsConsistent) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 4;
  scfg.flush_deadline_ms = 1.0;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  std::vector<Tensor> burst;
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    burst.push_back(fx.data.test.sample(i));
  }
  for (auto& f : service.submit_batch(std::move(burst))) (void)f.get();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, fx.data.test.size());
  EXPECT_GE(stats.batches, fx.data.test.size() / 4);  // max_batch = 4
  EXPECT_GT(stats.mean_batch_size, 0.0);
  EXPECT_LE(stats.mean_batch_size, 4.0);
  EXPECT_GT(stats.items_per_sec, 0.0);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  EXPECT_GE(stats.clip_events, 0);
  EXPECT_EQ(stats.queued, 0);
}

TEST(InferenceService, DestructorDrainsPendingRequests) {
  DeployedFixture& fx = DeployedFixture::instance();
  std::vector<std::future<InferenceResult>> pending;
  {
    ServeConfig scfg;
    scfg.max_batch = 4;
    scfg.flush_deadline_ms = 500.0;  // deadline far beyond the test runtime
    InferenceService service =
        std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
            .serve(scfg);
    for (std::int64_t i = 0; i < 3; ++i) {  // below max_batch: no flush yet
      pending.push_back(service.submit(fx.data.test.sample(i)));
    }
  }  // destructor must flush the partial batch, not abandon it
  for (auto& f : pending) {
    EXPECT_EQ(f.get().logits.numel(), 4);
  }
}

TEST(InferenceService, SubmitBatchRejectsEmptyBurst) {
  DeployedFixture& fx = DeployedFixture::instance();
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve();
  try {
    (void)service.submit_batch({});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(
        std::string(e.what()).find("submit_batch requires a non-empty batch"),
        std::string::npos)
        << e.what();
  }
  // A rejected empty burst is not traffic: nothing queued, nothing counted,
  // and the service keeps serving.
  EXPECT_EQ(service.stats().queued + service.stats().requests, 0);
  EXPECT_EQ(service.submit(fx.data.test.sample(0)).get().logits.numel(), 4);
}

TEST(InferenceService, LatencyWindowSizeComesFromServeConfig) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 1;  // one completion per request: window fills request-wise
  scfg.flush_deadline_ms = 0.5;
  scfg.latency_window = 4;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  for (std::int64_t i = 0; i < 3; ++i) {
    (void)service.submit(fx.data.test.sample(i)).get();
  }
  // Below the window: every latency is retained.
  EXPECT_EQ(service.recent_latencies_ms().size(), 3u);
  for (std::int64_t i = 3; i < 10; ++i) {
    (void)service.submit(fx.data.test.sample(i)).get();
  }
  // Saturated: the ring holds exactly latency_window entries, so the
  // percentile digest covers the most recent 4 requests only.
  EXPECT_EQ(service.recent_latencies_ms().size(), 4u);
  EXPECT_EQ(service.stats().requests, 10);

  // The window size is validated like every other serve knob.
  ServeConfig bad;
  bad.latency_window = 0;
  EXPECT_THROW(InferenceService(
                   Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train),
                   bad),
               InvalidArgument);
}

TEST(InferenceService, ResetStartsAFreshStatsInterval) {
  DeployedFixture& fx = DeployedFixture::instance();
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve();
  for (std::int64_t i = 0; i < 4; ++i) {
    (void)service.submit(fx.data.test.sample(i)).get();
  }
  ASSERT_EQ(service.stats().requests, 4);

  service.reset();
  // Everything traffic-shaped is zeroed...
  const ServiceStats zeroed = service.stats();
  EXPECT_EQ(zeroed.requests, 0);
  EXPECT_EQ(zeroed.batches, 0);
  EXPECT_EQ(zeroed.clip_events, 0);
  EXPECT_EQ(zeroed.rejected, 0);
  EXPECT_EQ(zeroed.mean_batch_size, 0.0);
  EXPECT_EQ(zeroed.items_per_sec, 0.0);
  EXPECT_EQ(zeroed.p50_latency_ms, 0.0);
  EXPECT_EQ(zeroed.p99_latency_ms, 0.0);
  EXPECT_EQ(service.recent_latencies_ms().size(), 0u);

  // ...and the next interval counts from zero with a fresh throughput
  // window, exactly like a brand-new service.
  for (std::int64_t i = 0; i < 2; ++i) {
    (void)service.submit(fx.data.test.sample(i)).get();
  }
  const ServiceStats next = service.stats();
  EXPECT_EQ(next.requests, 2);
  EXPECT_GT(next.items_per_sec, 0.0);
  EXPECT_GT(next.p50_latency_ms, 0.0);
}

TEST(InferenceService, AdmissionControlIsAtomicWithEnqueue) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 64;
  scfg.flush_deadline_ms = 10000.0;  // hold everything queued
  scfg.max_queue = 2;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  auto f0 = service.submit(fx.data.test.sample(0));
  auto f1 = service.submit(fx.data.test.sample(1));
  EXPECT_THROW((void)service.submit(fx.data.test.sample(2)), Unavailable);
  EXPECT_EQ(service.stats().rejected, 1);
  EXPECT_EQ(service.stats().queued, 2);
  // max_queue = 0 keeps the historical unbounded behaviour (validated as
  // non-negative).
  ServeConfig bad;
  bad.max_queue = -1;
  EXPECT_THROW(InferenceService(
                   Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train),
                   bad),
               InvalidArgument);
  // Drain without waiting out the 10 s deadline; the admitted requests
  // were unharmed by the rejection.
  (void)service.detach();
  EXPECT_EQ(f0.get().logits.numel(), 4);
  EXPECT_EQ(f1.get().logits.numel(), 4);
}

TEST(InferenceService, DetachDrainsAndReturnsTheModel) {
  DeployedFixture& fx = DeployedFixture::instance();
  Pipeline pipeline{PipelineConfig{}};
  DeployedModel reference = pipeline.deploy(fx.net, fx.data.train);
  const Tensor expected = reference.forward(fx.data.test.sample(0));

  ServeConfig scfg;
  scfg.max_batch = 8;
  scfg.flush_deadline_ms = 500.0;
  InferenceService service =
      std::move(pipeline.deploy(fx.net, fx.data.train)).serve(scfg);
  // Pending (undeadlined) requests must drain before the model is handed
  // back.
  auto pending = service.submit(fx.data.test.sample(1));
  DeployedModel model = service.detach();
  EXPECT_EQ(pending.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  (void)pending.get();

  // The returned model is the programmed chip, still bit-identical.
  const Tensor logits = model.forward(fx.data.test.sample(0));
  for (std::int64_t j = 0; j < expected.numel(); ++j) {
    EXPECT_EQ(logits.at(j), expected.at(j));
  }
  // The service is terminal: submissions throw, stats stay readable.
  EXPECT_THROW((void)service.submit(fx.data.test.sample(0)),
               InvalidArgument);
  EXPECT_EQ(service.stats().requests, 1);
}

TEST(InferenceService, BurstLargerThanBoundIsInvalidArgumentNotUnavailable) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 64;
  scfg.flush_deadline_ms = 10000.0;  // hold everything queued
  scfg.max_queue = 2;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  // Queue is EMPTY, yet a burst of 3 can never fit a bound of 2: retrying
  // would never succeed, so this must be InvalidArgument (caller error)
  // with the pinned message -- not Unavailable masquerading as transient
  // overload -- and must not count as a rejection.
  std::vector<Tensor> too_big(3, fx.data.test.sample(0));
  try {
    (void)service.submit_batch(std::move(too_big));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(
        std::string(e.what()).find(InferenceService::kErrBurstTooLarge),
        std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.stats().rejected, 0);
  EXPECT_EQ(service.stats().queued, 0);

  // Genuinely transient fullness keeps the Unavailable path, also pinned.
  auto f0 = service.submit(fx.data.test.sample(0));
  auto f1 = service.submit(fx.data.test.sample(1));
  try {
    (void)service.submit(fx.data.test.sample(2));
    FAIL() << "expected Unavailable";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what()).find(InferenceService::kErrQueueFull),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.stats().rejected, 1);
  (void)service.detach();  // drain without waiting out the 10 s deadline
  (void)f0.get();
  (void)f1.get();
}

TEST(ServiceStats, ItemsRateFallsBackToOneTickOnZeroWall) {
  // The wall between first submit and last completion can round to exactly
  // zero on a coarse steady clock even though requests completed; the rate
  // must then fall back to a one-tick wall -- finite and positive, so
  // completed traffic is never indistinguishable from "no traffic".
  EXPECT_EQ(serve_detail::items_rate(0, 0.0), 0.0);   // no traffic: zero
  EXPECT_EQ(serve_detail::items_rate(0, 1.0), 0.0);
  EXPECT_EQ(serve_detail::items_rate(10, 2.0), 5.0);  // normal path
  const double fallback = serve_detail::items_rate(5, 0.0);
  EXPECT_GT(fallback, 0.0);
  EXPECT_TRUE(std::isfinite(fallback));
  // One tick of the steady clock exactly.
  const double tick =
      std::chrono::duration<double>(std::chrono::steady_clock::duration(1))
          .count();
  EXPECT_EQ(fallback, 5.0 / tick);
  // And the live path: any completed request yields a positive rate.
  DeployedFixture& fx = DeployedFixture::instance();
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve();
  (void)service.submit(fx.data.test.sample(0)).get();
  EXPECT_GT(service.stats().items_per_sec, 0.0);
}

TEST(InferenceService, RecentLatenciesAreChronological) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 1;  // one completion per request
  scfg.flush_deadline_ms = 0.5;
  scfg.latency_window = 4;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  // Await each request before the next submit, snapshotting the window
  // after every completion: chronological (oldest-first) order makes each
  // unsaturated snapshot a prefix of the next, and each saturated snapshot
  // the previous one shifted left by exactly one. Raw ring order would
  // return the newest entry at the overwrite position instead.
  std::vector<std::vector<double>> snaps;
  for (std::int64_t i = 0; i < 7; ++i) {
    (void)service.submit(fx.data.test.sample(i)).get();
    snaps.push_back(service.recent_latencies_ms());
  }
  for (std::size_t k = 0; k < snaps.size(); ++k) {
    ASSERT_EQ(snaps[k].size(), std::min<std::size_t>(k + 1, 4)) << "k=" << k;
  }
  for (std::size_t k = 1; k < 4; ++k) {  // filling: append-only
    for (std::size_t i = 0; i < snaps[k - 1].size(); ++i) {
      EXPECT_EQ(snaps[k][i], snaps[k - 1][i]) << "k=" << k << " i=" << i;
    }
  }
  for (std::size_t k = 4; k < snaps.size(); ++k) {  // saturated: slide by 1
    for (std::size_t i = 0; i + 1 < 4; ++i) {
      EXPECT_EQ(snaps[k][i], snaps[k - 1][i + 1]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(InferenceService, DetachDrainsInFlightBatchesAcrossWorkers) {
  ThreadGuard guard;
  set_num_threads(2);
  DeployedFixture& fx = DeployedFixture::instance();
  Pipeline pipeline{PipelineConfig{}};
  DeployedModel reference = pipeline.deploy(fx.net, fx.data.train);
  const Tensor expected = reference.forward(fx.data.test.sample(0));

  ServeConfig scfg;
  scfg.max_batch = 2;  // a 24-burst shatters into 12 batches
  scfg.flush_deadline_ms = 0.25;
  scfg.workers = 4;
  InferenceService service =
      std::move(pipeline.deploy(fx.net, fx.data.train)).serve(scfg);
  EXPECT_EQ(service.workers(), 4);
  EXPECT_EQ(service.stats().workers, 4);

  // Enqueue enough that several workers hold in-flight batches, then
  // detach immediately: the drain must join ALL workers only after every
  // queued and in-flight request resolved.
  std::vector<Tensor> burst(24, fx.data.test.sample(0));
  auto pending = service.submit_batch(std::move(burst));
  DeployedModel model = service.detach();
  for (auto& f : pending) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const InferenceResult r = f.get();
    for (std::int64_t j = 0; j < expected.numel(); ++j) {
      EXPECT_EQ(r.logits.at(j), expected.at(j));
    }
  }
  const ServiceStats final = service.stats();
  EXPECT_EQ(final.requests, 24);
  EXPECT_EQ(final.queued, 0);
  EXPECT_EQ(final.in_flight, 0);
  EXPECT_EQ(final.busy_workers, 0);
  // The recovered model still answers bit-identically.
  const Tensor logits = model.forward(fx.data.test.sample(0));
  for (std::int64_t j = 0; j < expected.numel(); ++j) {
    EXPECT_EQ(logits.at(j), expected.at(j));
  }
}

TEST(InferenceService, ServesFromLoadedArtifact) {
  DeployedFixture& fx = DeployedFixture::instance();
  Pipeline pipeline{PipelineConfig{}};
  DeployedModel chip = pipeline.deploy(fx.net, fx.data.train);
  const Tensor expected = chip.forward(fx.data.test.sample(0));

  const std::string path = temp_path("served_artifact.epim");
  chip.save(path);
  InferenceService service = std::move(Pipeline::load_deployed(path)).serve();
  const InferenceResult r = service.submit(fx.data.test.sample(0)).get();
  for (std::int64_t j = 0; j < expected.numel(); ++j) {
    EXPECT_EQ(r.logits.at(j), expected.at(j));
  }
  std::remove(path.c_str());
}

// ---- request deadlines ----

TEST(ServiceDeadline, ExpiredRequestsAreShedAtBatchCloseNeverExecuted) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 64;
  scfg.flush_deadline_ms = 30.0;  // flush well after the deadlines expire
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  SubmitOptions opts;
  opts.deadline_ms = 1.0;
  std::vector<std::future<InferenceResult>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(service.submit(fx.data.test.sample(i), opts));
  }
  for (auto& f : doomed) {
    try {
      f.get();
      FAIL() << "request outlived a 1 ms deadline under a 30 ms flush";
    } catch (const DeadlineExceeded& e) {
      EXPECT_NE(
          std::string(e.what()).find(InferenceService::kErrDeadlineExceeded),
          std::string::npos)
          << e.what();
    }
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_misses, 3);
  EXPECT_EQ(stats.batches, 0) << "dead requests must never reach run_batch";
  EXPECT_EQ(stats.requests, 0);

  // The service is unharmed: an undeadlined submit completes normally.
  (void)service.submit(fx.data.test.sample(0)).get();
  stats = service.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.deadline_misses, 3);
}

TEST(ServiceDeadline, AdmissionShedsExpiredRequestsInsteadOfRejecting) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.workers = 1;
  scfg.max_batch = 8;
  scfg.max_queue = 12;
  scfg.flush_deadline_ms = 50.0;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  // Batch A closes immediately (it hits max_batch) and occupies the
  // worker.
  std::vector<Tensor> burst(8, fx.data.test.sample(0));
  auto batch_a = service.submit_batch(burst);
  for (int spin = 0; spin < 1000 && service.stats().queued > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Four requests whose deadline expires long before the 50 ms flush.
  SubmitOptions tight;
  tight.deadline_ms = 0.05;
  std::vector<std::future<InferenceResult>> dead;
  for (int i = 0; i < 4; ++i) {
    dead.push_back(service.submit(fx.data.test.sample(i), tight));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Fill the queue to its bound, then submit one more. The expired four
  // must be shed to admit it -- wherever the shed lands (admission sweep
  // or batch close), live traffic is never rejected while dead requests
  // hold queue slots.
  auto batch_b = service.submit_batch(burst);
  std::future<InferenceResult> last;
  EXPECT_NO_THROW(last = service.submit(fx.data.test.sample(0)));

  for (auto& f : dead) {
    EXPECT_THROW(f.get(), DeadlineExceeded);
  }
  for (auto& f : batch_a) (void)f.get();
  for (auto& f : batch_b) (void)f.get();
  (void)last.get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 0)
      << "expired requests must be shed, not counted as overload";
  EXPECT_EQ(stats.deadline_misses, 4);
  EXPECT_EQ(stats.requests, 17);
}

TEST(ServiceDeadline, ValidatesOptionsAndTreatsZeroAsNoDeadline) {
  DeployedFixture& fx = DeployedFixture::instance();
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve();

  SubmitOptions negative;
  negative.deadline_ms = -1.0;
  EXPECT_THROW((void)service.submit(fx.data.test.sample(0), negative),
               InvalidArgument);

  SubmitOptions none;  // deadline_ms == 0.0: no deadline
  (void)service.submit(fx.data.test.sample(0), none).get();
  SubmitOptions generous;
  generous.deadline_ms = 1e9;
  (void)service.submit_batch({fx.data.test.sample(1)}, generous)[0].get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_misses, 0);
  EXPECT_EQ(stats.requests, 2);
}

// ---- SLA-aware scheduling core (serve/scheduler.hpp) ----

// The PR 5 bit-identity grid, extended across the scheduler's dimensions:
// every priority class, one vs. several fairness clients, one vs. several
// workers, and the batch-size sweep. Scheduling may only change completion
// ORDER -- every logit and clip count must match the serial direct path bit
// for bit at every grid point.
TEST(SchedulerService, ResultsBitIdenticalAcrossPriorityClientWorkerGrid) {
  ThreadGuard guard;
  DeployedFixture& fx = DeployedFixture::instance();
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(6, 8);
  Pipeline pipeline(cfg);

  DeployedModel reference = pipeline.deploy(fx.net, fx.data.train);
  std::vector<Tensor> expected;
  std::vector<std::int64_t> expected_clips;
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    expected.push_back(reference.forward(fx.data.test.sample(i)));
    expected_clips.push_back(reference.last_clip_count());
  }

  constexpr Priority kClasses[] = {Priority::kInteractive, Priority::kNormal,
                                   Priority::kBulk};
  for (const int clients : {1, 4}) {
    for (const int workers : {1, 3}) {
      for (const int max_batch : {1, 5, 64}) {
        SCOPED_TRACE("clients " + std::to_string(clients) + " workers " +
                     std::to_string(workers) + " max_batch " +
                     std::to_string(max_batch));
        ServeConfig scfg;
        scfg.max_batch = max_batch;
        scfg.flush_deadline_ms = 1.0;
        scfg.workers = workers;
        InferenceService service =
            std::move(pipeline.deploy(fx.net, fx.data.train)).serve(scfg);

        // Interleave all three classes across the client set per request,
        // so every (priority, client) queue carries traffic concurrently.
        std::vector<std::future<InferenceResult>> futures;
        for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
          SubmitOptions options;
          options.priority = kClasses[static_cast<std::size_t>(i) % 3];
          options.client_id =
              "client" + std::to_string(static_cast<int>(i) % clients);
          futures.push_back(
              service.submit(fx.data.test.sample(i), options));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const InferenceResult r = futures[i].get();
          ASSERT_EQ(r.logits.shape(), expected[i].shape());
          for (std::int64_t j = 0; j < r.logits.numel(); ++j) {
            EXPECT_EQ(r.logits.at(j), expected[i].at(j))
                << "image " << i << " logit " << j;
          }
          EXPECT_EQ(r.clip_count, expected_clips[i]) << "image " << i;
        }
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.requests, fx.data.test.size());
        EXPECT_EQ(stats.completed_by_priority[0] +
                      stats.completed_by_priority[1] +
                      stats.completed_by_priority[2],
                  stats.requests);
      }
    }
  }
}

// Satellite bugfix pins, reslice OFF half: a burst that exceeds max_queue
// only because re-slicing is disabled still throws the pinned
// kErrBurstTooLarge (InvalidArgument, not Unavailable, not counted as a
// rejection).
TEST(SchedulerService, OversizedBurstWithResliceDisabledIsBurstTooLarge) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 8;
  scfg.workers = 2;
  scfg.max_queue = 4;
  scfg.reslice_bursts = false;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);
  std::vector<Tensor> burst(12, fx.data.test.sample(0));
  try {
    (void)service.submit_batch(std::move(burst));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(
        std::string(e.what()).find(InferenceService::kErrBurstTooLarge),
        std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.stats().rejected, 0);
  EXPECT_EQ(service.stats().queued, 0);
}

// Satellite bugfix pins, reslice ON half: the same burst is admitted
// against max_queue + max_workers*max_batch (its slices stream to the pool
// instead of sitting queued), accounted exactly ONCE at submit -- and a
// burst beyond even that extended bound still dies with the pinned
// kErrBurstTooLarge.
TEST(SchedulerService, ReslicedBurstAdmitsOnceAgainstExtendedBound) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 8;
  scfg.workers = 2;
  scfg.max_queue = 4;
  scfg.reslice_bursts = true;  // the default, spelled out for the pin
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  // 12 > max_queue (4) but within 4 + 2*8 = 20: admitted whole, no
  // rejection, every request completes.
  std::vector<Tensor> burst(12, fx.data.test.sample(0));
  auto futures = service.submit_batch(std::move(burst));
  for (auto& f : futures) (void)f.get();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 12);
  EXPECT_EQ(stats.rejected, 0);

  // 25 > 20 can never be admitted however empty the queue: the pinned
  // never-admissible error, still not a "rejection".
  std::vector<Tensor> too_big(25, fx.data.test.sample(0));
  try {
    (void)service.submit_batch(std::move(too_big));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(
        std::string(e.what()).find(InferenceService::kErrBurstTooLarge),
        std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.stats().rejected, 0);

  // "Counted once at submit": back-to-back resliced bursts that fit the
  // extended bound together are both admitted -- the concurrent slices of
  // the first can never re-trigger admission against the second.
  std::vector<Tensor> a(10, fx.data.test.sample(0));
  std::vector<Tensor> b(10, fx.data.test.sample(1));
  auto fa = service.submit_batch(std::move(a));
  auto fb = service.submit_batch(std::move(b));
  for (auto& f : fa) (void)f.get();
  for (auto& f : fb) (void)f.get();
  EXPECT_EQ(service.stats().rejected, 0);
  EXPECT_EQ(service.stats().requests, 32);
}

// A reslice-eligible burst (strictly larger than max_batch) must drain as
// thin concurrent slices, not max_batch-greedy closes: with 4 idle workers
// and a 24-burst at max_batch 16, the first close takes ceil(24/4) = 6 and
// no later close can exceed that, so the burst runs as at least 4 batches
// of mean <= 6 -- where the FIFO control closes exactly 16 + 8 = 2 batches.
TEST(SchedulerService, BurstIsReslicedAcrossIdleWorkers) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 16;
  scfg.flush_deadline_ms = 20.0;  // the FIFO control's 8-tail must hold
  scfg.workers = 4;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);
  std::vector<Tensor> burst;
  for (int i = 0; i < 24; ++i) {
    burst.push_back(fx.data.test.sample(i % fx.data.test.size()));
  }
  auto futures = service.submit_batch(std::move(burst));
  for (auto& f : futures) (void)f.get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 24);
  EXPECT_GE(stats.batches, 4);
  EXPECT_LE(stats.mean_batch_size, 6.0);

  // Control: re-slicing off, the same burst drains max_batch-greedy as one
  // batch of 16 plus a flush-held batch of 8.
  ServeConfig fifo = scfg;
  fifo.reslice_bursts = false;
  InferenceService serial =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(fifo);
  std::vector<Tensor> burst2;
  for (int i = 0; i < 24; ++i) {
    burst2.push_back(fx.data.test.sample(i % fx.data.test.size()));
  }
  auto futures2 = serial.submit_batch(std::move(burst2));
  for (auto& f : futures2) (void)f.get();
  EXPECT_EQ(serial.stats().batches, 2);
  EXPECT_EQ(serial.stats().mean_batch_size, 12.0);
}

// The adaptive pool grows one worker per demand event up to max_workers
// while queued work exceeds what the idle workers can absorb, and shrinks
// back to the `workers` floor once idle.
TEST(SchedulerService, AdaptivePoolGrowsUnderBacklogAndShrinksWhenIdle) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 1;
  scfg.flush_deadline_ms = 0.5;
  scfg.workers = 1;
  scfg.max_workers = 4;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.workers, 1);
  EXPECT_EQ(stats.max_workers, 4);
  EXPECT_EQ(stats.live_workers, 1);

  // Park every executing batch so backlog builds deterministically: each
  // submission past the idle capacity is a growth event.
  fault::arm_gate("serve.run_batch");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(fx.data.test.sample(0)));
  }
  const auto grow_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().live_workers < 4 &&
         std::chrono::steady_clock::now() < grow_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.stats().live_workers, 4);

  fault::open_gate("serve.run_batch");
  for (auto& f : futures) (void)f.get();
  fault::disarm("serve.run_batch");

  // Idle shrink: back to the floor (never below), one idle timeout per
  // surplus worker.
  const auto shrink_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().live_workers > 1 &&
         std::chrono::steady_clock::now() < shrink_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stats = service.stats();
  EXPECT_EQ(stats.live_workers, 1);
  EXPECT_EQ(stats.requests, 8);

  // The shrunk pool still serves (a retired slot regrows on demand).
  (void)service.submit(fx.data.test.sample(0)).get();
  EXPECT_EQ(service.stats().requests, 9);
}

// Per-priority stats splits: the scalar counters stay the class sums.
TEST(SchedulerService, StatsSplitQueuedCompletedAndMissesByPriority) {
  DeployedFixture& fx = DeployedFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 1;
  scfg.workers = 1;
  InferenceService service =
      std::move(Pipeline{PipelineConfig{}}.deploy(fx.net, fx.data.train))
          .serve(scfg);

  // Park the worker, then queue one request per class behind the gate.
  fault::arm_gate("serve.run_batch");
  std::vector<std::future<InferenceResult>> futures;
  futures.push_back(service.submit(fx.data.test.sample(0)));
  fault::wait_for_hits("serve.run_batch", 1);
  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  SubmitOptions bulk;
  bulk.priority = Priority::kBulk;
  futures.push_back(service.submit(fx.data.test.sample(1), interactive));
  futures.push_back(service.submit(fx.data.test.sample(2), bulk));
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.queued_by_priority[static_cast<int>(
                Priority::kInteractive)],
            1);
  EXPECT_EQ(stats.queued_by_priority[static_cast<int>(Priority::kBulk)], 1);

  // A bulk request with an already-expired deadline sheds as a bulk miss.
  SubmitOptions doomed;
  doomed.priority = Priority::kBulk;
  doomed.deadline_ms = 0.0001;
  auto dead = service.submit(fx.data.test.sample(3), doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fault::open_gate("serve.run_batch");
  for (auto& f : futures) (void)f.get();
  EXPECT_THROW((void)dead.get(), DeadlineExceeded);
  fault::disarm("serve.run_batch");

  stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.completed_by_priority[static_cast<int>(
                Priority::kInteractive)],
            1);
  EXPECT_EQ(stats.completed_by_priority[static_cast<int>(Priority::kNormal)],
            1);
  EXPECT_EQ(stats.completed_by_priority[static_cast<int>(Priority::kBulk)],
            1);
  EXPECT_EQ(stats.deadline_misses, 1);
  EXPECT_EQ(stats.deadline_misses_by_priority[static_cast<int>(
                Priority::kBulk)],
            1);
  EXPECT_EQ(stats.deadline_misses_by_priority[static_cast<int>(
                Priority::kInteractive)],
            0);
}

}  // namespace
}  // namespace epim
