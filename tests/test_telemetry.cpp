// Tests for the fleet telemetry layer (src/telemetry/): metric primitives
// (boundary/overflow bucketing, high-water gauges, nearest-rank quantiles),
// lossless concurrent recording, pinned registration errors, a golden
// Prometheus text exposition, the trace-span ring, and the instrumented
// layers end-to-end -- including the lockdep-gated pin that
// telemetry::Registry::mu_ is a LEAF (no outgoing edges, never taken under
// ModelRegistry::mu_).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/lock_debug.hpp"
#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/service.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::HistogramOptions;
using telemetry::Labels;
using telemetry::Registry;

// ---- primitives ----

TEST(TelemetryCounter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(TelemetryGauge, TracksValueAndHighWater) {
  Gauge g;
  g.add(5);
  g.add(3);
  g.sub(6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_water(), 8);
  g.set(4);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.high_water(), 8);  // sub/set-below never raise it
  g.set(11);
  EXPECT_EQ(g.high_water(), 11);
}

TEST(TelemetryHistogram, BoundaryValueLandsInLowerBucket) {
  HistogramOptions opt;
  opt.first_bound = 1.0;
  opt.buckets = 4;  // inclusive upper bounds 1, 2, 4, 8
  Histogram h(opt);
  h.observe(1.0);  // exactly on the first bound -> bucket 0, not bucket 1
  h.observe(2.0);  // exactly on the second bound -> bucket 1
  h.observe(2.0000001);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 0);
  EXPECT_EQ(h.overflow_count(), 0);
}

TEST(TelemetryHistogram, OverflowBucketCatchesLargeSamples) {
  HistogramOptions opt;
  opt.first_bound = 1.0;
  opt.buckets = 4;
  Histogram h(opt);
  h.observe(8.0);    // exactly the largest finite bound: finite bucket
  h.observe(8.0001); // past it: overflow
  h.observe(1.0e18);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.overflow_count(), 2);
  EXPECT_EQ(h.count(), 3);
}

TEST(TelemetryHistogram, QuantileIsBucketUpperBoundNearestRank) {
  HistogramOptions opt;
  opt.first_bound = 1.0;
  opt.buckets = 4;
  Histogram h(opt);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty -> 0
  for (int i = 0; i < 9; ++i) h.observe(0.5);  // bucket 0 (bound 1)
  h.observe(100.0);                            // overflow
  EXPECT_EQ(h.quantile(0.50), 1.0);
  EXPECT_EQ(h.quantile(0.90), 1.0);
  // The p99+ rank lands in the overflow bucket: clamped to the largest
  // finite bound, not infinity.
  EXPECT_EQ(h.quantile(0.99), 8.0);
  EXPECT_EQ(h.quantile(1.0), 8.0);
  EXPECT_THROW((void)h.quantile(1.5), InvalidArgument);
}

TEST(TelemetryHistogram, ResetZeroesEverything) {
  Histogram h;
  h.observe(1.0);
  h.observe(2.0);
  ASSERT_EQ(h.count(), 2);
  ASSERT_GT(h.sum(), 0.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNoCounts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  HistogramOptions opt;
  opt.first_bound = 1.0;
  opt.buckets = 8;
  Histogram h(opt);
  Counter c;
  Gauge g;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        // Spread samples across buckets (and the overflow slot).
        h.observe(static_cast<double>((t + i) % 300));
        c.inc(1);
        g.add(1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(), kThreads * kPerThread);
}

TEST(Telemetry, RecordingKillSwitchDropsEverySample) {
  Counter c;
  Gauge g;
  Histogram h;
  telemetry::set_recording(false);
  c.inc(5);
  g.add(5);
  h.observe(5.0);
  telemetry::set_recording(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.inc(1);
  EXPECT_EQ(c.value(), 1);  // switch restored
}

// ---- registry: registration rules (pinned errors) ----

TEST(TelemetryRegistry, DuplicateRegistrationThrowsPinnedError) {
  Registry reg;
  reg.register_counter("epim_test_dup_total", "First.");
  try {
    reg.register_gauge("epim_test_dup_total", "Second, any type.");
    FAIL() << "duplicate registration must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(Registry::kErrDuplicateMetric),
              std::string::npos)
        << e.what();
  }
}

TEST(TelemetryRegistry, BadNamesAndLookupsThrowPinnedErrors) {
  Registry reg;
  EXPECT_THROW(reg.register_counter("serve_requests_total", "No prefix."),
               InvalidArgument);
  EXPECT_THROW(reg.register_counter("epim_Serve_total", "Uppercase."),
               InvalidArgument);
  EXPECT_THROW(reg.register_counter("epim_", "Bare prefix."),
               InvalidArgument);
  try {
    reg.register_counter("epim_bad-name", "Dash.");
    FAIL() << "bad name must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(Registry::kErrBadMetricName),
              std::string::npos);
  }
  try {
    (void)reg.counter("epim_test_never_registered_total");
    FAIL() << "unknown family must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(Registry::kErrUnknownMetric),
              std::string::npos);
  }
  reg.register_counter("epim_test_typed_total", "A counter.");
  try {
    (void)reg.gauge("epim_test_typed_total");
    FAIL() << "type mismatch must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(Registry::kErrMetricType),
              std::string::npos);
  }
  try {
    (void)reg.counter("epim_test_typed_total", {{"bad label", "x"}});
    FAIL() << "bad label name must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(Registry::kErrBadLabel),
              std::string::npos);
  }
  EXPECT_THROW(
      (void)reg.counter("epim_test_typed_total", {{"a", "1"}, {"a", "2"}}),
      InvalidArgument);
}

TEST(TelemetryRegistry, SeriesPointersAreStableAndLabelOrderCanonical) {
  Registry reg;
  reg.register_counter("epim_test_stable_total", "Stable.");
  Counter* a = reg.counter("epim_test_stable_total",
                           {{"x", "1"}, {"y", "2"}});
  Counter* b = reg.counter("epim_test_stable_total",
                           {{"y", "2"}, {"x", "1"}});  // same series, reordered
  Counter* other = reg.counter("epim_test_stable_total", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->inc(3);
  EXPECT_EQ(b->value(), 3);
}

// ---- registry: golden exposition ----

TEST(TelemetryRegistry, RenderTextMatchesGolden) {
  Registry reg;
  reg.register_gauge("epim_test_depth", "Depth.");
  HistogramOptions opt;
  opt.first_bound = 1.0;
  opt.buckets = 4;
  reg.register_histogram("epim_test_latency_ms", "Latency.", opt);
  reg.register_counter("epim_test_requests_total", "Requests.");

  reg.gauge("epim_test_depth")->set(7);
  Histogram* h = reg.histogram("epim_test_latency_ms", {{"model", "a"}});
  h->observe(0.5);
  h->observe(1.0);    // boundary: lower bucket
  h->observe(3.0);
  h->observe(100.0);  // overflow
  reg.counter("epim_test_requests_total", {{"model", "a"}})->inc(3);
  reg.counter("epim_test_requests_total", {{"model", "b"}})->inc(1);

  const std::string golden =
      "# HELP epim_test_depth Depth.\n"
      "# TYPE epim_test_depth gauge\n"
      "epim_test_depth 7\n"
      "# HELP epim_test_latency_ms Latency.\n"
      "# TYPE epim_test_latency_ms histogram\n"
      "epim_test_latency_ms_bucket{model=\"a\",le=\"1\"} 2\n"
      "epim_test_latency_ms_bucket{model=\"a\",le=\"2\"} 2\n"
      "epim_test_latency_ms_bucket{model=\"a\",le=\"4\"} 3\n"
      "epim_test_latency_ms_bucket{model=\"a\",le=\"8\"} 3\n"
      "epim_test_latency_ms_bucket{model=\"a\",le=\"+Inf\"} 4\n"
      "epim_test_latency_ms_sum{model=\"a\"} 104.5\n"
      "epim_test_latency_ms_count{model=\"a\"} 4\n"
      "# HELP epim_test_requests_total Requests.\n"
      "# TYPE epim_test_requests_total counter\n"
      "epim_test_requests_total{model=\"a\"} 3\n"
      "epim_test_requests_total{model=\"b\"} 1\n";
  EXPECT_EQ(reg.render_text(), golden);
  EXPECT_EQ(reg.family_count(), 3u);
}

TEST(TelemetryRegistry, RenderTextEscapesLabelValuesAndHelp) {
  Registry reg;
  reg.register_counter("epim_test_escape_total", "Line one\nwith \\ slash.");
  reg.counter("epim_test_escape_total", {{"m", "a\"b\\c\nd"}})->inc(1);
  const std::string golden =
      "# HELP epim_test_escape_total Line one\\nwith \\\\ slash.\n"
      "# TYPE epim_test_escape_total counter\n"
      "epim_test_escape_total{m=\"a\\\"b\\\\c\\nd\"} 1\n";
  EXPECT_EQ(reg.render_text(), golden);
}

// ---- trace ring ----

TEST(TelemetryTrace, RingRecordsAndSnapshotsInOrder) {
  telemetry::clear_trace();
  telemetry::set_tracing(true);
  for (int i = 0; i < 5; ++i) {
    telemetry::SpanRecord s;
    std::snprintf(s.model, sizeof(s.model), "m%d", i);
    s.worker = static_cast<std::uint32_t>(i);
    s.batch = 1;
    s.submit_ms = i;
    s.close_ms = i + 0.5;
    s.run_begin_ms = i + 0.5;
    s.run_end_ms = i + 1.0;
    telemetry::record_span(s);
  }
  telemetry::set_tracing(false);
  EXPECT_EQ(telemetry::spans_recorded(), 5u);
  const std::vector<telemetry::SpanRecord> spans = telemetry::snapshot_spans();
  ASSERT_EQ(spans.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].worker,
              static_cast<std::uint32_t>(i));
  }
  // Disarmed recording is a no-op.
  telemetry::record_span(spans[0]);
  EXPECT_EQ(telemetry::spans_recorded(), 5u);
  telemetry::clear_trace();
  EXPECT_EQ(telemetry::snapshot_spans().size(), 0u);
}

TEST(TelemetryTrace, RingOverwritesOldestPastCapacity) {
  telemetry::clear_trace();
  telemetry::set_tracing(true);
  const std::size_t capacity = telemetry::trace_capacity();
  telemetry::SpanRecord s;
  std::snprintf(s.model, sizeof(s.model), "overflow");
  for (std::size_t i = 0; i < capacity + 10; ++i) {
    s.worker = static_cast<std::uint32_t>(i);
    telemetry::record_span(s);
  }
  telemetry::set_tracing(false);
  EXPECT_EQ(telemetry::spans_recorded(), capacity + 10);
  const std::vector<telemetry::SpanRecord> spans = telemetry::snapshot_spans();
  ASSERT_EQ(spans.size(), capacity);
  // Oldest surviving record is ticket 10.
  EXPECT_EQ(spans.front().worker, 10u);
  EXPECT_EQ(spans.back().worker, static_cast<std::uint32_t>(capacity + 9));
  telemetry::clear_trace();
}

TEST(TelemetryTrace, RenderJsonEmitsQueueAndRunEvents) {
  telemetry::clear_trace();
  telemetry::set_tracing(true);
  telemetry::SpanRecord s;
  std::snprintf(s.model, sizeof(s.model), "json\"model");
  s.worker = 3;
  s.batch = 2;
  s.submit_ms = 1.0;
  s.close_ms = 2.0;
  s.run_begin_ms = 2.0;
  s.run_end_ms = 4.0;
  telemetry::record_span(s);
  telemetry::set_tracing(false);
  const std::string json = telemetry::render_trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000,\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("json\\\"model"), std::string::npos);  // escaped quote
  telemetry::clear_trace();
}

// ---- instrumented layers end-to-end ----

struct TinyModel {
  TinyModel() {
    SyntheticSpec spec;
    spec.num_classes = 2;
    spec.train_per_class = 6;
    spec.test_per_class = 2;
    data = make_synthetic_data(spec);
    SmallNetConfig nc;
    nc.num_classes = 2;
    net = std::make_unique<SmallEpitomeNet>(nc);
    TrainConfig tcfg;
    tcfg.epochs = 1;
    train_model(*net, data, tcfg);
  }
  DeployedModel deploy() {
    return Pipeline(PipelineConfig{}).deploy(*net, data.train);
  }
  SyntheticData data;
  std::unique_ptr<SmallEpitomeNet> net;
};

TEST(TelemetryServe, QueuedStatsAndQueueDepthGaugeAgree) {
  TinyModel tiny;
  ServeConfig scfg;
  scfg.workers = 1;
  scfg.max_batch = 1;
  InferenceService service(tiny.deploy(), scfg, "gate_test");
  // Queue depth is a per-priority series since the scheduler PR; default
  // submissions land in the "normal" class.
  Gauge* depth = telemetry::Registry::process().gauge(
      "epim_serve_queue_depth",
      {{"model", "gate_test"}, {"priority", "normal"}});
  ASSERT_EQ(depth->value(), 0);

  // Park the single worker inside run_batch: the batch it closed is in
  // flight, the rest of the burst stays queued, and both the guarded
  // ServiceStats::queued counter and the lock-free gauge must agree.
  fault::arm_gate("serve.run_batch");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(tiny.data.test.sample(0)));
  }
  fault::wait_for_hits("serve.run_batch", 1);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.in_flight, 1);
  EXPECT_EQ(depth->value(), 2);

  fault::open_gate("serve.run_batch");
  for (auto& f : futures) f.get();
  fault::disarm("serve.run_batch");
  stats = service.stats();
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(depth->value(), 0);
  // The worker may drain the first submit before the others land, so only
  // the parked-gate depth of 2 is a guaranteed high-water mark.
  EXPECT_GE(depth->high_water(), 2);

  // The shared per-label series saw the traffic too.
  Counter* requests = telemetry::Registry::process().counter(
      "epim_serve_requests_total", {{"model", "gate_test"}});
  EXPECT_EQ(requests->value(), 3);
  Histogram* latency = telemetry::Registry::process().histogram(
      "epim_serve_latency_ms",
      {{"model", "gate_test"}, {"priority", "normal"}});
  EXPECT_EQ(latency->count(), 3);
}

TEST(TelemetryServe, StatsPercentilesComeFromIntervalHistogram) {
  TinyModel tiny;
  InferenceService service(tiny.deploy(), ServeConfig{},
                           "percentile_test");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(tiny.data.test.sample(0)));
  }
  for (auto& f : futures) f.get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  // The recent-latency window (exact samples) survives the histogram
  // switch; the histogram answers with a bucket UPPER bound, so it is >=
  // the exact median.
  EXPECT_EQ(service.recent_latencies_ms().size(), 8u);
  service.reset();
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.p50_latency_ms, 0.0);
  EXPECT_EQ(after.p99_latency_ms, 0.0);
  EXPECT_TRUE(service.recent_latencies_ms().empty());
}

TEST(TelemetryRegistryIntegration, LifecycleSeriesFollowTheMachine) {
  TinyModel tiny;
  Registry& process = telemetry::Registry::process();
  RegistryConfig rcfg;
  rcfg.max_resident_models = 1;
  ModelRegistry registry(rcfg);
  registry.register_model("telem", "v1", tiny.deploy());
  registry.register_model("telem", "v2", tiny.deploy());

  Counter* v1_resident = process.counter(
      "epim_registry_transitions_total",
      {{"model", "telem@v1"}, {"to", "resident"}});
  Counter* v1_evicted =
      process.counter("epim_registry_evictions_total", {{"model", "telem@v1"}});
  Histogram* v1_mat = process.histogram("epim_registry_materialize_ms",
                                        {{"model", "telem@v1"}});
  Gauge* v1_pins =
      process.gauge("epim_registry_pins_depth", {{"model", "telem@v1"}});
  ASSERT_EQ(v1_resident->value(), 0);

  registry.submit("telem", "v1", tiny.data.test.sample(0)).get();
  EXPECT_EQ(v1_resident->value(), 1);
  EXPECT_EQ(v1_mat->count(), 1);
  EXPECT_GT(v1_mat->sum(), 0.0);
  EXPECT_EQ(v1_pins->value(), 0);       // pinned around the enqueue only
  EXPECT_GE(v1_pins->high_water(), 1);  // ... but it was pinned

  // Materializing v2 exceeds the budget of 1 and evicts v1.
  registry.submit("telem", "v2", tiny.data.test.sample(0)).get();
  EXPECT_EQ(v1_evicted->value(), 1);

  // Re-materializing v1 CONTINUES its monotonic series (same pointers).
  registry.submit("telem", "v1", tiny.data.test.sample(0)).get();
  EXPECT_EQ(v1_resident->value(), 2);
  EXPECT_EQ(v1_mat->count(), 2);

  // The service the registry materialized records under "name@version".
  Counter* v1_requests = process.counter("epim_serve_requests_total",
                                         {{"model", "telem@v1"}});
  EXPECT_EQ(v1_requests->value(), 2);
}

TEST(TelemetryFault, ArmedPointsMirrorHitAndFireCounters) {
  // Under a gtest filter this can be the process's first registry touch.
  telemetry::metrics::ensure_registered();
  Registry& process = telemetry::Registry::process();
  Counter* hits = process.counter("epim_fault_hits_total",
                                  {{"point", "telemetry.test.point"}});
  Counter* fires = process.counter("epim_fault_fires_total",
                                   {{"point", "telemetry.test.point"}});
  const std::int64_t hits0 = hits->value();
  const std::int64_t fires0 = fires->value();
  fault::arm_nth("telemetry.test.point", 2);
  EXPECT_FALSE(fault::should_fire("telemetry.test.point"));
  EXPECT_TRUE(fault::should_fire("telemetry.test.point"));
  EXPECT_FALSE(fault::should_fire("telemetry.test.point"));
  fault::disarm("telemetry.test.point");
  EXPECT_EQ(hits->value() - hits0, 3);
  EXPECT_EQ(fires->value() - fires0, 1);
}

// ---- lockdep: the telemetry mutex is a leaf ----

TEST(TelemetryLockdep, RegistryMutexIsALeaf) {
  if (!debug::kLockDebugEnabled) {
    GTEST_SKIP() << "build with -DEPIM_LOCK_DEBUG=ON to check lock order";
  }
  // Drive every instrumented path: registration + series lookup, serving
  // traffic, registry materialize/evict/scrape, fault points, and a render
  // -- then pin the leaf contract on the accumulated acquisition graph.
  TinyModel tiny;
  RegistryConfig rcfg;
  rcfg.max_resident_models = 1;
  ModelRegistry registry(rcfg);
  registry.register_model("leaf", "v1", tiny.deploy());
  registry.register_model("leaf", "v2", tiny.deploy());
  registry.submit("leaf", "v1", tiny.data.test.sample(0)).get();
  registry.submit("leaf", "v2", tiny.data.test.sample(0)).get();  // evicts v1
  (void)registry.stats();
  fault::arm_nth("telemetry.leaf.point", 1000);
  (void)fault::should_fire("telemetry.leaf.point");
  fault::disarm("telemetry.leaf.point");
  (void)telemetry::Registry::process().render_text();

  debug::LockOrderRegistry& graph = debug::LockOrderRegistry::instance();
  const std::string telemetry_mu = "telemetry::Registry::mu_";
  // Never taken UNDER any instrumented layer's lock: series are resolved
  // before those locks, recording is lock-free.
  EXPECT_FALSE(graph.has_edge("ModelRegistry::mu_", telemetry_mu));
  EXPECT_FALSE(graph.has_edge("InferenceService::mu_", telemetry_mu));
  EXPECT_FALSE(graph.has_edge("InferenceService::stats_mu_", telemetry_mu));
  EXPECT_FALSE(graph.has_edge("fault::FaultRegistry::mu_", telemetry_mu));
  EXPECT_FALSE(graph.has_edge("parallel::ThreadPool::mutex_", telemetry_mu));
  // And NOTHING is acquired under it (leaf): render_text reads atomics only.
  EXPECT_FALSE(graph.has_edge(telemetry_mu, "ModelRegistry::mu_"));
  EXPECT_FALSE(graph.has_edge(telemetry_mu, "InferenceService::mu_"));
  EXPECT_FALSE(graph.has_edge(telemetry_mu, "InferenceService::stats_mu_"));
  EXPECT_FALSE(graph.has_edge(telemetry_mu, "fault::FaultRegistry::mu_"));
  EXPECT_FALSE(graph.has_edge(telemetry_mu, "parallel::ThreadPool::mutex_"));
  // Positive control: the graph is live (the service's one legal edge).
  EXPECT_TRUE(graph.has_edge("InferenceService::mu_",
                             "InferenceService::stats_mu_"));
}

}  // namespace
}  // namespace epim
