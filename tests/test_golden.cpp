// Golden end-to-end regression tests: the paper-facing numbers and report
// rendering are pinned at string/value level, so façade or backend
// refactors cannot silently drift them. If a change legitimately moves one
// of these values, update the golden here *in the same PR* and call the
// movement out in review.
//
// Everything below is deterministic by construction: seeded RNG everywhere,
// chunk-ordered parallel reductions (common/parallel.hpp), and double/float
// arithmetic on the SSE2 baseline (no FMA contraction at default -O2), so
// the pins hold across gcc/clang at any thread count.
#include <gtest/gtest.h>

#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "pipeline/pipeline.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

TEST(GoldenReport, ResNet18DefaultSummaryPinned) {
  const CompiledModel model = Pipeline{PipelineConfig{}}.compile(resnet18());
  const std::string expected =
      "=== EPIM pipeline report: ResNet18 ===\n"
      "| metric                     | value                |\n"
      "|----------------------------+----------------------|\n"
      "| network                    | ResNet18             |\n"
      "| weighted layers            | 21                   |\n"
      "| epitome layers             | 13                   |\n"
      "| design                     | uniform 1024x256     |\n"
      "| precision                  | W9A9                 |\n"
      "| backend                    | analytical-estimator |\n"
      "| parameters (M)             | 2.96                 |\n"
      "| param compression          | 3.95x                |\n"
      "| crossbars                  | 926                  |\n"
      "| latency (ms)               | 22.8                 |\n"
      "| dynamic energy (mJ)        | 2.2                  |\n"
      "| static energy (mJ)         | 2.1                  |\n"
      "| energy (mJ)                | 4.3                  |\n"
      "| EDP (mJ*ms)                | 98                   |\n"
      "| memristor utilization      | 97.5%                |\n"
      "| top-1 accuracy (projected) | 73.95                |\n";
  EXPECT_EQ(model.summary(), expected);
}

TEST(GoldenReport, ResNet50DefaultSummaryPinned) {
  // The headline configuration of the paper reproduction: ResNet-50 under
  // the uniform 1024x256 epitome policy at W9A9.
  const CompiledModel model = Pipeline{PipelineConfig{}}.compile(resnet50());
  const std::string expected =
      "=== EPIM pipeline report: ResNet50 ===\n"
      "| metric                     | value                |\n"
      "|----------------------------+----------------------|\n"
      "| network                    | ResNet50             |\n"
      "| weighted layers            | 54                   |\n"
      "| epitome layers             | 33                   |\n"
      "| design                     | uniform 1024x256     |\n"
      "| precision                  | W9A9                 |\n"
      "| backend                    | analytical-estimator |\n"
      "| parameters (M)             | 7.20                 |\n"
      "| param compression          | 3.54x                |\n"
      "| crossbars                  | 2236                 |\n"
      "| latency (ms)               | 49.2                 |\n"
      "| dynamic energy (mJ)        | 6.5                  |\n"
      "| static energy (mJ)         | 11.0                 |\n"
      "| energy (mJ)                | 17.5                 |\n"
      "| EDP (mJ*ms)                | 859                  |\n"
      "| memristor utilization      | 98.3%                |\n"
      "| top-1 accuracy (projected) | 73.96                |\n";
  EXPECT_EQ(model.summary(), expected);
}

TEST(GoldenQuickstart, TrainDeployAccuracyPinned) {
  // The quickstart train->deploy loop (same spec as the README / example
  // flow): float accuracy, on-chip accuracy, crossbar count and clip count
  // are all pinned. Seeded data synthesis + seeded init + deterministic
  // parallel reductions make this exact.
  SyntheticSpec dspec;
  dspec.num_classes = 5;
  dspec.train_per_class = 20;
  dspec.test_per_class = 10;
  dspec.noise = 0.3f;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 5;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  const TrainResult trained = train_model(net, data, tcfg);
  EXPECT_DOUBLE_EQ(trained.test_accuracy, 0.62);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(8, 10);
  DeployedModel chip = Pipeline(cfg).deploy(net, data.train);
  EXPECT_EQ(chip.total_crossbars(), 4);
  EXPECT_DOUBLE_EQ(chip.evaluate(data.test), 0.62);
  EXPECT_EQ(chip.last_clip_count(), 0);
}

}  // namespace
}  // namespace epim
