// Tests for src/datapath: index-table construction and the repo's central
// correctness contract -- an epitome layer executed through the
// IFAT/IFRT/OFAT datapath equals the convolution with the epitome's
// reconstructed weights, in float (DatapathSimulator) and bit-exactly in
// integers on functional crossbars (PimLayerEngine).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datapath/datapath_sim.hpp"
#include "datapath/index_tables.hpp"
#include "datapath/pim_engine.hpp"
#include "nn/conv_exec.hpp"
#include "tensor/ops.hpp"

namespace epim {
namespace {

ConvLayerInfo make_layer(ConvSpec conv, std::int64_t hw) {
  return {"layer", conv, hw, hw};
}

TEST(IndexTables, OneIfatEntryPerActiveRound) {
  const ConvSpec conv{16, 32, 3, 3, 1, 1};
  SamplePlan plan(EpitomeSpec{4, 4, 8, 16}, conv);
  IndexTables tables(plan);
  EXPECT_EQ(static_cast<std::int64_t>(tables.ifat().size()),
            plan.active_rounds());
  EXPECT_EQ(static_cast<std::int64_t>(tables.ofat().size()),
            plan.total_patches());
  EXPECT_EQ(static_cast<std::int64_t>(tables.ifrt().size()),
            plan.active_rounds());
}

TEST(IndexTables, IfrtActiveRowsMatchPatchSize) {
  const ConvSpec conv{16, 32, 3, 3, 1, 1};
  SamplePlan plan(EpitomeSpec{4, 4, 8, 16}, conv);
  IndexTables tables(plan);
  for (const auto& seq : tables.ifrt()) {
    EXPECT_EQ(static_cast<std::int64_t>(seq.row_to_input.size()),
              plan.spec().rows());
    EXPECT_EQ(seq.active_rows(), 8 * 3 * 3);  // cin_e * kh * kw
  }
}

TEST(IndexTables, OfatAccumulateFlagsFollowInputGroups) {
  const ConvSpec conv{16, 32, 3, 3, 1, 1};
  SamplePlan plan(EpitomeSpec{4, 4, 8, 16}, conv);  // 2 in x 2 out groups
  IndexTables tables(plan);
  int accumulating = 0;
  for (const auto& oe : tables.ofat()) accumulating += oe.accumulate ? 1 : 0;
  EXPECT_EQ(accumulating, 2);  // one per output group (the in_group=1 patch)
}

TEST(IndexTables, WrappedPlanMarksReplicas) {
  const ConvSpec conv{16, 64, 3, 3, 1, 1};
  EpitomeSpec spec{4, 4, 8, 16};
  spec.wrap_output = true;
  SamplePlan plan(spec, conv);
  IndexTables tables(plan);
  std::int64_t replicas = 0;
  for (const auto& oe : tables.ofat()) replicas += oe.replica_of >= 0 ? 1 : 0;
  EXPECT_EQ(replicas, plan.total_patches() - plan.active_rounds());
}

TEST(IndexTables, StorageGrowsWithRounds) {
  const ConvSpec conv{64, 64, 3, 3, 1, 1};
  IndexTables few(SamplePlan(EpitomeSpec{4, 4, 32, 64}, conv));
  IndexTables many(SamplePlan(EpitomeSpec{4, 4, 8, 32}, conv));
  EXPECT_GT(many.ifat().size(), few.ifat().size());
}

// ---- the core equivalence: datapath == reconstructed convolution ----

struct DatapathCase {
  std::int64_t cin, cout, k, stride, pad, hw;
  std::int64_t p, q, cin_e, cout_e;
  bool wrap;
};

class DatapathEquivalence : public ::testing::TestWithParam<DatapathCase> {};

TEST_P(DatapathEquivalence, MatchesReferenceConvolution) {
  const auto c = GetParam();
  Rng rng(42);
  const ConvSpec conv{c.cin, c.cout, c.k, c.k, c.stride, c.pad};
  EpitomeSpec spec{c.p, c.q, c.cin_e, c.cout_e};
  spec.wrap_output = c.wrap;
  const ConvLayerInfo layer = make_layer(conv, c.hw);
  Epitome epitome = Epitome::random(spec, conv, rng);
  Tensor x({c.cin, c.hw, c.hw});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);

  DatapathSimulator sim(layer, epitome);
  const Tensor got = sim.run(x);
  const Tensor want = conv2d(x, epitome.reconstruct(), c.stride, c.pad);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_LT(max_abs_diff(got, want), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DatapathEquivalence,
    ::testing::Values(
        DatapathCase{8, 8, 3, 1, 1, 6, 4, 4, 4, 4, false},
        DatapathCase{8, 16, 3, 1, 1, 5, 4, 4, 4, 8, false},
        DatapathCase{8, 16, 3, 1, 1, 5, 4, 4, 4, 8, true},
        DatapathCase{10, 6, 3, 2, 1, 7, 5, 5, 3, 4, false},
        DatapathCase{16, 16, 1, 1, 0, 4, 1, 1, 8, 8, false},
        DatapathCase{16, 32, 1, 1, 0, 4, 1, 1, 8, 8, true},
        DatapathCase{3, 12, 5, 2, 2, 9, 7, 6, 3, 4, false},
        DatapathCase{12, 12, 3, 1, 1, 6, 4, 4, 12, 12, false},
        DatapathCase{7, 9, 3, 1, 1, 5, 6, 4, 3, 4, true}));

TEST(DatapathSim, WrappedOutputIsTranslationInvariant) {
  // Eq. 9: OFM[x] == OFM[x + c] under channel wrapping.
  Rng rng(7);
  const ConvSpec conv{8, 24, 3, 3, 1, 1};
  EpitomeSpec spec{4, 4, 4, 8};
  spec.wrap_output = true;
  const ConvLayerInfo layer = make_layer(conv, 5);
  Epitome epitome = Epitome::random(spec, conv, rng);
  Tensor x({8, 5, 5});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  DatapathSimulator sim(layer, epitome);
  const Tensor ofm = sim.run(x);
  const std::int64_t plane = 5 * 5;
  for (std::int64_t ch = 0; ch < 24 - 8; ++ch) {
    for (std::int64_t i = 0; i < plane; ++i) {
      EXPECT_FLOAT_EQ(ofm.at(ch * plane + i), ofm.at((ch + 8) * plane + i));
    }
  }
}

TEST(DatapathSim, StatsMatchPlanAccounting) {
  Rng rng(8);
  const ConvSpec conv{8, 16, 3, 3, 1, 1};
  EpitomeSpec spec{4, 4, 4, 8};
  const ConvLayerInfo layer = make_layer(conv, 6);
  Epitome epitome = Epitome::random(spec, conv, rng);
  DatapathSimulator sim(layer, epitome);
  Tensor x({8, 6, 6});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  sim.run(x);
  const auto& st = sim.stats();
  const std::int64_t positions = layer.output_positions();
  EXPECT_EQ(st.crossbar_rounds, positions * epitome.plan().active_rounds());
  EXPECT_EQ(st.replica_copies, 0);
  // Every output element is written exactly total_patches/out-coverage
  // times: here each (position, patch) writes co_len elements.
  std::int64_t writes = 0;
  for (const auto& s : epitome.plan().samples()) writes += s.co_len;
  EXPECT_EQ(st.buffer_writes, positions * writes);
}

TEST(DatapathSim, WrappingConvertsRoundsIntoCopies) {
  Rng rng(9);
  const ConvSpec conv{8, 32, 3, 3, 1, 1};
  EpitomeSpec plain{4, 4, 4, 8};
  EpitomeSpec wrapped = plain;
  wrapped.wrap_output = true;
  const ConvLayerInfo layer = make_layer(conv, 5);
  DatapathSimulator sim_a(layer, Epitome::random(plain, conv, rng));
  DatapathSimulator sim_b(layer, Epitome::random(wrapped, conv, rng));
  Tensor x({8, 5, 5});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  sim_a.run(x);
  sim_b.run(x);
  EXPECT_GT(sim_a.stats().crossbar_rounds, sim_b.stats().crossbar_rounds);
  EXPECT_GT(sim_b.stats().replica_copies, 0);
}

TEST(DatapathSim, RejectsMismatchedLayer) {
  Rng rng(10);
  const ConvSpec conv{8, 16, 3, 3, 1, 1};
  const ConvSpec other{8, 16, 3, 3, 2, 1};
  Epitome epitome = Epitome::random(EpitomeSpec{4, 4, 4, 8}, conv, rng);
  EXPECT_THROW(DatapathSimulator(make_layer(other, 6), epitome),
               InvalidArgument);
}

// ---- integer, crossbar-backed engine ----

std::vector<std::vector<int>> epitome_int_matrix(Rng& rng,
                                                 const EpitomeSpec& spec,
                                                 int bits) {
  const int lo = -(1 << (bits - 1)), hi = (1 << (bits - 1)) - 1;
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(spec.rows()),
      std::vector<int>(static_cast<std::size_t>(spec.cout_e)));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(lo, hi);
  }
  return w;
}

/// Integer reference: reconstruct conv weights from the logical matrix via a
/// float Epitome carrying the integer values, then run an integer conv.
std::vector<std::int64_t> int_reference_conv(
    const std::vector<std::vector<int>>& wmat, const EpitomeSpec& spec,
    const ConvLayerInfo& layer, const IntImage& img) {
  Epitome e(spec, layer.conv);
  for (std::int64_t col = 0; col < spec.cout_e; ++col) {
    for (std::int64_t row = 0; row < spec.rows(); ++row) {
      e.weights().at(col * spec.rows() + row) = static_cast<float>(
          wmat[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]);
    }
  }
  const Tensor recon = e.reconstruct();
  const ConvSpec& conv = layer.conv;
  const std::int64_t oh = layer.ofm_h(), ow = layer.ofm_w();
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(conv.out_channels * oh * ow), 0);
  for (std::int64_t co = 0; co < conv.out_channels; ++co) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t acc = 0;
        for (std::int64_t ci = 0; ci < conv.in_channels; ++ci) {
          for (std::int64_t ky = 0; ky < conv.kernel_h; ++ky) {
            for (std::int64_t kx = 0; kx < conv.kernel_w; ++kx) {
              const std::int64_t iy = oy * conv.stride + ky - conv.pad;
              const std::int64_t ix = ox * conv.stride + kx - conv.pad;
              if (iy < 0 || iy >= img.height || ix < 0 || ix >= img.width) {
                continue;
              }
              acc += static_cast<std::int64_t>(
                         recon(co, ci, ky, kx)) *
                     img.data[static_cast<std::size_t>(
                         (ci * img.height + iy) * img.width + ix)];
            }
          }
        }
        out[static_cast<std::size_t>((co * oh + oy) * ow + ox)] = acc;
      }
    }
  }
  return out;
}

struct EngineCase {
  std::int64_t cin, cout, k, hw;
  std::int64_t p, q, cin_e, cout_e;
  int weight_bits, act_bits;
  bool wrap;
};

class EngineExactness : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineExactness, BitExactAgainstIntegerConv) {
  const auto c = GetParam();
  Rng rng(77);
  const ConvSpec conv{c.cin, c.cout, c.k, c.k, 1, c.k / 2};
  EpitomeSpec spec{c.p, c.q, c.cin_e, c.cout_e};
  spec.wrap_output = c.wrap;
  const ConvLayerInfo layer = make_layer(conv, c.hw);
  const auto wmat = epitome_int_matrix(rng, spec, c.weight_bits);
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  PimLayerEngine engine(layer, spec, wmat, c.weight_bits, cfg);
  IntImage img;
  img.channels = c.cin;
  img.height = c.hw;
  img.width = c.hw;
  img.data.resize(static_cast<std::size_t>(img.numel()));
  for (auto& v : img.data) {
    v = static_cast<std::uint32_t>(rng.uniform_int(0, (1 << c.act_bits) - 1));
  }
  const IntOutput got = engine.run(img, c.act_bits);
  EXPECT_EQ(engine.last_clip_count(), 0);
  const auto want = int_reference_conv(wmat, spec, layer, img);
  ASSERT_EQ(got.data.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.data[i], want[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineExactness,
    ::testing::Values(
        EngineCase{6, 8, 3, 5, 4, 4, 3, 4, 4, 4, false},
        EngineCase{6, 8, 3, 5, 4, 4, 3, 4, 4, 4, true},
        EngineCase{8, 8, 1, 4, 1, 1, 4, 4, 5, 6, false},
        EngineCase{4, 10, 3, 6, 5, 5, 2, 5, 3, 8, false},
        EngineCase{12, 6, 3, 4, 4, 4, 6, 3, 8, 4, false}));

TEST(PimEngine, CrossbarCountMatchesTiling) {
  Rng rng(5);
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  const EpitomeSpec spec{4, 4, 8, 8};  // 128 rows x 8 cols
  const ConvLayerInfo layer = make_layer(conv, 4);
  const auto wmat = epitome_int_matrix(rng, spec, 4);
  CrossbarConfig cfg;  // 128x128, 2-bit cells, 4 bits -> 2 slices
  PimLayerEngine engine(layer, spec, wmat, 4, cfg);
  // 128 rows fit one tile; 8 logical cols x 2 slices = 16 <= 128 -> 1 tile.
  EXPECT_EQ(engine.num_crossbars(), 1);
}

}  // namespace
}  // namespace epim
