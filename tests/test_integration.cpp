// Integration tests across modules: the end-to-end claims of the paper at
// test scale.
//
//  * Table 1 mechanics: epitome + quantization shrinks crossbars massively
//    while the simulator stays self-consistent.
//  * Table 2 mechanics: on a *really trained* epitome CNN, the quantization
//    scheme ladder (naive -> +crossbar -> +overlap) does not lose accuracy
//    and reduces weighted noise.
//  * Fig. 4 mechanics: channel wrapping and evolutionary search each improve
//    latency/energy/EDP over the uniform epitome at matched compression.
//  * Hardware/software agreement: the analytical estimator's activity
//    counts match the functional datapath's counters.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datapath/datapath_sim.hpp"
#include "nn/resnet.hpp"
#include "quant/mixed_precision.hpp"
#include "search/evolution.hpp"
#include "sim/simulator.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

TEST(Integration, Table1MechanicsResNet50) {
  EpimSimulator sim;
  const Network net = resnet50();
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;  // overlap-weighted
  const auto base = NetworkAssignment::baseline(net);
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});

  const auto fp_base =
      sim.evaluate(base, PrecisionConfig::uniform(32, 32), scheme, proj);
  const auto fp_epi =
      sim.evaluate(uni, PrecisionConfig::uniform(32, 32), scheme, proj);
  const auto w3 =
      sim.evaluate(uni, PrecisionConfig::uniform(3, 9), scheme, proj);

  // Epitome compresses crossbars at FP32 and stacks with quantization.
  EXPECT_GT(static_cast<double>(fp_base.cost.num_crossbars) /
                fp_epi.cost.num_crossbars,
            2.0);
  EXPECT_GT(static_cast<double>(fp_base.cost.num_crossbars) /
                w3.cost.num_crossbars,
            10.0);
  // Latency rises at FP32 (more rounds) but quantization wins it back.
  EXPECT_GT(fp_epi.cost.latency_ms, fp_base.cost.latency_ms);
  EXPECT_LT(w3.cost.latency_ms, fp_base.cost.latency_ms);
  // Energy: large reduction end to end (paper: 23x).
  EXPECT_GT(fp_base.cost.energy_mj() / w3.cost.energy_mj(), 10.0);
  // Accuracy ordering: FP32 conv > FP32 epitome > W3 epitome, with W3 still
  // in the paper's band.
  EXPECT_GT(fp_base.projected_accuracy, fp_epi.projected_accuracy);
  EXPECT_GT(fp_epi.projected_accuracy, w3.projected_accuracy);
  EXPECT_GT(w3.projected_accuracy, 68.0);
}

TEST(Integration, Table1MechanicsResNet101) {
  EpimSimulator sim;
  const Network net = resnet101();
  const AccuracyProjector proj(AccuracyAnchors::resnet101());
  const QuantConfig scheme;
  const auto base = NetworkAssignment::baseline(net);
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const auto fp_base =
      sim.evaluate(base, PrecisionConfig::uniform(32, 32), scheme, proj);
  const auto w3 =
      sim.evaluate(uni, PrecisionConfig::uniform(3, 9), scheme, proj);
  EXPECT_GT(static_cast<double>(fp_base.cost.num_crossbars) /
                w3.cost.num_crossbars,
            8.0);
  EXPECT_GT(fp_base.cost.energy_mj() / w3.cost.energy_mj(), 10.0);
  EXPECT_GT(w3.projected_accuracy, 72.0);
}

TEST(Integration, BitwidthLadderMonotone) {
  // Paper Table 1: crossbars/latency/energy all fall as bits shrink; the
  // projected accuracy falls too.
  EpimSimulator sim;
  const Network net = resnet50();
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  double prev_energy = 1e18, prev_acc = 100.0;
  std::int64_t prev_xb = 1 << 30;
  for (const int bits : {9, 7, 5, 3}) {
    const auto e =
        sim.evaluate(uni, PrecisionConfig::uniform(bits, 9), scheme, proj);
    EXPECT_LT(e.cost.num_crossbars, prev_xb) << bits;
    EXPECT_LT(e.cost.energy_mj(), prev_energy) << bits;
    EXPECT_LT(e.projected_accuracy, prev_acc) << bits;
    prev_xb = e.cost.num_crossbars;
    prev_energy = e.cost.energy_mj();
    prev_acc = e.projected_accuracy;
  }
}

TEST(Integration, SchemeLadderOnSimulatedResNet) {
  // Table 2's ordering measured through the whole simulator path.
  EpimSimulator sim;
  const Network net = resnet50();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const auto precision = PrecisionConfig::uniform(3, 9);
  QuantConfig naive;
  naive.scheme = RangeScheme::kMinMax;
  QuantConfig xbar;
  xbar.scheme = RangeScheme::kPerCrossbar;
  QuantConfig overlap;
  overlap.scheme = RangeScheme::kOverlapWeighted;
  const double m_naive =
      sim.measure_noise(uni, precision, naive).weighted_mse;
  const double m_xbar = sim.measure_noise(uni, precision, xbar).weighted_mse;
  const double m_overlap =
      sim.measure_noise(uni, precision, overlap).weighted_mse;
  EXPECT_LE(m_xbar, m_naive * 1.0001);
  EXPECT_LE(m_overlap, m_xbar * 1.0001);
}

TEST(Integration, TrainedQuantizationTrend) {
  // Train the small epitome CNN for real, then quantize at 3 bits with the
  // three schemes. The trend of Table 2 must hold: the epitome-aware
  // schemes must not be worse than naive min/max (and the model must still
  // work at all).
  SyntheticSpec dspec;
  dspec.num_classes = 6;
  dspec.train_per_class = 24;
  dspec.test_per_class = 10;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 6;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 8;
  const TrainResult trained = train_model(net, data, tcfg);
  ASSERT_GT(trained.test_accuracy, 0.7);

  QuantConfig naive;
  naive.bits = 3;
  naive.scheme = RangeScheme::kMinMax;
  QuantConfig xbar = naive;
  xbar.scheme = RangeScheme::kPerCrossbar;
  QuantConfig overlap = naive;
  overlap.scheme = RangeScheme::kOverlapWeighted;

  const auto r_naive = evaluate_quantized(net, data.test, naive);
  const auto r_xbar = evaluate_quantized(net, data.test, xbar);
  const auto r_overlap = evaluate_quantized(net, data.test, overlap);

  // Noise ordering is strict; accuracy ordering is allowed slack because a
  // small test set quantizes accuracy in lumps.
  EXPECT_LE(r_xbar.weighted_mse, r_naive.weighted_mse * 1.0001);
  EXPECT_LE(r_overlap.weighted_mse, r_xbar.weighted_mse * 1.0001);
  EXPECT_GE(r_overlap.accuracy, r_naive.accuracy - 0.05);
  EXPECT_GT(r_overlap.accuracy, 0.5);
}

TEST(Integration, WrappingImprovesEdpAtSameCompression) {
  // Fig. 4, EPIM-Channel-Wrapping vs uniform: same crossbar count, lower
  // latency, energy and EDP.
  EpimSimulator sim;
  const Network net = resnet50();
  const auto precision = PrecisionConfig::uniform(9, 9);
  auto plain = NetworkAssignment::uniform(net, UniformDesign{});
  auto wrapped = NetworkAssignment::uniform(net, UniformDesign{});
  wrapped.set_wrap_output(true);
  const auto a = sim.estimator().eval_network(plain, precision);
  const auto b = sim.estimator().eval_network(wrapped, precision);
  EXPECT_EQ(a.num_crossbars, b.num_crossbars);
  EXPECT_EQ(plain.total_weights(), wrapped.total_weights());
  EXPECT_LT(b.latency_ms, a.latency_ms);
  EXPECT_LT(b.energy_mj(), a.energy_mj());
  EXPECT_LT(b.edp(), a.edp() * 0.9);
}

TEST(Integration, EvoSearchPlusWrappingIsEpimOpt) {
  // Fig. 4, EPIM-Opt: search + wrapping dominates the uniform design.
  EpimSimulator sim;
  const Network net = resnet50();
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto uniform = NetworkAssignment::uniform(net, UniformDesign{});
  const auto uniform_cost = sim.estimator().eval_network(uniform, precision);

  EvoSearchConfig cfg;
  cfg.population = 16;
  cfg.iterations = 10;
  cfg.parents = 4;
  cfg.crossbar_budget = uniform_cost.num_crossbars;
  cfg.precision = precision;
  cfg.objective = SearchObjective::kEdp;
  cfg.candidates.wrap_output = true;
  const auto result = EvolutionSearch(net, sim.estimator(), cfg).run();
  EXPECT_LE(result.best_cost.num_crossbars, uniform_cost.num_crossbars);
  EXPECT_LT(result.best_cost.edp(), uniform_cost.edp());
}

TEST(Integration, EstimatorAgreesWithDatapathActivityCounts) {
  // The analytical model's rounds/replica accounting must equal what the
  // functional datapath actually does.
  Rng rng(1);
  const ConvSpec conv{16, 32, 3, 3, 1, 1};
  const ConvLayerInfo layer{"probe", conv, 8, 8};
  EpitomeSpec spec{4, 4, 8, 16};
  spec.wrap_output = true;

  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const LayerCost cost = est.eval_epitome_layer(layer, spec, 9, 9);

  Epitome epitome = Epitome::random(spec, conv, rng);
  DatapathSimulator dsim(layer, epitome);
  Tensor x({16, 8, 8});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  dsim.run(x);
  const auto& st = dsim.stats();
  EXPECT_EQ(st.crossbar_rounds,
            cost.positions * cost.rounds_per_position);
  EXPECT_EQ(st.replica_copies,
            cost.positions * cost.replicas_per_position);
}

TEST(Integration, MixedPrecisionLandsBetweenUniformRows) {
  // Paper's W3mp row sits between W3 and W5 in crossbars AND in projected
  // accuracy.
  EpimSimulator sim;
  const Network net = resnet50();
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig mp;
  const auto alloc = hawq_lite_allocate(uni, mp, sim.crossbar_config());
  const auto mixed = sim.evaluate(uni, alloc.precision, scheme, proj);
  const auto w3 =
      sim.evaluate(uni, PrecisionConfig::uniform(3, 9), scheme, proj);
  const auto w5 =
      sim.evaluate(uni, PrecisionConfig::uniform(5, 9), scheme, proj);
  EXPECT_GT(mixed.cost.num_crossbars, w3.cost.num_crossbars);
  EXPECT_LT(mixed.cost.num_crossbars, w5.cost.num_crossbars);
  EXPECT_GT(mixed.projected_accuracy, w3.projected_accuracy);
  EXPECT_LE(mixed.projected_accuracy, w5.projected_accuracy + 0.01);
}

TEST(Integration, UtilizationStaysHighAcrossConfigs) {
  // Paper Table 1 reports 93-98% memristor utilization for every EPIM row;
  // the crossbar-aligned designer must keep ours in that regime.
  EpimSimulator sim;
  const Network net = resnet50();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  for (const int bits : {3, 5, 7, 9}) {
    const auto c =
        sim.estimator().eval_network(uni, PrecisionConfig::uniform(bits, 9));
    EXPECT_GT(c.utilization, 0.85) << bits;
  }
}

}  // namespace
}  // namespace epim
