// Tests for src/sim: the top-level EpimSimulator (Table-1 row evaluation and
// scheme noise measurement).
#include <gtest/gtest.h>

#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "sim/simulator.hpp"

namespace epim {
namespace {

TEST(Simulator, Fp32RowsUseAnchors) {
  EpimSimulator sim;
  const Network net = resnet50();
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto base = sim.evaluate(NetworkAssignment::baseline(net),
                                 PrecisionConfig::uniform(32, 32), scheme,
                                 proj);
  EXPECT_DOUBLE_EQ(base.projected_accuracy, 76.37);
  EXPECT_DOUBLE_EQ(base.weighted_mse, 0.0);
  const auto epi = sim.evaluate(NetworkAssignment::uniform(net,
                                                           UniformDesign{}),
                                PrecisionConfig::uniform(32, 32), scheme,
                                proj);
  EXPECT_DOUBLE_EQ(epi.projected_accuracy, 74.00);
}

TEST(Simulator, QuantizedRowMeasuresNoise) {
  EpimSimulator sim;
  const Network net = resnet50();
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto e = sim.evaluate(NetworkAssignment::uniform(net,
                                                         UniformDesign{}),
                              PrecisionConfig::uniform(3, 9), scheme, proj);
  EXPECT_GT(e.weighted_mse, 0.0);
  EXPECT_GT(e.weight_power, 0.0);
  EXPECT_LT(e.projected_accuracy, 74.00);
  EXPECT_GT(e.projected_accuracy, 65.0);
}

TEST(Simulator, NoiseMeasurementDeterministicUnderSeed) {
  EpimSimulator sim;
  const Network net = mini_resnet();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const QuantConfig scheme;
  const auto precision = PrecisionConfig::uniform(3, 9);
  const auto a = sim.measure_noise(uni, precision, scheme, 7);
  const auto b = sim.measure_noise(uni, precision, scheme, 7);
  EXPECT_DOUBLE_EQ(a.weighted_mse, b.weighted_mse);
  const auto c = sim.measure_noise(uni, precision, scheme, 8);
  EXPECT_NE(a.weighted_mse, c.weighted_mse);
}

TEST(Simulator, FullPrecisionLayersSkipped) {
  // A mixed-precision config where every layer is 32-bit measures no noise.
  EpimSimulator sim;
  const Network net = mini_resnet();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  PrecisionConfig p;
  p.weight_bits.assign(static_cast<std::size_t>(uni.num_layers()), 32);
  const auto m = sim.measure_noise(uni, p, QuantConfig{});
  EXPECT_DOUBLE_EQ(m.weighted_mse, 0.0);
}

TEST(Simulator, SchemeLadderHoldsOnVgg) {
  // The scheme ordering is a property of the quantizer, so it must hold on
  // a workload with a very different shape distribution.
  EpimSimulator sim;
  const Network net = vgg16();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const auto precision = PrecisionConfig::uniform(3, 9);
  QuantConfig naive;
  naive.scheme = RangeScheme::kMinMax;
  QuantConfig overlap;
  overlap.scheme = RangeScheme::kOverlapWeighted;
  const auto a = sim.measure_noise(uni, precision, naive);
  const auto b = sim.measure_noise(uni, precision, overlap);
  EXPECT_LE(b.weighted_mse, a.weighted_mse * 1.0001);
}

TEST(Simulator, MoreBitsLessProjectedLoss) {
  EpimSimulator sim;
  const Network net = resnet101();
  const AccuracyProjector proj(AccuracyAnchors::resnet101());
  const QuantConfig scheme;
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  double prev = 0.0;
  for (const int bits : {3, 5, 7, 9}) {
    const auto e = sim.evaluate(uni, PrecisionConfig::uniform(bits, 9),
                                scheme, proj);
    EXPECT_GT(e.projected_accuracy, prev) << bits;
    prev = e.projected_accuracy;
  }
  EXPECT_LT(prev, 76.56);  // still below the FP32 epitome anchor
}

}  // namespace
}  // namespace epim
