// Tests for src/search: Algorithm 1's evolutionary layer-wise epitome design.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/resnet.hpp"
#include "search/evolution.hpp"

namespace epim {
namespace {

EvoSearchConfig fast_config(std::int64_t budget,
                            SearchObjective objective =
                                SearchObjective::kLatency) {
  EvoSearchConfig cfg;
  cfg.population = 16;
  cfg.iterations = 8;
  cfg.parents = 4;
  cfg.crossbar_budget = budget;
  cfg.objective = objective;
  return cfg;
}

TEST(EvoSearch, ConfigValidation) {
  const Network net = mini_resnet();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg = fast_config(100);
  cfg.population = 1;
  EXPECT_THROW((EvolutionSearch(net, est, cfg)), InvalidArgument);
  cfg = fast_config(0);
  EXPECT_THROW((EvolutionSearch(net, est, cfg)), InvalidArgument);
  cfg = fast_config(100);
  cfg.parents = 16;
  EXPECT_THROW((EvolutionSearch(net, est, cfg)), InvalidArgument);
}

TEST(EvoSearch, EveryLayerHasCandidates) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvolutionSearch search(net, est, fast_config(20000));
  for (std::int64_t i = 0; i < 54; ++i) {
    EXPECT_GE(search.layer_candidates(i).size(), 1u);
  }
  // Large layers must have real epitome candidates beyond identity.
  EXPECT_GT(search.layer_candidates(45).size(), 3u);
}

TEST(EvoSearch, RespectsCrossbarBudget) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const std::int64_t budget = 2500;
  EvolutionSearch search(net, est, fast_config(budget));
  const auto result = search.run();
  EXPECT_LE(result.best_cost.num_crossbars, budget);
  EXPECT_GT(result.best_reward, 0.0);
}

TEST(EvoSearch, RewardHistoryNonDecreasing) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvolutionSearch search(net, est, fast_config(4000));
  const auto result = search.run();
  for (std::size_t i = 1; i < result.reward_history.size(); ++i) {
    EXPECT_GE(result.reward_history[i], result.reward_history[i - 1]);
  }
  EXPECT_EQ(result.evaluations, 16 * 8);
}

TEST(EvoSearch, DeterministicUnderSeed) {
  const Network net = mini_resnet();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg = fast_config(200);
  EvolutionSearch a(net, est, cfg), b(net, est, cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.best_reward, rb.best_reward);
  EXPECT_EQ(ra.best_cost.num_crossbars, rb.best_cost.num_crossbars);
}

TEST(EvoSearch, NeverWorseThanUniformAtMatchedBudget) {
  // The population is warm-started with every feasible uniform design, so
  // the search result can never be worse than the paper's manual baseline
  // at the same crossbar budget. (Strict improvement comes from adding
  // channel wrapping to the candidate pool -- covered by the integration
  // test EvoSearchPlusWrappingIsEpimOpt.)
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const auto uniform = NetworkAssignment::uniform(net, UniformDesign{});
  const auto precision = PrecisionConfig::uniform(9, 9);
  const NetworkCost uniform_cost = est.eval_network(uniform, precision);
  EvoSearchConfig cfg = fast_config(uniform_cost.num_crossbars,
                                    SearchObjective::kLatency);
  cfg.iterations = 12;
  cfg.precision = precision;
  EvolutionSearch search(net, est, cfg);
  const auto result = search.run();
  EXPECT_LE(result.best_cost.latency_ms, uniform_cost.latency_ms + 1e-9);
}

TEST(EvoSearch, EnergyObjectiveFindsLowerEnergyThanLatencyObjective) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig lat_cfg = fast_config(3000, SearchObjective::kLatency);
  EvoSearchConfig en_cfg = fast_config(3000, SearchObjective::kEnergy);
  const auto lat = EvolutionSearch(net, est, lat_cfg).run();
  const auto en = EvolutionSearch(net, est, en_cfg).run();
  EXPECT_LE(en.best_cost.energy_mj(), lat.best_cost.energy_mj() * 1.05);
}

TEST(EvoSearch, ImpossibleBudgetThrows) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg = fast_config(10);  // nothing fits in 10 crossbars
  EvolutionSearch search(net, est, cfg);
  EXPECT_THROW(search.run(), InvalidArgument);
}

TEST(EvoSearch, SearchSpaceIsHuge) {
  // The paper quotes ~2.07e7 combinations for its candidate set; ours is a
  // different candidate family but must also be far too large to enumerate.
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvolutionSearch search(net, est, fast_config(20000));
  EvoSearchConfig cfg = fast_config(20000);
  const auto result = EvolutionSearch(net, est, cfg).run();
  EXPECT_GT(result.search_space_size, 1e7);
}

TEST(EvoSearch, ObjectiveNames) {
  EXPECT_STREQ(search_objective_name(SearchObjective::kLatency), "latency");
  EXPECT_STREQ(search_objective_name(SearchObjective::kEnergy), "energy");
  EXPECT_STREQ(search_objective_name(SearchObjective::kEdp), "edp");
}

struct ObjectiveCase {
  SearchObjective objective;
};

class ObjectiveSweep : public ::testing::TestWithParam<ObjectiveCase> {};

TEST_P(ObjectiveSweep, FeasibleAndConsistent) {
  const Network net = resnet50();
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EvoSearchConfig cfg = fast_config(3500, GetParam().objective);
  const auto result = EvolutionSearch(net, est, cfg).run();
  EXPECT_LE(result.best_cost.num_crossbars, 3500);
  // Reward must equal the inverse of the chosen metric.
  double metric = 0.0;
  switch (GetParam().objective) {
    case SearchObjective::kLatency:
      metric = result.best_cost.latency_ms;
      break;
    case SearchObjective::kEnergy:
      metric = result.best_cost.energy_mj();
      break;
    case SearchObjective::kEdp:
      metric = result.best_cost.edp();
      break;
  }
  EXPECT_NEAR(result.best_reward, 1.0 / metric, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, ObjectiveSweep,
    ::testing::Values(ObjectiveCase{SearchObjective::kLatency},
                      ObjectiveCase{SearchObjective::kEnergy},
                      ObjectiveCase{SearchObjective::kEdp}));

}  // namespace
}  // namespace epim
