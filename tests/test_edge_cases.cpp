// Edge cases and failure-injection tests across modules: degenerate shapes,
// boundary precisions, invalid configurations, and pathological inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/designer.hpp"
#include "datapath/datapath_sim.hpp"
#include "nn/conv_exec.hpp"
#include "nn/resnet.hpp"
#include "pim/crossbar.hpp"
#include "pim/estimator.hpp"
#include "quant/epitome_quant.hpp"
#include "tensor/ops.hpp"

namespace epim {
namespace {

// ---- degenerate epitomes / layers ----

TEST(EdgeCases, SinglePixelFeatureMap) {
  // An FC layer is a 1x1 conv on a 1x1 map; the datapath must handle the
  // one-position case.
  Rng rng(1);
  const ConvSpec conv{32, 16, 1, 1, 1, 0};
  const ConvLayerInfo layer{"fc", conv, 1, 1};
  Epitome e = Epitome::random(EpitomeSpec{1, 1, 16, 8}, conv, rng);
  DatapathSimulator sim(layer, e);
  Tensor x({32, 1, 1});
  rng.fill_normal(x.data(), 32, 0.0f, 1.0f);
  const Tensor got = sim.run(x);
  EXPECT_LT(max_abs_diff(got, conv2d(x, e.reconstruct(), 1, 0)), 1e-4);
}

TEST(EdgeCases, EpitomeEqualsConvIsOneRound) {
  // When the epitome's dims equal the conv's, the plan is a single patch and
  // the datapath degenerates to a plain convolution.
  Rng rng(2);
  const ConvSpec conv{4, 4, 3, 3, 1, 1};
  Epitome e = Epitome::random(EpitomeSpec{3, 3, 4, 4}, conv, rng);
  EXPECT_EQ(e.plan().active_rounds(), 1);
  EXPECT_EQ(e.compression_rate(), 1.0);
  const Tensor rep = e.repetition_map();
  EXPECT_EQ(rep.min(), 1.0f);
  EXPECT_EQ(rep.max(), 1.0f);
}

TEST(EdgeCases, OffsetStrideVariesSampling) {
  const ConvSpec conv{16, 16, 3, 3, 1, 1};
  EpitomeSpec a{5, 5, 4, 4};
  EpitomeSpec b = a;
  b.offset_stride = 3;
  const SamplePlan pa(a, conv), pb(b, conv);
  // Same group structure, different offset walk.
  EXPECT_EQ(pa.total_patches(), pb.total_patches());
  bool any_differs = false;
  for (std::size_t i = 0; i < pa.samples().size(); ++i) {
    any_differs = any_differs ||
                  pa.samples()[i].off_p != pb.samples()[i].off_p ||
                  pa.samples()[i].off_q != pb.samples()[i].off_q;
  }
  EXPECT_TRUE(any_differs);
}

TEST(EdgeCases, SingleChannelGroups) {
  // cin_e == cin and cout_e == cout but a larger spatial plane: exactly one
  // patch, sampled at offset 0.
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  const SamplePlan plan(EpitomeSpec{6, 6, 8, 8}, conv);
  EXPECT_EQ(plan.total_patches(), 1);
  EXPECT_EQ(plan.samples()[0].off_p, 0);
}

TEST(EdgeCases, WrapWithSingleOutputGroupIsNoOp) {
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  EpitomeSpec spec{4, 4, 4, 8};  // cout_e == cout -> one output group
  spec.wrap_output = true;
  const SamplePlan plan(spec, conv);
  EXPECT_EQ(plan.wrap_factor(), 1);
  EXPECT_EQ(plan.active_rounds(), plan.total_patches());
}

// ---- boundary precisions ----

TEST(EdgeCases, OneBitWeights) {
  // 1-bit weights: codes {-1, 0} after signed re-centring; the crossbar
  // must still be exact.
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  std::vector<std::vector<int>> w = {{0}, {-1}, {0}, {-1}};
  CrossbarArray xbar(cfg, 1, w);
  const auto out = xbar.mvm({3, 3, 3, 3}, 2);
  EXPECT_EQ(out[0], -6);
}

TEST(EdgeCases, QuantizerAtOneBit) {
  Rng rng(3);
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 4, 4}, conv, rng);
  QuantConfig cfg;
  cfg.bits = 1;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  for (const auto& row : q.qmatrix) {
    for (const int v : row) {
      EXPECT_GE(v, -1);
      EXPECT_LE(v, 0);
    }
  }
}

TEST(EdgeCases, EstimatorRejectsBadBits) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const ConvLayerInfo layer{"l", ConvSpec{8, 8, 3, 3, 1, 1}, 8, 8};
  EXPECT_THROW(est.eval_conv_layer(layer, 0, 9), InvalidArgument);
  EXPECT_THROW(est.eval_conv_layer(layer, 9, 33), InvalidArgument);
}

TEST(EdgeCases, EmptyPrecisionConfigRejected) {
  PrecisionConfig p;
  p.weight_bits.clear();
  EXPECT_THROW(p.layer_weight_bits(0), InvalidArgument);
}

// ---- pathological weight distributions ----

TEST(EdgeCases, AllZeroEpitomeQuantizesToZero) {
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  Epitome e(EpitomeSpec{4, 4, 4, 4}, conv);  // zero weights
  QuantConfig cfg;
  cfg.bits = 3;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_DOUBLE_EQ(q.plain_mse, 0.0);
  for (std::int64_t i = 0; i < q.dequant_weights.numel(); ++i) {
    EXPECT_EQ(q.dequant_weights.at(i), 0.0f);
  }
}

TEST(EdgeCases, ConstantWeightsRoundTripExactly) {
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  Epitome e(EpitomeSpec{4, 4, 4, 4}, conv);
  e.weights().fill(0.5f);
  QuantConfig cfg;
  cfg.bits = 3;
  const QuantizedEpitome q = EpitomeQuantizer(cfg).quantize(e);
  EXPECT_NEAR(q.plain_mse, 0.0, 1e-12);
}

TEST(EdgeCases, HugeOutlierDoesNotBreakOverlapScheme) {
  Rng rng(4);
  const ConvSpec conv{16, 16, 3, 3, 1, 1};
  Epitome e = Epitome::random(EpitomeSpec{5, 5, 8, 8}, conv, rng);
  e.weights().at(0) = 1e6f;
  QuantConfig cfg;
  cfg.bits = 3;
  cfg.scheme = RangeScheme::kOverlapWeighted;
  EXPECT_NO_THROW(EpitomeQuantizer(cfg).quantize(e));
}

// ---- datapath under extreme geometry ----

TEST(EdgeCases, KernelLargerThanPaddedStrideWindow) {
  // stride 3 > kernel 1: positions subsample the input.
  Rng rng(5);
  const ConvSpec conv{4, 4, 1, 1, 3, 0};
  const ConvLayerInfo layer{"s3", conv, 7, 7};
  Epitome e = Epitome::random(EpitomeSpec{1, 1, 2, 2}, conv, rng);
  DatapathSimulator sim(layer, e);
  Tensor x({4, 7, 7});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  const Tensor got = sim.run(x);
  EXPECT_EQ(got.shape(), (Shape{4, 3, 3}));
  EXPECT_LT(max_abs_diff(got, conv2d(x, e.reconstruct(), 3, 0)), 1e-4);
}

TEST(EdgeCases, AllZeroInputGivesZeroOutput) {
  Rng rng(6);
  const ConvSpec conv{8, 8, 3, 3, 1, 1};
  const ConvLayerInfo layer{"z", conv, 6, 6};
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 4, 4}, conv, rng);
  DatapathSimulator sim(layer, e);
  const Tensor got = sim.run(Tensor({8, 6, 6}));
  EXPECT_EQ(got.min(), 0.0f);
  EXPECT_EQ(got.max(), 0.0f);
}

// ---- designer robustness across the whole zoo ----

TEST(EdgeCases, DesignerHandlesEveryResNet101Layer) {
  for (const auto& layer : resnet101().weighted_layers()) {
    for (const std::int64_t rows : {256, 1024, 4096}) {
      UniformDesign policy;
      policy.target_rows = rows;
      const auto spec = design_uniform(layer.conv, policy);
      if (spec.has_value()) {
        EXPECT_TRUE(spec->compatible_with(layer.conv)) << layer.name;
        // Round-trip: the plan covers the conv exactly once.
        Epitome e(*spec, layer.conv);
        e.weights().fill(1.0f);
        EXPECT_DOUBLE_EQ(e.repetition_map().sum(),
                         static_cast<double>(layer.conv.weight_count()))
            << layer.name;
      }
    }
  }
}

}  // namespace
}  // namespace epim
