// Tests for the multi-model registry + router (registry/registry.hpp):
// bit-identical routing vs direct service submission under concurrent
// mixed-model load, LRU eviction with bit-identical re-materialization
// through `.epim` artifacts, deterministic seeded traffic splits, admission
// control (reject, never block), aliases, hot reload, and fleet stats
// aggregation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/resnet.hpp"
#include "pipeline/pipeline.hpp"
#include "registry/registry.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Restore the 1-thread default after a test that resizes the pool.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(1); }
};

/// One trained net + three deployment variants (distinct precisions, so
/// their logits differ), shared across all tests in this file.
struct ZooFixture {
  SyntheticData data;
  SmallEpitomeNet net;
  std::vector<PipelineConfig> cfgs;

  ZooFixture()
      : data(make_synthetic_data([] {
          SyntheticSpec spec;
          spec.num_classes = 4;
          spec.train_per_class = 12;
          spec.test_per_class = 8;
          return spec;
        }())),
        net([] {
          SmallNetConfig nc;
          nc.num_classes = 4;
          return nc;
        }()) {
    TrainConfig tcfg;
    tcfg.epochs = 2;
    train_model(net, data, tcfg);
    for (const auto& [w, a] : {std::pair{6, 8}, {5, 7}, {4, 6}}) {
      PipelineConfig cfg;
      cfg.precision = PrecisionPlan::uniform(w, a);
      cfgs.push_back(cfg);
    }
  }

  /// Deployment is deterministic, so every call with the same variant
  /// yields a bit-identical model -- the reference trick all the routing
  /// tests rely on.
  DeployedModel deploy(std::size_t variant) const {
    return Pipeline(cfgs.at(variant)).deploy(net, data.train);
  }

  std::vector<Tensor> stream() const {
    std::vector<Tensor> images;
    for (std::int64_t i = 0; i < data.test.size(); ++i) {
      images.push_back(data.test.sample(i));
    }
    return images;
  }

  /// Reference logits of one variant, computed on the serial direct path.
  std::vector<Tensor> reference_logits(std::size_t variant) const {
    DeployedModel chip = deploy(variant);
    std::vector<Tensor> logits;
    for (std::int64_t i = 0; i < data.test.size(); ++i) {
      logits.push_back(chip.forward(data.test.sample(i)));
    }
    return logits;
  }

  static ZooFixture& instance() {
    static ZooFixture fixture;
    return fixture;
  }
};

void expect_same_logits(const Tensor& got, const Tensor& want,
                        const std::string& context) {
  ASSERT_EQ(got.shape(), want.shape()) << context;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got.at(j), want.at(j)) << context << " logit " << j;
  }
}

// ---- registration + resolution ----

TEST(ModelRegistry, ValidatesRegistrationArguments) {
  ZooFixture& fx = ZooFixture::instance();
  ModelRegistry registry;
  registry.register_model("m", "v1", fx.deploy(0));
  // Duplicate version, '@' in components, empty components.
  EXPECT_THROW(registry.register_model("m", "v1", fx.deploy(0)),
               InvalidArgument);
  EXPECT_THROW(registry.register_model("a@b", "v1", fx.deploy(0)),
               InvalidArgument);
  EXPECT_THROW(registry.register_model("m", "", fx.deploy(0)),
               InvalidArgument);
  // Artifact registration probes the path up front.
  EXPECT_THROW(registry.register_artifact("m", "v2", temp_path("nope.epim")),
               InvalidArgument);
  // A compiled-model artifact is the wrong kind for serving.
  const std::string compiled = temp_path("registry_compiled.epim");
  Pipeline{PipelineConfig{}}.compile(mini_resnet()).save(compiled);
  EXPECT_THROW(registry.register_artifact("m", "v2", compiled),
               InvalidArgument);
  std::remove(compiled.c_str());
}

TEST(ModelRegistry, ResolvesVersionsAliasesAndBareNames) {
  ZooFixture& fx = ZooFixture::instance();
  ModelRegistry registry;
  registry.register_model("m", "v1", fx.deploy(0));

  // Sole version resolves bare.
  EXPECT_EQ(registry.resolve("m", -1.0).second, "v1");
  registry.register_model("m", "v2", fx.deploy(1));
  // Two versions, no split, no default alias: ambiguous.
  EXPECT_THROW(registry.resolve("m", -1.0), InvalidArgument);

  registry.set_alias("m", "prod", "v1");
  EXPECT_EQ(registry.resolve("m@prod", -1.0).second, "v1");
  registry.set_alias("m", "prod", "v2");  // re-pointing is allowed
  EXPECT_EQ(registry.resolve("m@prod", -1.0).second, "v2");
  registry.set_alias("m", "default", "v1");
  EXPECT_EQ(registry.resolve("m", -1.0).second, "v1");

  // Shadowing in either direction is rejected.
  EXPECT_THROW(registry.set_alias("m", "v1", "v2"), InvalidArgument);
  EXPECT_THROW(registry.register_model("m", "prod", fx.deploy(0)),
               InvalidArgument);

  EXPECT_THROW(registry.resolve("m@v9", -1.0), InvalidArgument);
  EXPECT_THROW(registry.resolve("ghost@v1", -1.0), InvalidArgument);
  EXPECT_THROW(registry.resolve("m@", -1.0), InvalidArgument);
  EXPECT_EQ(registry.versions("m"), (std::vector<std::string>{"v1", "v2"}));
}

// ---- routing correctness ----

TEST(Router, BitIdenticalToDirectServiceUnderConcurrentMixedModelLoad) {
  ThreadGuard guard;
  set_num_threads(2);  // exercise shared-pool fan-out under mixed load
  ZooFixture& fx = ZooFixture::instance();

  const std::vector<std::string> names = {"resnet_a", "resnet_b", "resnet_c"};
  std::vector<std::vector<Tensor>> expected;
  RegistryConfig rcfg;  // budget 4 > 3: no eviction in this test
  // Every service runs several continuous-batching workers, so the fleet
  // has multiple batches in flight PER MODEL on top of the mixed-model
  // concurrency -- the full PR 5 scheduler under load.
  rcfg.serve.workers = 3;
  ModelRegistry registry(rcfg);
  for (std::size_t v = 0; v < names.size(); ++v) {
    expected.push_back(fx.reference_logits(v));
    registry.register_model(names[v], "v1", fx.deploy(v));
  }
  Router router(registry);

  // One submitter thread per model, all pushing interleaved singles at
  // once; every logit must match the serial direct-path reference bit for
  // bit even though nine batch workers (three per service) share one pool.
  std::vector<std::thread> submitters;
  std::vector<std::string> failures(names.size());
  for (std::size_t v = 0; v < names.size(); ++v) {
    submitters.emplace_back([&, v] {
      std::vector<std::future<InferenceResult>> pending;
      for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
        pending.push_back(
            router.submit(names[v] + "@v1", fx.data.test.sample(i)));
      }
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const InferenceResult r = pending[i].get();
        const Tensor& want = expected[v][i];
        if (r.logits.shape() != want.shape()) {
          failures[v] = "shape mismatch at image " + std::to_string(i);
          return;
        }
        for (std::int64_t j = 0; j < want.numel(); ++j) {
          if (r.logits.at(j) != want.at(j)) {
            failures[v] = "logit mismatch at image " + std::to_string(i) +
                          " logit " + std::to_string(j);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::size_t v = 0; v < names.size(); ++v) {
    EXPECT_EQ(failures[v], "") << names[v];
  }

  const RegistrySnapshot snapshot = registry.stats();
  EXPECT_EQ(snapshot.resident, 3);
  EXPECT_EQ(snapshot.workers, 9);  // 3 resident services x 3 workers each
  EXPECT_EQ(snapshot.requests, 3 * fx.data.test.size());
  EXPECT_EQ(snapshot.rejected, 0);
  EXPECT_EQ(snapshot.evictions, 0);
  for (const ModelSnapshot& m : snapshot.models) {
    EXPECT_EQ(m.workers, 3) << m.name;
    EXPECT_EQ(m.stats.workers, 3) << m.name;
  }
}

TEST(ModelRegistry, LazyMaterializationAndLruEvictionRoundTripArtifacts) {
  ZooFixture& fx = ZooFixture::instance();
  const std::string path_a = temp_path("registry_evict_a.epim");
  const std::string path_b = temp_path("registry_evict_b.epim");
  fx.deploy(0).save(path_a);
  fx.deploy(1).save(path_b);
  const std::vector<Tensor> expected_a = fx.reference_logits(0);
  const std::vector<Tensor> expected_b = fx.reference_logits(1);

  RegistryConfig rcfg;
  rcfg.max_resident_models = 1;
  ModelRegistry registry(rcfg);
  registry.register_artifact("a", "v1", path_a);
  registry.register_artifact("b", "v1", path_b);
  EXPECT_FALSE(registry.resident("a", "v1"));  // registration is lazy
  EXPECT_FALSE(registry.resident("b", "v1"));

  const auto check = [&](const std::string& name,
                         const std::vector<Tensor>& expected) {
    for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
      const InferenceResult r =
          registry.submit(name, "v1", fx.data.test.sample(i)).get();
      expect_same_logits(r.logits, expected[static_cast<std::size_t>(i)],
                         name + " image " + std::to_string(i));
    }
  };

  check("a", expected_a);  // materializes a
  EXPECT_TRUE(registry.resident("a", "v1"));
  check("b", expected_b);  // budget 1: evicts a
  EXPECT_FALSE(registry.resident("a", "v1"));
  EXPECT_TRUE(registry.resident("b", "v1"));
  check("a", expected_a);  // re-materializes a from its artifact, bit-identical
  EXPECT_TRUE(registry.resident("a", "v1"));
  EXPECT_FALSE(registry.resident("b", "v1"));

  const RegistrySnapshot snapshot = registry.stats();
  EXPECT_EQ(snapshot.resident, 1);
  EXPECT_EQ(snapshot.evictions, 2);  // a once, b once
  // Retired counters survive eviction: every completed request is counted.
  EXPECT_EQ(snapshot.requests, 3 * fx.data.test.size());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ModelRegistry, EvictionKeepsInMemoryModelsServable) {
  ZooFixture& fx = ZooFixture::instance();
  const std::vector<Tensor> expected_a = fx.reference_logits(0);
  const std::vector<Tensor> expected_b = fx.reference_logits(1);

  RegistryConfig rcfg;
  rcfg.max_resident_models = 1;
  // Multi-worker services: the eviction below must drain and join ALL of
  // the victim's workers, in-flight batches included.
  rcfg.serve.workers = 2;
  rcfg.serve.max_batch = 2;
  ModelRegistry registry(rcfg);
  registry.register_model("a", "v1", fx.deploy(0));  // no artifact backing
  registry.register_model("b", "v1", fx.deploy(1));

  const Tensor probe = fx.data.test.sample(0);
  expect_same_logits(registry.submit("a", "v1", probe).get().logits,
                     expected_a[0], "a warm");
  // Load up a's workers with un-awaited traffic, then evict it by touching
  // b: every one of a's futures must resolve (on a's weights) before the
  // eviction completes.
  std::vector<Tensor> burst(8, probe);
  auto pending = registry.submit_batch("a", "v1", std::move(burst));
  expect_same_logits(registry.submit("b", "v1", probe).get().logits,
                     expected_b[0], "b evicts a");
  EXPECT_FALSE(registry.resident("a", "v1"));
  for (auto& f : pending) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expect_same_logits(f.get().logits, expected_a[0], "a drained on evict");
  }
  // Cold entries still report their configured worker policy.
  for (const ModelSnapshot& m : registry.stats().models) {
    EXPECT_EQ(m.workers, 2) << m.name;
  }
  // The detached model moved back into the entry; serving it again works
  // and stays bit-identical.
  expect_same_logits(registry.submit("a", "v1", probe).get().logits,
                     expected_a[0], "a re-materialized from memory");
}

// ---- weighted splits ----

TEST(Router, WeightedSplitRoutesPinnedSequenceDeterministically) {
  ZooFixture& fx = ZooFixture::instance();
  ModelRegistry registry;
  registry.register_model("m", "v1", fx.deploy(0));
  registry.register_model("m", "v2", fx.deploy(1));
  registry.set_split("m", {{"v1", 0.7}, {"v2", 0.3}});
  EXPECT_TRUE(registry.has_split("m"));

  // The expected sequence is exactly what the router's seeded Rng dictates:
  // draw < 0.7 -> v1, else v2.
  constexpr std::uint64_t kSeed = 0xC0FFEEu;
  Rng mirror(kSeed);
  std::vector<std::string> expected;
  for (int i = 0; i < 32; ++i) {
    expected.push_back(mirror.uniform() < 0.7 ? "v1" : "v2");
  }

  Router router(registry, kSeed);
  std::vector<std::string> routed;
  for (int i = 0; i < 32; ++i) routed.push_back(router.route("m").second);
  EXPECT_EQ(routed, expected);

  // Same seed, fresh router: identical sequence (determinism, not luck).
  Router replay(registry, kSeed);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(replay.route("m").second, expected[static_cast<std::size_t>(i)])
        << "draw " << i;
  }

  // Explicit targets never consume a draw: the split sequence of a third
  // router is unperturbed by interleaved version-pinned traffic.
  Router mixed(registry, kSeed);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(mixed.route("m@v1").second, "v1");
    EXPECT_EQ(mixed.route("m").second, expected[static_cast<std::size_t>(i)])
        << "draw " << i;
  }

  // And the split actually steers traffic: submit along the pinned
  // sequence, then check per-version request counts.
  Router traffic(registry, kSeed);
  std::vector<std::future<InferenceResult>> pending;
  for (int i = 0; i < 32; ++i) {
    pending.push_back(traffic.submit("m", fx.data.test.sample(0)));
  }
  for (auto& f : pending) (void)f.get();
  std::int64_t want_v1 = 0;
  for (const std::string& v : expected) want_v1 += v == "v1";
  for (const ModelSnapshot& m : registry.stats().models) {
    EXPECT_EQ(m.stats.requests, m.version == "v1" ? want_v1 : 32 - want_v1)
        << m.version;
  }
}

TEST(ModelRegistry, ValidatesSplits) {
  ZooFixture& fx = ZooFixture::instance();
  ModelRegistry registry;
  registry.register_model("m", "v1", fx.deploy(0));
  EXPECT_THROW(registry.set_split("m", {}), InvalidArgument);
  EXPECT_THROW(registry.set_split("m", {{"ghost", 1.0}}), InvalidArgument);
  EXPECT_THROW(registry.set_split("m", {{"v1", 0.0}}), InvalidArgument);
  EXPECT_THROW(registry.set_split("m", {{"v1", 0.5}, {"v1", 0.5}}),
               InvalidArgument);
  EXPECT_THROW(registry.set_split("ghost", {{"v1", 1.0}}), InvalidArgument);

  registry.set_split("m", {{"v1", 2.0}});
  EXPECT_TRUE(registry.has_split("m"));
  // resolve() on a split target insists on a real draw.
  EXPECT_THROW(registry.resolve("m", -1.0), InvalidArgument);
  EXPECT_EQ(registry.resolve("m", 0.999).second, "v1");
  registry.clear_split("m");
  EXPECT_FALSE(registry.has_split("m"));
  EXPECT_EQ(registry.resolve("m", -1.0).second, "v1");  // sole version again
}

// ---- admission control ----

TEST(ModelRegistry, AdmissionControlRejectsInsteadOfBlocking) {
  ZooFixture& fx = ZooFixture::instance();
  ServeConfig scfg;
  scfg.max_batch = 64;               // never fills from 4 requests
  scfg.flush_deadline_ms = 10000.0;  // no deadline flush during the test
  scfg.max_queue = 4;
  std::vector<std::future<InferenceResult>> admitted;
  {
    ModelRegistry registry;
    registry.register_model("m", "v1", fx.deploy(0), scfg);
    Router router(registry);
    for (int i = 0; i < 4; ++i) {
      admitted.push_back(router.submit("m", fx.data.test.sample(0)));
    }
    // Queue is at the bound: the next submission must fail fast with
    // Unavailable -- not block until the deadline, not grow the queue.
    try {
      (void)router.submit("m", fx.data.test.sample(0));
      FAIL() << "expected Unavailable";
    } catch (const Unavailable& e) {
      EXPECT_NE(std::string(e.what()).find(InferenceService::kErrQueueFull),
                std::string::npos)
          << e.what();
    }
    // Burst admission is all-or-nothing: 2 more would fit only partially.
    std::vector<Tensor> burst(3, fx.data.test.sample(0));
    EXPECT_THROW(router.submit_batch("m", std::move(burst)), Unavailable);

    RegistrySnapshot snapshot = registry.stats();
    EXPECT_EQ(snapshot.rejected, 1 + 3);
    EXPECT_EQ(snapshot.queued, 4);
  }  // teardown drains the queue without waiting out the 10 s deadline
  // The admitted requests were unharmed by the rejections.
  for (auto& f : admitted) {
    EXPECT_EQ(f.get().logits.numel(), 4);
  }
}

// ---- hot reload ----

TEST(ModelRegistry, ReloadHotSwapsAndDrainsInFlightOnOldVersion) {
  ZooFixture& fx = ZooFixture::instance();
  const std::string path_a = temp_path("registry_reload_a.epim");
  const std::string path_b = temp_path("registry_reload_b.epim");
  fx.deploy(0).save(path_a);
  fx.deploy(1).save(path_b);
  const std::vector<Tensor> expected_a = fx.reference_logits(0);
  const std::vector<Tensor> expected_b = fx.reference_logits(1);

  ModelRegistry registry;
  // Multi-worker entry: the hot swap drains every worker of the outgoing
  // service outside the registry lock.
  ServeConfig scfg = RegistryConfig::default_serve();
  scfg.workers = 2;
  registry.register_artifact("m", "v1", path_a, scfg);
  const Tensor probe = fx.data.test.sample(0);
  expect_same_logits(registry.submit("m", "v1", probe).get().logits,
                     expected_a[0], "before reload");

  // Submit but do not await: the reload must drain this in-flight request
  // on the OLD weights (its future resolves with old-model logits).
  std::future<InferenceResult> in_flight = registry.submit("m", "v1", probe);
  registry.reload("m", "v1", path_b);
  expect_same_logits(in_flight.get().logits, expected_a[0],
                     "in-flight drained on old weights");

  // New traffic sees the new artifact.
  expect_same_logits(registry.submit("m", "v1", probe).get().logits,
                     expected_b[0], "after reload");
  // History survives the swap: 2 old + 1 new completed requests.
  const RegistrySnapshot snapshot = registry.stats();
  EXPECT_EQ(snapshot.requests, 3);

  EXPECT_THROW(registry.reload("m", "ghost", path_b), InvalidArgument);
  EXPECT_THROW(registry.reload("ghost", "v1", path_b), InvalidArgument);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---- stats ----

TEST(ModelRegistry, SnapshotAggregatesAndResetStartsNewInterval) {
  ZooFixture& fx = ZooFixture::instance();
  ModelRegistry registry;
  registry.register_model("a", "v1", fx.deploy(0));
  registry.register_model("b", "v1", fx.deploy(1));

  std::vector<std::future<InferenceResult>> pending;
  for (std::int64_t i = 0; i < fx.data.test.size(); ++i) {
    pending.push_back(registry.submit("a", "v1", fx.data.test.sample(i)));
    pending.push_back(registry.submit("b", "v1", fx.data.test.sample(i)));
  }
  for (auto& f : pending) (void)f.get();

  const RegistrySnapshot snapshot = registry.stats();
  EXPECT_EQ(snapshot.models.size(), 2u);
  EXPECT_EQ(snapshot.resident, 2);
  EXPECT_EQ(snapshot.requests, 2 * fx.data.test.size());
  EXPECT_GT(snapshot.items_per_sec, 0.0);
  EXPECT_GT(snapshot.p50_latency_ms, 0.0);
  EXPECT_LE(snapshot.p50_latency_ms, snapshot.p99_latency_ms);
  for (const ModelSnapshot& m : snapshot.models) {
    EXPECT_EQ(m.version, "v1");
    EXPECT_TRUE(m.resident);
    EXPECT_EQ(m.stats.requests, fx.data.test.size()) << m.name;
  }

  registry.reset_stats();
  const RegistrySnapshot fresh = registry.stats();
  EXPECT_EQ(fresh.requests, 0);
  EXPECT_EQ(fresh.p50_latency_ms, 0.0);
  EXPECT_EQ(fresh.resident, 2);  // reset is about traffic, not residency

  // The next interval counts from zero.
  (void)registry.submit("a", "v1", fx.data.test.sample(0)).get();
  EXPECT_EQ(registry.stats().requests, 1);
}

// ---- artifact rot between registration and first materialization ----
// register_artifact only probes the file; the bytes are trusted again at
// every (re-)materialization, so a file deleted or corrupted in between
// must fail retryably (Unavailable + degraded health) and recover once the
// file is repaired and the backoff window expires.

TEST(RegistryArtifact, DeletedAfterRegistrationFailsRetryablyAndRecovers) {
  ZooFixture& fx = ZooFixture::instance();
  const std::string path = temp_path("registry_rot_deleted.epim");
  fx.deploy(1).save(path);
  RegistryConfig cfg;
  cfg.health.backoff_base_ms = 1.0;
  cfg.health.backoff_max_ms = 5.0;
  ModelRegistry registry(cfg);
  registry.register_artifact("m", "v1", path);  // probe passes...
  std::remove(path.c_str());                    // ...then the file vanishes

  try {
    (void)registry.submit("m", "v1", fx.data.test.sample(0));
    FAIL() << "materialized from a deleted artifact";
  } catch (const Unavailable& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(ModelRegistry::kErrMaterializeFailed),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(artifact::kErrCannotOpen), std::string::npos)
        << what;
  }
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kDegraded);
  ASSERT_EQ(registry.stats().models.size(), 1u);
  EXPECT_EQ(registry.stats().models[0].materialize_failures, 1);

  // Repair the file; past the (tiny) backoff window the same entry
  // materializes and answers bit-identically to the original deployment.
  fx.deploy(1).save(path);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  expect_same_logits(
      registry.submit("m", "v1", fx.data.test.sample(0)).get().logits,
      fx.reference_logits(1)[0], "post-repair");
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kHealthy);
  std::remove(path.c_str());
}

TEST(RegistryArtifact, CorruptedAfterRegistrationIsRejectedByChecksum) {
  ZooFixture& fx = ZooFixture::instance();
  const std::string path = temp_path("registry_rot_corrupt.epim");
  fx.deploy(1).save(path);
  RegistryConfig cfg;
  cfg.health.backoff_base_ms = 1.0;
  cfg.health.backoff_max_ms = 5.0;
  ModelRegistry registry(cfg);
  registry.register_artifact("m", "v1", path);

  // Flip one payload bit on disk after registration.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::vector<char> corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }

  try {
    (void)registry.submit("m", "v1", fx.data.test.sample(0));
    FAIL() << "materialized from a corrupted artifact";
  } catch (const Unavailable& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(ModelRegistry::kErrMaterializeFailed),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(artifact::kErrChecksum), std::string::npos) << what;
  }
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kDegraded);

  // Restore the pristine bytes: recovery is bit-identical.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  expect_same_logits(
      registry.submit("m", "v1", fx.data.test.sample(0)).get().logits,
      fx.reference_logits(1)[0], "post-restore");
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kHealthy);
  std::remove(path.c_str());
}

TEST(RegistryArtifact, RepeatedLoadFailuresQuarantineUntilRepaired) {
  ZooFixture& fx = ZooFixture::instance();
  const std::string path = temp_path("registry_rot_quarantine.epim");
  fx.deploy(0).save(path);
  RegistryConfig cfg;
  cfg.health.quarantine_after = 2;
  cfg.health.backoff_base_ms = 1.0;
  cfg.health.backoff_max_ms = 5.0;
  ModelRegistry registry(cfg);
  registry.register_artifact("m", "v1", path);
  std::remove(path.c_str());

  // Two real load attempts (each past the previous backoff window) open
  // the breaker.
  EXPECT_THROW((void)registry.submit("m", "v1", fx.data.test.sample(0)),
               Unavailable);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW((void)registry.submit("m", "v1", fx.data.test.sample(0)),
               Unavailable);
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kQuarantined);
  EXPECT_EQ(registry.stats().quarantined, 1);

  // Inside the window the breaker fast-fails with the pinned message.
  try {
    (void)registry.submit("m", "v1", fx.data.test.sample(0));
    FAIL() << "quarantined model accepted a request";
  } catch (const Unavailable& e) {
    EXPECT_NE(std::string(e.what()).find(ModelRegistry::kErrQuarantined),
              std::string::npos)
        << e.what();
  }

  // Repair + window expiry: the half-open probe closes the breaker.
  fx.deploy(0).save(path);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  expect_same_logits(
      registry.submit("m", "v1", fx.data.test.sample(0)).get().logits,
      fx.reference_logits(0)[0], "post-repair");
  EXPECT_EQ(registry.health("m", "v1"), HealthState::kHealthy);
  EXPECT_EQ(registry.stats().quarantined, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace epim
