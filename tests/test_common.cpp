// Unit tests for src/common: error macros, RNG, math helpers, tables,
// leveled logging (sink capture + thread safety).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace epim {
namespace {

TEST(Error, CheckThrowsInvalidArgument) {
  EXPECT_THROW(EPIM_CHECK(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(EPIM_CHECK(true, "fine"));
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(EPIM_ASSERT(false, "bug"), InternalError);
}

TEST(Error, MessageContainsContext) {
  try {
    EPIM_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(EPIM_CHECK(false, "x"), Error);
  EXPECT_THROW(EPIM_ASSERT(false, "x"), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.uniform_int(0, 1 << 20) == b.uniform_int(0, 1 << 20) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(99);
  const auto perm = rng.permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, FlipProbabilityRoughlyHonoured) {
  Rng rng(3);
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.flip(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 2000.0, 0.25, 0.05);
}

TEST(Rng, FillNormalMoments) {
  Rng rng(11);
  std::vector<float> buf(20000);
  rng.fill_normal(buf.data(), buf.size(), 1.0f, 2.0f);
  double mean = 0.0;
  for (float v : buf) mean += v;
  mean /= static_cast<double>(buf.size());
  double var = 0.0;
  for (float v : buf) var += (v - mean) * (v - mean);
  var /= static_cast<double>(buf.size());
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(128, 128), 1);
  EXPECT_EQ(ceil_div(129, 128), 2);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(MathUtil, IsPow2AndLog2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(128));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(127));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(128), 7);
  EXPECT_THROW(ilog2(5), InvalidArgument);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Error, DcheckActiveOnlyInDebugBuilds) {
#ifdef NDEBUG
  // Release: compiled out entirely -- the condition must not even be
  // evaluated (a per-item hot-path check must cost nothing when off).
  bool evaluated = false;
  EPIM_DCHECK([&] {
    evaluated = true;
    return false;
  }(), "never evaluated in Release");
  EXPECT_FALSE(evaluated);
#else
  EXPECT_THROW(EPIM_DCHECK(false, "bug"), InternalError);
  EXPECT_NO_THROW(EPIM_DCHECK(true, "fine"));
#endif
}

/// Restores the previous sink (and a default level) on scope exit, so a
/// failing test cannot leak a capturing sink into its neighbours.
struct SinkGuard {
  explicit SinkGuard(LogSink sink) : previous(set_log_sink(std::move(sink))) {}
  ~SinkGuard() { set_log_sink(std::move(previous)); }
  LogSink previous;
};

TEST(Logging, SinkCapturesMessagesAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SinkGuard guard([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kWarn);
  EPIM_LOG(kInfo) << "below threshold";
  EPIM_LOG(kWarn) << "captured " << 42;
  set_log_level(old_level);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "captured 42");
}

TEST(Logging, SetSinkReturnsPreviousAndNullRestoresDefault) {
  std::vector<std::string> first;
  SinkGuard guard([&](LogLevel, const std::string& msg) {
    first.push_back(msg);
  });
  // Swap in a second sink; the first must come back out intact.
  LogSink previous = set_log_sink(nullptr);
  ASSERT_TRUE(previous != nullptr);
  previous(LogLevel::kError, "direct");
  EXPECT_EQ(first, std::vector<std::string>{"direct"});
  set_log_sink(std::move(previous));  // restore for the guard to unwind
}

TEST(Logging, ConcurrentLoggingAndSinkSwapsAreSafe) {
  // Regression shape for the migration to the guarded sink: writers race
  // set_log_sink against EPIM_LOG statements from several threads. The
  // sink is copied under logging::g_sink_mu and invoked OUTSIDE it, so a
  // sink that itself logs cannot self-deadlock, and TSan (CI) sees no
  // race. Counting is approximate by design -- swaps drop messages --
  // but every invocation must be of a complete, valid sink.
  std::atomic<int> calls{0};
  auto counting = [&](LogLevel, const std::string&) { calls.fetch_add(1); };
  SinkGuard guard(counting);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) EPIM_LOG(kError) << "msg " << i;
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) (void)set_log_sink(counting);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_GT(calls.load(), 0);
}

}  // namespace
}  // namespace epim
