// Tests for the epim::Pipeline façade: config validation, bit-for-bit
// equivalence between the façade and hand-wired module composition, backend
// activity agreement (analytical vs functional datapath), search gating and
// on-chip deployment derivation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "pipeline/pipeline.hpp"
#include "quant/mixed_precision.hpp"
#include "sim/simulator.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

// ---- PipelineConfig::validate ----

TEST(PipelineConfig, DefaultConfigValidates) {
  EXPECT_NO_THROW(PipelineConfig{}.validate());
}

TEST(PipelineConfig, RejectsWeightBitsBeyondCellCapacity) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.cols = 2;  // room for 2 cell slices only
  cfg.precision = PrecisionPlan::uniform(9, 9);  // 9b needs > 2 slices
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsOutOfRangeWeightBits) {
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(0, 9);
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.precision = PrecisionPlan::uniform(33, 9);
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsSearchWithoutBudget) {
  PipelineConfig cfg;
  cfg.search.enabled = true;
  cfg.search.evo.crossbar_budget = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.crossbar_budget = 100;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PipelineConfig, RejectsParentsAbovePopulation) {
  PipelineConfig cfg;
  cfg.search.enabled = true;
  cfg.search.evo.crossbar_budget = 100;
  cfg.search.evo.population = 4;
  cfg.search.evo.parents = 8;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsDegenerateQuantWeights) {
  PipelineConfig cfg;
  cfg.quant.w1 = 0.0;
  cfg.quant.w2 = 0.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadCellBitsAndPercentile) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.cell_bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.deploy.act_percentile = 0.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsInvertedHawqBits) {
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::hawq_mixed();
  cfg.precision.mixed.low_bits = 5;
  cfg.precision.mixed.high_bits = 3;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadCrossbarGeometry) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.rows = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.hardware.crossbar.cols = -4;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadAdcSettings) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.adc_bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.hardware.crossbar.adc_bits = 33;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.hardware.crossbar.adc_share = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadFp32Equivalents) {
  PipelineConfig cfg;
  cfg.hardware.crossbar.fp32_weight_bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.hardware.crossbar.fp32_act_bits = -1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadDeployAdcBits) {
  PipelineConfig cfg;
  cfg.hardware.deploy_adc_bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.hardware.deploy_adc_bits = 64;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadUniformDesign) {
  PipelineConfig cfg;
  cfg.design.uniform.target_rows = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.design.uniform.target_cout = -1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.design.uniform.crossbar_size = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.design.uniform.spatial_slack = -1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  // The same limits are irrelevant under the baseline policy.
  cfg.design.policy = DesignPolicy::kBaseline;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PipelineConfig, RejectsBadActivationBits) {
  PipelineConfig cfg;
  cfg.precision.act_bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.precision.act_bits = 33;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadHawqBudgetFraction) {
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::hawq_mixed();
  cfg.precision.mixed.budget_fraction = -0.1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.precision.mixed.budget_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadQuantScheme) {
  PipelineConfig cfg;
  cfg.quant.bits = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.quant.bits = 17;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.quant.w1 = -0.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.quant.xbar_rows = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.quant.xbar_cols = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadSearchSettings) {
  PipelineConfig cfg;
  cfg.search.enabled = true;
  cfg.search.evo.crossbar_budget = 100;
  cfg.search.evo.parents = 4;
  cfg.search.evo.population = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.population = 8;
  cfg.search.evo.iterations = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.iterations = 4;
  cfg.search.evo.mutation_rate = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.mutation_rate = 0.2;
  cfg.search.evo.candidates.row_targets.clear();
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.candidates = CandidateConfig{};
  cfg.search.evo.candidates.crossbar_size = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.search.evo.candidates = CandidateConfig{};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PipelineConfig, RejectsBadDeployOverrides) {
  PipelineConfig cfg;
  cfg.deploy.weight_bits = -1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.deploy.act_bits = 33;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsBadNonIdealities) {
  PipelineConfig cfg;
  cfg.deploy.non_ideal.conductance_sigma = -0.1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.deploy.non_ideal.stuck_at_zero_prob = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.deploy.non_ideal.stuck_at_max_prob = -0.2;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PipelineConfig, RejectsNonPositiveServeLimits) {
  PipelineConfig cfg;
  cfg.serve.max_batch = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.max_batch = -3;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.serve.flush_deadline_ms = 0.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.flush_deadline_ms = -1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.serve.latency_window = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.latency_window = -7;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = PipelineConfig{};
  cfg.serve.max_queue = -1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  // Worker count: positive, and capped at the same 256 ceiling as the
  // compute pool (a stray huge value must not fork-bomb the process).
  cfg = PipelineConfig{};
  cfg.serve.workers = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.workers = -2;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.workers = 257;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.serve.workers = 256;
  EXPECT_NO_THROW(cfg.validate());
  cfg = PipelineConfig{};
  cfg.serve.max_batch = 1;
  cfg.serve.flush_deadline_ms = 0.01;
  cfg.serve.workers = 4;
  cfg.serve.latency_window = 1;
  cfg.serve.max_queue = 0;  // 0 = unbounded, explicitly allowed
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PipelineConfig, ResolvesDeployBits) {
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(5, 7);
  EXPECT_EQ(cfg.resolved_deploy_weight_bits(), 5);
  EXPECT_EQ(cfg.resolved_deploy_act_bits(), 7);
  cfg.precision = PrecisionPlan::fp32();
  EXPECT_EQ(cfg.resolved_deploy_weight_bits(), 6);  // runtime's classic W6A8
  EXPECT_EQ(cfg.resolved_deploy_act_bits(), 8);
  cfg.deploy.weight_bits = 4;
  cfg.deploy.act_bits = 6;
  EXPECT_EQ(cfg.resolved_deploy_weight_bits(), 4);
  EXPECT_EQ(cfg.resolved_deploy_act_bits(), 6);
}

// ---- façade vs hand-wired equivalence (bit-for-bit) ----

void expect_same_evaluation(const EpimSimulator::Evaluation& a,
                            const EpimSimulator::Evaluation& b) {
  EXPECT_EQ(a.cost.num_crossbars, b.cost.num_crossbars);
  EXPECT_EQ(a.cost.latency_ms, b.cost.latency_ms);
  EXPECT_EQ(a.cost.dynamic_energy_mj, b.cost.dynamic_energy_mj);
  EXPECT_EQ(a.cost.static_energy_mj, b.cost.static_energy_mj);
  EXPECT_EQ(a.cost.utilization, b.cost.utilization);
  EXPECT_EQ(a.cost.params, b.cost.params);
  EXPECT_EQ(a.projected_accuracy, b.projected_accuracy);
  EXPECT_EQ(a.weighted_mse, b.weighted_mse);
  EXPECT_EQ(a.weight_power, b.weight_power);
}

TEST(PipelineEquivalence, UniformW9A9MatchesHandWiredSimulator) {
  const Network net = resnet50();
  EpimSimulator sim;
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const auto hand =
      sim.evaluate(uni, PrecisionConfig::uniform(9, 9), scheme, proj);

  Pipeline pipeline{PipelineConfig{}};  // defaults: uniform 1024x256, W9A9
  const CompiledModel model = pipeline.compile(net);
  expect_same_evaluation(model.estimate(), hand);
}

TEST(PipelineEquivalence, BaselineFp32MatchesHandWiredSimulator) {
  const Network net = resnet50();
  EpimSimulator sim;
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto hand = sim.evaluate(NetworkAssignment::baseline(net),
                                 PrecisionConfig::uniform(32, 32), scheme,
                                 proj);

  PipelineConfig cfg;
  cfg.design.policy = DesignPolicy::kBaseline;
  cfg.precision = PrecisionPlan::fp32();
  const CompiledModel model = Pipeline(cfg).compile(net);
  expect_same_evaluation(model.estimate(), hand);
}

TEST(PipelineEquivalence, HawqMixedMatchesHandWiredAllocation) {
  const Network net = resnet50();
  EpimSimulator sim;
  const AccuracyProjector proj(AccuracyAnchors::resnet50());
  const QuantConfig scheme;
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  MixedPrecisionConfig mp;
  const auto alloc = hawq_lite_allocate(uni, mp, sim.crossbar_config());
  const auto hand = sim.evaluate(uni, alloc.precision, scheme, proj);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::hawq_mixed(mp);
  const CompiledModel model = Pipeline(cfg).compile(net);
  ASSERT_TRUE(model.mixed_precision().has_value());
  EXPECT_EQ(model.precision().weight_bits, alloc.precision.weight_bits);
  expect_same_evaluation(model.estimate(), hand);
}

TEST(PipelineEquivalence, CompiledModelOutlivesSourceNetwork) {
  Pipeline pipeline{PipelineConfig{}};
  std::optional<CompiledModel> model;
  {
    const Network net = resnet18();
    model.emplace(pipeline.compile(net));
  }  // source network destroyed; the compiled artifact owns its copy
  EXPECT_GT(model->estimate().cost.num_crossbars, 0);
  EXPECT_EQ(model->network().name(), "ResNet18");
}

// ---- backend agreement (HW/SW activity counts) ----

TEST(PipelineBackends, ActivityCountsAgreeOnWrappedLayer) {
  const ConvLayerInfo layer{"probe", ConvSpec{16, 32, 3, 3, 1, 1}, 8, 8};
  EpitomeSpec spec{4, 4, 8, 16};
  spec.wrap_output = true;

  const AnalyticalBackend analytical(CrossbarConfig{}, HardwareLut{});
  const DatapathBackend datapath(CrossbarConfig{}, HardwareLut{});
  const LayerActivity a = analytical.layer_activity(layer, spec, 1);
  const LayerActivity d = datapath.layer_activity(layer, spec, 1);
  EXPECT_GT(a.positions, 0);
  EXPECT_GT(a.crossbar_rounds, 0);
  EXPECT_GT(a.replica_copies, 0);  // wrapping produces replicas
  EXPECT_EQ(a, d);
}

TEST(PipelineBackends, ActivityCountsAgreeOnStridedLayer) {
  const ConvLayerInfo layer{"probe", ConvSpec{32, 64, 3, 3, 2, 1}, 16, 16};
  const EpitomeSpec spec{4, 4, 16, 32};
  const AnalyticalBackend analytical(CrossbarConfig{}, HardwareLut{});
  const DatapathBackend datapath(CrossbarConfig{}, HardwareLut{});
  EXPECT_EQ(analytical.layer_activity(layer, spec, 7),
            datapath.layer_activity(layer, spec, 7));
}

TEST(PipelineBackends, DatapathBackendEvaluateCrossChecksCleanly) {
  // A small two-layer network the functional datapath can verify quickly;
  // evaluate() throws InternalError if HW and SW activity ever disagree.
  Network net("probe-net");
  net.add_conv({"c1", ConvSpec{16, 32, 3, 3, 1, 1}, 8, 8});
  net.add_conv({"c2", ConvSpec{32, 32, 3, 3, 1, 1}, 8, 8});

  PipelineConfig cfg;
  cfg.backend = BackendKind::kDatapath;
  cfg.design.uniform.target_rows = 64;
  cfg.design.uniform.target_cout = 16;
  cfg.design.uniform.crossbar_size = 16;
  cfg.design.uniform.skip_small_layers = false;
  cfg.design.wrap_output = true;

  PipelineConfig analytical_cfg = cfg;
  analytical_cfg.backend = BackendKind::kAnalytical;

  const CompiledModel functional = Pipeline(cfg).compile(net);
  const CompiledModel analytical = Pipeline(analytical_cfg).compile(net);
  EXPECT_GT(functional.estimate().cost.num_crossbars, 0);
  expect_same_evaluation(functional.estimate(), analytical.estimate());
}

// ---- search ----

TEST(PipelineSearch, ThrowsUnlessEnabled) {
  CompiledModel model = Pipeline{PipelineConfig{}}.compile(resnet18());
  EXPECT_THROW(model.search(), InvalidArgument);
}

TEST(PipelineSearch, RefinesWithinBudgetAndInvalidatesEstimate) {
  const Network net = resnet18();
  PipelineConfig cfg;
  Pipeline probe(cfg);
  const auto uniform_cost = probe.compile(net).estimate().cost;

  cfg.search.enabled = true;
  cfg.search.evo.population = 8;
  cfg.search.evo.iterations = 4;
  cfg.search.evo.parents = 2;
  cfg.search.evo.crossbar_budget = uniform_cost.num_crossbars;
  cfg.search.evo.objective = SearchObjective::kEdp;
  cfg.search.evo.candidates.wrap_output = true;

  CompiledModel model = Pipeline(cfg).compile(net);
  const auto before = model.estimate();
  const EvoSearchResult result = model.search();
  EXPECT_GT(result.evaluations, 0);
  EXPECT_LE(result.best_cost.num_crossbars, uniform_cost.num_crossbars);
  // The cached estimate was refreshed for the refined assignment.
  EXPECT_EQ(model.estimate().cost.num_crossbars,
            result.best_cost.num_crossbars);
  EXPECT_LE(model.estimate().cost.edp(), before.cost.edp());
}

// ---- deployment ----

TEST(PipelineDeploy, RuntimeConfigDerivation) {
  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(5, 7);
  cfg.deploy.non_ideal.conductance_sigma = 0.25;
  Pipeline pipeline(cfg);

  SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.train_per_class = 6;
  dspec.test_per_class = 4;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 4;
  SmallEpitomeNet net(nspec);

  DeployedModel chip = pipeline.deploy(net, data.train);
  EXPECT_EQ(chip.runtime_config().weight_bits, 5);
  EXPECT_EQ(chip.runtime_config().act_bits, 7);
  // The documented deployment ADC default replaces RuntimeConfig's old
  // silent 12-bit override.
  EXPECT_EQ(chip.runtime_config().crossbar.adc_bits, 12);
  EXPECT_EQ(chip.runtime_config().non_ideal.conductance_sigma, 0.25);
  EXPECT_GT(chip.total_crossbars(), 0);
}

TEST(PipelineDeploy, TrainedModelRunsOnChip) {
  SyntheticSpec dspec;
  dspec.num_classes = 5;
  dspec.train_per_class = 20;
  dspec.test_per_class = 10;
  dspec.noise = 0.3f;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 5;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 6;
  const TrainResult trained = train_model(net, data, tcfg);
  ASSERT_GT(trained.test_accuracy, 0.6);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(8, 10);
  DeployedModel chip = Pipeline(cfg).deploy(net, data.train);
  const double chip_acc = chip.evaluate(data.test);
  EXPECT_GE(chip_acc, trained.test_accuracy - 0.1);
  const Tensor logits = chip.forward(data.test.sample(0));
  EXPECT_EQ(logits.shape(), (Shape{5}));
}

// ---- reporting ----

TEST(PipelineReport, SummaryMentionsKeyFacts) {
  const CompiledModel model = Pipeline{PipelineConfig{}}.compile(resnet18());
  const TextTable table = model.to_table();
  EXPECT_GT(table.num_rows(), 10u);
  const std::string text = model.summary();
  EXPECT_NE(text.find("ResNet18"), std::string::npos);
  EXPECT_NE(text.find("W9A9"), std::string::npos);
  EXPECT_NE(text.find("analytical-estimator"), std::string::npos);
  EXPECT_NE(text.find("crossbars"), std::string::npos);
}

}  // namespace
}  // namespace epim
