// Unit tests for src/tensor: Tensor container semantics and the op kernels
// (matmul, im2col/col2im and their adjoint relationship).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace epim {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_THROW(t.dim(3), InvalidArgument);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({3}, 2.5f);
  EXPECT_EQ(t(0), 2.5f);
  EXPECT_EQ(t(2), 2.5f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), InvalidArgument);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t(0, 0), 0.0f);
  EXPECT_EQ(t(0, 2), 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_EQ(t(1, 2), 5.0f);
}

TEST(Tensor, Rank4Indexing) {
  Tensor t({2, 2, 2, 2});
  t(1, 0, 1, 0) = 7.0f;
  EXPECT_EQ(t.at(((1 * 2 + 0) * 2 + 1) * 2 + 0), 7.0f);
}

TEST(Tensor, IndexBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t(2, 0), InvalidArgument);
  EXPECT_THROW(t(0, 3), InvalidArgument);
  EXPECT_THROW(t(0, -1), InvalidArgument);
  Tensor u({4});
  EXPECT_THROW(u(0, 0), InvalidArgument);  // wrong-rank access
}

TEST(Tensor, OffsetMultiIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.offset({1, 2, 3}), 1 * 12 + 2 * 4 + 3);
  EXPECT_THROW(t.offset({1, 2}), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 0, 2, 3});
  EXPECT_EQ(t.min(), -1.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 4.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.0);
}

TEST(Ops, MatmulSmallKnown) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0f);
  EXPECT_EQ(c(0, 1), 22.0f);
  EXPECT_EQ(c(1, 0), 43.0f);
  EXPECT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, MatmulShapeChecked) {
  Tensor a({2, 3}), b({2, 3});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(Ops, MatmulNtMatchesMatmulTranspose) {
  Rng rng(1);
  Tensor a({5, 7}), b({4, 7});
  rng.fill_normal(a.data(), 35, 0.0f, 1.0f);
  rng.fill_normal(b.data(), 28, 0.0f, 1.0f);
  const Tensor c1 = matmul_nt(a, b);
  const Tensor c2 = matmul(a, transpose2d(b));
  EXPECT_LT(max_abs_diff(c1, c2), 1e-4);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(2);
  Tensor a({3, 5});
  rng.fill_normal(a.data(), 15, 0.0f, 1.0f);
  EXPECT_EQ(max_abs_diff(transpose2d(transpose2d(a)), a), 0.0);
}

TEST(Ops, ElementwiseAddSubScale) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  EXPECT_EQ(add(a, b)(1), 7.0f);
  EXPECT_EQ(sub(b, a)(2), 3.0f);
  EXPECT_EQ(scale(a, 2.0f)(0), 2.0f);
  Tensor c = a;
  add_inplace(c, b);
  EXPECT_EQ(c(0), 5.0f);
  axpy_inplace(c, -1.0f, b);
  EXPECT_LT(max_abs_diff(c, a), 1e-6);
}

TEST(Ops, MseAndNorm) {
  Tensor a({2}, std::vector<float>{0, 3});
  Tensor b({2}, std::vector<float>{0, 0});
  EXPECT_DOUBLE_EQ(mse(a, b), 4.5);
  EXPECT_DOUBLE_EQ(l2_norm(a), 3.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
}

TEST(Ops, ConvOutDim) {
  EXPECT_EQ(conv_out_dim(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_dim(112, 3, 2, 1), 56);
  EXPECT_EQ(conv_out_dim(56, 1, 1, 0), 56);
  EXPECT_EQ(conv_out_dim(56, 3, 1, 1), 56);
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), InvalidArgument);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col is just a (HW, C) re-layout.
  Tensor img({2, 3, 3});
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    img.at(i) = static_cast<float>(i);
  }
  Tensor cols = im2col(img, 1, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 9);
  EXPECT_EQ(cols.dim(1), 2);
  EXPECT_EQ(cols(4, 0), img(0, 1, 1));
  EXPECT_EQ(cols(4, 1), img(1, 1, 1));
}

TEST(Ops, Im2colPaddingZeros) {
  Tensor img({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor cols = im2col(img, 3, 3, 1, 1);
  // Top-left output position: the (0,0) kernel tap reads padding.
  EXPECT_EQ(cols(0, 0), 0.0f);
  // Its centre tap reads img(0,0,0).
  EXPECT_EQ(cols(0, 4), 1.0f);
}

TEST(Ops, Im2colStride) {
  Tensor img({1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) img.at(i) = static_cast<float>(i);
  Tensor cols = im2col(img, 2, 2, 2, 0);
  EXPECT_EQ(cols.dim(0), 4);  // 2x2 output positions
  // Second output position (row 0, col 1) starts at x=2.
  EXPECT_EQ(cols(1, 0), 2.0f);
}

// Property: <im2col(x), y> == <x, col2im(y)> (adjoint pair), which is what
// the conv backward pass relies on.
TEST(Ops, Im2colCol2imAdjoint) {
  Rng rng(5);
  const std::int64_t c = 3, h = 6, w = 5, kh = 3, kw = 2, stride = 2, pad = 1;
  Tensor x({c, h, w});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  Tensor cols = im2col(x, kh, kw, stride, pad);
  Tensor y(cols.shape());
  rng.fill_normal(y.data(), static_cast<std::size_t>(y.numel()), 0.0f, 1.0f);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols.at(i) * y.at(i);
  const Tensor back = col2im(y, c, h, w, kh, kw, stride, pad);
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * back.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

struct Im2colCase {
  std::int64_t c, h, w, kh, kw, stride, pad;
};

class Im2colShapes : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colShapes, ShapeFormula) {
  const auto p = GetParam();
  Tensor img({p.c, p.h, p.w}, 1.0f);
  const Tensor cols = im2col(img, p.kh, p.kw, p.stride, p.pad);
  EXPECT_EQ(cols.dim(0), conv_out_dim(p.h, p.kh, p.stride, p.pad) *
                             conv_out_dim(p.w, p.kw, p.stride, p.pad));
  EXPECT_EQ(cols.dim(1), p.c * p.kh * p.kw);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Im2colShapes,
    ::testing::Values(Im2colCase{1, 8, 8, 3, 3, 1, 1},
                      Im2colCase{3, 16, 16, 3, 3, 2, 1},
                      Im2colCase{4, 7, 9, 1, 1, 1, 0},
                      Im2colCase{2, 12, 12, 7, 7, 2, 3},
                      Im2colCase{8, 5, 5, 5, 5, 1, 2}));

}  // namespace
}  // namespace epim
