// Unit tests for src/core: the epitome operator, its sampler, reconstruction,
// repetition structure, channel wrapping, gradient folding, the designer and
// network assignments.
#include <gtest/gtest.h>

#include "core/assignment.hpp"
#include "core/designer.hpp"
#include "core/epitome.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"

namespace epim {
namespace {

ConvSpec conv_3x3(std::int64_t cin, std::int64_t cout) {
  return ConvSpec{cin, cout, 3, 3, 1, 1};
}

TEST(EpitomeSpec, Compatibility) {
  const ConvSpec conv = conv_3x3(16, 32);
  EXPECT_TRUE((EpitomeSpec{4, 4, 8, 16}).compatible_with(conv));
  EXPECT_FALSE((EpitomeSpec{2, 4, 8, 16}).compatible_with(conv));  // p < kh
  EXPECT_FALSE((EpitomeSpec{4, 4, 32, 16}).compatible_with(conv)); // cin_e > cin
  EXPECT_FALSE((EpitomeSpec{4, 4, 8, 64}).compatible_with(conv));  // cout_e > cout
}

TEST(EpitomeSpec, RowAndParamAccounting) {
  EpitomeSpec s{4, 4, 64, 256};
  EXPECT_EQ(s.rows(), 1024);
  EXPECT_EQ(s.weight_count(), 1024 * 256);
  EXPECT_EQ(s.to_string().substr(0, 8), "1024x256");
}

TEST(SamplePlan, GroupCounts) {
  const ConvSpec conv = conv_3x3(16, 32);
  SamplePlan plan(EpitomeSpec{4, 4, 8, 16}, conv);
  EXPECT_EQ(plan.num_in_groups(), 2);
  EXPECT_EQ(plan.num_out_groups(), 2);
  EXPECT_EQ(plan.total_patches(), 4);
  EXPECT_EQ(plan.active_rounds(), 4);
  EXPECT_EQ(plan.wrap_factor(), 1);
}

TEST(SamplePlan, NonDivisibleChannelsCovered) {
  const ConvSpec conv = conv_3x3(10, 7);
  SamplePlan plan(EpitomeSpec{4, 4, 4, 3}, conv);
  EXPECT_EQ(plan.num_in_groups(), 3);
  EXPECT_EQ(plan.num_out_groups(), 3);
  // Every (cin, cout) pair must be covered exactly once.
  std::vector<int> cover(static_cast<std::size_t>(10 * 7), 0);
  for (const auto& s : plan.samples()) {
    for (std::int64_t i = 0; i < s.ci_len; ++i) {
      for (std::int64_t j = 0; j < s.co_len; ++j) {
        cover[static_cast<std::size_t>((s.ci_begin + i) * 7 + s.co_begin +
                                       j)]++;
      }
    }
  }
  for (const int c : cover) EXPECT_EQ(c, 1);
}

TEST(SamplePlan, WrappingSharesOffsetsAndRounds) {
  const ConvSpec conv = conv_3x3(16, 64);
  EpitomeSpec spec{4, 4, 8, 16};
  spec.wrap_output = true;
  SamplePlan plan(spec, conv);
  EXPECT_EQ(plan.num_out_groups(), 4);
  EXPECT_EQ(plan.wrap_factor(), 4);
  EXPECT_EQ(plan.active_rounds(), plan.num_in_groups());
  EXPECT_EQ(plan.total_patches(), plan.num_in_groups() * 4);
  // Same input group -> same offsets across output groups (Eq. 8 setup),
  // and replicas reference their source round.
  for (const auto& s : plan.samples()) {
    const auto& src = plan.samples()[static_cast<std::size_t>(s.in_group)];
    EXPECT_EQ(s.off_p, src.off_p);
    EXPECT_EQ(s.off_q, src.off_q);
    if (s.out_group > 0) {
      EXPECT_TRUE(s.replicated);
      EXPECT_EQ(s.round, src.round);
    }
  }
}

TEST(SamplePlan, OffsetsStayInBounds) {
  const ConvSpec conv = conv_3x3(64, 128);
  const EpitomeSpec spec{6, 5, 16, 32};
  SamplePlan plan(spec, conv);
  for (const auto& s : plan.samples()) {
    EXPECT_GE(s.off_p, 0);
    EXPECT_LE(s.off_p + conv.kernel_h, spec.p);
    EXPECT_GE(s.off_q, 0);
    EXPECT_LE(s.off_q + conv.kernel_w, spec.q);
  }
}

TEST(Epitome, DegenerateReconstructionIsIdentity) {
  Rng rng(1);
  const ConvSpec conv = conv_3x3(4, 6);
  Tensor w({6, 4, 3, 3});
  rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.0f, 1.0f);
  const Epitome e = Epitome::from_conv_weights(conv, w);
  EXPECT_EQ(e.plan().total_patches(), 1);
  EXPECT_EQ(max_abs_diff(e.reconstruct(), w), 0.0);
  EXPECT_DOUBLE_EQ(e.compression_rate(), 1.0);
}

TEST(Epitome, ReconstructionReadsSampledPatches) {
  Rng rng(2);
  const ConvSpec conv = conv_3x3(8, 8);
  const EpitomeSpec spec{5, 5, 4, 4};
  Epitome e = Epitome::random(spec, conv, rng);
  const Tensor recon = e.reconstruct();
  ASSERT_EQ(recon.shape(), (Shape{8, 8, 3, 3}));
  // Check one sample by hand.
  const auto& s = e.plan().samples()[1];
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      EXPECT_EQ(recon(s.co_begin, s.ci_begin, y, x),
                e.weights()(0, 0, s.off_p + y, s.off_q + x));
    }
  }
}

TEST(Epitome, CompressionRate) {
  const ConvSpec conv = conv_3x3(64, 64);  // 36864 params
  Epitome e(EpitomeSpec{4, 4, 32, 32}, conv);  // 16384 params
  EXPECT_NEAR(e.compression_rate(), 36864.0 / 16384.0, 1e-9);
}

TEST(Epitome, RepetitionMapTotalMatchesConvSize) {
  // Sum of the repetition map equals the element count of the reconstructed
  // convolution (every conv element is sampled from exactly one epitome
  // element).
  const ConvSpec conv = conv_3x3(16, 32);
  Epitome e(EpitomeSpec{4, 4, 8, 16}, conv);
  const Tensor rep = e.repetition_map();
  EXPECT_DOUBLE_EQ(rep.sum(), static_cast<double>(conv.weight_count()));
}

TEST(Epitome, CentreRepeatsMoreThanBorder) {
  // Fig. 2(c): with overlapping 3x3 windows in a 5x5 plane, centre entries
  // are sampled by more patches than corner entries.
  const ConvSpec conv = conv_3x3(32, 64);
  Epitome e(EpitomeSpec{5, 5, 8, 8}, conv);
  const Tensor rep = e.repetition_map();
  double centre = 0.0, corner = 0.0;
  const EpitomeSpec& s = e.spec();
  for (std::int64_t co = 0; co < s.cout_e; ++co) {
    for (std::int64_t ci = 0; ci < s.cin_e; ++ci) {
      centre += rep(co, ci, 2, 2);
      corner += rep(co, ci, 0, 0);
    }
  }
  EXPECT_GT(centre, corner);
}

TEST(Epitome, WrappingMakesWeightsTranslationInvariant) {
  // Eq. 8: W[x, :, :, :] == W[x + c, :, :, :].
  Rng rng(3);
  const ConvSpec conv = conv_3x3(8, 24);
  EpitomeSpec spec{4, 4, 8, 8};
  spec.wrap_output = true;
  Epitome e = Epitome::random(spec, conv, rng);
  const Tensor w = e.reconstruct();
  const std::int64_t c = spec.cout_e;
  const std::int64_t inner = conv.in_channels * 9;
  for (std::int64_t x = 0; x < conv.out_channels - c; ++x) {
    for (std::int64_t i = 0; i < inner; ++i) {
      EXPECT_EQ(w.at(x * inner + i), w.at((x + c) * inner + i));
    }
  }
}

TEST(Epitome, NoWrappingGivesDistinctOutputGroups) {
  Rng rng(4);
  const ConvSpec conv = conv_3x3(8, 16);
  Epitome e = Epitome::random(EpitomeSpec{4, 4, 8, 8}, conv, rng);
  const Tensor w = e.reconstruct();
  // Output group 1 uses a different spatial offset, so the groups differ.
  double diff = 0.0;
  const std::int64_t inner = conv.in_channels * 9;
  for (std::int64_t i = 0; i < inner; ++i) {
    diff += std::abs(w.at(i) - w.at(8 * inner + i));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Epitome, FoldGradientIsAdjointOfReconstruct) {
  // <reconstruct(E), G> == <E, fold(G)> for random G -- the defining
  // property of a correct backward pass.
  Rng rng(5);
  const ConvSpec conv = conv_3x3(10, 14);
  Epitome e = Epitome::random(EpitomeSpec{5, 4, 4, 6}, conv, rng);
  Tensor g({14, 10, 3, 3});
  rng.fill_normal(g.data(), static_cast<std::size_t>(g.numel()), 0.0f, 1.0f);
  const Tensor recon = e.reconstruct();
  double lhs = 0.0;
  for (std::int64_t i = 0; i < g.numel(); ++i) lhs += recon.at(i) * g.at(i);
  const Tensor folded = e.fold_gradient(g);
  double rhs = 0.0;
  for (std::int64_t i = 0; i < folded.numel(); ++i) {
    rhs += e.weights().at(i) * folded.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Epitome, FoldGradientOfOnesEqualsRepetitionMap) {
  const ConvSpec conv = conv_3x3(16, 8);
  Epitome e(EpitomeSpec{4, 4, 8, 8}, conv);
  Tensor ones({8, 16, 3, 3}, 1.0f);
  EXPECT_EQ(max_abs_diff(e.fold_gradient(ones), e.repetition_map()), 0.0);
}

TEST(Designer, UniformSkipsSmallLayers) {
  UniformDesign policy;  // 1024 x 256
  EXPECT_FALSE(design_uniform(conv_3x3(64, 64), policy).has_value());
  EXPECT_TRUE(design_uniform(conv_3x3(512, 512), policy).has_value());
}

TEST(Designer, UniformHitsRowTarget) {
  UniformDesign policy;
  const auto spec = design_uniform(conv_3x3(512, 512), policy);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->rows(), 1024);
  EXPECT_EQ(spec->cout_e, 256);
  EXPECT_EQ(spec->p, 4);
  EXPECT_EQ(spec->q, 4);
  EXPECT_EQ(spec->cin_e, 64);
}

TEST(Designer, PointwiseLayersGetFlatEpitomes) {
  UniformDesign policy;
  const ConvSpec conv{2048, 512, 1, 1, 1, 0};
  const auto spec = design_uniform(conv, policy);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->p, 1);
  EXPECT_EQ(spec->q, 1);
  EXPECT_EQ(spec->rows(), 1024);
}

TEST(Designer, NeverInflatesALayer) {
  UniformDesign policy;
  policy.skip_small_layers = false;
  for (const auto& layer : resnet50().weighted_layers()) {
    const auto spec = design_uniform(layer.conv, policy);
    if (spec.has_value()) {
      EXPECT_LT(spec->weight_count(), layer.conv.weight_count())
          << layer.name;
    }
  }
}

TEST(Designer, CandidatesAreCompatibleAndCompressing) {
  CandidateConfig cfg;
  const ConvSpec conv = conv_3x3(512, 512);
  const auto cands = candidate_specs(conv, cfg);
  EXPECT_GE(cands.size(), 4u);
  EXPECT_FALSE(cands.front().has_value());  // identity candidate first
  for (const auto& c : cands) {
    if (!c.has_value()) continue;
    EXPECT_TRUE(c->compatible_with(conv));
    EXPECT_LT(c->weight_count(), conv.weight_count());
  }
}

TEST(Designer, CandidatesDeduplicated) {
  CandidateConfig cfg;
  const auto cands = candidate_specs(conv_3x3(64, 64), cfg);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    for (std::size_t j = i + 1; j < cands.size(); ++j) {
      EXPECT_FALSE(cands[i] == cands[j]);
    }
  }
}

TEST(Assignment, BaselineHasNoEpitomes) {
  const Network net = mini_resnet();
  const auto a = NetworkAssignment::baseline(net);
  EXPECT_EQ(a.num_epitome_layers(), 0);
  EXPECT_DOUBLE_EQ(a.parameter_compression(), 1.0);
}

TEST(Assignment, UniformCompressesResNet50) {
  const Network net = resnet50();
  const auto a = NetworkAssignment::uniform(net, UniformDesign{});
  EXPECT_GT(a.num_epitome_layers(), 20);
  EXPECT_GT(a.parameter_compression(), 2.0);
  EXPECT_LT(a.parameter_compression(), 6.0);
}

TEST(Assignment, SetChoiceValidates) {
  const Network net = mini_resnet();
  auto a = NetworkAssignment::baseline(net);
  // Layer 1 of mini_resnet is a 16->16 3x3 conv.
  EXPECT_NO_THROW(a.set_choice(1, EpitomeSpec{4, 4, 8, 8}));
  EXPECT_EQ(a.num_epitome_layers(), 1);
  EXPECT_THROW(a.set_choice(1, EpitomeSpec{4, 4, 999, 8}), InvalidArgument);
  EXPECT_THROW(a.set_choice(999, std::nullopt), InvalidArgument);
}

TEST(Assignment, WrapToggleAppliesToAllEpitomeLayers) {
  const Network net = resnet50();
  auto a = NetworkAssignment::uniform(net, UniformDesign{});
  a.set_wrap_output(true);
  for (std::int64_t i = 0; i < a.num_layers(); ++i) {
    if (a.choice(i).has_value()) EXPECT_TRUE(a.choice(i)->wrap_output);
  }
}

// Property sweep: reconstruction covers every element for a variety of
// epitome/conv shape combinations (including kernel sizes 1, 3, 5, 7 and
// non-divisible channel ratios).
struct ShapeCase {
  std::int64_t cin, cout, k;
  std::int64_t p, q, cin_e, cout_e;
};

class ReconstructionSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ReconstructionSweep, EveryConvElementAssigned) {
  const auto c = GetParam();
  const ConvSpec conv{c.cin, c.cout, c.k, c.k, 1, c.k / 2};
  const EpitomeSpec spec{c.p, c.q, c.cin_e, c.cout_e};
  ASSERT_TRUE(spec.compatible_with(conv));
  Epitome e(spec, conv);
  e.weights().fill(1.0f);  // all-ones epitome -> reconstruction all ones
  const Tensor recon = e.reconstruct();
  EXPECT_EQ(recon.min(), 1.0f);
  EXPECT_EQ(recon.max(), 1.0f);
  const Tensor rep = e.repetition_map();
  EXPECT_DOUBLE_EQ(rep.sum(), static_cast<double>(conv.weight_count()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReconstructionSweep,
    ::testing::Values(ShapeCase{8, 8, 3, 4, 4, 4, 4},
                      ShapeCase{10, 6, 3, 5, 5, 3, 4},
                      ShapeCase{16, 16, 1, 1, 1, 8, 8},
                      ShapeCase{12, 20, 5, 7, 6, 4, 8},
                      ShapeCase{3, 64, 7, 8, 8, 3, 16},
                      ShapeCase{32, 32, 3, 4, 4, 32, 32},
                      ShapeCase{7, 5, 3, 6, 4, 2, 2}));

}  // namespace
}  // namespace epim
