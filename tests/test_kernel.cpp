// Golden-vector tests for the contiguous-memory crossbar kernel: the
// rewritten CrossbarArray (flat cell store, enabled-row index list, integer
// fast paths) must be bit-identical to the seed implementation in every
// regime -- ideal wide-ADC (direct integer path), ideal starved-ADC
// (integer bit-serial path with saturation), and non-ideal (analog path),
// including partial row_enable masks and the clip diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "pim/crossbar.hpp"

namespace epim {
namespace {

/// Verbatim port of the seed (pre-flat-layout) CrossbarArray: nested
/// vector-of-vectors cell store, vector<bool> row gating, double column
/// currents in every mode. The production kernel is tested against this.
class SeedCrossbar {
 public:
  SeedCrossbar(const CrossbarConfig& config, int weight_bits,
               const std::vector<std::vector<int>>& weights,
               const NonIdealityConfig& non_ideal = {})
      : config_(config) {
    rows_ = static_cast<std::int64_t>(weights.size());
    cols_ = static_cast<std::int64_t>(weights.front().size());
    slices_ = config.weight_slices(weight_bits);
    offset_ = std::int64_t{1} << (weight_bits - 1);
    const int radix_bits = config.cell_bits;
    const int radix_mask = (1 << radix_bits) - 1;
    const double level_max = static_cast<double>(radix_mask);
    const bool ideal = non_ideal.ideal();
    Rng rng(non_ideal.seed);
    cells_.assign(static_cast<std::size_t>(slices_),
                  std::vector<std::vector<double>>(
                      static_cast<std::size_t>(rows_),
                      std::vector<double>(static_cast<std::size_t>(cols_),
                                          0.0)));
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t c = 0; c < cols_; ++c) {
        const int w = weights[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)];
        std::int64_t stored = static_cast<std::int64_t>(w) + offset_;
        for (std::int64_t s = 0; s < slices_; ++s) {
          double level = static_cast<double>(stored & radix_mask);
          if (!ideal) {
            if (non_ideal.stuck_at_zero_prob > 0.0 &&
                rng.flip(non_ideal.stuck_at_zero_prob)) {
              level = 0.0;
            } else if (non_ideal.stuck_at_max_prob > 0.0 &&
                       rng.flip(non_ideal.stuck_at_max_prob)) {
              level = level_max;
            } else if (non_ideal.conductance_sigma > 0.0) {
              level = std::clamp(
                  level + rng.normal(0.0, non_ideal.conductance_sigma), 0.0,
                  level_max);
            }
          }
          cells_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(c)] = level;
          stored >>= radix_bits;
        }
      }
    }
  }

  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                const std::vector<bool>& row_enable,
                                int act_bits) const {
    clip_count_ = 0;
    const std::int64_t adc_max = (std::int64_t{1} << config_.adc_bits) - 1;
    const int radix_bits = config_.cell_bits;
    std::vector<std::int64_t> acc(static_cast<std::size_t>(cols_), 0);
    std::int64_t input_sum = 0;
    std::vector<double> current(static_cast<std::size_t>(cols_));
    for (int t = 0; t < act_bits; ++t) {
      for (std::int64_t s = 0; s < slices_; ++s) {
        const auto& plane = cells_[static_cast<std::size_t>(s)];
        std::fill(current.begin(), current.end(), 0.0);
        for (std::int64_t r = 0; r < rows_; ++r) {
          if (!row_enable[static_cast<std::size_t>(r)]) continue;
          if (((input[static_cast<std::size_t>(r)] >> t) & 1u) == 0u) {
            continue;
          }
          const auto& row = plane[static_cast<std::size_t>(r)];
          for (std::int64_t c = 0; c < cols_; ++c) {
            current[static_cast<std::size_t>(c)] +=
                row[static_cast<std::size_t>(c)];
          }
        }
        for (std::int64_t c = 0; c < cols_; ++c) {
          std::int64_t code = static_cast<std::int64_t>(
              std::llround(current[static_cast<std::size_t>(c)]));
          if (code > adc_max) {
            code = adc_max;
            ++clip_count_;
          }
          if (code < 0) code = 0;
          acc[static_cast<std::size_t>(c)] +=
              code << (t + static_cast<int>(s) * radix_bits);
        }
      }
    }
    for (std::int64_t r = 0; r < rows_; ++r) {
      if (row_enable[static_cast<std::size_t>(r)]) {
        input_sum += input[static_cast<std::size_t>(r)];
      }
    }
    for (std::int64_t c = 0; c < cols_; ++c) {
      acc[static_cast<std::size_t>(c)] -= offset_ * input_sum;
    }
    return acc;
  }

  std::int64_t last_clip_count() const { return clip_count_; }

 private:
  CrossbarConfig config_;
  std::int64_t rows_, cols_, slices_, offset_;
  std::vector<std::vector<std::vector<double>>> cells_;
  mutable std::int64_t clip_count_ = 0;
};

struct GoldenCase {
  const char* name;
  std::int64_t rows, cols;
  int weight_bits, act_bits, adc_bits;
  NonIdealityConfig non_ideal;
  double enable_prob;  ///< fraction of word lines enabled
};

class KernelGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(KernelGolden, BitIdenticalToSeedImplementation) {
  const GoldenCase& p = GetParam();
  Rng rng(0xC0FFEEu);
  CrossbarConfig cfg;
  cfg.adc_bits = p.adc_bits;
  const int lo = -(1 << (p.weight_bits - 1));
  const int hi = (1 << (p.weight_bits - 1)) - 1;
  std::vector<std::vector<int>> w(
      static_cast<std::size_t>(p.rows),
      std::vector<int>(static_cast<std::size_t>(p.cols)));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(lo, hi);
  }

  const CrossbarArray kernel(cfg, p.weight_bits, w, p.non_ideal);
  const SeedCrossbar seed(cfg, p.weight_bits, w, p.non_ideal);

  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::uint32_t> x(static_cast<std::size_t>(p.rows));
    std::vector<bool> en(static_cast<std::size_t>(p.rows));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<std::uint32_t>(
          rng.uniform_int(0, (1 << p.act_bits) - 1));
      en[i] = rng.flip(p.enable_prob);
    }
    const auto got = kernel.mvm(x, en, p.act_bits);
    const auto want = seed.mvm(x, en, p.act_bits);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < got.size(); ++c) {
      EXPECT_EQ(got[c], want[c]) << p.name << " trial " << trial
                                 << " col " << c;
    }
    EXPECT_EQ(kernel.last_clip_count(), seed.last_clip_count())
        << p.name << " trial " << trial;
  }
}

NonIdealityConfig noisy() {
  NonIdealityConfig ni;
  ni.conductance_sigma = 0.3;
  ni.stuck_at_zero_prob = 0.02;
  ni.stuck_at_max_prob = 0.01;
  return ni;
}

NonIdealityConfig sigma_only() {
  NonIdealityConfig ni;
  ni.conductance_sigma = 0.15;
  return ni;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, KernelGolden,
    ::testing::Values(
        // Ideal + wide ADC: exercises the direct int64 fast path.
        GoldenCase{"ideal_wide", 128, 16, 9, 9, 12, {}, 0.8},
        GoldenCase{"ideal_wide_full", 64, 32, 6, 8, 12, {}, 1.0},
        GoldenCase{"ideal_wide_sparse", 37, 5, 5, 7, 12, {}, 0.3},
        // Ideal + starved ADC: integer bit-serial path with saturation.
        GoldenCase{"ideal_clip", 64, 8, 8, 8, 3, {}, 1.0},
        GoldenCase{"ideal_clip_partial", 96, 12, 7, 6, 4, {}, 0.6},
        // Non-ideal: analog double-precision path, same RNG draw order.
        GoldenCase{"noisy", 64, 8, 6, 6, 12, noisy(), 0.8},
        GoldenCase{"noisy_starved", 48, 6, 8, 8, 4, noisy(), 1.0},
        GoldenCase{"sigma", 128, 16, 9, 9, 12, sigma_only(), 0.7},
        // Degenerate geometry.
        GoldenCase{"one_cell", 1, 1, 2, 1, 12, {}, 1.0}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.param.name;
    });

TEST(KernelFastPath, OutOfContractInputBitsMatchSeedTruncation) {
  // The bit-serial reference streams only act_bits input bits but corrects
  // the offset with the full input sum; the direct fast path must reproduce
  // that exactly even for inputs that violate the act_bits contract.
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  std::vector<std::vector<int>> w = {{3, -2}, {-5, 7}, {1, 1}};
  const CrossbarArray kernel(cfg, 4, w);
  const SeedCrossbar seed(cfg, 4, w);
  const std::vector<std::uint32_t> x = {0x1F5u, 0x203u, 0x7u};  // > 3 bits
  const std::vector<bool> en = {true, false, true};
  const auto got = kernel.mvm(x, en, /*act_bits=*/3);
  const auto want = seed.mvm(x, en, /*act_bits=*/3);
  EXPECT_EQ(got, want);
}

TEST(KernelFastPath, ClipCountAccumulatesThroughThreadSafeOverload) {
  CrossbarConfig cfg;
  cfg.adc_bits = 3;  // starved: clips guaranteed
  Rng rng(5);
  std::vector<std::vector<int>> w(
      64, std::vector<int>(4));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(-128, 127);
  }
  const CrossbarArray kernel(cfg, 8, w);
  const std::vector<std::uint32_t> x(64, 255);
  const std::vector<bool> en(64, true);
  std::vector<std::int64_t> acc;
  std::int64_t clips = 0;
  kernel.mvm(x, en, 8, acc, &clips);
  const std::int64_t once = clips;
  EXPECT_GT(once, 0);
  kernel.mvm(x, en, 8, acc, &clips);  // accumulates, does not reset
  EXPECT_EQ(clips, 2 * once);
}

}  // namespace
}  // namespace epim
