// Unit tests for src/pim: weight mapping, the functional bit-sliced crossbar
// (exactness vs integer matmul, ADC clipping), and the analytical estimator's
// structural properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/assignment.hpp"
#include "nn/resnet.hpp"
#include "pim/crossbar.hpp"
#include "pim/estimator.hpp"
#include "pim/mapping.hpp"

namespace epim {
namespace {

TEST(Mapping, SliceCounts) {
  CrossbarConfig cfg;  // 2-bit cells
  EXPECT_EQ(cfg.weight_slices(1), 1);
  EXPECT_EQ(cfg.weight_slices(2), 1);
  EXPECT_EQ(cfg.weight_slices(3), 2);
  EXPECT_EQ(cfg.weight_slices(9), 5);
  EXPECT_EQ(cfg.weight_slices(16), 8);
}

TEST(Mapping, TileArithmetic) {
  CrossbarConfig cfg;
  const LayerMapping m = map_weight_matrix(576, 256, 9, cfg);
  EXPECT_EQ(m.slices, 5);
  EXPECT_EQ(m.cols_physical, 1280);
  EXPECT_EQ(m.tiles_r, 5);    // ceil(576/128)
  EXPECT_EQ(m.tiles_c, 10);   // ceil(1280/128)
  EXPECT_EQ(m.num_crossbars, 50);
}

TEST(Mapping, PerfectAlignmentGivesFullUtilization) {
  CrossbarConfig cfg;
  const LayerMapping m = map_weight_matrix(1024, 256, 8, cfg);  // 4 slices
  EXPECT_EQ(m.num_crossbars, 8 * 8);
  EXPECT_DOUBLE_EQ(m.utilization, 1.0);
}

TEST(Mapping, PartialTileLowersUtilization) {
  CrossbarConfig cfg;
  const LayerMapping m = map_weight_matrix(129, 10, 2, cfg);
  EXPECT_EQ(m.tiles_r, 2);
  EXPECT_LT(m.utilization, 0.6);
}

TEST(Mapping, RejectsEmptyMatrix) {
  CrossbarConfig cfg;
  EXPECT_THROW(map_weight_matrix(0, 10, 8, cfg), InvalidArgument);
}

// ---- functional crossbar ----

std::vector<std::vector<int>> random_weights(Rng& rng, std::int64_t rows,
                                             std::int64_t cols, int bits) {
  const int lo = -(1 << (bits - 1)), hi = (1 << (bits - 1)) - 1;
  std::vector<std::vector<int>> w(static_cast<std::size_t>(rows),
                                  std::vector<int>(
                                      static_cast<std::size_t>(cols)));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(lo, hi);
  }
  return w;
}

std::vector<std::int64_t> reference_mvm(
    const std::vector<std::vector<int>>& w,
    const std::vector<std::uint32_t>& x, const std::vector<bool>& en) {
  const std::size_t cols = w.front().size();
  std::vector<std::int64_t> acc(cols, 0);
  for (std::size_t r = 0; r < w.size(); ++r) {
    if (!en[r]) continue;
    for (std::size_t c = 0; c < cols; ++c) {
      acc[c] += static_cast<std::int64_t>(w[r][c]) *
                static_cast<std::int64_t>(x[r]);
    }
  }
  return acc;
}

struct XbarCase {
  std::int64_t rows, cols;
  int weight_bits, act_bits;
};

class CrossbarExactness : public ::testing::TestWithParam<XbarCase> {};

TEST_P(CrossbarExactness, MatchesIntegerMatmul) {
  const auto p = GetParam();
  Rng rng(1234);
  CrossbarConfig cfg;
  cfg.adc_bits = 12;  // generous ADC: the analog path must be exact
  const auto w = random_weights(rng, p.rows, p.cols, p.weight_bits);
  CrossbarArray xbar(cfg, p.weight_bits, w);
  std::vector<std::uint32_t> x(static_cast<std::size_t>(p.rows));
  std::vector<bool> en(static_cast<std::size_t>(p.rows));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::uint32_t>(
        rng.uniform_int(0, (1 << p.act_bits) - 1));
    en[i] = rng.flip(0.8);
  }
  const auto got = xbar.mvm(x, en, p.act_bits);
  const auto want = reference_mvm(w, x, en);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < got.size(); ++c) EXPECT_EQ(got[c], want[c]);
  EXPECT_EQ(xbar.last_clip_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossbarExactness,
    ::testing::Values(XbarCase{16, 8, 4, 4}, XbarCase{128, 16, 9, 9},
                      XbarCase{64, 32, 3, 9}, XbarCase{128, 12, 16, 8},
                      XbarCase{1, 1, 2, 1}, XbarCase{37, 5, 5, 7},
                      XbarCase{128, 16, 8, 16}));

TEST(Crossbar, NegativeWeightsViaOffsetEncoding) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  std::vector<std::vector<int>> w = {{-3}, {2}, {-1}};
  CrossbarArray xbar(cfg, 4, w);
  const auto out = xbar.mvm({1, 2, 3}, 2);
  EXPECT_EQ(out[0], -3 * 1 + 2 * 2 - 1 * 3);
}

TEST(Crossbar, RowMaskingZeroesContribution) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  std::vector<std::vector<int>> w = {{5}, {7}};
  CrossbarArray xbar(cfg, 4, w);
  const auto out = xbar.mvm({3, 3}, {true, false}, 2);
  EXPECT_EQ(out[0], 15);
}

TEST(Crossbar, StarvedAdcClips) {
  CrossbarConfig cfg;
  cfg.adc_bits = 3;  // max current 7, easily exceeded
  Rng rng(7);
  const auto w = random_weights(rng, 64, 4, 8);
  CrossbarArray xbar(cfg, 8, w);
  std::vector<std::uint32_t> x(64, 255);
  const auto got = xbar.mvm(x, 8);
  EXPECT_GT(xbar.last_clip_count(), 0);
  const auto want = reference_mvm(w, x, std::vector<bool>(64, true));
  // Clipping must bias results; at least one column deviates.
  bool deviates = false;
  for (std::size_t c = 0; c < got.size(); ++c) {
    deviates = deviates || got[c] != want[c];
  }
  EXPECT_TRUE(deviates);
}

TEST(Crossbar, DefaultAdcSufficientFor128Rows) {
  // 9-bit ADC covers 128 rows x max 2-bit cell digit (3) = 384 < 512.
  CrossbarConfig cfg;
  Rng rng(9);
  const auto w = random_weights(rng, 128, 8, 8);
  CrossbarArray xbar(cfg, 8, w);
  std::vector<std::uint32_t> x(128);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
  const auto got = xbar.mvm(x, 8);
  EXPECT_EQ(xbar.last_clip_count(), 0);
  const auto want = reference_mvm(w, x, std::vector<bool>(128, true));
  for (std::size_t c = 0; c < got.size(); ++c) EXPECT_EQ(got[c], want[c]);
}

TEST(Crossbar, RejectsOversizedWeights) {
  CrossbarConfig cfg;
  std::vector<std::vector<int>> w = {{9}};
  EXPECT_THROW(CrossbarArray(cfg, 4, w), InvalidArgument);  // 9 > 7
  std::vector<std::vector<int>> ok = {{7}};
  EXPECT_NO_THROW(CrossbarArray(cfg, 4, ok));
}

// ---- analytical estimator ----

ConvLayerInfo big_layer() {
  return {"stage4.conv2", ConvSpec{512, 512, 3, 3, 1, 1}, 7, 7};
}

TEST(Estimator, ConvLayerCostBasics) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const LayerCost c = est.eval_conv_layer(big_layer(), 9, 9);
  EXPECT_EQ(c.positions, 49);
  EXPECT_EQ(c.rounds_per_position, 1);
  EXPECT_GT(c.latency_ms, 0.0);
  EXPECT_GT(c.dynamic_energy_mj, 0.0);
  EXPECT_EQ(c.mapping.num_crossbars,
            map_weight_matrix(4608, 512, 9, CrossbarConfig{}).num_crossbars);
}

TEST(Estimator, EpitomeUsesFewerCrossbarsMoreRounds) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const EpitomeSpec spec{4, 4, 64, 256};  // 1024 x 256
  const LayerCost conv = est.eval_conv_layer(big_layer(), 9, 9);
  const LayerCost epi = est.eval_epitome_layer(big_layer(), spec, 9, 9);
  EXPECT_LT(epi.mapping.num_crossbars, conv.mapping.num_crossbars);
  EXPECT_GT(epi.rounds_per_position, 1);
  EXPECT_GT(epi.latency_ms, conv.latency_ms);
}

TEST(Estimator, LatencyScalesWithRounds) {
  // Sec. 5.1: latency increase is roughly proportional to the number of
  // activation rounds (the compression rate).
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const LayerCost small =
      est.eval_epitome_layer(big_layer(), EpitomeSpec{4, 4, 64, 256}, 9, 9);
  const LayerCost tiny =
      est.eval_epitome_layer(big_layer(), EpitomeSpec{4, 4, 16, 256}, 9, 9);
  EXPECT_GT(tiny.rounds_per_position, small.rounds_per_position);
  const double ratio = tiny.latency_ms / small.latency_ms;
  const double rounds_ratio =
      static_cast<double>(tiny.rounds_per_position) /
      static_cast<double>(small.rounds_per_position);
  EXPECT_NEAR(ratio, rounds_ratio, 0.25 * rounds_ratio);
}

TEST(Estimator, WrappingCutsRoundsAndEnergy) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  EpitomeSpec plain{4, 4, 64, 256};
  EpitomeSpec wrapped = plain;
  wrapped.wrap_output = true;
  const LayerCost a = est.eval_epitome_layer(big_layer(), plain, 9, 9);
  const LayerCost b = est.eval_epitome_layer(big_layer(), wrapped, 9, 9);
  EXPECT_LT(b.rounds_per_position, a.rounds_per_position);
  EXPECT_GT(b.replicas_per_position, 0);
  EXPECT_LT(b.latency_ms, a.latency_ms);
  EXPECT_LT(b.dynamic_energy_mj, a.dynamic_energy_mj);
}

TEST(Estimator, FewerWeightBitsFewerCrossbars) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  std::int64_t prev = 0;
  for (const int bits : {3, 5, 7, 9}) {
    const LayerCost c = est.eval_conv_layer(big_layer(), bits, 9);
    EXPECT_GT(c.mapping.num_crossbars, prev);
    prev = c.mapping.num_crossbars;
  }
}

TEST(Estimator, Fp32MappedToFixedPointEquivalent) {
  CrossbarConfig cfg;
  PimEstimator est(cfg, HardwareLut{});
  const LayerCost fp = est.eval_conv_layer(big_layer(), 32, 32);
  const LayerCost w16 = est.eval_conv_layer(big_layer(), cfg.fp32_weight_bits,
                                            cfg.fp32_act_bits);
  EXPECT_EQ(fp.mapping.num_crossbars, w16.mapping.num_crossbars);
  EXPECT_DOUBLE_EQ(fp.latency_ms, w16.latency_ms);
}

TEST(Estimator, NetworkCostAggregates) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const Network net = mini_resnet();
  const auto base = NetworkAssignment::baseline(net);
  const NetworkCost c = est.eval_network(base, PrecisionConfig::uniform(9, 9));
  EXPECT_EQ(static_cast<std::int64_t>(c.layers.size()),
            base.num_layers());
  std::int64_t xb = 0;
  double lat = 0.0;
  for (const auto& l : c.layers) {
    xb += l.mapping.num_crossbars;
    lat += l.latency_ms;
  }
  EXPECT_EQ(c.num_crossbars, xb);
  EXPECT_NEAR(c.latency_ms, lat, 1e-9);
  EXPECT_GT(c.static_energy_mj, 0.0);
  EXPECT_GT(c.utilization, 0.3);
  EXPECT_LE(c.utilization, 1.0);
}

TEST(Estimator, ResNet50BaselineInPaperRegime) {
  // The calibrated model must stay in the regime of Table 1's FP32 row:
  // 13120 XBs / 139.8 ms / 214 mJ (we accept +-15%).
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const Network net = resnet50();
  const auto base = NetworkAssignment::baseline(net);
  const NetworkCost c =
      est.eval_network(base, PrecisionConfig::uniform(32, 32));
  EXPECT_NEAR(static_cast<double>(c.num_crossbars), 13120.0, 0.15 * 13120.0);
  EXPECT_NEAR(c.latency_ms, 139.8, 0.15 * 139.8);
  EXPECT_NEAR(c.energy_mj(), 214.0, 0.15 * 214.0);
  EXPECT_GT(c.utilization, 0.90);
}

TEST(Estimator, StaticEnergyRewardsFewerCrossbars) {
  // The epitome model has fewer crossbars; even though it runs longer, its
  // static energy must drop (the effect that makes epitome FP32 energy
  // competitive in Table 1).
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const Network net = resnet50();
  const auto base = NetworkAssignment::baseline(net);
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const auto precision = PrecisionConfig::uniform(32, 32);
  const NetworkCost cb = est.eval_network(base, precision);
  const NetworkCost ce = est.eval_network(uni, precision);
  EXPECT_LT(ce.num_crossbars, cb.num_crossbars);
  EXPECT_GT(ce.latency_ms, cb.latency_ms);
  EXPECT_LT(ce.static_energy_mj, cb.static_energy_mj);
}

TEST(Estimator, MixedPrecisionConfigPerLayerLookup) {
  PrecisionConfig p;
  p.weight_bits = {3, 5, 3};
  EXPECT_EQ(p.layer_weight_bits(0), 3);
  EXPECT_EQ(p.layer_weight_bits(1), 5);
  EXPECT_THROW(p.layer_weight_bits(3), InvalidArgument);
  PrecisionConfig u = PrecisionConfig::uniform(7, 9);
  EXPECT_EQ(u.layer_weight_bits(100), 7);
}

struct BitsCase {
  int bits;
};
class EnergyMonotoneInBits : public ::testing::TestWithParam<BitsCase> {};

TEST_P(EnergyMonotoneInBits, QuantizedCheaperThanFp32) {
  PimEstimator est(CrossbarConfig{}, HardwareLut{});
  const Network net = resnet50();
  const auto uni = NetworkAssignment::uniform(net, UniformDesign{});
  const NetworkCost fp =
      est.eval_network(uni, PrecisionConfig::uniform(32, 32));
  const NetworkCost q =
      est.eval_network(uni, PrecisionConfig::uniform(GetParam().bits, 9));
  EXPECT_LT(q.energy_mj(), fp.energy_mj());
  EXPECT_LT(q.latency_ms, fp.latency_ms);
  EXPECT_LT(q.num_crossbars, fp.num_crossbars);
}

INSTANTIATE_TEST_SUITE_P(Bits, EnergyMonotoneInBits,
                         ::testing::Values(BitsCase{3}, BitsCase{5},
                                           BitsCase{7}, BitsCase{9}));

}  // namespace
}  // namespace epim
