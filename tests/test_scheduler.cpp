// Deterministic unit tests for the SLA-aware scheduler (serve/scheduler.hpp)
// in isolation -- no service, no threads, no clock reads. Requests carry a
// synthetic marker in their `enqueued` timestamp so selection ORDER is
// asserted exactly: strict priority across classes, deficit-round-robin
// fairness across clients (including DRR continuation across select calls),
// the bounded anti-starvation reservation, the bounded client table, and
// deadline shedding. The single-client single-class case must degenerate to
// the original FIFO queue bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/scheduler.hpp"

namespace epim {
namespace {

using Clock = std::chrono::steady_clock;

/// Fixed synthetic epoch: tests never read the real clock.
Clock::time_point base() { return Clock::time_point{}; }

/// A request tagged with `marker` (recovered by marker_of below). Image and
/// promise stay default -- the scheduler never inspects payloads.
SchedRequest make_request(int marker, Priority priority = Priority::kNormal,
                          bool no_hold = false) {
  SchedRequest request;
  request.enqueued = base() + std::chrono::nanoseconds(marker);
  request.priority = priority;
  request.no_hold = no_hold;
  return request;
}

int marker_of(const SchedRequest& request) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(request.enqueued -
                                                           base())
          .count());
}

std::vector<int> markers_of(const std::vector<SchedRequest>& requests) {
  std::vector<int> markers;
  for (const SchedRequest& request : requests) {
    markers.push_back(marker_of(request));
  }
  return markers;
}

TEST(Scheduler, RejectsNonPositiveFairnessQuantum) {
  EXPECT_THROW(Scheduler(0), InvalidArgument);
  EXPECT_THROW(Scheduler(-3), InvalidArgument);
}

// The degenerate case the refactor must preserve: one client, one class ==
// the original FIFO queue, including across select() boundaries.
TEST(Scheduler, SingleClientSingleClassIsFifo) {
  Scheduler sched(4);
  for (int i = 0; i < 6; ++i) sched.enqueue(make_request(i), "");
  EXPECT_EQ(sched.size(), 6u);
  EXPECT_EQ(sched.size(Priority::kNormal), 6u);
  EXPECT_TRUE(sched.empty() == false);

  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(4, out), 4u);
  EXPECT_EQ(markers_of(out), (std::vector<int>{0, 1, 2, 3}));
  out.clear();
  EXPECT_EQ(sched.select(10, out), 2u);  // partial fill: only what is queued
  EXPECT_EQ(markers_of(out), (std::vector<int>{4, 5}));
  EXPECT_TRUE(sched.empty());
  out.clear();
  EXPECT_EQ(sched.select(1, out), 0u);
}

TEST(Scheduler, StrictPriorityAcrossClasses) {
  Scheduler sched(4);
  sched.enqueue(make_request(0, Priority::kBulk), "");
  sched.enqueue(make_request(1, Priority::kNormal), "");
  sched.enqueue(make_request(2, Priority::kInteractive), "");
  EXPECT_EQ(sched.size(Priority::kInteractive), 1u);
  EXPECT_EQ(sched.size(Priority::kNormal), 1u);
  EXPECT_EQ(sched.size(Priority::kBulk), 1u);

  // Enqueue order was bulk, normal, interactive; selection order is the
  // exact priority inverse.
  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(3, out), 3u);
  EXPECT_EQ(markers_of(out), (std::vector<int>{2, 1, 0}));
}

// DRR across two clients: each gets `fairness_quantum` consecutive requests
// per ring visit, so neither floods the other out.
TEST(Scheduler, DeficitRoundRobinInterleavesClients) {
  Scheduler sched(2);
  for (int i = 0; i < 6; ++i) sched.enqueue(make_request(i), "a");
  for (int i = 0; i < 6; ++i) sched.enqueue(make_request(10 + i), "b");

  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(12, out), 12u);
  EXPECT_EQ(markers_of(out),
            (std::vector<int>{0, 1, 10, 11, 2, 3, 12, 13, 4, 5, 14, 15}));
}

// DRR continuation: a select() that exhausts its budget mid-turn leaves the
// cursor (and the remaining credit) on that client, so the next select()
// resumes the SAME client's turn rather than granting a fresh quantum.
TEST(Scheduler, DrrContinuesAClientsTurnAcrossSelects) {
  Scheduler sched(4);
  for (int i = 0; i < 8; ++i) sched.enqueue(make_request(i), "a");
  for (int i = 0; i < 8; ++i) sched.enqueue(make_request(10 + i), "b");

  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(2, out), 2u);
  EXPECT_EQ(markers_of(out), (std::vector<int>{0, 1}));  // a's turn opens
  out.clear();
  EXPECT_EQ(sched.select(4, out), 4u);
  // a finishes its quantum of 4 (2 credits left over), THEN b's turn opens.
  EXPECT_EQ(markers_of(out), (std::vector<int>{2, 3, 10, 11}));
  out.clear();
  EXPECT_EQ(sched.select(12, out), 10u);  // only 10 remain: partial fill
  EXPECT_EQ(markers_of(out),
            (std::vector<int>{12, 13, 4, 5, 6, 7, 14, 15, 16, 17}))
      << "b resumes with its leftover credit; drained clients leave the ring";
}

// Anti-starvation bound: a kBulk request behind a steady kInteractive stream
// is selected within fairness_quantum + 1 batch closes, never later.
TEST(Scheduler, StarvedClassGetsAReservedSlotWithinTheQuantumBound) {
  const int quantum = 3;
  Scheduler sched(quantum);
  sched.enqueue(make_request(99, Priority::kBulk), "");

  int bulk_selected_at = -1;
  for (int round = 1; round <= quantum + 1; ++round) {
    sched.enqueue(make_request(round, Priority::kInteractive), "");
    std::vector<SchedRequest> out;
    ASSERT_EQ(sched.select(1, out), 1u) << "round " << round;
    if (marker_of(out[0]) == 99) {
      bulk_selected_at = round;
      break;
    }
    EXPECT_EQ(out[0].priority, Priority::kInteractive);
  }
  // Rounds 1..quantum go to the interactive stream (strict priority);
  // round quantum+1 MUST open with the reserved bulk slot.
  EXPECT_EQ(bulk_selected_at, quantum + 1);
  // The reservation resets: bulk is not suddenly preferred afterwards.
  sched.enqueue(make_request(100, Priority::kBulk), "");
  std::vector<SchedRequest> out;
  ASSERT_EQ(sched.select(1, out), 1u);
  EXPECT_EQ(out[0].priority, Priority::kInteractive);
}

// A contributing class never accrues starvation credit, and a class served
// by the normal fill has its counter reset.
TEST(Scheduler, ContributingClassesDoNotAccrueStarvationCredit) {
  Scheduler sched(2);
  for (int i = 0; i < 8; ++i) {
    sched.enqueue(make_request(i, Priority::kNormal), "");
    sched.enqueue(make_request(10 + i, Priority::kBulk), "");
  }
  // Batches of 2 serve one normal + ... no: strict priority fills both slots
  // from kNormal while it lasts, so bulk starves for 2 rounds, then gets
  // its reserved slot every 3rd round.
  std::vector<int> bulk_rounds;
  for (int round = 1; round <= 8; ++round) {
    std::vector<SchedRequest> out;
    if (sched.select(2, out) == 0u) break;
    for (const SchedRequest& r : out) {
      if (r.priority == Priority::kBulk) bulk_rounds.push_back(round);
    }
  }
  ASSERT_FALSE(bulk_rounds.empty());
  EXPECT_EQ(bulk_rounds.front(), 3)
      << "first bulk slot exactly when passed_over hits the quantum";
}

// The client table is bounded: distinct ids past kMaxClientQueues fold into
// the shared anonymous bucket, nothing is lost, and everything drains FIFO
// within its bucket.
TEST(Scheduler, ClientTableIsBoundedAndOverflowFoldsToAnonymous) {
  Scheduler sched(1);
  const int kClients = static_cast<int>(Scheduler::kMaxClientQueues) + 16;
  for (int i = 0; i < kClients; ++i) {
    sched.enqueue(make_request(i), "client" + std::to_string(i));
  }
  EXPECT_EQ(sched.size(), static_cast<std::size_t>(kClients));

  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(static_cast<std::size_t>(kClients) + 32, out),
            static_cast<std::size_t>(kClients));
  // Every request came back exactly once.
  std::vector<int> markers = markers_of(out);
  std::sort(markers.begin(), markers.end());
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(markers[i], i);
  // The overflow clients (folded into one bucket) drained FIFO relative to
  // each other: their markers appear in submission order within `out`.
  std::vector<int> overflow;
  for (const SchedRequest& r : out) {
    if (marker_of(r) >= static_cast<int>(Scheduler::kMaxClientQueues)) {
      overflow.push_back(marker_of(r));
    }
  }
  EXPECT_TRUE(std::is_sorted(overflow.begin(), overflow.end()));
}

TEST(Scheduler, OldestEnqueuedAndSoonestDeadlineScanAllClasses) {
  Scheduler sched(4);
  SchedRequest early = make_request(1, Priority::kBulk);
  SchedRequest late = make_request(50, Priority::kInteractive);
  late.deadline = base() + std::chrono::milliseconds(5);
  sched.enqueue(std::move(early), "a");
  sched.enqueue(std::move(late), "b");
  EXPECT_EQ(sched.oldest_enqueued(), base() + std::chrono::nanoseconds(1));
  EXPECT_EQ(sched.soonest_deadline(), base() + std::chrono::milliseconds(5));

  std::vector<SchedRequest> out;
  sched.select(2, out);
  EXPECT_EQ(sched.soonest_deadline(), Clock::time_point::max())
      << "no queued deadline left";
}

TEST(Scheduler, ShedExpiredRemovesExactlyTheExpiredRequests) {
  Scheduler sched(4);
  SchedRequest keep = make_request(0);
  keep.deadline = base() + std::chrono::milliseconds(10);
  SchedRequest forever = make_request(1);  // deadline stays max()
  SchedRequest doomed = make_request(2, Priority::kBulk);
  doomed.deadline = base() + std::chrono::milliseconds(2);
  SchedRequest doomed_no_hold = make_request(3, Priority::kBulk,
                                             /*no_hold=*/true);
  doomed_no_hold.deadline = base() + std::chrono::milliseconds(1);
  sched.enqueue(std::move(keep), "a");
  sched.enqueue(std::move(forever), "a");
  sched.enqueue(std::move(doomed), "b");
  sched.enqueue(std::move(doomed_no_hold), "b");
  EXPECT_EQ(sched.no_hold_count(), 1u);

  std::vector<SchedRequest> shed;
  EXPECT_EQ(sched.shed_expired(base() + std::chrono::milliseconds(5), shed),
            2u);
  std::vector<int> markers = markers_of(shed);
  std::sort(markers.begin(), markers.end());
  EXPECT_EQ(markers, (std::vector<int>{2, 3}));
  EXPECT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched.no_hold_count(), 0u)
      << "shedding a no_hold request must release its hold-skip";
  EXPECT_EQ(sched.soonest_deadline(), base() + std::chrono::milliseconds(10));

  // Nothing expired: a no-op shed.
  shed.clear();
  EXPECT_EQ(sched.shed_expired(base() + std::chrono::milliseconds(5), shed),
            0u);
  // The survivors still drain in order.
  std::vector<SchedRequest> out;
  EXPECT_EQ(sched.select(4, out), 2u);
  EXPECT_EQ(markers_of(out), (std::vector<int>{0, 1}));
}

TEST(Scheduler, NoHoldCountTracksSelection) {
  Scheduler sched(4);
  for (int i = 0; i < 3; ++i) {
    sched.enqueue(make_request(i, Priority::kNormal, /*no_hold=*/true), "");
  }
  sched.enqueue(make_request(3), "");
  EXPECT_EQ(sched.no_hold_count(), 3u);

  std::vector<SchedRequest> out;
  sched.select(2, out);  // FIFO: takes the first two no_hold requests
  EXPECT_EQ(sched.no_hold_count(), 1u);
  out.clear();
  sched.select(2, out);
  EXPECT_EQ(sched.no_hold_count(), 0u);
  EXPECT_TRUE(sched.empty());
}

}  // namespace
}  // namespace epim
