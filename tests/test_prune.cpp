// Tests for src/prune: the PIM-Prune baseline reproduction.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/resnet.hpp"
#include "prune/pim_prune.hpp"

namespace epim {
namespace {

Tensor random_matrix(Rng& rng, std::int64_t rows, std::int64_t cols) {
  Tensor m({rows, cols});
  rng.fill_normal(m.data(), static_cast<std::size_t>(m.numel()), 0.0f, 1.0f);
  return m;
}

TEST(Prune, ElementRatioAchieved) {
  Rng rng(1);
  const Tensor m = random_matrix(rng, 64, 64);
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kElement;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_NEAR(r.achieved_ratio, 0.5, 0.01);
}

TEST(Prune, MagnitudePruningRemovesLittleEnergy) {
  // Removing the *smallest* 50% of Gaussian weights removes far less than
  // 50% of the weight energy -- the reason magnitude pruning is gentle on
  // accuracy.
  Rng rng(2);
  const Tensor m = random_matrix(rng, 128, 128);
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kElement;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_LT(r.removed_energy_fraction, 0.15);
  EXPECT_GT(r.removed_energy_fraction, 0.0);
}

TEST(Prune, RowGranularityZeroesWholeRows) {
  Rng rng(3);
  const Tensor m = random_matrix(rng, 20, 10);
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kCrossbarRow;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_EQ(r.remaining_rows, 10);
  EXPECT_EQ(r.remaining_cols, 10);
  // Every row is either intact or fully zero.
  for (std::int64_t row = 0; row < 20; ++row) {
    bool any = false, all = true;
    for (std::int64_t c = 0; c < 10; ++c) {
      const bool z = r.pruned(row, c) == 0.0f;
      any = any || !z;
      all = all && z;
    }
    EXPECT_TRUE(any || all);
  }
}

TEST(Prune, ColGranularityZeroesWholeColumns) {
  Rng rng(4);
  const Tensor m = random_matrix(rng, 16, 24);
  PruneConfig cfg;
  cfg.ratio = 0.25;
  cfg.granularity = PruneGranularity::kCrossbarCol;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_EQ(r.remaining_cols, 18);
}

TEST(Prune, BlockGranularity) {
  Rng rng(5);
  const Tensor m = random_matrix(rng, 256, 256);
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kCrossbarBlock;
  cfg.xbar_rows = 128;
  cfg.xbar_cols = 128;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_NEAR(r.achieved_ratio, 0.5, 0.01);
}

TEST(Prune, StructuredPrunesLeastImportantGroups) {
  // Give one row tiny magnitudes; it must be the first to go.
  Rng rng(6);
  Tensor m = random_matrix(rng, 8, 8);
  for (std::int64_t c = 0; c < 8; ++c) m(3, c) = 1e-4f;
  PruneConfig cfg;
  cfg.ratio = 0.124;  // exactly one row of eight (floor(0.124*8) = 0)...
  cfg.ratio = 0.13;   // floor(0.13*8) = 1
  cfg.granularity = PruneGranularity::kCrossbarRow;
  const PruneResult r = prune_matrix(m, cfg);
  for (std::int64_t c = 0; c < 8; ++c) EXPECT_EQ(r.pruned(3, c), 0.0f);
}

TEST(Prune, ValidatesArguments) {
  Tensor m({4, 4});
  PruneConfig cfg;
  cfg.ratio = 1.0;
  EXPECT_THROW(prune_matrix(m, cfg), InvalidArgument);
  Tensor bad({4});
  cfg.ratio = 0.5;
  EXPECT_THROW(prune_matrix(bad, cfg), InvalidArgument);
}

TEST(Prune, NetworkReportStructured) {
  const Network net = resnet50();
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kCrossbarRow;
  const auto report = pim_prune_network(net, cfg, CrossbarConfig{}, 16, 1);
  // Paper Table 3: PIM-Prune 50% achieves ~1.8x parameter compression
  // (crossbar-granularity rounding keeps it below the ideal 2.0x).
  EXPECT_GT(report.parameter_compression, 1.6);
  EXPECT_LE(report.parameter_compression, 2.05);
  EXPECT_GT(report.crossbar_compression, 1.2);
  EXPECT_LT(report.crossbars_after, report.crossbars_before);
}

TEST(Prune, NetworkReportHigherRatioCompressesMore) {
  const Network net = resnet50();
  PruneConfig a, b;
  a.ratio = 0.5;
  b.ratio = 0.75;
  a.granularity = b.granularity = PruneGranularity::kCrossbarRow;
  const auto ra = pim_prune_network(net, a, CrossbarConfig{}, 16, 1);
  const auto rb = pim_prune_network(net, b, CrossbarConfig{}, 16, 1);
  EXPECT_GT(rb.parameter_compression, ra.parameter_compression);
  EXPECT_GT(rb.removed_energy_fraction, ra.removed_energy_fraction);
}

TEST(Prune, ElementPruningKeepsCrossbarFootprint) {
  const Network net = resnet50();
  PruneConfig cfg;
  cfg.ratio = 0.5;
  cfg.granularity = PruneGranularity::kElement;
  const auto report = pim_prune_network(net, cfg, CrossbarConfig{}, 16, 1);
  EXPECT_EQ(report.crossbars_before, report.crossbars_after);
  EXPECT_NEAR(report.parameter_compression, 2.0, 0.05);
}

struct RatioCase {
  double ratio;
};

class PruneRatioSweep : public ::testing::TestWithParam<RatioCase> {};

TEST_P(PruneRatioSweep, EnergyRemovedGrowsWithRatio) {
  Rng rng(7);
  const Tensor m = random_matrix(rng, 96, 96);
  PruneConfig cfg;
  cfg.ratio = GetParam().ratio;
  cfg.granularity = PruneGranularity::kElement;
  const PruneResult r = prune_matrix(m, cfg);
  EXPECT_NEAR(r.achieved_ratio, GetParam().ratio, 0.02);
  EXPECT_LT(r.removed_energy_fraction, GetParam().ratio);
}

INSTANTIATE_TEST_SUITE_P(Ratios, PruneRatioSweep,
                         ::testing::Values(RatioCase{0.25}, RatioCase{0.5},
                                           RatioCase{0.75}, RatioCase{0.9}));

}  // namespace
}  // namespace epim
