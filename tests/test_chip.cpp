// Tests for the chip-level hierarchy (tiles + mesh NoC, pipelining) and the
// weight-duplication throughput planner.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/resnet.hpp"
#include "pim/chip.hpp"
#include "pim/duplication.hpp"

namespace epim {
namespace {

PimEstimator make_estimator() {
  return PimEstimator(CrossbarConfig{}, HardwareLut{});
}

TEST(Chip, TileAndMeshAccounting) {
  const auto est = make_estimator();
  ChipModel chip(est, TileConfig{});
  const Network net = resnet50();
  const auto cost = chip.eval(NetworkAssignment::baseline(net),
                              PrecisionConfig::uniform(9, 9));
  // 16 crossbars per tile: tiles ~ crossbars/16 with per-layer rounding up.
  EXPECT_GE(cost.num_tiles, cost.compute.num_crossbars / 16);
  EXPECT_LE(cost.num_tiles, cost.compute.num_crossbars / 16 +
                                static_cast<std::int64_t>(
                                    cost.compute.layers.size()));
  EXPECT_GE(cost.mesh_dim * cost.mesh_dim, cost.num_tiles);
  EXPECT_LT((cost.mesh_dim - 1) * (cost.mesh_dim - 1), cost.num_tiles);
}

TEST(Chip, NocCostsArePositiveButSecondary) {
  const auto est = make_estimator();
  ChipModel chip(est, TileConfig{});
  const Network net = resnet50();
  const auto cost = chip.eval(NetworkAssignment::baseline(net),
                              PrecisionConfig::uniform(9, 9));
  EXPECT_GT(cost.noc_latency_ms, 0.0);
  EXPECT_GT(cost.noc_energy_mj, 0.0);
  // On-chip analog compute dominates; the NoC is an overhead, not the bulk.
  EXPECT_LT(cost.noc_latency_ms, cost.compute.latency_ms);
  EXPECT_LT(cost.noc_energy_mj, cost.compute.energy_mj());
}

TEST(Chip, NocActBytesPinsFp16TransportAssumption) {
  // Activations travel the mesh in their quantized integer width -- except
  // "FP32", which is transported as 16 bits (fixed-point transport twin of
  // fp32_weight_bits; floating point never leaves a tile). This pins the
  // documented assumption: a 32-bit activation costs 2 NoC bytes, not 4.
  EXPECT_EQ(noc_act_bytes(1), 1);
  EXPECT_EQ(noc_act_bytes(8), 1);
  EXPECT_EQ(noc_act_bytes(9), 2);
  EXPECT_EQ(noc_act_bytes(16), 2);
  EXPECT_EQ(noc_act_bytes(32), 2);
  EXPECT_THROW(noc_act_bytes(0), InvalidArgument);
  EXPECT_THROW(noc_act_bytes(33), InvalidArgument);

  // End to end: W9A32 and W9A16 move identical NoC byte volumes.
  const auto est = make_estimator();
  ChipModel chip(est, TileConfig{});
  const Network net = mini_resnet();
  const auto a32 = chip.eval(NetworkAssignment::baseline(net),
                             PrecisionConfig::uniform(9, 32));
  const auto a16 = chip.eval(NetworkAssignment::baseline(net),
                             PrecisionConfig::uniform(9, 16));
  EXPECT_DOUBLE_EQ(a32.noc_energy_mj, a16.noc_energy_mj);
}

TEST(Chip, PipeliningBoundedBySlowestLayer) {
  const auto est = make_estimator();
  ChipModel chip(est, TileConfig{});
  const Network net = resnet50();
  const auto cost = chip.eval(NetworkAssignment::baseline(net),
                              PrecisionConfig::uniform(9, 9));
  double slowest = 0.0;
  for (const auto& l : cost.compute.layers) {
    slowest = std::max(slowest, l.latency_ms);
  }
  EXPECT_DOUBLE_EQ(cost.pipelined_latency_ms, slowest);
  EXPECT_LT(cost.pipelined_latency_ms, cost.compute.latency_ms);
}

TEST(Chip, EpitomeReducesTiles) {
  const auto est = make_estimator();
  ChipModel chip(est, TileConfig{});
  const Network net = resnet50();
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto base = chip.eval(NetworkAssignment::baseline(net), precision);
  const auto epi =
      chip.eval(NetworkAssignment::uniform(net, UniformDesign{}), precision);
  EXPECT_LT(epi.num_tiles, base.num_tiles);
  // Identical feature maps flow between layers, so NoC energy is unchanged
  // up to tile-distance effects; it must stay the same order of magnitude.
  EXPECT_GT(epi.noc_energy_mj, 0.1 * base.noc_energy_mj);
  EXPECT_LT(epi.noc_energy_mj, 10.0 * base.noc_energy_mj);
}

TEST(Chip, BiggerFlitCheaperNocLatency) {
  const auto est = make_estimator();
  TileConfig narrow;
  narrow.noc_flit_bytes = 8;
  TileConfig wide;
  wide.noc_flit_bytes = 64;
  const Network net = resnet50();
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto a =
      ChipModel(est, narrow).eval(NetworkAssignment::baseline(net), precision);
  const auto b =
      ChipModel(est, wide).eval(NetworkAssignment::baseline(net), precision);
  EXPECT_GT(a.noc_latency_ms, b.noc_latency_ms);
  EXPECT_DOUBLE_EQ(a.noc_energy_mj, b.noc_energy_mj);  // bytes unchanged
}

// ---- duplication planner ----

TEST(Duplication, ZeroBudgetIsIdentity) {
  const auto est = make_estimator();
  const Network net = resnet50();
  const auto a = NetworkAssignment::baseline(net);
  const auto plan =
      plan_duplication(est, a, PrecisionConfig::uniform(9, 9), 0);
  for (const auto c : plan.copies) EXPECT_EQ(c, 1);
  EXPECT_EQ(plan.extra_crossbars, 0);
  EXPECT_DOUBLE_EQ(plan.latency_before_ms, plan.latency_after_ms);
}

TEST(Duplication, SpeedsUpWithinBudget) {
  const auto est = make_estimator();
  const Network net = resnet50();
  const auto a = NetworkAssignment::baseline(net);
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto plan = plan_duplication(est, a, precision, 2000);
  EXPECT_LE(plan.extra_crossbars, 2000);
  EXPECT_GT(plan.speedup(), 1.3);
  // The early high-position-count layers are the bottleneck; at least one
  // layer must have been duplicated several times.
  std::int64_t max_copies = 0;
  for (const auto c : plan.copies) max_copies = std::max(max_copies, c);
  EXPECT_GE(max_copies, 2);
}

TEST(Duplication, MoreBudgetNeverSlower) {
  const auto est = make_estimator();
  const Network net = resnet50();
  const auto a = NetworkAssignment::baseline(net);
  const auto precision = PrecisionConfig::uniform(9, 9);
  double prev = 1e18;
  for (const std::int64_t budget : {0, 500, 2000, 8000}) {
    const auto plan = plan_duplication(est, a, precision, budget);
    EXPECT_LE(plan.latency_after_ms, prev + 1e-9);
    prev = plan.latency_after_ms;
  }
}

TEST(Duplication, ComposesWithEpitomes) {
  // The epitome model plus a duplication budget still fits in a fraction of
  // the convolution baseline's crossbars while recovering speed -- the
  // "spend the saved area on parallelism" composition.
  const auto est = make_estimator();
  const Network net = resnet50();
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto conv_base =
      est.eval_network(NetworkAssignment::baseline(net), precision);
  const auto epi = NetworkAssignment::uniform(net, UniformDesign{});
  const auto epi_base = est.eval_network(epi, precision);
  const auto plan = plan_duplication(est, epi, precision, 3000);
  EXPECT_GT(plan.speedup(), 1.5);
  // Total footprint (weights + copies) still well under the conv baseline.
  EXPECT_LT(epi_base.num_crossbars + plan.extra_crossbars,
            conv_base.num_crossbars);
  // And the duplicated epitome model is faster than the conv baseline.
  EXPECT_LT(plan.latency_after_ms, conv_base.latency_ms);
}

struct BudgetCase {
  std::int64_t budget;
};

class DuplicationSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(DuplicationSweep, BudgetRespectedAndConsistent) {
  const auto est = make_estimator();
  const Network net = mini_resnet();
  const auto a = NetworkAssignment::baseline(net);
  const auto precision = PrecisionConfig::uniform(9, 9);
  const auto plan = plan_duplication(est, a, precision, GetParam().budget);
  EXPECT_LE(plan.extra_crossbars, GetParam().budget);
  // latency_after = sum over layers of base latency / copies.
  const auto base = est.eval_network(a, precision);
  double expect = 0.0;
  for (std::size_t i = 0; i < plan.copies.size(); ++i) {
    expect += base.layers[i].latency_ms /
              static_cast<double>(plan.copies[i]);
  }
  EXPECT_NEAR(plan.latency_after_ms, expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, DuplicationSweep,
                         ::testing::Values(BudgetCase{0}, BudgetCase{10},
                                           BudgetCase{100}, BudgetCase{1000}));

}  // namespace
}  // namespace epim
