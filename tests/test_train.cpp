// Tests for src/train: numerical gradient checks of every layer's backward
// pass (including training *through* the epitome reconstruction), dataset
// synthesis, and the training loop itself.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "train/dataset.hpp"
#include "train/layers.hpp"
#include "train/small_net.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

/// Scalar loss used by gradient checks: sum of elements weighted by a fixed
/// pseudo-random pattern (so every output element matters).
double probe_loss(const Tensor& y) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    acc += y.at(i) * (0.3 + 0.7 * std::sin(static_cast<double>(i)));
  }
  return acc;
}

Tensor probe_grad(const Shape& shape) {
  Tensor g(shape);
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g.at(i) = static_cast<float>(0.3 + 0.7 * std::sin(static_cast<double>(i)));
  }
  return g;
}

/// Central-difference check of d probe_loss(f(x)) / d param[i].
void check_param_gradient(Tensor& param, const Tensor& analytic_grad,
                          const std::function<Tensor()>& forward,
                          int samples = 12, double tol = 5e-2) {
  Rng rng(1);
  const float eps = 1e-2f;
  for (int s = 0; s < samples; ++s) {
    const std::int64_t i =
        rng.index(static_cast<int>(param.numel()));
    const float keep = param.at(i);
    param.at(i) = keep + eps;
    const double up = probe_loss(forward());
    param.at(i) = keep - eps;
    const double dn = probe_loss(forward());
    param.at(i) = keep;
    const double numeric = (up - dn) / (2.0 * eps);
    const double analytic = analytic_grad.at(i);
    EXPECT_NEAR(analytic, numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "param index " << i;
  }
}

Tensor random_input(Rng& rng, Shape shape) {
  Tensor x(std::move(shape));
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

TEST(GradCheck, Conv2dWeights) {
  Rng rng(3);
  Conv2dLayer layer(ConvSpec{3, 4, 3, 3, 1, 1}, rng);
  const Tensor x = random_input(rng, {2, 3, 6, 6});
  auto forward = [&] { return layer.forward(x, true); };
  const Tensor y = forward();
  layer.zero_grad();
  layer.backward(probe_grad(y.shape()));
  check_param_gradient(layer.weight().value, layer.weight().grad, forward);
}

TEST(GradCheck, Conv2dInput) {
  Rng rng(4);
  Conv2dLayer layer(ConvSpec{2, 3, 3, 3, 2, 1}, rng);
  Tensor x = random_input(rng, {1, 2, 5, 5});
  auto forward = [&] { return layer.forward(x, true); };
  const Tensor y = forward();
  const Tensor gin = layer.backward(probe_grad(y.shape()));
  // Finite differences on a few input elements.
  Rng pick(5);
  const float eps = 1e-2f;
  for (int s = 0; s < 10; ++s) {
    const std::int64_t i = pick.index(static_cast<int>(x.numel()));
    const float keep = x.at(i);
    x.at(i) = keep + eps;
    const double up = probe_loss(forward());
    x.at(i) = keep - eps;
    const double dn = probe_loss(forward());
    x.at(i) = keep;
    EXPECT_NEAR(gin.at(i), (up - dn) / (2.0 * eps), 5e-2);
  }
}

TEST(GradCheck, EpitomeWeights) {
  // The decisive test for training-through-reconstruction: analytic epitome
  // gradients (conv grad folded through the sample map) must match numeric
  // differentiation of the full reconstruct-then-convolve pipeline.
  Rng rng(6);
  const ConvSpec conv{4, 6, 3, 3, 1, 1};
  EpitomeConvLayer layer(EpitomeSpec{4, 4, 2, 3}, conv, rng);
  const Tensor x = random_input(rng, {2, 4, 5, 5});
  auto forward = [&] { return layer.forward(x, true); };
  const Tensor y = forward();
  // Extract the analytic gradient via the step trick: one SGD step with
  // lr=1, momentum=0, wd=0 moves each weight by exactly -grad.
  layer.zero_grad();
  forward();
  layer.backward(probe_grad(y.shape()));
  const Tensor before = layer.weights_snapshot();
  layer.step(1.0f, 0.0f, 0.0f);
  Tensor analytic(before.shape());
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    analytic.at(i) = before.at(i) - layer.epitome().weights().at(i);
  }
  layer.restore_weights(before);
  // Numeric check against the full reconstruct-then-convolve pipeline.
  // Perturbations go through restore_weights so the layer's SGD parameter
  // (the authoritative copy used by forward()) is what changes.
  Tensor w = layer.weights_snapshot();
  Rng pick(7);
  const float eps = 1e-2f;
  for (int s = 0; s < 12; ++s) {
    const std::int64_t i = pick.index(static_cast<int>(w.numel()));
    const float keep = w.at(i);
    w.at(i) = keep + eps;
    layer.restore_weights(w);
    const double up = probe_loss(forward());
    w.at(i) = keep - eps;
    layer.restore_weights(w);
    const double dn = probe_loss(forward());
    w.at(i) = keep;
    layer.restore_weights(w);
    const double numeric = (up - dn) / (2.0 * eps);
    EXPECT_NEAR(analytic.at(i), numeric,
                5e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(GradCheck, BatchNormGamma) {
  Rng rng(8);
  BatchNorm2d bn(3);
  const Tensor x = random_input(rng, {4, 3, 4, 4});
  auto forward = [&] { return bn.forward(x, true); };
  const Tensor y = forward();
  bn.zero_grad();
  const Tensor gin = bn.backward(probe_grad(y.shape()));
  // Numeric check on the input gradient (gamma/beta are exercised
  // indirectly; input grad is the error-prone formula).
  Tensor xv = x;
  auto forward_x = [&] { return bn.forward(xv, true); };
  Rng pick(9);
  const float eps = 1e-2f;
  for (int s = 0; s < 8; ++s) {
    const std::int64_t i = pick.index(static_cast<int>(xv.numel()));
    const float keep = xv.at(i);
    xv.at(i) = keep + eps;
    const double up = probe_loss(forward_x());
    xv.at(i) = keep - eps;
    const double dn = probe_loss(forward_x());
    xv.at(i) = keep;
    EXPECT_NEAR(gin.at(i), (up - dn) / (2.0 * eps), 8e-2);
  }
}

TEST(GradCheck, DenseWeightsAndInput) {
  Rng rng(10);
  DenseLayer layer(6, 4, rng);
  const Tensor x = random_input(rng, {3, 6});
  auto forward = [&] { return layer.forward(x, true); };
  const Tensor y = forward();
  layer.zero_grad();
  layer.backward(probe_grad(y.shape()));
  check_param_gradient(layer.weight().value, layer.weight().grad, forward);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(11);
  Tensor logits = random_input(rng, {4, 5});
  const std::vector<int> labels = {0, 2, 4, 1};
  const SoftmaxLoss base = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  Rng pick(12);
  for (int s = 0; s < 10; ++s) {
    const std::int64_t i = pick.index(static_cast<int>(logits.numel()));
    const float keep = logits.at(i);
    logits.at(i) = keep + eps;
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = keep - eps;
    const double dn = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = keep;
    EXPECT_NEAR(base.grad.at(i), (up - dn) / (2.0 * eps), 1e-3);
  }
}

TEST(Layers, ReluMaskAndPoolArgmax) {
  ReluLayer relu;
  Tensor x({1, 1, 2, 2}, std::vector<float>{-1, 2, -3, 4});
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 2.0f);
  const Tensor g = relu.backward(Tensor({1, 1, 2, 2}, 1.0f));
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(3), 1.0f);

  MaxPool2dLayer pool(2, 2);
  const Tensor p = pool.forward(x, true);
  EXPECT_EQ(p.at(0), 4.0f);
  const Tensor pg = pool.backward(Tensor({1, 1, 1, 1}, 1.0f));
  EXPECT_EQ(pg.at(3), 1.0f);
  EXPECT_EQ(pg.at(0), 0.0f);
}

TEST(Dataset, ShapesAndLabels) {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.train_per_class = 8;
  spec.test_per_class = 4;
  const SyntheticData data = make_synthetic_data(spec);
  EXPECT_EQ(data.train.size(), 32);
  EXPECT_EQ(data.test.size(), 16);
  EXPECT_EQ(data.train.images.dim(1), 3);
  for (const int label : data.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Dataset, Deterministic) {
  SyntheticSpec spec;
  spec.train_per_class = 4;
  const SyntheticData a = make_synthetic_data(spec);
  const SyntheticData b = make_synthetic_data(spec);
  EXPECT_EQ(a.train.images.at(123), b.train.images.at(123));
}

TEST(SmallNet, EpitomeVariantHasFewerParams) {
  SmallNetConfig with, without;
  with.use_epitome = true;
  without.use_epitome = false;
  SmallEpitomeNet a(with), b(without);
  EXPECT_LT(a.weight_parameters(), b.weight_parameters());
  EXPECT_EQ(a.epitome_layers().size(), 2u);
  EXPECT_EQ(b.epitome_layers().size(), 0u);
}

TEST(SmallNet, ForwardShapes) {
  SmallNetConfig cfg;
  SmallEpitomeNet net(cfg);
  Rng rng(13);
  Tensor x({2, 3, 16, 16});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  const Tensor logits = net.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{2, 8}));
}

TEST(SmallNet, SnapshotRestoreRoundTrip) {
  SmallNetConfig cfg;
  SmallEpitomeNet net(cfg);
  const auto snap = net.snapshot_weights();
  QuantConfig q;
  q.bits = 2;
  net.quantize_weights(q);
  net.restore_weights(snap);
  const auto snap2 = net.snapshot_weights();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    for (std::int64_t j = 0; j < snap[i].numel(); ++j) {
      EXPECT_EQ(snap[i].at(j), snap2[i].at(j));
    }
  }
}

TEST(Training, LossDecreases) {
  SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.train_per_class = 16;
  dspec.test_per_class = 8;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 4;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  const TrainResult result = train_model(net, data, tcfg);
  ASSERT_EQ(result.epoch_loss.size(), 4u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front() * 0.8);
}

TEST(Training, ReachesGoodAccuracyOnEasyTask) {
  SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.train_per_class = 24;
  dspec.test_per_class = 12;
  dspec.noise = 0.25f;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 4;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 8;
  const TrainResult result = train_model(net, data, tcfg);
  EXPECT_GT(result.test_accuracy, 0.8);
}

TEST(Training, QuantizedEvalRestoresWeights) {
  SyntheticSpec dspec;
  dspec.num_classes = 3;
  dspec.train_per_class = 8;
  dspec.test_per_class = 6;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 3;
  SmallEpitomeNet net(nspec);
  const double before = evaluate_model(net, data.test);
  QuantConfig q;
  q.bits = 3;
  const QuantEvalResult r = evaluate_quantized(net, data.test, q);
  EXPECT_GE(r.weighted_mse, 0.0);
  const double after = evaluate_model(net, data.test);
  EXPECT_DOUBLE_EQ(before, after);  // weights restored exactly
}

}  // namespace
}  // namespace epim
