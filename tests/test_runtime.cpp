// Tests for src/runtime + crossbar non-idealities: bit-accurate deployment
// of a trained model onto the simulated PIM chip.
#include <gtest/gtest.h>

#include "pim/crossbar.hpp"
#include "quant/activation_quant.hpp"
#include "runtime/pim_runtime.hpp"
#include "train/trainer.hpp"

namespace epim {
namespace {

// ---- activation quantization ----

TEST(ActivationQuant, ObserverRangeCoversData) {
  ActivationObserver obs;
  Tensor t({100});
  for (std::int64_t i = 0; i < 100; ++i) {
    t.at(i) = static_cast<float>(i) / 10.0f;
  }
  obs.observe(t);
  const QuantParams p = obs.params(8);
  EXPECT_NEAR(p.dequantize(p.max_code()), 9.9, 0.05);
  EXPECT_EQ(p.quantize(0.0), 0);
}

TEST(ActivationQuant, PercentileClipsOutliers) {
  ActivationObserver clipped(0.9);
  ActivationObserver full(1.0);
  Tensor t({1000});
  for (std::int64_t i = 0; i < 1000; ++i) {
    t.at(i) = i < 990 ? 1.0f : 100.0f;  // 1% huge outliers
  }
  clipped.observe(t);
  full.observe(t);
  EXPECT_LT(clipped.params(8).scale, full.params(8).scale / 10);
}

TEST(ActivationQuant, RoundTrip) {
  const QuantParams p = QuantParams::from_range(0.0, 4.0, 8);
  Tensor t({5}, std::vector<float>{0.0f, 1.0f, 2.5f, 4.0f, 9.0f});
  const auto codes = quantize_activations(t, p);
  const Tensor back = dequantize_activations(codes, t.shape(), p);
  EXPECT_NEAR(back(0), 0.0, 1e-6);
  EXPECT_NEAR(back(2), 2.5, p.scale);
  EXPECT_NEAR(back(4), 4.0, p.scale);  // clamped to the range ceiling
}

TEST(ActivationQuant, UncalibratedObserverThrows) {
  ActivationObserver obs;
  EXPECT_THROW(obs.params(8), InvalidArgument);
}

// ---- non-ideal crossbars ----

std::vector<std::vector<int>> small_weights() {
  return {{3, -2}, {-1, 4}, {2, 2}, {-3, 1}};
}

TEST(NonIdeal, ZeroConfigIsBitExact) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  CrossbarArray ideal(cfg, 4, small_weights());
  CrossbarArray with_cfg(cfg, 4, small_weights(), NonIdealityConfig{});
  const std::vector<std::uint32_t> x = {1, 2, 3, 4};
  EXPECT_EQ(ideal.mvm(x, 3), with_cfg.mvm(x, 3));
}

TEST(NonIdeal, ConductanceNoisePerturbsResults) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  NonIdealityConfig ni;
  ni.conductance_sigma = 0.4;
  CrossbarArray ideal(cfg, 4, small_weights());
  CrossbarArray noisy(cfg, 4, small_weights(), ni);
  const std::vector<std::uint32_t> x = {7, 7, 7, 7};
  const auto a = ideal.mvm(x, 3);
  const auto b = noisy.mvm(x, 3);
  // With sigma 0.4 on every cell, some column must deviate.
  EXPECT_TRUE(a[0] != b[0] || a[1] != b[1]);
}

TEST(NonIdeal, NoiseIsDeterministicUnderSeed) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  NonIdealityConfig ni;
  ni.conductance_sigma = 0.3;
  ni.seed = 99;
  CrossbarArray a(cfg, 4, small_weights(), ni);
  CrossbarArray b(cfg, 4, small_weights(), ni);
  const std::vector<std::uint32_t> x = {5, 1, 2, 6};
  EXPECT_EQ(a.mvm(x, 3), b.mvm(x, 3));
}

TEST(NonIdeal, StuckAtZeroKillsContributions) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  NonIdealityConfig ni;
  ni.stuck_at_zero_prob = 1.0;  // every cell dead
  CrossbarArray dead(cfg, 4, small_weights(), ni);
  const std::vector<std::uint32_t> x = {1, 1, 1, 1};
  const auto out = dead.mvm(x, 2);
  // All conductances zero: the analog sum is 0, so after offset correction
  // the result is -offset * sum(x).
  EXPECT_EQ(out[0], -8 * 4);
  EXPECT_EQ(out[1], -8 * 4);
}

struct SigmaCase {
  double sigma;
};

class NoiseSweep : public ::testing::TestWithParam<SigmaCase> {};

TEST_P(NoiseSweep, ErrorGrowsWithSigma) {
  CrossbarConfig cfg;
  cfg.adc_bits = 12;
  Rng rng(42);
  std::vector<std::vector<int>> w(64, std::vector<int>(8));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(-7, 7);
  }
  std::vector<std::uint32_t> x(64);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  CrossbarArray ideal(cfg, 4, w);
  const auto ref = ideal.mvm(x, 4);
  NonIdealityConfig ni;
  ni.conductance_sigma = GetParam().sigma;
  CrossbarArray noisy(cfg, 4, w, ni);
  const auto got = noisy.mvm(x, 4);
  double err = 0.0;
  for (std::size_t c = 0; c < got.size(); ++c) {
    err += std::abs(static_cast<double>(got[c] - ref[c]));
  }
  if (GetParam().sigma == 0.0) {
    EXPECT_EQ(err, 0.0);
  } else {
    EXPECT_GT(err, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseSweep,
                         ::testing::Values(SigmaCase{0.0}, SigmaCase{0.1},
                                           SigmaCase{0.3}, SigmaCase{0.6}));

// ---- the deployed runtime ----

struct TrainedModel {
  SyntheticData data;
  SmallEpitomeNet net;
  double fp32_accuracy;
};

TrainedModel& trained_model() {
  static TrainedModel* model = [] {
    SyntheticSpec dspec;
    dspec.num_classes = 5;
    dspec.train_per_class = 20;
    dspec.test_per_class = 10;
    dspec.noise = 0.3f;
    auto* m = new TrainedModel{make_synthetic_data(dspec),
                               SmallEpitomeNet([] {
                                 SmallNetConfig c;
                                 c.num_classes = 5;
                                 return c;
                               }()),
                               0.0};
    TrainConfig tcfg;
    tcfg.epochs = 8;
    m->fp32_accuracy = train_model(m->net, m->data, tcfg).test_accuracy;
    return m;
  }();
  return *model;
}

TEST(Runtime, DeployExportShapes) {
  auto& m = trained_model();
  const auto deploy = m.net.deploy();
  EXPECT_EQ(deploy.block1.conv().in_channels, 3);
  EXPECT_EQ(deploy.block2.conv().out_channels, 32);
  EXPECT_EQ(deploy.block3.conv().out_channels, 64);
  EXPECT_EQ(deploy.bn3.scale.size(), 64u);
  EXPECT_EQ(deploy.dense_w.dim(0), 5);
}

// RuntimeConfig no longer widens the ADC silently; deployment-grade configs
// set the 12-bit deployment ADC explicitly (the façade derives it from
// HardwareConfig::deploy_adc_bits).
RuntimeConfig deploy_config(int weight_bits, int act_bits) {
  RuntimeConfig cfg;
  cfg.weight_bits = weight_bits;
  cfg.act_bits = act_bits;
  cfg.crossbar.adc_bits = 12;
  return cfg;
}

TEST(Runtime, HighPrecisionDeploymentMatchesFloatModel) {
  auto& m = trained_model();
  ASSERT_GT(m.fp32_accuracy, 0.75);
  const RuntimeConfig cfg = deploy_config(8, 10);
  PimNetworkRuntime runtime(m.net, m.data.train, cfg);
  const double chip_acc = runtime.evaluate(m.data.test);
  // 8-bit weights / 10-bit activations on a clean chip must track the float
  // model closely.
  EXPECT_GE(chip_acc, m.fp32_accuracy - 0.06);
  EXPECT_EQ(runtime.last_clip_count(), 0);
}

TEST(Runtime, LowPrecisionDegradesGracefully) {
  auto& m = trained_model();
  const RuntimeConfig hi = deploy_config(8, 10);
  const RuntimeConfig lo = deploy_config(3, 4);
  const double acc_hi =
      PimNetworkRuntime(m.net, m.data.train, hi).evaluate(m.data.test);
  const double acc_lo =
      PimNetworkRuntime(m.net, m.data.train, lo).evaluate(m.data.test);
  EXPECT_LE(acc_lo, acc_hi + 0.05);
  // Even at 3-bit the model must stay far above chance (0.2).
  EXPECT_GT(acc_lo, 0.4);
}

TEST(Runtime, DeviceNoiseCostsAccuracy) {
  auto& m = trained_model();
  const RuntimeConfig clean = deploy_config(6, 8);
  RuntimeConfig noisy = clean;
  noisy.non_ideal.conductance_sigma = 0.8;
  noisy.non_ideal.stuck_at_zero_prob = 0.05;
  const double acc_clean =
      PimNetworkRuntime(m.net, m.data.train, clean).evaluate(m.data.test);
  const double acc_noisy =
      PimNetworkRuntime(m.net, m.data.train, noisy).evaluate(m.data.test);
  EXPECT_LT(acc_noisy, acc_clean + 1e-9);
}

TEST(Runtime, CrossbarBudgetAccounted) {
  auto& m = trained_model();
  const RuntimeConfig cfg = deploy_config(6, 8);
  PimNetworkRuntime runtime(m.net, m.data.train, cfg);
  EXPECT_GT(runtime.total_crossbars(), 0);
  EXPECT_LT(runtime.total_crossbars(), 64);  // small model, small chip
}

TEST(Runtime, ForwardShape) {
  auto& m = trained_model();
  const RuntimeConfig cfg = deploy_config(6, 8);
  PimNetworkRuntime runtime(m.net, m.data.train, cfg);
  const Tensor logits = runtime.forward(m.data.test.sample(0));
  EXPECT_EQ(logits.shape(), (Shape{5}));
}

}  // namespace
}  // namespace epim
