#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace epim {

namespace {

bool is_fp32(const PrecisionConfig& precision) {
  return std::all_of(precision.weight_bits.begin(),
                     precision.weight_bits.end(),
                     [](int b) { return b == 32; });
}

}  // namespace

EpimSimulator::NoiseMeasurement EpimSimulator::measure_noise(
    const NetworkAssignment& assignment, const PrecisionConfig& precision,
    const QuantConfig& scheme, std::uint64_t seed) const {
  Rng rng(seed);
  double wse = 0.0, rep_total = 0.0, se = 0.0, power = 0.0;
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < assignment.num_layers(); ++i) {
    const ConvLayerInfo& layer =
        assignment.layers()[static_cast<std::size_t>(i)];
    const auto& choice = assignment.choice(i);
    Epitome probe =
        choice.has_value()
            ? Epitome::random(*choice, layer.conv, rng)
            : Epitome::random(
                  EpitomeSpec{layer.conv.kernel_h, layer.conv.kernel_w,
                              layer.conv.in_channels,
                              layer.conv.out_channels, 1, false},
                  layer.conv, rng);
    // Trained CNN weights are heavy-tailed (leptokurtic), and the tails are
    // what separates the range schemes: a single outlier inflates a naive
    // min/max range for the whole tensor, while per-crossbar and
    // overlap-weighted ranges contain the damage. Mimic that with a sparse
    // large-magnitude component on top of the He-initialized draw.
    for (std::int64_t e = 0; e < probe.weights().numel(); ++e) {
      if (rng.flip(0.03)) probe.weights().at(e) *= 4.0f;
    }
    QuantConfig cfg = scheme;
    cfg.bits = precision.layer_weight_bits(i);
    if (cfg.bits == 32) continue;  // layer kept at full precision
    EpitomeQuantizer quantizer(cfg);
    const QuantizedEpitome q = quantizer.quantize(probe);
    const Tensor rep = probe.repetition_map();
    const Tensor& w = probe.weights();
    for (std::int64_t e = 0; e < w.numel(); ++e) {
      const double d = static_cast<double>(w.at(e)) - q.dequant_weights.at(e);
      wse += static_cast<double>(rep.at(e)) * d * d;
      rep_total += rep.at(e);
      se += d * d;
      power += static_cast<double>(w.at(e)) * w.at(e);
      ++count;
    }
  }
  NoiseMeasurement m;
  if (count > 0) {
    m.weighted_mse = rep_total > 0 ? wse / rep_total : 0.0;
    m.plain_mse = se / static_cast<double>(count);
    m.weight_power = power / static_cast<double>(count);
  }
  return m;
}

EpimSimulator::Evaluation EpimSimulator::evaluate(
    const NetworkAssignment& assignment, const PrecisionConfig& precision,
    const QuantConfig& scheme, const AccuracyProjector& projector,
    std::uint64_t seed) const {
  Evaluation eval;
  eval.cost = estimator_.eval_network(assignment, precision);
  if (is_fp32(precision)) {
    eval.projected_accuracy = assignment.num_epitome_layers() == 0
                                  ? projector.anchors().conv_fp32
                                  : projector.anchors().epitome_fp32;
    return eval;
  }
  const NoiseMeasurement m = measure_noise(assignment, precision, scheme,
                                           seed);
  eval.weighted_mse = m.weighted_mse;
  eval.weight_power = m.weight_power;
  eval.projected_accuracy =
      projector.project_quantized(m.weighted_mse, m.weight_power);
  return eval;
}

}  // namespace epim
