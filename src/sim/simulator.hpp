// Top-level EPIM simulator: one call produces everything a Table-1 row
// needs -- hardware cost (crossbars, latency, energy, utilization) from the
// analytical estimator and a projected accuracy from measured quantization
// noise (see quant/accuracy_model.hpp for what "projected" means here).
#pragma once

#include <cstdint>
#include <string>

#include "core/assignment.hpp"
#include "pim/estimator.hpp"
#include "quant/accuracy_model.hpp"
#include "quant/epitome_quant.hpp"

namespace epim {

class EpimSimulator {
 public:
  explicit EpimSimulator(CrossbarConfig config = {}, HardwareLut lut = {})
      : estimator_(config, lut) {}

  const PimEstimator& estimator() const { return estimator_; }
  const CrossbarConfig& crossbar_config() const {
    return estimator_.config();
  }

  struct Evaluation {
    NetworkCost cost;
    double projected_accuracy = 0.0;
    /// Aggregate repetition-weighted quantization MSE and mean weight power
    /// over all quantized layers (0/1 when unquantized).
    double weighted_mse = 0.0;
    double weight_power = 1.0;
  };

  /// Evaluate an assignment at a precision.
  ///
  /// FP32 (all weight_bits == 32) skips quantization: accuracy is the
  /// anchor value (conv baseline vs epitome). Quantized configurations draw
  /// synthetic per-layer weights (seeded), quantize them with `scheme`, and
  /// project accuracy from the measured noise.
  Evaluation evaluate(const NetworkAssignment& assignment,
                      const PrecisionConfig& precision,
                      const QuantConfig& scheme,
                      const AccuracyProjector& projector,
                      std::uint64_t seed = 0x51D'E57u) const;

  /// Measure only the aggregate quantization noise of an assignment (used by
  /// the Table 2 bench to compare range schemes).
  struct NoiseMeasurement {
    double weighted_mse = 0.0;
    double plain_mse = 0.0;
    double weight_power = 1.0;
  };
  NoiseMeasurement measure_noise(const NetworkAssignment& assignment,
                                 const PrecisionConfig& precision,
                                 const QuantConfig& scheme,
                                 std::uint64_t seed = 0x51D'E57u) const;

 private:
  PimEstimator estimator_;
};

}  // namespace epim
