#include "quant/accuracy_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace epim {

AccuracyAnchors AccuracyAnchors::resnet50() {
  AccuracyAnchors a;
  a.model = "ResNet50";
  a.conv_fp32 = 76.37;     // paper Table 1
  a.epitome_fp32 = 74.00;  // paper Table 1, epitome 1024x256
  return a;
}

AccuracyAnchors AccuracyAnchors::resnet101() {
  AccuracyAnchors a;
  a.model = "ResNet101";
  a.conv_fp32 = 78.77;
  a.epitome_fp32 = 76.56;
  return a;
}

double AccuracyProjector::project_quantized(double weighted_mse,
                                            double weight_power) const {
  EPIM_CHECK(weighted_mse >= 0.0, "mse must be non-negative");
  EPIM_CHECK(weight_power > 0.0, "weight power must be positive");
  const double amplitude_ratio = std::sqrt(weighted_mse / weight_power);
  return anchors_.epitome_fp32 - anchors_.penalty_scale * amplitude_ratio;
}

double AccuracyProjector::project_pruned(
    double base_accuracy, double removed_energy_fraction) const {
  EPIM_CHECK(removed_energy_fraction >= 0.0 && removed_energy_fraction <= 1.0,
             "removed energy fraction must be in [0, 1]");
  return base_accuracy -
         anchors_.prune_penalty_scale * std::sqrt(removed_energy_fraction);
}

}  // namespace epim
