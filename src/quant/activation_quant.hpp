// Activation quantization for bit-accurate PIM deployment.
//
// PIM crossbars consume *unsigned* bit-serial activations (post-ReLU
// feature maps are non-negative), so activations use unsigned affine
// quantization with ranges calibrated on a calibration set. The observer
// tracks min/max (optionally a clipping percentile) per tensor site.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// Running range observer for one activation site.
class ActivationObserver {
 public:
  /// percentile in (0, 1]: 1.0 = plain min/max; 0.999 clips outliers.
  explicit ActivationObserver(double percentile = 1.0);

  /// Record one batch/tensor of activations.
  void observe(const Tensor& t);

  bool calibrated() const { return !samples_.empty(); }

  /// Quantization parameters for `bits`-bit unsigned codes over [0, hi]
  /// (activations are ReLU outputs; the range floor is 0).
  QuantParams params(int bits) const;

 private:
  double percentile_;
  std::vector<float> samples_;  // reservoir of observed magnitudes
};

/// Quantize a float activation tensor to unsigned codes.
std::vector<std::uint32_t> quantize_activations(const Tensor& t,
                                                const QuantParams& params);

/// Dequantize unsigned codes back to floats (same layout as `shape`).
Tensor dequantize_activations(const std::vector<std::uint32_t>& codes,
                              const Shape& shape, const QuantParams& params);

}  // namespace epim
