#include "quant/activation_quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace epim {

ActivationObserver::ActivationObserver(double percentile)
    : percentile_(percentile) {
  EPIM_CHECK(percentile > 0.0 && percentile <= 1.0,
             "percentile must be in (0, 1]");
}

void ActivationObserver::observe(const Tensor& t) {
  // Keep a bounded reservoir of magnitudes; sites see many batches and we
  // only need a stable upper quantile.
  constexpr std::size_t kMaxSamples = 1 << 16;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (samples_.size() >= kMaxSamples) {
      // Subsample: replace a pseudo-random slot (deterministic pattern).
      samples_[static_cast<std::size_t>(i * 2654435761u) % kMaxSamples] =
          std::max(0.0f, t.at(i));
    } else {
      samples_.push_back(std::max(0.0f, t.at(i)));
    }
  }
}

QuantParams ActivationObserver::params(int bits) const {
  EPIM_CHECK(calibrated(), "observer has seen no activations");
  std::vector<float> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(percentile_ *
                               static_cast<double>(sorted.size() - 1)));
  const double hi = std::max(1e-8, static_cast<double>(sorted[idx]));
  return QuantParams::from_range(0.0, hi, bits);
}

std::vector<std::uint32_t> quantize_activations(const Tensor& t,
                                                const QuantParams& params) {
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    codes[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(params.quantize(t.at(i)));
  }
  return codes;
}

Tensor dequantize_activations(const std::vector<std::uint32_t>& codes,
                              const Shape& shape, const QuantParams& params) {
  Tensor out(shape);
  EPIM_CHECK(static_cast<std::int64_t>(codes.size()) == out.numel(),
             "code count must match shape");
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out.at(i) = static_cast<float>(
        params.dequantize(codes[static_cast<std::size_t>(i)]));
  }
  return out;
}

}  // namespace epim
