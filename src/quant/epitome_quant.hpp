// Epitome-aware quantization (paper Sec. 4.2, Eq. 4-5).
//
// Three range schemes, forming the ablation ladder of Table 2:
//  * kMinMax          -- one min/max range for the whole epitome (naive);
//  * kPerCrossbar     -- one scaling factor per crossbar block, exploiting
//                        the crossbars' parallel, independent compute;
//  * kOverlapWeighted -- per-crossbar + the clipping range is the weighted
//                        sum of the highly-repeated (overlap) region's
//                        min/max and the rest's min/max:
//                          alpha = w1*min_overlap + w2*min_others
//                          beta  = w1*max_overlap + w2*max_others
//                        so frequently-sampled weights (which appear many
//                        times in the reconstructed convolution) are
//                        represented more faithfully.
//
// The quantizer reports both the plain elementwise MSE and the repetition-
// weighted MSE; the latter is the error actually injected into the
// reconstructed convolution and is the quantity the overlap scheme improves.
#pragma once

#include <cstdint>
#include <vector>

#include "core/epitome.hpp"
#include "quant/quantizer.hpp"

namespace epim {

enum class RangeScheme { kMinMax, kPerCrossbar, kOverlapWeighted };

const char* range_scheme_name(RangeScheme scheme);

struct QuantConfig {
  int bits = 8;
  RangeScheme scheme = RangeScheme::kOverlapWeighted;
  /// Weight of the overlap (highly-repeated) region in Eq. 4-5.
  double w1 = 0.8;
  /// Weight of the remaining region.
  double w2 = 0.2;
  /// Crossbar block geometry used by the per-crossbar schemes.
  std::int64_t xbar_rows = 128;
  std::int64_t xbar_cols = 128;
};

/// Quantized epitome: integer codes laid out as the logical weight matrix
/// (word line x epitome output channel) ready for crossbar programming, the
/// per-block parameters, and a fake-quantized float epitome for accuracy
/// evaluation.
struct QuantizedEpitome {
  /// qmatrix[row][col]: *signed* codes (re-centred for two's-complement
  /// cell programming), row = (e_ci*p + py)*q + qx, col = epitome cout.
  std::vector<std::vector<int>> qmatrix;
  /// Per crossbar block, in row-major block order.
  std::vector<QuantParams> block_params;
  std::int64_t blocks_r = 0, blocks_c = 0;
  /// Epitome with dequantized weights (same spec as the source).
  Tensor dequant_weights;
  double plain_mse = 0.0;
  double weighted_mse = 0.0;  ///< repetition-weighted (effective) MSE
};

class EpitomeQuantizer {
 public:
  explicit EpitomeQuantizer(QuantConfig config);

  const QuantConfig& config() const { return config_; }

  QuantizedEpitome quantize(const Epitome& epitome) const;

 private:
  QuantConfig config_;
};

}  // namespace epim
