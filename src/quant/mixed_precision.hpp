// HAWQ-lite mixed-precision bit allocation (paper Sec. 6.1 integrates HAWQ;
// see DESIGN.md for the substitution).
//
// HAWQ ranks layers by Hessian-trace-weighted quantization perturbation. We
// replace the Hessian trace, which requires the full training stack, with a
// measurable curvature proxy: a layer's output-MAC count (how many times its
// weights touch the loss path) times the *repetition-weighted* quantization
// MSE gap between the low- and high-bit configurations. Layers where cheap
// quantization hurts most (per unit of crossbar budget) are promoted to the
// high bitwidth first, until the crossbar budget is exhausted -- the same
// greedy decision structure as HAWQ-V2's Pareto allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "pim/config.hpp"
#include "pim/estimator.hpp"
#include "quant/epitome_quant.hpp"

namespace epim {

struct MixedPrecisionConfig {
  int low_bits = 3;
  int high_bits = 5;
  /// Crossbar budget as a fraction of the way from the all-low to the
  /// all-high crossbar count (0 = all low, 1 = all high).
  double budget_fraction = 0.45;
  /// Range scheme used when measuring per-layer sensitivity.
  QuantConfig quant{};
  /// Seed for the synthetic weight draws used in sensitivity probing.
  std::uint64_t seed = 0x44A57'11AEu;
};

/// Per-layer sensitivity record (exposed for the ablation bench).
struct LayerSensitivity {
  std::int64_t layer = 0;
  double score = 0.0;          ///< mse gap x MACs
  std::int64_t xb_low = 0;     ///< crossbars at low_bits
  std::int64_t xb_high = 0;    ///< crossbars at high_bits
};

struct MixedPrecisionResult {
  PrecisionConfig precision;              ///< per-layer weight bits
  std::vector<LayerSensitivity> ranking;  ///< sorted, most sensitive first
  std::int64_t budget_crossbars = 0;
  std::int64_t used_crossbars = 0;
};

/// Allocate low/high bits per weighted layer of the assignment.
MixedPrecisionResult hawq_lite_allocate(const NetworkAssignment& assignment,
                                        const MixedPrecisionConfig& config,
                                        const CrossbarConfig& xbar);

}  // namespace epim
