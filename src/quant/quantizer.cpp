#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace epim {

QuantParams QuantParams::from_range(double alpha, double beta, int bits) {
  EPIM_CHECK(bits >= 1 && bits <= 16, "quantization bits out of range");
  EPIM_CHECK(alpha <= beta, "quantization range must satisfy alpha <= beta");
  QuantParams p;
  p.bits = bits;
  const double levels = static_cast<double>((std::int64_t{1} << bits) - 1);
  if (beta > alpha) {
    p.scale = (beta - alpha) / levels;
    p.zero_point = static_cast<std::int64_t>(std::llround(alpha / p.scale));
  } else if (alpha == 0.0) {
    // Degenerate all-zero range: code 0 represents 0 exactly.
    p.scale = 1.0;
    p.zero_point = 0;
  } else {
    // Degenerate constant range: scale = alpha with zero point 1 makes
    // code 0 dequantize to exactly alpha.
    p.scale = alpha;
    p.zero_point = 1;
  }
  return p;
}

std::int64_t QuantParams::quantize(double r) const {
  const std::int64_t code =
      static_cast<std::int64_t>(std::llround(r / scale)) - zero_point;
  return std::clamp<std::int64_t>(code, 0, max_code());
}

double QuantParams::dequantize(std::int64_t code) const {
  return scale * static_cast<double>(code + zero_point);
}

int QuantParams::signed_code(std::int64_t code) const {
  EPIM_CHECK(code >= 0 && code <= max_code(), "code out of range");
  return static_cast<int>(code - (std::int64_t{1} << (bits - 1)));
}

Tensor fake_quantize_tensor(const Tensor& t, const QuantParams& params) {
  Tensor out(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    out.at(i) = static_cast<float>(params.fake_quantize(t.at(i)));
  }
  return out;
}

QuantParams minmax_params(const Tensor& t, int bits) {
  EPIM_CHECK(!t.empty(), "cannot derive range from empty tensor");
  return QuantParams::from_range(t.min(), t.max(), bits);
}

}  // namespace epim
