// Accuracy projection for ImageNet-scale results.
//
// This repo cannot train ResNet-50/101 on ImageNet (no data, no GPU farm);
// see DESIGN.md's substitution table. Accuracy is handled two ways:
//  1. Trend validation: src/train trains a small epitome-CNN on a synthetic
//     dataset end-to-end and measures real accuracy under every quantization
//     scheme -- confirming the *ordering* the paper reports (Table 2).
//  2. Projection (this file): ImageNet top-1 numbers are projected from the
//     measured repetition-weighted quantization noise with a one-constant
//     model anchored at the paper's FP32 points:
//         acc = acc_fp32_epitome - penalty_scale * sqrt(weighted_mse / P)
//     where P is the mean weight power. The sqrt form follows from accuracy
//     loss tracking the noise *amplitude* ratio, which reproduces the
//     paper's ~2^-bits penalty scaling. Projected numbers are labelled as
//     such in every bench that prints them.
#pragma once

#include <string>

namespace epim {

struct AccuracyAnchors {
  std::string model;
  double conv_fp32 = 0.0;      ///< paper's FP32 convolution baseline top-1
  double epitome_fp32 = 0.0;   ///< paper's FP32 epitome top-1
  /// Accuracy points lost per unit weight-noise amplitude ratio. Calibrated
  /// so the overlap-weighted 3-bit ResNet-50 projection lands on the paper's
  /// 71.59% (see EXPERIMENTS.md for the calibration trace).
  double penalty_scale = 3.7;
  /// Pruning penalty per unit sqrt(removed weight-energy fraction).
  double prune_penalty_scale = 8.0;

  static AccuracyAnchors resnet50();
  static AccuracyAnchors resnet101();
};

class AccuracyProjector {
 public:
  explicit AccuracyProjector(AccuracyAnchors anchors) : anchors_(anchors) {}

  const AccuracyAnchors& anchors() const { return anchors_; }

  /// Projected top-1 for a quantized epitome model.
  /// weighted_mse: repetition-weighted quantization MSE over all layers;
  /// weight_power: mean squared weight magnitude over the same elements.
  double project_quantized(double weighted_mse, double weight_power) const;

  /// Projected top-1 after pruning away `removed_energy_fraction` of the
  /// model's weight energy (L2^2), starting from `base_accuracy`.
  double project_pruned(double base_accuracy,
                        double removed_energy_fraction) const;

 private:
  AccuracyAnchors anchors_;
};

}  // namespace epim
