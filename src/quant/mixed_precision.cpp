#include "quant/mixed_precision.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "pim/mapping.hpp"

namespace epim {

MixedPrecisionResult hawq_lite_allocate(const NetworkAssignment& assignment,
                                        const MixedPrecisionConfig& config,
                                        const CrossbarConfig& xbar) {
  EPIM_CHECK(config.low_bits >= 1 && config.high_bits > config.low_bits,
             "mixed precision requires low_bits < high_bits");
  EPIM_CHECK(config.budget_fraction >= 0.0 && config.budget_fraction <= 1.0,
             "budget fraction must be in [0, 1]");
  const std::int64_t n = assignment.num_layers();
  Rng rng(config.seed);

  std::vector<LayerSensitivity> sens;
  std::int64_t xb_all_low = 0, xb_all_high = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const ConvLayerInfo& layer = assignment.layers()[static_cast<std::size_t>(i)];
    const auto& choice = assignment.choice(i);
    // Probe epitome: the actual assignment's epitome, or the degenerate one
    // when the layer keeps its convolution.
    Epitome probe =
        choice.has_value()
            ? Epitome::random(*choice, layer.conv, rng)
            : Epitome::random(
                  EpitomeSpec{layer.conv.kernel_h, layer.conv.kernel_w,
                              layer.conv.in_channels, layer.conv.out_channels,
                              1, false},
                  layer.conv, rng);
    QuantConfig lo_cfg = config.quant;
    lo_cfg.bits = config.low_bits;
    QuantConfig hi_cfg = config.quant;
    hi_cfg.bits = config.high_bits;
    const double mse_lo = EpitomeQuantizer(lo_cfg).quantize(probe).weighted_mse;
    const double mse_hi = EpitomeQuantizer(hi_cfg).quantize(probe).weighted_mse;

    LayerSensitivity s;
    s.layer = i;
    // Curvature proxy x perturbation gap (see header).
    s.score = static_cast<double>(layer.macs()) * std::max(0.0, mse_lo - mse_hi);
    const std::int64_t rows =
        choice.has_value() ? choice->rows() : layer.conv.unrolled_rows();
    const std::int64_t cols =
        choice.has_value() ? choice->cout_e : layer.conv.unrolled_cols();
    s.xb_low = map_weight_matrix(rows, cols, config.low_bits, xbar)
                   .num_crossbars;
    s.xb_high = map_weight_matrix(rows, cols, config.high_bits, xbar)
                    .num_crossbars;
    xb_all_low += s.xb_low;
    xb_all_high += s.xb_high;
    sens.push_back(s);
  }

  MixedPrecisionResult result;
  result.budget_crossbars =
      xb_all_low + static_cast<std::int64_t>(
                       config.budget_fraction *
                       static_cast<double>(xb_all_high - xb_all_low));
  result.precision.weight_bits.assign(static_cast<std::size_t>(n),
                                      config.low_bits);
  result.precision.act_bits = 9;

  // Greedy promotion: most sensitive layer first, while the budget allows.
  std::vector<LayerSensitivity> ranked = sens;
  std::sort(ranked.begin(), ranked.end(),
            [](const LayerSensitivity& a, const LayerSensitivity& b) {
              return a.score > b.score;
            });
  std::int64_t used = xb_all_low;
  for (const LayerSensitivity& s : ranked) {
    const std::int64_t delta = s.xb_high - s.xb_low;
    if (used + delta <= result.budget_crossbars) {
      result.precision.weight_bits[static_cast<std::size_t>(s.layer)] =
          config.high_bits;
      used += delta;
    }
  }
  result.used_crossbars = used;
  result.ranking = std::move(ranked);
  return result;
}

}  // namespace epim
