#include "quant/epitome_quant.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

const char* range_scheme_name(RangeScheme scheme) {
  switch (scheme) {
    case RangeScheme::kMinMax:
      return "naive-minmax";
    case RangeScheme::kPerCrossbar:
      return "per-crossbar";
    case RangeScheme::kOverlapWeighted:
      return "overlap-weighted";
  }
  return "?";
}

EpitomeQuantizer::EpitomeQuantizer(QuantConfig config) : config_(config) {
  EPIM_CHECK(config_.bits >= 1 && config_.bits <= 16,
             "quantization bits out of range");
  EPIM_CHECK(config_.w1 >= 0.0 && config_.w2 >= 0.0,
             "range weights must be non-negative");
  EPIM_CHECK(config_.xbar_rows > 0 && config_.xbar_cols > 0,
             "crossbar block dims must be positive");
}

namespace {

struct RegionStats {
  double min_overlap = std::numeric_limits<double>::infinity();
  double max_overlap = -std::numeric_limits<double>::infinity();
  double min_others = std::numeric_limits<double>::infinity();
  double max_others = -std::numeric_limits<double>::infinity();
  bool any_overlap = false;
  bool any_others = false;
};

}  // namespace

QuantizedEpitome EpitomeQuantizer::quantize(const Epitome& epitome) const {
  const EpitomeSpec& spec = epitome.spec();
  const std::int64_t rows = spec.rows();
  const std::int64_t cols = spec.cout_e;
  const Tensor& w = epitome.weights();          // (cout_e, cin_e, p, q)
  const Tensor rep = epitome.repetition_map();  // same shape

  // Logical-matrix view: element (row, col) with row = (e_ci*p+py)*q+qx is
  // exactly w(col, row-as-flat-within-channel) because the weight tensor is
  // row-major (cout_e, cin_e, p, q).
  auto wval = [&](std::int64_t r, std::int64_t c) {
    return static_cast<double>(w.at(c * rows + r));
  };
  auto rval = [&](std::int64_t r, std::int64_t c) {
    return static_cast<double>(rep.at(c * rows + r));
  };

  QuantizedEpitome out;
  out.blocks_r = ceil_div(rows, config_.xbar_rows);
  out.blocks_c = ceil_div(cols, config_.xbar_cols);
  out.qmatrix.assign(static_cast<std::size_t>(rows),
                     std::vector<int>(static_cast<std::size_t>(cols), 0));
  out.dequant_weights = Tensor(w.shape());
  out.block_params.reserve(
      static_cast<std::size_t>(out.blocks_r * out.blocks_c));

  // One global range for the naive scheme.
  QuantParams global = minmax_params(w, config_.bits);

  for (std::int64_t br = 0; br < out.blocks_r; ++br) {
    for (std::int64_t bc = 0; bc < out.blocks_c; ++bc) {
      const std::int64_t r0 = br * config_.xbar_rows;
      const std::int64_t r1 = std::min(rows, r0 + config_.xbar_rows);
      const std::int64_t c0 = bc * config_.xbar_cols;
      const std::int64_t c1 = std::min(cols, c0 + config_.xbar_cols);

      QuantParams params = global;
      if (config_.scheme != RangeScheme::kMinMax) {
        // Per-block repetition mean splits overlap vs. others (Fig. 2(c):
        // the centre of the epitome is repeated more than the borders).
        double rep_sum = 0.0;
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) rep_sum += rval(r, c);
        }
        const double rep_mean =
            rep_sum / static_cast<double>((r1 - r0) * (c1 - c0));
        RegionStats s;
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            const double v = wval(r, c);
            if (rval(r, c) >= rep_mean) {
              s.min_overlap = std::min(s.min_overlap, v);
              s.max_overlap = std::max(s.max_overlap, v);
              s.any_overlap = true;
            } else {
              s.min_others = std::min(s.min_others, v);
              s.max_others = std::max(s.max_others, v);
              s.any_others = true;
            }
          }
        }
        EPIM_ASSERT(s.any_overlap, "repetition mean must capture some weights");
        double alpha, beta;
        if (config_.scheme == RangeScheme::kOverlapWeighted && s.any_others) {
          // Eq. 4-5: weighted sum of the two regions' extrema.
          alpha = config_.w1 * s.min_overlap + config_.w2 * s.min_others;
          beta = config_.w1 * s.max_overlap + config_.w2 * s.max_others;
        } else {
          // Per-crossbar min/max (also the fallback when the block has no
          // low-repetition region, e.g. pointwise epitomes).
          alpha = std::min(s.min_overlap,
                           s.any_others ? s.min_others : s.min_overlap);
          beta = std::max(s.max_overlap,
                          s.any_others ? s.max_others : s.max_overlap);
        }
        params = QuantParams::from_range(alpha, beta, config_.bits);
      }
      out.block_params.push_back(params);

      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          const double v = wval(r, c);
          const std::int64_t code = params.quantize(v);
          out.qmatrix[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(c)] = params.signed_code(code);
          out.dequant_weights.at(c * rows + r) =
              static_cast<float>(params.dequantize(code));
        }
      }
    }
  }

  // Error metrics.
  double se = 0.0, wse = 0.0, rep_total = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const double d =
        static_cast<double>(w.at(i)) - out.dequant_weights.at(i);
    se += d * d;
    wse += static_cast<double>(rep.at(i)) * d * d;
    rep_total += rep.at(i);
  }
  out.plain_mse = se / static_cast<double>(w.numel());
  out.weighted_mse = rep_total > 0 ? wse / rep_total : 0.0;
  return out;
}

}  // namespace epim
