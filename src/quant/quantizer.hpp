// Uniform affine quantization (paper Sec. 2.3, Eq. 2-3).
//
//   Q(r) = Int(r / S) - Z,   S = (beta - alpha) / (2^k - 1)
//
// Quantized codes are unsigned k-bit integers in [0, 2^k - 1]; the crossbar
// programming path re-centres them to signed two's-complement. Degenerate
// ranges (alpha == beta) quantize everything to a single code.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace epim {

/// Scaling factor + zero point for one quantization region.
struct QuantParams {
  double scale = 1.0;
  std::int64_t zero_point = 0;
  int bits = 8;

  std::int64_t max_code() const { return (std::int64_t{1} << bits) - 1; }

  /// Build from a clipping range [alpha, beta] (alpha <= beta required).
  static QuantParams from_range(double alpha, double beta, int bits);

  /// Real value -> code in [0, max_code()], clamping out-of-range inputs.
  std::int64_t quantize(double r) const;

  /// Code -> real value.
  double dequantize(std::int64_t code) const;

  /// Round-trip a real value through the quantizer.
  double fake_quantize(double r) const { return dequantize(quantize(r)); }

  /// Signed two's-complement representation used on crossbar cells:
  /// code - 2^(bits-1), in [-2^(bits-1), 2^(bits-1) - 1].
  int signed_code(std::int64_t code) const;
};

/// Fake-quantize a whole tensor with one shared parameter set.
Tensor fake_quantize_tensor(const Tensor& t, const QuantParams& params);

/// Min/max-range parameters for a tensor (the naive scheme).
QuantParams minmax_params(const Tensor& t, int bits);

}  // namespace epim
