#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace epim {
namespace telemetry {

namespace {

constexpr std::size_t kCapacity = 8192;

std::atomic<bool> g_tracing{false};

/// Slot sequence word: 0 = never written / mid-write, ticket+1 = published
/// by the writer holding that ticket. Readers compare the word before and
/// after copying the record; a torn copy (writer landed in between) shows
/// a changed word and is dropped.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  SpanRecord record;
};

struct TraceRing {
  std::atomic<std::uint64_t> ticket{0};
  Slot slots[kCapacity];
};

TraceRing& ring() {
  // Leaked like the other telemetry singletons: spans are recorded from
  // worker threads that may outlive static destruction.
  static TraceRing* r = new TraceRing;
  return *r;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::string escape_json(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void append_event(std::string& out, const char* name, const SpanRecord& s,
                  double begin_ms, double end_ms, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[256];
  // chrome://tracing wants microseconds; clamp a clock hiccup to a
  // zero-duration slice rather than emitting a negative one.
  const double ts_us = begin_ms * 1000.0;
  const double dur_us = std::max(0.0, (end_ms - begin_ms) * 1000.0);
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,",
                name, s.worker, ts_us, dur_us);
  out += buf;
  out += "\"args\":{\"model\":\"" + escape_json(s.model) +
         "\",\"batch\":" + std::to_string(s.batch) + "}}";
}

}  // namespace

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing(bool on) {
  trace_epoch();  // pin the epoch no later than arming
  g_tracing.store(on, std::memory_order_relaxed);
}

double trace_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

double trace_ms(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::milli>(tp - trace_epoch())
      .count();
}

void record_span(const SpanRecord& span) {
  if (!tracing()) return;
  TraceRing& r = ring();
  const std::uint64_t ticket =
      r.ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r.slots[ticket % kCapacity];
  // Invalidate, write, publish: a reader that started copying the old
  // record sees the word change and drops the copy.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.record = span;
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<SpanRecord> snapshot_spans() {
  TraceRing& r = ring();
  std::vector<std::pair<std::uint64_t, SpanRecord>> keyed;
  keyed.reserve(kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    Slot& slot = r.slots[i];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0) continue;
    SpanRecord copy = slot.record;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t after = slot.seq.load(std::memory_order_relaxed);
    if (after != before) continue;  // torn by a concurrent writer
    keyed.emplace_back(before, copy);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SpanRecord> out;
  out.reserve(keyed.size());
  for (auto& [ticket, record] : keyed) out.push_back(record);
  return out;
}

std::uint64_t spans_recorded() {
  return ring().ticket.load(std::memory_order_relaxed);
}

std::size_t trace_capacity() { return kCapacity; }

void clear_trace() {
  TraceRing& r = ring();
  for (std::size_t i = 0; i < kCapacity; ++i) {
    r.slots[i].seq.store(0, std::memory_order_relaxed);
  }
  r.ticket.store(0, std::memory_order_relaxed);
}

std::string render_trace_json() {
  const std::vector<SpanRecord> spans = snapshot_spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : spans) {
    append_event(out, "queue", s, s.submit_ms, s.close_ms, first);
    append_event(out, "run", s, s.run_begin_ms, s.run_end_ms, first);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace telemetry
}  // namespace epim
