#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "common/error.hpp"

namespace epim {
namespace telemetry {

namespace detail {
std::atomic<bool> g_recording{true};
}  // namespace detail

void set_recording(bool on) {
  detail::g_recording.store(on, std::memory_order_relaxed);
}

namespace {

/// ^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$ -- the optional suffix
/// group is informational (it is already matched by [a-z0-9_]+); what the
/// rule pins is the prefix and the lowercase charset.
bool valid_metric_name(const std::string& name) {
  constexpr const char* kPrefix = "epim_";
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.size() == 5) return false;  // bare "epim_"
  for (std::size_t i = 5; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

/// Label-value escaping per the Prometheus text format: backslash, double
/// quote and newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP-text escaping: backslash and newline (quotes are legal there).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Canonical label body: sorted by label name, rendered `a="x",b="y"`.
/// Doubles as the series map key, so render order is deterministic.
std::string canonical_label_body(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string body;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EPIM_CHECK(valid_label_name(sorted[i].first),
               std::string(Registry::kErrBadLabel) + ": bad label name '" +
                   sorted[i].first + "'");
    if (i > 0) {
      EPIM_CHECK(sorted[i].first != sorted[i - 1].first,
                 std::string(Registry::kErrBadLabel) +
                     ": duplicate label name '" + sorted[i].first + "'");
      body += ',';
    }
    body += sorted[i].first;
    body += "=\"";
    body += escape_label_value(sorted[i].second);
    body += '"';
  }
  return body;
}

/// Deterministic number rendering: integral doubles print as integers,
/// everything else as shortest-exact %.17g (IEEE round-trip, so the golden
/// exposition test is platform-stable). Powers of two print exactly either
/// way, which keeps histogram le="..." bounds clean.
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string series_name(const std::string& name, const std::string& body) {
  if (body.empty()) return name;
  return name + "{" + body + "}";
}

/// Same, with one more label appended (histogram `le`).
std::string series_name_le(const std::string& name, const std::string& body,
                           const std::string& le) {
  std::string merged = body;
  if (!merged.empty()) merged += ',';
  merged += "le=\"" + le + "\"";
  return name + "{" + merged + "}";
}

}  // namespace

Histogram::Histogram(const HistogramOptions& options) {
  EPIM_CHECK(options.first_bound > 0.0,
             "histogram first_bound must be positive");
  EPIM_CHECK(options.buckets >= 1 && options.buckets <= 64,
             "histogram buckets must be in [1, 64]");
  bounds_.reserve(static_cast<std::size_t>(options.buckets));
  double bound = options.first_bound;
  for (int i = 0; i < options.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= 2.0;
  }
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  if (!recording()) return;
  if (std::isnan(value)) return;  // no bucket is right; drop rather than lie
  // First bucket whose (inclusive) upper bound covers the value; a value
  // exactly on a boundary lands in the LOWER bucket, everything past the
  // largest finite bound in the overflow slot. Linear scan: <= 64 compares
  // on a fixed array, and latencies concentrate in the early buckets.
  std::size_t slot = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      slot = i;
      break;
    }
  }
  counts_[slot].fetch_add(1, std::memory_order_relaxed);
  // Portable lock-free sum fold (atomic<double>::fetch_add is C++20 but
  // patchily optimized; the CAS loop is equivalent under contention here).
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const {
  EPIM_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1], got " +
                                       std::to_string(q));
  const std::int64_t total = count();
  if (total == 0) return 0.0;
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bounds_[i];
  }
  return bounds_.back();  // overflow bucket: clamp to largest finite bound
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::process() {
  // Leaked like the fault and lockdep registries: instrumented layers
  // record from worker threads that may outlive static destruction.
  static Registry* registry = new Registry;
  return *registry;
}

void Registry::register_family(const std::string& name,
                               const std::string& help, Type type,
                               const HistogramOptions& options) {
  if (!valid_metric_name(name)) {
    throw InvalidArgument(std::string(kErrBadMetricName) + ": '" + name +
                          "'");
  }
  MutexLock lock(mu_);
  if (families_.find(name) != families_.end()) {
    throw InvalidArgument(std::string(kErrDuplicateMetric) + ": '" + name +
                          "'");
  }
  Family& family = families_[name];
  family.type = type;
  family.help = help;
  family.histogram_options = options;
}

void Registry::register_counter(const std::string& name,
                                const std::string& help) {
  register_family(name, help, Type::kCounter, HistogramOptions{});
}

void Registry::register_gauge(const std::string& name,
                              const std::string& help) {
  register_family(name, help, Type::kGauge, HistogramOptions{});
}

void Registry::register_histogram(const std::string& name,
                                  const std::string& help,
                                  const HistogramOptions& options) {
  // Validate the layout eagerly (Histogram's constructor checks again, but
  // the registration site is the actionable place to fail).
  Histogram probe(options);
  register_family(name, help, Type::kHistogram, options);
}

Registry::Series& Registry::find_series_locked(const std::string& name,
                                               const Labels& labels,
                                               Type type) {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    throw InvalidArgument(std::string(kErrUnknownMetric) + ": '" + name +
                          "'");
  }
  Family& family = it->second;
  if (family.type != type) {
    throw InvalidArgument(std::string(kErrMetricType) + ": '" + name + "'");
  }
  const std::string key = canonical_label_body(labels);
  Series& series = family.series[key];
  switch (type) {
    case Type::kCounter:
      if (series.counter == nullptr) {
        series.counter = std::make_unique<Counter>();
      }
      break;
    case Type::kGauge:
      if (series.gauge == nullptr) series.gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      if (series.histogram == nullptr) {
        series.histogram =
            std::make_unique<Histogram>(family.histogram_options);
      }
      break;
  }
  return series;
}

Counter* Registry::counter(const std::string& name, const Labels& labels) {
  MutexLock lock(mu_);
  return find_series_locked(name, labels, Type::kCounter).counter.get();
}

Gauge* Registry::gauge(const std::string& name, const Labels& labels) {
  MutexLock lock(mu_);
  return find_series_locked(name, labels, Type::kGauge).gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                               const Labels& labels) {
  MutexLock lock(mu_);
  return find_series_locked(name, labels, Type::kHistogram).histogram.get();
}

std::string Registry::render_text() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter: out += "counter"; break;
      case Type::kGauge: out += "gauge"; break;
      case Type::kHistogram: out += "histogram"; break;
    }
    out += "\n";
    for (const auto& [body, series] : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out += series_name(name, body) + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Type::kGauge:
          out += series_name(name, body) + " " +
                 std::to_string(series.gauge->value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *series.histogram;
          // One snapshot per bucket, reused for the cumulative walk AND the
          // total, so _count always equals the +Inf bucket within a render
          // even while writers race.
          std::int64_t cumulative = 0;
          for (int i = 0; i < h.buckets(); ++i) {
            cumulative += h.bucket_count(i);
            out += series_name_le(name + "_bucket", body,
                                  format_value(h.bucket_bound(i))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += h.overflow_count();
          out += series_name_le(name + "_bucket", body, "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += series_name(name + "_sum", body) + " " +
                 format_value(h.sum()) + "\n";
          out += series_name(name + "_count", body) + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::size_t Registry::family_count() const {
  MutexLock lock(mu_);
  return families_.size();
}

}  // namespace telemetry
}  // namespace epim
