// Process-wide metrics: a registry of named Counter/Gauge/Histogram series
// with Prometheus-style text exposition -- the scrape surface that turns
// ServiceStats/RegistrySnapshot from C++-only structs into something a
// fleet monitor can poll (ROADMAP item 5, cf. DAOS src/gurt/telemetry.c).
//
// Design constraints, in order:
//
//  * Lock-free hot path. Recording into an existing series is relaxed
//    atomics only: Counter::inc / Gauge::add are one fetch_add (plus a
//    bounded CAS loop for the gauge high-water mark), Histogram::observe is
//    one fetch_add into a fixed log-bucket array plus a CAS-loop sum fold.
//    No mutex, no map lookup, no allocation -- instrumentation can sit on
//    the per-request serving path. The ONE lock (`telemetry::Registry::mu_`)
//    guards registration and render_text(), and it is a LEAF like
//    fault::FaultRegistry::mu_: nothing is ever acquired under it, and it
//    is never taken under ModelRegistry::mu_ (the lockdep-gated tests pin
//    both absences). Instrumented layers therefore create their series at
//    construction/registration time, cache the raw pointers, and only touch
//    atomics afterwards -- including while holding their own locks.
//
//  * Stable series. Series are never removed: pointers returned by
//    counter()/gauge()/histogram() stay valid for the registry's lifetime
//    (the process registry is intentionally leaked, like the fault and
//    lockdep registries). An evicted-and-rematerialized model re-requests
//    the same (name, labels) and continues its monotonic counters --
//    exactly the Prometheus model.
//
//  * Registered exactly once. A metric FAMILY (name + type + help) is
//    registered in exactly one place (src/telemetry/metrics.cpp for the
//    core fleet metrics; tools/lint.py enforces the single-site rule and
//    the `^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$` naming rule).
//    Re-registering a name throws the pinned kErrDuplicateMetric
//    InvalidArgument. Series under a family are get-or-create by label set.
//
//  * Effectively free when unscraped. Nothing rendered costs nothing
//    beyond the relaxed increments; a scrape is one mutex + atomic reads.
//    set_recording(false) is a global kill switch (one extra relaxed load
//    per record) used by bench_serve's serve_telemetry_overhead row to
//    measure instrumented-vs-uninstrumented throughput in one binary.
//
// Exposition (render_text) follows the Prometheus text format: one
// `# HELP`/`# TYPE` pair per family, then `name{label="value"} value`
// series sorted by label key; histograms expand to cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`. tools/check_metrics.py
// validates the grammar line-by-line in CI, and tests/test_telemetry.cpp
// pins a golden string. Values read with relaxed loads: a scrape racing a
// writer may be a few increments stale, never torn (each bucket array is
// snapshotted once per render, so _count always equals the +Inf bucket).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace epim {
namespace telemetry {

namespace detail {
/// Global record/drop switch. The ONLY state the hot path reads besides its
/// own series.
extern std::atomic<bool> g_recording;
}  // namespace detail

/// Whether record operations currently count (one relaxed load).
inline bool recording() {
  return detail::g_recording.load(std::memory_order_relaxed);
}

/// Kill switch for every Counter/Gauge/Histogram in the process: with
/// recording off, record operations return after the one flag load, so a
/// bench can measure instrumented-vs-uninstrumented serving in one binary.
/// Registration, lookup and render_text() are unaffected. Default: on.
void set_recording(bool on);

/// Ordered (label name, label value) pairs identifying one series within a
/// family. Canonicalized (sorted by name) at lookup, so {{a,1},{b,2}} and
/// {{b,2},{a,1}} are the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. inc() is a relaxed fetch_add -- callers may hold any
/// lock (including ModelRegistry::mu_) while incrementing.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    if (!recording()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Up/down gauge with a high-water mark (the mark makes queue-depth style
/// gauges meaningful in batch benches that only read them at the end).
class Gauge {
 public:
  void add(std::int64_t n) {
    if (!recording()) return;
    raise_high_water(value_.fetch_add(n, std::memory_order_relaxed) + n);
  }
  void sub(std::int64_t n) {
    if (!recording()) return;
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void set(std::int64_t v) {
    if (!recording()) return;
    value_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Largest value ever reached through add()/set() (sub() never raises it).
  std::int64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  void raise_high_water(std::int64_t candidate) {
    std::int64_t seen = high_water_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !high_water_.compare_exchange_weak(seen, candidate,
                                              std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Log-bucket layout: finite bucket i covers values <= first_bound * 2^i
/// (upper bounds INCLUSIVE, Prometheus `le` semantics -- a value exactly on
/// a boundary lands in the LOWER bucket), one overflow bucket past the
/// largest finite bound. Defaults span ~1us .. ~8s in milliseconds, wide
/// enough for both request latencies and materialize wall times.
struct HistogramOptions {
  double first_bound = 0.0009765625;  ///< 2^-10 ms; must be positive
  int buckets = 24;                   ///< finite buckets; must be in [1, 64]
};

/// Fixed-size power-of-two-bucket histogram. observe() is lock-free: one
/// relaxed fetch_add into the bucket array plus a relaxed CAS loop folding
/// the sum; no allocation after construction. Counts never decrease except
/// through reset() (interval use by an owner that guarantees quiescence or
/// tolerates the benign race -- concurrent observes land in either
/// interval, never corrupt).
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void observe(double value);

  int buckets() const { return static_cast<int>(bounds_.size()); }
  /// Upper bound (inclusive) of finite bucket i.
  double bucket_bound(int i) const { return bounds_[static_cast<std::size_t>(i)]; }
  /// Non-cumulative count of finite bucket i.
  std::int64_t bucket_count(int i) const {
    return counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Samples above the largest finite bound (the +Inf bucket).
  std::int64_t overflow_count() const {
    return counts_[bounds_.size()].load(std::memory_order_relaxed);
  }
  /// Total samples (sum over all buckets including overflow).
  std::int64_t count() const;
  /// Sum of every observed value.
  double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Nearest-rank quantile over the cumulative buckets, reported as the
  /// covering bucket's upper bound (the resolution a log-bucket digest
  /// has). q in [0, 1]. Empty histogram -> 0.0; a quantile landing in the
  /// overflow bucket clamps to the largest finite bound (a finite, still
  /// monotone answer beats reporting infinity).
  double quantile(double q) const;
  /// Zero every bucket and the sum (see the class comment for the race
  /// contract).
  void reset();

 private:
  std::vector<double> bounds_;  ///< immutable after construction
  /// bounds_.size() finite buckets + 1 overflow slot.
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// Metric-family registry + exposition. One instance per process for real
/// telemetry (Registry::process(), intentionally leaked); tests construct
/// their own local instances for deterministic golden renders.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented layer records into.
  static Registry& process();

  /// Register a metric family. `name` must match
  /// ^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$ (kErrBadMetricName);
  /// registering a name twice -- any type -- throws the pinned
  /// kErrDuplicateMetric InvalidArgument, so the exposition format cannot
  /// silently fork. The core families register in exactly one place,
  /// src/telemetry/metrics.cpp (tools/lint.py pins both rules).
  void register_counter(const std::string& name, const std::string& help);
  void register_gauge(const std::string& name, const std::string& help);
  void register_histogram(const std::string& name, const std::string& help,
                          const HistogramOptions& options = {});

  /// Get-or-create the series for (name, labels) in a registered family.
  /// Returns a pointer stable for the registry's lifetime -- cache it;
  /// lookups take the registration mutex. Throws kErrUnknownMetric for an
  /// unregistered name, kErrMetricType if `name` was registered as a
  /// different type, kErrBadLabel for malformed/duplicate label names.
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  Histogram* histogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition of every family (see file header). Takes
  /// the registration mutex and acquires nothing else.
  std::string render_text() const;

  /// Families registered (test/introspection helper).
  std::size_t family_count() const;

  /// Pinned error prefixes (tools/lint.py requires every direct throw in
  /// src/ to cite one; tests pin the exact strings).
  static constexpr const char* kErrDuplicateMetric =
      "telemetry metric family is already registered";
  static constexpr const char* kErrBadMetricName =
      "telemetry metric name must match epim_[a-z0-9_]+";
  static constexpr const char* kErrUnknownMetric =
      "telemetry metric family is not registered";
  static constexpr const char* kErrMetricType =
      "telemetry metric family registered with a different type";
  static constexpr const char* kErrBadLabel =
      "telemetry label set is malformed";

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    HistogramOptions histogram_options{};
    /// Keyed by the canonical rendered label body (`a="x",b="y"`), so the
    /// exposition order is deterministic for free.
    std::map<std::string, Series> series;
  };

  void register_family(const std::string& name, const std::string& help,
                       Type type, const HistogramOptions& options);
  Series& find_series_locked(const std::string& name, const Labels& labels,
                             Type type) EPIM_REQUIRES(mu_);

  /// Registration/render lock. LEAF by contract: no code path acquires any
  /// other mutex while holding it (render_text reads atomics only), and no
  /// instrumented layer takes it while holding its own lock -- series are
  /// created up front and recorded into lock-free. The lockdep-gated tests
  /// pin that this lock has no outgoing edges and is never taken under
  /// ModelRegistry::mu_.
  mutable Mutex mu_{"telemetry::Registry::mu_"};
  std::map<std::string, Family> families_ EPIM_GUARDED_BY(mu_);
};

}  // namespace telemetry
}  // namespace epim
