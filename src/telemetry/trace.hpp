// Per-request trace spans: a bounded lock-free ring of span records each
// carrying the five timestamps of a request's life -- submit (enqueued),
// batch close, run begin, run end -- plus the worker that ran it, so a
// single slow request's queueing-vs-compute split is visible. Exported as
// chrome://tracing JSON (render_trace_json / tools/trace_export): load the
// file at chrome://tracing or https://ui.perfetto.dev and each request
// shows as a "queue" slice (submit -> batch close) followed by a "run"
// slice (run begin -> run end) on its worker's track.
//
// Cost contract: tracing is DISARMED by default. A disarmed request pays
// exactly one relaxed atomic load (tracing()) at batch completion -- no
// clock reads, no ring traffic -- which is what keeps the serving layer's
// telemetry overhead to relaxed increments (the BENCH
// serve_telemetry_overhead row proves it). An armed request pays two extra
// steady_clock reads per batch plus one ring-slot write per request.
//
// Ring semantics: fixed capacity (trace_capacity()), overwriting oldest.
// Writers never block and never take a lock: a ticket fetch_add claims a
// slot, the record is written, then the slot's sequence word publishes it
// (release). Readers (snapshot/export) validate each slot's sequence
// before AND after copying, dropping torn slots -- a scrape is best-effort
// by design and never perturbs writers. clear_trace() is for quiesced
// callers (tests, tools) only.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace epim {
namespace telemetry {

/// Longest model label stored per span (longer labels truncate); fixed so
/// a SpanRecord stays POD and a ring write stays a plain memcpy.
inline constexpr std::size_t kSpanModelChars = 32;

/// One completed request, timestamps in milliseconds on the trace clock
/// (trace_now_ms(): steady, starts near process start).
struct SpanRecord {
  char model[kSpanModelChars] = {0};  ///< NUL-terminated label
  std::uint32_t worker = 0;           ///< batch worker that ran it
  std::uint32_t batch = 0;            ///< size of the batch it rode in
  double submit_ms = 0.0;             ///< enqueued by submit()/submit_batch()
  double close_ms = 0.0;              ///< closed into a batch by a worker
  double run_begin_ms = 0.0;          ///< forward pass started
  double run_end_ms = 0.0;            ///< results ready
};

/// Whether spans are being recorded (one relaxed load -- THE disarmed-path
/// cost; see file header).
bool tracing();

/// Arm/disarm span recording process-wide. Default: off.
void set_tracing(bool on);

/// Milliseconds on the trace clock (steady; epoch fixed at first use).
double trace_now_ms();

/// Convert a steady_clock reading (e.g. a timestamp a worker already took
/// for its own purposes) onto the trace clock, so instrumented code never
/// pays a second clock read just for the trace.
double trace_ms(std::chrono::steady_clock::time_point tp);

/// Append one completed span (no-op while tracing is off). Lock-free;
/// overwrites the oldest record once the ring is full.
void record_span(const SpanRecord& span);

/// Copy out every currently-readable span, oldest first. Best-effort under
/// concurrent writers (torn slots are dropped); exact once writers quiesce.
std::vector<SpanRecord> snapshot_spans();

/// Spans recorded since the last clear (monotonic ticket; values above
/// trace_capacity() mean the oldest were overwritten).
std::uint64_t spans_recorded();

/// Ring capacity in spans.
std::size_t trace_capacity();

/// Reset the ring and ticket. Caller must guarantee no concurrent
/// record_span (disarm tracing and drain traffic first).
void clear_trace();

/// Render the current ring as chrome://tracing "traceEvents" JSON: per
/// span, an X (complete) "queue" event [submit, close] and an X "run"
/// event [run begin, run end], tid = worker, args carrying model + batch
/// size. Timestamps are microseconds as the format requires.
std::string render_trace_json();

}  // namespace telemetry
}  // namespace epim
