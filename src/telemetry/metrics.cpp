#include "telemetry/metrics.hpp"

#include "telemetry/telemetry.hpp"

namespace epim {
namespace telemetry {
namespace metrics {

void ensure_registered() {
  // Function-local static: the registration block runs exactly once, under
  // the C++ magic-static guard, BEFORE any caller proceeds to series
  // lookup. This file is the ONLY register_* site in src/ -- tools/lint.py
  // enforces that each metric name below appears in exactly one
  // registration call (re-registering throws the pinned
  // Registry::kErrDuplicateMetric).
  static const bool done = [] {
    Registry& r = Registry::process();

    // --- serving (InferenceService; label: model) ---
    r.register_counter("epim_serve_requests_total",
                       "Requests completed by the serving layer.");
    r.register_counter("epim_serve_batches_total",
                       "Batches closed and executed.");
    r.register_counter("epim_serve_rejected_total",
                       "Requests refused by admission control (queue full).");
    r.register_counter(
        "epim_serve_deadline_misses_total",
        "Requests shed because their deadline expired before batch close.");
    r.register_counter("epim_serve_clip_events_total",
                       "ADC clip events summed over completed requests.");
    r.register_gauge(
        "epim_serve_queue_depth",
        "Requests queued and not yet closed into a batch, per scheduling "
        "class ({model, priority}).");
    r.register_histogram(
        "epim_serve_latency_ms",
        "Request latency, submit to result ready (ms), per scheduling "
        "class ({model, priority}).");

    // --- model registry (label: model = name@version) ---
    r.register_counter(
        "epim_registry_transitions_total",
        "Entry lifecycle transitions, labelled by destination state.");
    r.register_histogram("epim_registry_materialize_ms",
                         "Wall time of successful materializations (ms).");
    r.register_counter("epim_registry_evictions_total",
                       "Resident services evicted by the LRU budget.");
    r.register_counter(
        "epim_registry_fast_fails_total",
        "Requests fast-failed while an entry's breaker window was open.");
    r.register_gauge("epim_registry_pins_depth",
                     "Threads currently pinning an entry (enqueue or scrape).");

    // --- shared compute pool (process-wide, unlabelled) ---
    r.register_counter("epim_pool_jobs_total",
                       "Parallel regions executed by the shared pool.");
    r.register_gauge("epim_pool_queue_depth",
                     "Parallel regions currently live on the shared pool.");

    // --- fault injection (label: point) ---
    r.register_counter("epim_fault_hits_total",
                       "Armed fault-point trigger evaluations.");
    r.register_counter("epim_fault_fires_total",
                       "Armed fault-point trigger fires.");
    return true;
  }();
  (void)done;
}

}  // namespace metrics
}  // namespace telemetry
}  // namespace epim
