// The core fleet metric catalog: every family the instrumented layers
// (serve, registry, parallel pool, fault injection) record into is
// registered HERE and nowhere else -- one registration site per name, so
// the exposition format cannot fork and tools/lint.py can statically pin
// both the naming rule and the single-site rule. Layers call
// ensure_registered() once (idempotent, thread-safe) before looking up
// their series with Registry::process().counter(...) etc.
//
// Catalog (labels in braces; see README "Observability" for semantics):
//
//   epim_serve_requests_total         {model}        counter
//   epim_serve_batches_total          {model}        counter
//   epim_serve_rejected_total         {model}        counter
//   epim_serve_deadline_misses_total  {model}        counter
//   epim_serve_clip_events_total      {model}        counter
//   epim_serve_queue_depth            {model, priority}  gauge
//   epim_serve_latency_ms             {model, priority}  histogram
//   epim_registry_transitions_total   {model, to}    counter
//   epim_registry_materialize_ms      {model}        histogram
//   epim_registry_evictions_total     {model}        counter
//   epim_registry_fast_fails_total    {model}        counter
//   epim_registry_pins_depth          {model}        gauge
//   epim_pool_jobs_total              (none)         counter
//   epim_pool_queue_depth             (none)         gauge
//   epim_fault_hits_total             {point}        counter
//   epim_fault_fires_total            {point}        counter
//
// The {model} label is "name@version" for registry-materialized services
// and the caller-chosen instance label ("default" for a bare
// InferenceService) otherwise. Series aggregate across instances sharing a
// label -- the Prometheus model, and exactly what a fleet scrape wants.
#pragma once

namespace epim {
namespace telemetry {
namespace metrics {

/// Register the core families with Registry::process(). Idempotent and
/// thread-safe (first caller wins; later calls are one atomic flag read),
/// so every instrumented constructor can call it unconditionally.
void ensure_registered();

}  // namespace metrics
}  // namespace telemetry
}  // namespace epim
