#include "datapath/index_tables.hpp"

#include "common/check.hpp"

namespace epim {

std::int64_t IfrtSequence::active_rows() const {
  std::int64_t n = 0;
  for (const std::int32_t v : row_to_input) n += (v != kInactiveRow) ? 1 : 0;
  return n;
}

IndexTables::IndexTables(const SamplePlan& plan) {
  const EpitomeSpec& spec = plan.spec();
  const ConvSpec& conv = plan.conv();
  rows_ = spec.rows();
  ifrt_.resize(static_cast<std::size_t>(plan.active_rounds()));

  for (const PatchSample& s : plan.samples()) {
    if (s.replicated) {
      // Wrapped replica: only an OFAT entry pointing at the source round.
      // Like its source, it accumulates when it is not the first input group
      // contributing to its output span.
      ofat_.push_back({s.round, s.co_begin, s.co_begin + s.co_len,
                       /*accumulate=*/s.in_group > 0, /*replica_of=*/s.round});
      continue;
    }
    ifat_.push_back({s.round, s.ci_begin, s.ci_begin + s.ci_len});
    ofat_.push_back({s.round, s.co_begin, s.co_begin + s.co_len,
                     /*accumulate=*/s.in_group > 0, /*replica_of=*/-1});

    // IFRT: word line (e_ci, py, qx) -> index into the gathered input
    // segment, which is laid out as (channel, ky, kx) row-major.
    IfrtSequence& seq = ifrt_[static_cast<std::size_t>(s.round)];
    seq.row_to_input.assign(static_cast<std::size_t>(rows_),
                            IfrtSequence::kInactiveRow);
    for (std::int64_t e_ci = 0; e_ci < s.ci_len; ++e_ci) {
      for (std::int64_t ky = 0; ky < conv.kernel_h; ++ky) {
        for (std::int64_t kx = 0; kx < conv.kernel_w; ++kx) {
          const std::int64_t word_line =
              (e_ci * spec.p + (s.off_p + ky)) * spec.q + (s.off_q + kx);
          const std::int64_t input_idx =
              (e_ci * conv.kernel_h + ky) * conv.kernel_w + kx;
          seq.row_to_input[static_cast<std::size_t>(word_line)] =
              static_cast<std::int32_t>(input_idx);
        }
      }
    }
  }
  EPIM_ASSERT(static_cast<std::int64_t>(ifat_.size()) == plan.active_rounds(),
              "one IFAT entry per active round");
}

std::int64_t IndexTables::storage_entries() const {
  std::int64_t n = static_cast<std::int64_t>(ifat_.size()) * 2 +
                   static_cast<std::int64_t>(ofat_.size()) * 2;
  for (const auto& seq : ifrt_) {
    n += static_cast<std::int64_t>(seq.row_to_input.size());
  }
  return n;
}

}  // namespace epim
