// Crossbar-backed execution of an epitome layer.
//
// Where DatapathSimulator models the datapath with float arithmetic, this
// engine runs the same schedule on the functional CrossbarArray model:
// quantized integer epitome weights are programmed (once) into a grid of
// bit-sliced crossbars; each activation round drives the IFRT-selected word
// lines bit-serially and digitizes column currents through the shared ADCs.
// With adequate ADC resolution the result is bit-exact with the integer
// reference convolution -- the end-to-end hardware-correctness test of the
// repo -- and with a starved ADC it exhibits realistic clipping error.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sample_plan.hpp"
#include "datapath/index_tables.hpp"
#include "nn/layer.hpp"
#include "pim/crossbar.hpp"

namespace epim {

/// Integer image, NCHW single sample: data[(c*h + y)*w + x].
struct IntImage {
  std::int64_t channels = 0, height = 0, width = 0;
  std::vector<std::uint32_t> data;

  std::int64_t numel() const { return channels * height * width; }
};

/// Integer output accumulators, same layout as IntImage but signed 64-bit.
struct IntOutput {
  std::int64_t channels = 0, height = 0, width = 0;
  std::vector<std::int64_t> data;
};

class PimLayerEngine {
 public:
  /// `weights` is the logical epitome weight matrix: weights[row][col] with
  /// row = word line (e_ci * p + py) * q + qx and col = epitome output
  /// channel, as signed weight_bits-bit integers. Non-idealities, if any,
  /// perturb every programmed crossbar (write variation / hard faults).
  PimLayerEngine(ConvLayerInfo layer, EpitomeSpec spec,
                 const std::vector<std::vector<int>>& weights, int weight_bits,
                 const CrossbarConfig& config,
                 const NonIdealityConfig& non_ideal = {});

  /// Number of crossbar tiles programmed.
  std::int64_t num_crossbars() const {
    return static_cast<std::int64_t>(tiles_.size());
  }

  const EpitomeSpec& spec() const { return plan_.spec(); }
  const ConvLayerInfo& layer() const { return layer_; }

  /// Run the layer; activations must each fit in act_bits (unsigned).
  /// Output positions are processed in parallel (deterministically: every
  /// position writes disjoint output cells).
  IntOutput run(const IntImage& input, int act_bits) const;

  /// Thread-safe variant: identical output, ADC clip events accumulated into
  /// *clip_count instead of the mutable last_clip_count() diagnostic, so
  /// concurrent callers sharing one programmed engine never race.
  IntOutput run(const IntImage& input, int act_bits,
                std::int64_t* clip_count) const;

  /// ADC clip events observed during the last run (0 means bit-exact).
  /// Undefined under concurrent run() -- use the clip-out overload there.
  std::int64_t last_clip_count() const { return clip_count_; }

 private:
  struct Tile {
    CrossbarArray array;
    std::int64_t row_begin, row_count;
    std::int64_t col_begin, col_count;
  };

  ConvLayerInfo layer_;
  SamplePlan plan_;
  IndexTables tables_;
  CrossbarConfig config_;
  std::vector<Tile> tiles_;
  mutable std::int64_t clip_count_ = 0;
};

}  // namespace epim
