// Functional simulator of the EPIM datapath (paper Sec. 4.3).
//
// Executes an epitome convolution layer exactly the way the modified
// accelerator does: the address controller walks output positions, IFAT
// selects the input segment for each activation round, IFRT steers segment
// elements onto word lines (inactive lines held at zero), and the joint
// module merges per-round partial outputs into the output feature map under
// OFAT control, resolving channel-wrapping replicas as buffer copies.
//
// The core correctness contract of the whole repo:
//     DatapathSimulator(layer, epitome).run(x)
//  == conv2d(x, epitome.reconstruct())
// which the integration tests assert for a sweep of shapes.
#pragma once

#include <cstdint>

#include "core/epitome.hpp"
#include "datapath/index_tables.hpp"
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// Activity counters accumulated over a run (one full layer inference).
/// These are the quantities the analytical estimator multiplies by LUT
/// costs; the datapath tests cross-check the two.
struct DatapathStats {
  std::int64_t crossbar_rounds = 0;   ///< crossbar activations
  std::int64_t replica_copies = 0;    ///< channel-wrapping buffer copies
  std::int64_t table_lookups = 0;     ///< IFAT + IFRT + OFAT reads
  std::int64_t joint_adds = 0;        ///< joint-module element merges
  std::int64_t buffer_reads = 0;      ///< input-segment elements fetched
  std::int64_t buffer_writes = 0;     ///< output elements written
};

class DatapathSimulator {
 public:
  /// The layer's conv spec must equal the epitome's target convolution.
  DatapathSimulator(ConvLayerInfo layer, Epitome epitome);

  const IndexTables& tables() const { return tables_; }
  const Epitome& epitome() const { return epitome_; }

  /// Run the layer on a (Cin, H, W) input; returns (Cout, Oh, Ow).
  Tensor run(const Tensor& input);

  /// Counters from the most recent run().
  const DatapathStats& stats() const { return stats_; }

 private:
  ConvLayerInfo layer_;
  Epitome epitome_;
  IndexTables tables_;
  DatapathStats stats_;
};

}  // namespace epim
