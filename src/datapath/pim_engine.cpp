#include "datapath/pim_engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/parallel.hpp"

namespace epim {

PimLayerEngine::PimLayerEngine(ConvLayerInfo layer, EpitomeSpec spec,
                               const std::vector<std::vector<int>>& weights,
                               int weight_bits, const CrossbarConfig& config,
                               const NonIdealityConfig& non_ideal)
    : layer_(std::move(layer)),
      plan_(spec, layer_.conv),
      tables_(plan_),
      config_(config) {
  const std::int64_t rows = spec.rows();
  const std::int64_t cols = spec.cout_e;
  EPIM_CHECK(static_cast<std::int64_t>(weights.size()) == rows,
             "weight matrix rows must equal epitome word lines");
  const std::int64_t slices = config.weight_slices(weight_bits);
  const std::int64_t cols_per_tile =
      std::max<std::int64_t>(1, config.cols / slices);
  // Tile the logical matrix over crossbars: rows in chunks of config.rows,
  // logical columns in chunks that keep all of a weight's slices on one
  // crossbar.
  for (std::int64_t r0 = 0; r0 < rows; r0 += config.rows) {
    const std::int64_t rc = std::min(config.rows, rows - r0);
    for (std::int64_t c0 = 0; c0 < cols; c0 += cols_per_tile) {
      const std::int64_t cc = std::min(cols_per_tile, cols - c0);
      std::vector<std::vector<int>> block(
          static_cast<std::size_t>(rc),
          std::vector<int>(static_cast<std::size_t>(cc)));
      for (std::int64_t r = 0; r < rc; ++r) {
        for (std::int64_t c = 0; c < cc; ++c) {
          block[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
              weights[static_cast<std::size_t>(r0 + r)]
                     [static_cast<std::size_t>(c0 + c)];
        }
      }
      // Each tile gets a distinct fault/variation draw.
      NonIdealityConfig tile_ni = non_ideal;
      tile_ni.seed = non_ideal.seed + static_cast<std::uint64_t>(
                                          tiles_.size() * 0x9E37'79B9u);
      tiles_.push_back(Tile{CrossbarArray(config, weight_bits, block,
                                          tile_ni),
                            r0, rc, c0, cc});
    }
  }
}

IntOutput PimLayerEngine::run(const IntImage& input, int act_bits) const {
  std::int64_t clips = 0;
  IntOutput out = run(input, act_bits, &clips);
  clip_count_ = clips;
  return out;
}

IntOutput PimLayerEngine::run(const IntImage& input, int act_bits,
                              std::int64_t* clip_count) const {
  const ConvSpec& conv = layer_.conv;
  EPIM_CHECK(input.channels == conv.in_channels &&
                 input.height == layer_.ifm_h && input.width == layer_.ifm_w,
             "input image does not match layer spec");
  EPIM_CHECK(static_cast<std::int64_t>(input.data.size()) == input.numel(),
             "input data size mismatch");
  const std::int64_t oh = layer_.ofm_h();
  const std::int64_t ow = layer_.ofm_w();
  const std::int64_t rows = tables_.epitome_rows();

  IntOutput out;
  out.channels = conv.out_channels;
  out.height = oh;
  out.width = ow;
  out.data.assign(static_cast<std::size_t>(conv.out_channels * oh * ow), 0);

  // Per-round output widths, invariant across positions (first primary OFAT
  // entry of each round, as in the per-position scan this hoists).
  std::vector<std::int64_t> round_co_len(
      static_cast<std::size_t>(plan_.active_rounds()), 0);
  std::vector<bool> round_seen(round_co_len.size(), false);
  for (const OfatEntry& oe : tables_.ofat()) {
    if (oe.replica_of < 0 && !round_seen[static_cast<std::size_t>(oe.round)]) {
      round_seen[static_cast<std::size_t>(oe.round)] = true;
      round_co_len[static_cast<std::size_t>(oe.round)] =
          oe.co_stop - oe.co_start;
    }
  }

  // Output positions fan out across threads. Every position writes a
  // disjoint set of out.data cells and the per-position work is pure, so
  // the result is identical at any thread count; clip events accumulate per
  // chunk and sum exactly. Scratch buffers live per chunk, allocated once
  // and reused across all of the chunk's positions.
  const std::int64_t positions = oh * ow;
  const int chunks = std::max(num_chunks(positions), 1);
  std::vector<std::int64_t> chunk_clips(static_cast<std::size_t>(chunks), 0);
  parallel_for_chunks(positions, chunks, [&](int chunk, std::int64_t begin,
                                             std::int64_t end) {
    std::vector<std::vector<std::int64_t>> partials(
        static_cast<std::size_t>(plan_.active_rounds()));
    std::vector<std::uint32_t> line_value(static_cast<std::size_t>(rows));
    std::vector<bool> line_enable(static_cast<std::size_t>(rows));
    std::vector<std::uint32_t> in;
    std::vector<bool> en;
    std::vector<std::int64_t> res;
    std::int64_t& clips = chunk_clips[static_cast<std::size_t>(chunk)];

    for (std::int64_t pos = begin; pos < end; ++pos) {
      const std::int64_t oy = pos / ow;
      const std::int64_t ox = pos % ow;
      // Crossbar activation rounds.
      for (const IfatEntry& fa : tables_.ifat()) {
        const IfrtSequence& seq =
            tables_.ifrt()[static_cast<std::size_t>(fa.round)];
        std::fill(line_value.begin(), line_value.end(), 0u);
        std::fill(line_enable.begin(), line_enable.end(), false);
        for (std::int64_t wl = 0; wl < rows; ++wl) {
          const std::int32_t idx =
              seq.row_to_input[static_cast<std::size_t>(wl)];
          if (idx == IfrtSequence::kInactiveRow) continue;
          // idx = (segment channel * kh + ky) * kw + kx.
          const std::int64_t khw = conv.kernel_h * conv.kernel_w;
          const std::int64_t ci = fa.ci_start + idx / khw;
          const std::int64_t ky = (idx % khw) / conv.kernel_w;
          const std::int64_t kx = idx % conv.kernel_w;
          const std::int64_t iy = oy * conv.stride + ky - conv.pad;
          const std::int64_t ix = ox * conv.stride + kx - conv.pad;
          std::uint32_t v = 0;
          if (iy >= 0 && iy < input.height && ix >= 0 && ix < input.width) {
            v = input.data[static_cast<std::size_t>(
                (ci * input.height + iy) * input.width + ix)];
          }
          line_value[static_cast<std::size_t>(wl)] = v;
          line_enable[static_cast<std::size_t>(wl)] = true;
        }
        const std::int64_t co_len =
            round_co_len[static_cast<std::size_t>(fa.round)];
        auto& partial = partials[static_cast<std::size_t>(fa.round)];
        partial.assign(static_cast<std::size_t>(co_len), 0);
        for (const Tile& tile : tiles_) {
          if (tile.col_begin >= co_len) continue;
          in.assign(static_cast<std::size_t>(tile.row_count), 0u);
          en.assign(static_cast<std::size_t>(tile.row_count), false);
          bool any = false;
          for (std::int64_t r = 0; r < tile.row_count; ++r) {
            in[static_cast<std::size_t>(r)] =
                line_value[static_cast<std::size_t>(tile.row_begin + r)];
            const bool e =
                line_enable[static_cast<std::size_t>(tile.row_begin + r)];
            en[static_cast<std::size_t>(r)] = e;
            any = any || e;
          }
          if (!any) continue;
          tile.array.mvm(in, en, act_bits, res, &clips);
          const std::int64_t cc = std::min(tile.col_count,
                                           co_len - tile.col_begin);
          for (std::int64_t c = 0; c < cc; ++c) {
            partial[static_cast<std::size_t>(tile.col_begin + c)] +=
                res[static_cast<std::size_t>(c)];
          }
        }
      }
      // Joint module / OFAT merge.
      for (const OfatEntry& oe : tables_.ofat()) {
        const std::int64_t co_len = oe.co_stop - oe.co_start;
        const auto& src = partials[static_cast<std::size_t>(
            oe.replica_of >= 0 ? oe.replica_of : oe.round)];
        for (std::int64_t j = 0; j < co_len; ++j) {
          std::int64_t& cell = out.data[static_cast<std::size_t>(
              (oe.co_start + j) * oh * ow + pos)];
          const std::int64_t v = src[static_cast<std::size_t>(j)];
          cell = oe.accumulate ? cell + v : v;
        }
      }
    }
  });
  if (clip_count != nullptr) {
    for (const std::int64_t c : chunk_clips) *clip_count += c;
  }
  return out;
}

}  // namespace epim
