// The three datapath index tables of EPIM (paper Sec. 4.3, Fig. 2(b)).
//
// * IFAT (Input Feature Address Table): one start/stop index pair per
//   activation round, locating the input-channel segment the round's patch
//   consumes. One entry per crossbar-activation round.
// * IFRT (Input Feature Row Table): one sequence per round, with one entry
//   per crossbar word line: either the position of the input element to
//   drive onto that word line, or "inactive" (the word line's voltage is
//   held at zero because its weights are not part of this patch).
// * OFAT (Output Feature Address Table): one start/stop pair per patch,
//   locating the result within the output feature map. The joint module adds
//   outputs with identical index pairs (partial sums across input groups)
//   and concatenates those with sequential pairs (output groups); wrapped
//   replicas copy a source round's result instead (Sec. 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sample_plan.hpp"

namespace epim {

/// IFAT entry: input channels [ci_start, ci_stop) feed the round.
struct IfatEntry {
  std::int64_t round = 0;
  std::int64_t ci_start = 0;
  std::int64_t ci_stop = 0;
};

/// OFAT entry: the patch's result lands in output channels
/// [co_start, co_stop). `accumulate` marks partial sums to be added to what
/// is already in the buffer (true for every input group after the first);
/// `replica_of` >= 0 marks a channel-wrapping copy of a previous round.
struct OfatEntry {
  std::int64_t round = 0;
  std::int64_t co_start = 0;
  std::int64_t co_stop = 0;
  bool accumulate = false;
  std::int64_t replica_of = -1;
};

/// One IFRT sequence: for every epitome word line, the index into the
/// round's gathered input segment, or kInactiveRow.
struct IfrtSequence {
  static constexpr std::int32_t kInactiveRow = -1;
  std::vector<std::int32_t> row_to_input;

  std::int64_t active_rows() const;
};

/// All three tables for one (epitome, convolution) pair.
class IndexTables {
 public:
  explicit IndexTables(const SamplePlan& plan);

  const std::vector<IfatEntry>& ifat() const { return ifat_; }
  const std::vector<OfatEntry>& ofat() const { return ofat_; }
  /// One sequence per *active* round, indexed by round id.
  const std::vector<IfrtSequence>& ifrt() const { return ifrt_; }

  std::int64_t epitome_rows() const { return rows_; }

  /// Total storage the tables require, in entries (for the datapath-overhead
  /// ablation): IFAT/OFAT pairs plus IFRT sequence elements.
  std::int64_t storage_entries() const;

 private:
  std::vector<IfatEntry> ifat_;
  std::vector<OfatEntry> ofat_;
  std::vector<IfrtSequence> ifrt_;
  std::int64_t rows_ = 0;
};

}  // namespace epim
