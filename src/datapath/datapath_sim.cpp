#include "datapath/datapath_sim.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace epim {

DatapathSimulator::DatapathSimulator(ConvLayerInfo layer, Epitome epitome)
    : layer_(std::move(layer)),
      epitome_(std::move(epitome)),
      tables_(epitome_.plan()) {
  EPIM_CHECK(layer_.conv == epitome_.conv(),
             "layer conv spec must match the epitome's target convolution");
}

Tensor DatapathSimulator::run(const Tensor& input) {
  const ConvSpec& conv = layer_.conv;
  EPIM_CHECK(input.rank() == 3 && input.dim(0) == conv.in_channels &&
                 input.dim(1) == layer_.ifm_h && input.dim(2) == layer_.ifm_w,
             "input does not match layer spec");
  stats_ = DatapathStats{};
  const EpitomeSpec& spec = epitome_.spec();
  const std::int64_t oh = layer_.ofm_h();
  const std::int64_t ow = layer_.ofm_w();
  const std::int64_t khw = conv.kernel_h * conv.kernel_w;
  // The address controller's sliding-window gather, done once per position.
  const Tensor cols = im2col(input, conv.kernel_h, conv.kernel_w, conv.stride,
                             conv.pad);  // (oh*ow, cin*kh*kw)
  Tensor out({conv.out_channels, oh, ow});
  const float* wdata = epitome_.weights().data();
  const std::int64_t wq = spec.q, wpq = spec.p * spec.q;
  const std::int64_t wstride_co = spec.cin_e * wpq;

  std::vector<std::vector<float>> partials(
      static_cast<std::size_t>(epitome_.plan().active_rounds()));

  for (std::int64_t pos = 0; pos < oh * ow; ++pos) {
    const float* seg_base = cols.data() + pos * conv.in_channels * khw;
    // Phase 1: all crossbar activation rounds for this position.
    for (const IfatEntry& fa : tables_.ifat()) {
      const IfrtSequence& seq =
          tables_.ifrt()[static_cast<std::size_t>(fa.round)];
      const std::int64_t ci_len = fa.ci_stop - fa.ci_start;
      // IFAT positions the segment: channels [ci_start, ci_stop) of the
      // gathered window, laid out (channel, ky, kx).
      const float* seg = seg_base + fa.ci_start * khw;
      stats_.buffer_reads += ci_len * khw;
      stats_.table_lookups += 2;  // IFAT entry + IFRT sequence fetch
      // Determine the output width of this round from its OFAT entry.
      std::int64_t co_len = 0;
      for (const OfatEntry& oe : tables_.ofat()) {
        if (oe.round == fa.round && oe.replica_of < 0) {
          co_len = oe.co_stop - oe.co_start;
          break;
        }
      }
      auto& partial = partials[static_cast<std::size_t>(fa.round)];
      partial.assign(static_cast<std::size_t>(co_len), 0.0f);
      // Word lines with IFRT == inactive stay at zero volts; active ones
      // carry the steered input element. Each bit line j integrates the
      // products with its column of epitome weights.
      const auto& row_map = seq.row_to_input;
      for (std::int64_t wl = 0;
           wl < static_cast<std::int64_t>(row_map.size()); ++wl) {
        const std::int32_t in_idx = row_map[static_cast<std::size_t>(wl)];
        if (in_idx == IfrtSequence::kInactiveRow) continue;
        const float x = seg[in_idx];
        if (x == 0.0f) continue;
        // wl = (e_ci * p + py) * q + qx maps straight into the epitome
        // weight tensor (cout_e, cin_e, p, q).
        for (std::int64_t j = 0; j < co_len; ++j) {
          partial[static_cast<std::size_t>(j)] +=
              x * wdata[j * wstride_co + wl];
        }
      }
      stats_.crossbar_rounds += 1;
      (void)wq;
    }
    // Phase 2: the joint module merges rounds into the output buffer.
    for (const OfatEntry& oe : tables_.ofat()) {
      const std::int64_t co_len = oe.co_stop - oe.co_start;
      const std::vector<float>& src =
          partials[static_cast<std::size_t>(
              oe.replica_of >= 0 ? oe.replica_of : oe.round)];
      EPIM_ASSERT(static_cast<std::int64_t>(src.size()) >= co_len,
                  "joint module source narrower than OFAT span");
      stats_.table_lookups += 1;
      if (oe.replica_of >= 0) stats_.replica_copies += 1;
      for (std::int64_t j = 0; j < co_len; ++j) {
        float& cell = out.at((oe.co_start + j) * oh * ow + pos);
        if (oe.accumulate) {
          cell += src[static_cast<std::size_t>(j)];
          stats_.joint_adds += 1;
        } else {
          cell = src[static_cast<std::size_t>(j)];
        }
        stats_.buffer_writes += 1;
      }
    }
  }
  return out;
}

}  // namespace epim
