#include "nn/layer.hpp"

#include <sstream>

#include "tensor/ops.hpp"

namespace epim {

std::int64_t ConvLayerInfo::ofm_h() const {
  return conv_out_dim(ifm_h, conv.kernel_h, conv.stride, conv.pad);
}

std::int64_t ConvLayerInfo::ofm_w() const {
  return conv_out_dim(ifm_w, conv.kernel_w, conv.stride, conv.pad);
}

std::string ConvLayerInfo::to_string() const {
  std::ostringstream os;
  os << name << ": " << conv.in_channels << "x" << conv.kernel_h << "x"
     << conv.kernel_w << " -> " << conv.out_channels << " s" << conv.stride
     << " p" << conv.pad << " @ " << ifm_h << "x" << ifm_w;
  return os.str();
}

ConvLayerInfo FcLayerInfo::as_conv() const {
  ConvLayerInfo info;
  info.name = name;
  info.conv = ConvSpec{in_features, out_features, 1, 1, 1, 0};
  info.ifm_h = 1;
  info.ifm_w = 1;
  return info;
}

}  // namespace epim
