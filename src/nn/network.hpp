// A network, for the purposes of the PIM hardware model, is the ordered list
// of its weighted layers together with the feature-map geometry each layer
// executes at. Topology details that do not affect crossbar mapping or
// per-layer activation counts (skip-connection adds, pooling) are not
// modelled as weighted layers but do inform the feature-map sizes recorded
// in each ConvLayerInfo.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace epim {

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_conv(ConvLayerInfo layer);
  void set_fc(FcLayerInfo fc);

  const std::vector<ConvLayerInfo>& conv_layers() const { return convs_; }
  std::int64_t num_conv_layers() const {
    return static_cast<std::int64_t>(convs_.size());
  }
  const ConvLayerInfo& conv(std::int64_t i) const;

  bool has_fc() const { return has_fc_; }
  const FcLayerInfo& fc() const;

  /// All weighted layers (convs followed by fc-as-conv), the unit the
  /// hardware mapper iterates over.
  std::vector<ConvLayerInfo> weighted_layers() const;

  /// Total weight parameters across convs (+ fc if present).
  std::int64_t total_weights() const;

  /// Total MACs for one inference.
  std::int64_t total_macs() const;

 private:
  std::string name_;
  std::vector<ConvLayerInfo> convs_;
  FcLayerInfo fc_;
  bool has_fc_ = false;
};

}  // namespace epim
