#include "nn/resnet.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace epim {

namespace {

/// Append one bottleneck block (1x1 reduce, 3x3, 1x1 expand, optional 1x1
/// projection on the skip path) and return the block's output channel count.
std::int64_t add_bottleneck(Network& net, const std::string& prefix,
                            std::int64_t in_c, std::int64_t width,
                            std::int64_t stride, bool project,
                            std::int64_t fm) {
  const std::int64_t out_c = width * 4;
  // 1x1 reduce (carries the stride in torchvision-style ResNet v1.5 the 3x3
  // carries it; we follow torchvision: stride on the 3x3).
  net.add_conv({prefix + ".conv1", ConvSpec{in_c, width, 1, 1, 1, 0}, fm, fm});
  const std::int64_t fm2 = conv_out_dim(fm, 3, stride, 1);
  net.add_conv({prefix + ".conv2", ConvSpec{width, width, 3, 3, stride, 1},
                fm, fm});
  net.add_conv({prefix + ".conv3", ConvSpec{width, out_c, 1, 1, 1, 0}, fm2,
                fm2});
  if (project) {
    net.add_conv({prefix + ".downsample",
                  ConvSpec{in_c, out_c, 1, 1, stride, 0}, fm, fm});
  }
  return out_c;
}

}  // namespace

Network build_resnet(const ResNetConfig& config) {
  EPIM_CHECK(config.stage_blocks.size() == 4,
             "bottleneck ResNet has four stages");
  Network net(config.name);
  const std::int64_t s = config.input_size;
  // Stem: 7x7/2 conv then 3x3/2 max pool.
  net.add_conv({"conv1", ConvSpec{3, 64, 7, 7, 2, 3}, s, s});
  std::int64_t fm = conv_out_dim(s, 7, 2, 3);   // 112 at 224 input
  fm = conv_out_dim(fm, 3, 2, 1);               // 56 after max pool
  std::int64_t in_c = 64;
  const std::int64_t widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = widths[stage];
    const int blocks = config.stage_blocks[static_cast<std::size_t>(stage)];
    for (int b = 0; b < blocks; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const bool project = (b == 0);  // channel or spatial change
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      in_c = add_bottleneck(net, prefix, in_c, width, stride, project, fm);
      if (stride == 2) fm = conv_out_dim(fm, 3, 2, 1);
    }
  }
  net.set_fc({"fc", in_c, config.num_classes});
  return net;
}

Network resnet50(std::int64_t input_size) {
  return build_resnet({"ResNet50", {3, 4, 6, 3}, input_size, 1000});
}

Network resnet101(std::int64_t input_size) {
  return build_resnet({"ResNet101", {3, 4, 23, 3}, input_size, 1000});
}

Network mini_resnet(std::int64_t input_size, std::int64_t num_classes) {
  Network net("MiniResNet");
  const std::int64_t s = input_size;
  net.add_conv({"conv1", ConvSpec{3, 16, 3, 3, 1, 1}, s, s});
  std::int64_t fm = s;
  std::int64_t in_c = 16;
  const std::int64_t widths[3] = {16, 32, 64};
  for (int stage = 0; stage < 3; ++stage) {
    const std::int64_t width = widths[stage];
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      net.add_conv({prefix + ".conv1",
                    ConvSpec{in_c, width, 3, 3, stride, 1}, fm, fm});
      const std::int64_t fm2 = conv_out_dim(fm, 3, stride, 1);
      net.add_conv({prefix + ".conv2", ConvSpec{width, width, 3, 3, 1, 1},
                    fm2, fm2});
      if (stride == 2 || in_c != width) {
        net.add_conv({prefix + ".downsample",
                      ConvSpec{in_c, width, 1, 1, stride, 0}, fm, fm});
      }
      in_c = width;
      fm = fm2;
    }
  }
  net.set_fc({"fc", in_c, num_classes});
  return net;
}

}  // namespace epim
