#include "nn/vgg.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace epim {

Network vgg16(std::int64_t input_size) {
  Network net("VGG16");
  const int plan[5][2] = {{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};
  std::int64_t fm = input_size;
  std::int64_t in_c = 3;
  int idx = 0;
  for (const auto& [width, reps] : plan) {
    for (int r = 0; r < reps; ++r) {
      net.add_conv({"conv" + std::to_string(++idx),
                    ConvSpec{in_c, width, 3, 3, 1, 1}, fm, fm});
      in_c = width;
    }
    fm = conv_out_dim(fm, 2, 2, 0);  // 2x2 max pool
  }
  // Classifier: fc6/fc7 modelled as pointwise convs on a 1x1 map (they map
  // onto crossbars exactly like any other weight matrix), fc8 as the head.
  net.add_conv({"fc6", ConvSpec{in_c * fm * fm, 4096, 1, 1, 1, 0}, 1, 1});
  net.add_conv({"fc7", ConvSpec{4096, 4096, 1, 1, 1, 0}, 1, 1});
  net.set_fc({"fc8", 4096, 1000});
  return net;
}

namespace {

Network basic_resnet(const std::string& name, const int (&blocks)[4],
                     std::int64_t input_size) {
  Network net(name);
  const std::int64_t s = input_size;
  net.add_conv({"conv1", ConvSpec{3, 64, 7, 7, 2, 3}, s, s});
  std::int64_t fm = conv_out_dim(s, 7, 2, 3);
  fm = conv_out_dim(fm, 3, 2, 1);
  std::int64_t in_c = 64;
  const std::int64_t widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = widths[stage];
    for (int b = 0; b < blocks[stage]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      net.add_conv({prefix + ".conv1",
                    ConvSpec{in_c, width, 3, 3, stride, 1}, fm, fm});
      const std::int64_t fm2 = conv_out_dim(fm, 3, stride, 1);
      net.add_conv({prefix + ".conv2", ConvSpec{width, width, 3, 3, 1, 1},
                    fm2, fm2});
      if (stride != 1 || in_c != width) {
        net.add_conv({prefix + ".downsample",
                      ConvSpec{in_c, width, 1, 1, stride, 0}, fm, fm});
      }
      in_c = width;
      fm = fm2;
    }
  }
  net.set_fc({"fc", in_c, 1000});
  return net;
}

}  // namespace

Network resnet18(std::int64_t input_size) {
  return basic_resnet("ResNet18", {2, 2, 2, 2}, input_size);
}

Network resnet34(std::int64_t input_size) {
  return basic_resnet("ResNet34", {3, 4, 6, 3}, input_size);
}

}  // namespace epim
