// Additional network builders for the model zoo: VGG-16 and the
// basic-block ResNets (18/34). Not evaluated in the paper, but they widen
// the workload coverage of the ablation benches and exercise the designer on
// very different layer-shape distributions (VGG: huge FC layers; ResNet-18:
// no bottleneck 1x1s).
#pragma once

#include <cstdint>

#include "nn/network.hpp"

namespace epim {

/// VGG-16 (configuration D) at the given input resolution. The three
/// classifier FCs are modelled as weighted layers (the first one dominates
/// parameters, which is why epitomes shine on it).
Network vgg16(std::int64_t input_size = 224);

/// Basic-block ResNets.
Network resnet18(std::int64_t input_size = 224);
Network resnet34(std::int64_t input_size = 224);

}  // namespace epim
