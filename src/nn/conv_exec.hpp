// Reference (bit-exact float) executor for convolution layers.
//
// The datapath simulator's output is validated against this executor: an
// epitome layer run through the IFAT/IFRT/OFAT pipeline must equal the
// convolution with the epitome's reconstructed weights.
#pragma once

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// 2-D convolution of a (C, H, W) input with (Cout, Cin, Kh, Kw) weights;
/// returns (Cout, Oh, Ow). Implemented via im2col + matmul.
Tensor conv2d(const Tensor& input, const Tensor& weight, std::int64_t stride,
              std::int64_t pad);

/// Convenience: run a ConvLayerInfo spec (shape-checked against the spec).
Tensor run_conv_layer(const ConvLayerInfo& layer, const Tensor& input,
                      const Tensor& weight);

/// 2x2-style max pooling with arbitrary window/stride/pad; (C,H,W) input.
Tensor max_pool2d(const Tensor& input, std::int64_t k, std::int64_t stride,
                  std::int64_t pad);

/// Global average pooling: (C, H, W) -> (C).
Tensor global_avg_pool(const Tensor& input);

/// Elementwise ReLU.
Tensor relu(const Tensor& input);

/// Per-channel affine transform y = scale[c] * x + shift[c]; what an
/// eval-mode BatchNorm folds down to for deployment.
struct ChannelAffine {
  std::vector<float> scale;
  std::vector<float> shift;
};

/// Apply a folded BatchNorm affine + ReLU to a (C, H, W) tensor in place --
/// the post-conv epilogue shared by the PIM runtime and the float reference
/// path.
void affine_relu(Tensor& t, const ChannelAffine& bn);

}  // namespace epim
