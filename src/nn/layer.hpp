// Layer descriptions for convolutional networks.
//
// The hardware model needs, for every weighted layer, the kernel geometry and
// the feature-map geometry at which it executes; both are captured here. The
// reference executor (conv_exec.hpp) runs these specs on real tensors.
#pragma once

#include <cstdint>
#include <string>

namespace epim {

/// Geometry of a convolution kernel (square strides/padding only, which
/// covers ResNet-family networks).
struct ConvSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  /// Weight element count (bias excluded; ResNet convs are bias-free).
  std::int64_t weight_count() const {
    return in_channels * out_channels * kernel_h * kernel_w;
  }

  /// Rows of the unrolled (im2col) weight matrix: cin * kh * kw.
  std::int64_t unrolled_rows() const {
    return in_channels * kernel_h * kernel_w;
  }

  /// Columns of the unrolled weight matrix: cout.
  std::int64_t unrolled_cols() const { return out_channels; }

  bool operator==(const ConvSpec&) const = default;
};

/// A convolution layer placed in a network: kernel spec plus the input
/// feature-map size it sees at inference time.
struct ConvLayerInfo {
  std::string name;
  ConvSpec conv;
  std::int64_t ifm_h = 0;
  std::int64_t ifm_w = 0;

  std::int64_t ofm_h() const;
  std::int64_t ofm_w() const;

  /// Number of sliding-window positions = MVMs per inference for this layer.
  std::int64_t output_positions() const { return ofm_h() * ofm_w(); }

  /// Multiply-accumulates for one inference of this layer.
  std::int64_t macs() const {
    return output_positions() * conv.weight_count();
  }

  std::string to_string() const;
};

/// A fully-connected layer (treated as a 1x1 convolution over a 1x1 map for
/// hardware purposes).
struct FcLayerInfo {
  std::string name;
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;

  std::int64_t weight_count() const { return in_features * out_features; }

  /// View as a conv layer on a 1x1 feature map.
  ConvLayerInfo as_conv() const;
};

}  // namespace epim
