// Builders for the exact ResNet-50 / ResNet-101 layer inventories at a given
// input resolution (default 224x224, as in the paper's ImageNet evaluation).
//
// These drive the hardware model: crossbar counts, latency and energy depend
// only on the per-layer kernel and feature-map geometry captured here.
#pragma once

#include <cstdint>

#include "nn/network.hpp"

namespace epim {

/// Configuration for bottleneck-style ResNets (ResNet-50/101/152).
struct ResNetConfig {
  std::string name;
  /// Blocks per stage, e.g. {3, 4, 6, 3} for ResNet-50.
  std::vector<int> stage_blocks;
  std::int64_t input_size = 224;
  std::int64_t num_classes = 1000;
};

/// Build a bottleneck ResNet from a config.
Network build_resnet(const ResNetConfig& config);

/// ResNet-50 at the paper's evaluation resolution.
Network resnet50(std::int64_t input_size = 224);

/// ResNet-101 at the paper's evaluation resolution.
Network resnet101(std::int64_t input_size = 224);

/// A reduced bottleneck ResNet (18-ish conv layers at 32x32 input) used by
/// fast tests and the training-substrate experiments.
Network mini_resnet(std::int64_t input_size = 32, std::int64_t num_classes = 10);

}  // namespace epim
