#include "nn/network.hpp"

#include "common/check.hpp"

namespace epim {

void Network::add_conv(ConvLayerInfo layer) {
  EPIM_CHECK(layer.conv.in_channels > 0 && layer.conv.out_channels > 0,
             "conv layer channels must be positive");
  EPIM_CHECK(layer.ifm_h > 0 && layer.ifm_w > 0,
             "conv layer feature map must be positive");
  convs_.push_back(std::move(layer));
}

void Network::set_fc(FcLayerInfo fc) {
  EPIM_CHECK(fc.in_features > 0 && fc.out_features > 0,
             "fc layer features must be positive");
  fc_ = std::move(fc);
  has_fc_ = true;
}

const ConvLayerInfo& Network::conv(std::int64_t i) const {
  EPIM_CHECK(i >= 0 && i < num_conv_layers(), "conv layer index out of range");
  return convs_[static_cast<std::size_t>(i)];
}

const FcLayerInfo& Network::fc() const {
  EPIM_CHECK(has_fc_, "network has no fc layer");
  return fc_;
}

std::vector<ConvLayerInfo> Network::weighted_layers() const {
  std::vector<ConvLayerInfo> layers = convs_;
  if (has_fc_) layers.push_back(fc_.as_conv());
  return layers;
}

std::int64_t Network::total_weights() const {
  std::int64_t total = 0;
  for (const auto& l : convs_) total += l.conv.weight_count();
  if (has_fc_) total += fc_.weight_count();
  return total;
}

std::int64_t Network::total_macs() const {
  std::int64_t total = 0;
  for (const auto& l : convs_) total += l.macs();
  if (has_fc_) total += fc_.weight_count();
  return total;
}

}  // namespace epim
