#include "nn/conv_exec.hpp"

#include <algorithm>
#include <limits>

#include "common/parallel.hpp"
#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace epim {

Tensor conv2d(const Tensor& input, const Tensor& weight, std::int64_t stride,
              std::int64_t pad) {
  EPIM_CHECK(input.rank() == 3, "conv2d expects (C, H, W) input");
  EPIM_CHECK(weight.rank() == 4, "conv2d expects (Cout, Cin, Kh, Kw) weight");
  EPIM_CHECK(weight.dim(1) == input.dim(0),
             "conv2d input channels must match weight");
  const std::int64_t cout = weight.dim(0);
  const std::int64_t kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t oh = conv_out_dim(input.dim(1), kh, stride, pad);
  const std::int64_t ow = conv_out_dim(input.dim(2), kw, stride, pad);
  // cols: (oh*ow, cin*kh*kw); weight matrix: (cout, cin*kh*kw). The matmul
  // writes (cout, oh*ow) directly -- the (oh*ow, cout) -> (cout, oh, ow)
  // transpose is folded into the output indexing, and output channels fan
  // out across threads (channel planes are disjoint, so any thread count
  // produces the same tensor).
  const Tensor cols = im2col(input, kh, kw, stride, pad);
  const std::int64_t k = weight.numel() / cout;
  const std::int64_t positions = oh * ow;
  Tensor result({cout, oh, ow});
  const float* pa = cols.data();
  const float* pw = weight.data();
  float* pr = result.data();
  parallel_for(cout, [&](std::int64_t c) {
    const float* wrow = pw + c * k;
    float* out_plane = pr + c * positions;
    for (std::int64_t p = 0; p < positions; ++p) {
      const float* arow = pa + p * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * wrow[kk];
      }
      out_plane[p] = static_cast<float>(acc);
    }
  });
  return result;
}

Tensor run_conv_layer(const ConvLayerInfo& layer, const Tensor& input,
                      const Tensor& weight) {
  EPIM_CHECK(input.rank() == 3 && input.dim(0) == layer.conv.in_channels &&
                 input.dim(1) == layer.ifm_h && input.dim(2) == layer.ifm_w,
             "input does not match layer spec " + layer.to_string());
  EPIM_CHECK(weight.rank() == 4 && weight.dim(0) == layer.conv.out_channels &&
                 weight.dim(1) == layer.conv.in_channels &&
                 weight.dim(2) == layer.conv.kernel_h &&
                 weight.dim(3) == layer.conv.kernel_w,
             "weight does not match layer spec " + layer.to_string());
  return conv2d(input, weight, layer.conv.stride, layer.conv.pad);
}

Tensor max_pool2d(const Tensor& input, std::int64_t k, std::int64_t stride,
                  std::int64_t pad) {
  EPIM_CHECK(input.rank() == 3, "max_pool2d expects (C, H, W) input");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = conv_out_dim(h, k, stride, pad);
  const std::int64_t ow = conv_out_dim(w, k, stride, pad);
  Tensor out({c, oh, ow});
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        bool any = false;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= w) continue;
            best = std::max(best, input(ci, iy, ix));
            any = true;
          }
        }
        out(ci, oy, ox) = any ? best : 0.0f;
      }
    }
  }
  return out;
}

Tensor global_avg_pool(const Tensor& input) {
  EPIM_CHECK(input.rank() == 3, "global_avg_pool expects (C, H, W) input");
  const std::int64_t c = input.dim(0);
  const std::int64_t hw = input.dim(1) * input.dim(2);
  Tensor out({c});
  for (std::int64_t ci = 0; ci < c; ++ci) {
    double acc = 0.0;
    for (std::int64_t p = 0; p < hw; ++p) acc += input.at(ci * hw + p);
    out(ci) = static_cast<float>(acc / static_cast<double>(hw));
  }
  return out;
}

Tensor relu(const Tensor& input) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    out.at(i) = std::max(0.0f, input.at(i));
  }
  return out;
}

void affine_relu(Tensor& t, const ChannelAffine& bn) {
  EPIM_CHECK(t.rank() == 3, "affine_relu expects a (C, H, W) tensor");
  EPIM_CHECK(static_cast<std::int64_t>(bn.scale.size()) == t.dim(0) &&
                 bn.scale.size() == bn.shift.size(),
             "affine channel count must match the tensor");
  const std::int64_t c = t.dim(0), plane = t.dim(1) * t.dim(2);
  for (std::int64_t ci = 0; ci < c; ++ci) {
    float* p = t.data() + ci * plane;
    const float s = bn.scale[static_cast<std::size_t>(ci)];
    const float b = bn.shift[static_cast<std::size_t>(ci)];
    for (std::int64_t i = 0; i < plane; ++i) {
      p[i] = std::max(0.0f, s * p[i] + b);
    }
  }
}

}  // namespace epim
