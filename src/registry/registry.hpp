// Multi-model serving: a registry of named, versioned `.epim` deployments
// and a routing front door over it -- the fleet layer above one
// InferenceService.
//
// A ModelRegistry owns entries keyed `name@version`, each backed by either
// a `.epim` artifact path (register_artifact) or an in-memory DeployedModel
// (register_model). Entries are materialized LAZILY: the first request for
// a version loads/adopts the model and stands up an InferenceService; until
// then an entry costs a map node, so a registry can index a whole model zoo
// while only the hot subset holds programmed crossbars. A configurable
// resident-model budget bounds that hot subset: materializing past it
// evicts the least-recently-used resident service (drained via
// InferenceService::detach, so no future is ever abandoned). An
// artifact-backed entry re-materializes from its file bit-identically (the
// PR 3 artifact determinism contract); an in-memory-only entry keeps its
// DeployedModel across eviction -- the eviction still frees its batch
// worker threads and queue.
//
// The Router resolves routing targets and forwards traffic:
//
//   "name@version"  exact version
//   "name@alias"    alias indirection (set_alias, e.g. resnet50@prod)
//   "name"          weighted split (set_split, canary rollout) when one is
//                   configured, else the "default" alias, else the sole
//                   registered version
//
// Split draws come from the Router's own seeded Rng, so a pinned request
// sequence routes deterministically -- the same property the rest of the
// repo enforces for kernels and search. Admission control is enforced by
// the per-model service queue bound (ServeConfig::max_queue, set from
// RegistryConfig): a full model rejects with epim::Unavailable instead of
// queueing without bound, so one hot model can never OOM the fleet.
//
// Hot reload: reload(name, version, path) atomically repoints the version
// at a new artifact. New traffic materializes the new artifact; requests
// already queued on the old service drain to completion on the old weights
// (outside the registry lock), and its counters fold into the entry's
// retired totals so fleet stats never lose history.
//
// Per-entry health: a materialization failure (missing/corrupt artifact,
// injected fault) no longer escapes raw -- it is recorded on the entry and
// rethrown as epim::Unavailable (pinned kErrMaterializeFailed prefix). Each
// entry runs a circuit breaker: consecutive failures put it in kDegraded
// with exponential backoff + seeded jitter between load retries, and
// HealthPolicy::quarantine_after of them open the breaker (kQuarantined).
// While the backoff/quarantine window is open, requests fast-fail
// Unavailable (kErrBackoff / kErrQuarantined) WITHOUT touching the
// lock-held load path -- the map lookup and a time compare, no artifact
// I/O, no crossbar programming, and no additional lock beyond the registry
// lock every submission already takes. When the window expires, exactly the
// next request becomes a half-open probe: one real materialization attempt
// that either closes the breaker (healthy, counters reset) or re-opens it
// with a doubled backoff. A successful reload() also resets health -- a
// repointed artifact deserves a fresh probe immediately. Healthy entries
// pay nothing: the health gate is two branches on the already-locked path.
//
// Router fallback: set_fallback(name, target) names a fallback routing
// target for a model family; when the primary resolution fast-fails
// Unavailable (quarantine, backoff, queue-full admission, or the probe
// failing), the Router re-routes the SAME images to the fallback target
// once (no chaining: a fallback's fallback is never consulted), counting
// the hop in fallbacks(). The fleet degrades gracefully instead of
// head-of-line blocking on a broken artifact.
//
// Thread budget: resident services share the one `common/parallel` pool --
// an InferenceService owns only ServeConfig::workers blocking batch
// threads; all compute fans out across the process-wide pool, which
// accepts concurrent initiators. The resident budget therefore caps
// batch-worker threads and programmed-crossbar memory, not compute
// threads (RegistrySnapshot::workers reports the live worker footprint).
//
// Thread safety: every public method of ModelRegistry and Router may be
// called from any number of threads. One registry mutex guards the entry
// map, but it is NEVER held across I/O or a drain: each entry runs a
// lifecycle state machine
//
//            +--------- load failed (backoff) ----------+
//            v                                          |
//   kCold --(first healthy request claims the load)--> kLoading --+
//     ^                                                           |
//     |                                            publish under re-acquired
//     +--- drain done ---- kDraining <--- evict/reload ---+       |
//                                                         |       v
//                                                      kResident <+
//
// and the single-flight loader DROPS the registry lock across artifact I/O
// + InferenceService construction, re-acquiring it only to publish (or to
// record the failure + backoff). Concurrent requests to the SAME loading
// entry wait on the entry's CondVar -- shedding on their own
// SubmitOptions::deadline_ms -- while requests to OTHER entries proceed
// untouched: a cold start no longer head-of-line blocks the fleet. Resident
// traffic pins the entry (a refcount) around the lock-free enqueue, and
// eviction/reload wait for pins to reach zero before destroying a service,
// so no thread ever touches a dead service. Eviction victims drain OUTSIDE
// the lock too (kDraining), and LRU selection skips kLoading/pinned
// entries. stats() likewise pins the resident services under the lock and
// reads their counters/latency windows after releasing it, so a monitoring
// scrape never stalls fleet admission.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/service.hpp"

namespace epim {

/// Health of one registry entry (see the file header). Healthy entries pay
/// two branches on the submission path; unhealthy ones fast-fail while
/// their retry window is open.
enum class HealthState {
  kHealthy,      ///< serving normally (or never yet materialized)
  kDegraded,     ///< failing to materialize; retries with backoff
  kQuarantined,  ///< breaker open after quarantine_after straight failures
};

/// Human-readable state name ("healthy" / "degraded" / "quarantined").
const char* to_string(HealthState state);

/// Lifecycle of one registry entry (see the state diagram in the file
/// header). Transitions happen only under the registry lock; the load and
/// drain WORK happens with the lock dropped.
enum class LifecycleState {
  kCold,      ///< no service; the next healthy request claims the load
  kLoading,   ///< a single-flight loader is materializing outside the lock
  kResident,  ///< service up and serving
  kDraining,  ///< service being detached (evict/reload) outside the lock
};

/// Human-readable state name ("cold" / "loading" / "resident" / "draining").
const char* to_string(LifecycleState state);

/// Failure-handling policy for per-entry health.
struct HealthPolicy {
  /// Consecutive materialization failures that open the breaker
  /// (kQuarantined); must be >= 1. Below it the entry is kDegraded.
  int quarantine_after = 3;
  /// Backoff before the k-th consecutive retry: base * 2^(k-1) ms, capped
  /// at backoff_max_ms, then jittered by a factor uniform in
  /// [1 - jitter, 1 + jitter] drawn from a seeded Rng (deterministic
  /// fleet-wide, like every other stochastic component).
  double backoff_base_ms = 100.0;
  double backoff_max_ms = 10000.0;
  double jitter = 0.25;  ///< in [0, 1); 0 disables jitter
  std::uint64_t jitter_seed = 0xB0FFu;
};

/// Fleet-level policy of a ModelRegistry.
struct RegistryConfig {
  /// Largest number of materialized services (programmed crossbars +
  /// batch worker threads) resident at once; must be positive. LRU beyond it.
  int max_resident_models = 4;
  /// Circuit-breaker/backoff policy applied to every entry.
  HealthPolicy health{};
  /// Batching + admission policy for services the registry materializes;
  /// a per-entry ServeConfig passed at registration overrides it. Note the
  /// registry default BOUNDS the queue (max_queue = 1024) -- unbounded
  /// growth is opt-in here, unlike a standalone InferenceService.
  ServeConfig serve = default_serve();

  static ServeConfig default_serve() {
    ServeConfig s;
    s.max_queue = 1024;
    return s;
  }
};

/// One arm of a weighted traffic split (canary rollout).
struct VersionWeight {
  std::string version;
  double weight = 1.0;  ///< relative; must be positive
};

/// Per-model slice of a registry snapshot. Counters (requests, batches,
/// clip_events, rejected) span the entry's whole life, including retired
/// services (evicted or hot-swapped); rates and percentiles describe the
/// live service only (zero while cold).
struct ModelSnapshot {
  std::string name;
  std::string version;
  bool resident = false;
  /// Where the entry sits in the cold/loading/resident/draining machine at
  /// snapshot time (`resident` above is `lifecycle == kResident`, kept for
  /// callers that only care about the binary).
  LifecycleState lifecycle = LifecycleState::kCold;
  /// Batch workers this entry's service runs when resident (its
  /// ServeConfig::workers); reported for cold entries too, since it is
  /// registration-time policy, not runtime state.
  int workers = 0;
  ServiceStats stats{};
  std::int64_t evictions = 0;
  /// Circuit-breaker view of the entry (see HealthState).
  HealthState health = HealthState::kHealthy;
  /// Consecutive materialization failures (reset by a successful load).
  int consecutive_failures = 0;
  /// Lifetime materialization failures (never reset by success).
  std::int64_t materialize_failures = 0;
  /// Requests fast-failed while the entry's retry window was open (these
  /// never reached the load path or a service queue, so they appear in
  /// neither stats.requests nor stats.rejected).
  std::int64_t health_fast_fails = 0;
  /// what() of the most recent materialization failure (empty if none
  /// since the last success).
  std::string last_error;
};

/// Registry-wide aggregate: per-model slices plus fleet totals.
struct RegistrySnapshot {
  std::vector<ModelSnapshot> models;  ///< sorted by (name, version)
  int resident = 0;                   ///< materialized services right now
  /// Batch-worker threads alive across the resident services (the fleet's
  /// batch-thread footprint; compute threads are the separate shared pool
  /// budget).
  int workers = 0;
  std::int64_t requests = 0;          ///< completed, fleet-wide
  std::int64_t rejected = 0;          ///< admission rejections, fleet-wide
  std::int64_t evictions = 0;         ///< LRU evictions, fleet-wide
  std::int64_t queued = 0;            ///< currently queued, fleet-wide
  int quarantined = 0;                ///< entries with the breaker open
  std::int64_t deadline_misses = 0;   ///< shed requests, fleet-wide
  std::int64_t health_fast_fails = 0; ///< breaker fast-fails, fleet-wide
  /// Fleet-wide per-priority splits of queued/requests/deadline_misses
  /// (summed over the per-model ServiceStats splits, retired services
  /// included; indexed by static_cast<int>(Priority)).
  std::array<std::int64_t, kNumPriorities> queued_by_priority{};
  std::array<std::int64_t, kNumPriorities> completed_by_priority{};
  std::array<std::int64_t, kNumPriorities> deadline_misses_by_priority{};
  /// Sum of the resident services' items/s (each measured over its own
  /// submit->completion window).
  double items_per_sec = 0.0;
  /// Percentiles over the POOLED latency windows of all resident services
  /// -- the fleet-wide digest a per-service p50/p99 cannot provide.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Named, versioned model store with lazy materialization, an LRU resident
/// budget, and atomic hot reload. The Router below is the intended traffic
/// entry point; the registry's own submit() is the version-explicit core it
/// delegates to.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  const RegistryConfig& config() const { return config_; }

  /// Register `name@version` backed by a `.epim` deployed-model artifact.
  /// The file's header is probed immediately (existence, magic, kind), the
  /// payload is loaded on first request. Throws InvalidArgument if the
  /// version already exists or the artifact is unusable.
  void register_artifact(const std::string& name, const std::string& version,
                         const std::string& path);
  void register_artifact(const std::string& name, const std::string& version,
                         const std::string& path, const ServeConfig& serve);

  /// Register `name@version` backed by an already-deployed in-memory model
  /// (e.g. fresh out of Pipeline::deploy, skipping the save/load cycle).
  /// The service is still materialized lazily; eviction detaches the model
  /// back into the entry instead of dropping it.
  void register_model(const std::string& name, const std::string& version,
                      DeployedModel model);
  void register_model(const std::string& name, const std::string& version,
                      DeployedModel model, const ServeConfig& serve);

  /// Point `name@alias` at an existing version (re-pointing is allowed; an
  /// alias equal to a version name is rejected as shadowing). The alias
  /// "default" also resolves bare-name targets with no split.
  void set_alias(const std::string& name, const std::string& alias,
                 const std::string& version);

  /// Weighted split over existing versions of `name`, applied to bare-name
  /// targets (weights positive, versions distinct). Replaces any previous
  /// split; an empty vector is rejected -- use clear_split().
  void set_split(const std::string& name, std::vector<VersionWeight> split);
  void clear_split(const std::string& name);

  /// Hot swap: repoint an existing `name@version` at a new artifact. The
  /// swap is atomic under the registry lock; the old service (if resident)
  /// drains its in-flight requests outside the lock and folds its counters
  /// into the entry's retired totals.
  void reload(const std::string& name, const std::string& version,
              const std::string& path);

  /// Version-explicit submission: materializes the entry if cold (evicting
  /// LRU residents past the budget), then enqueues on its service. Exactly
  /// one request performs a cold load (single-flight, with the registry
  /// lock dropped across the I/O); concurrent requests to the same entry
  /// wait for the load/drain to finish -- a request with
  /// SubmitOptions::deadline_ms sheds with DeadlineExceeded if the entry is
  /// still not resident at its deadline. Throws InvalidArgument for unknown
  /// targets or bad shapes, Unavailable when the model's queue is full.
  std::future<InferenceResult> submit(const std::string& name,
                                      const std::string& version,
                                      Tensor image);
  std::future<InferenceResult> submit(const std::string& name,
                                      const std::string& version, Tensor image,
                                      const SubmitOptions& options);
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& name, const std::string& version,
      std::vector<Tensor> images);
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& name, const std::string& version,
      std::vector<Tensor> images, const SubmitOptions& options);

  /// Current breaker state of `name@version` (InvalidArgument if unknown).
  HealthState health(const std::string& name,
                     const std::string& version) const;

  /// Resolve a routing target (see file header) to a concrete
  /// (name, version). `split_draw` must be a uniform draw in [0, 1) when
  /// the target is a bare name with a split configured; it is ignored
  /// otherwise (pass a negative value to assert no split is consulted).
  std::pair<std::string, std::string> resolve(const std::string& target,
                                              double split_draw) const;

  /// Same, but the draw is produced on demand: `split_draw` is invoked
  /// (under the registry lock) only if the target actually routes through
  /// a split. This is the race-free form the Router uses -- checking for a
  /// split and drawing in two steps would let a concurrent set_split()
  /// land in between.
  std::pair<std::string, std::string> resolve(
      const std::string& target,
      const std::function<double()>& split_draw) const;

  /// Whether bare-name targets for `name` currently route via a split.
  bool has_split(const std::string& name) const;

  /// Registered versions of `name`, sorted (InvalidArgument if unknown).
  std::vector<std::string> versions(const std::string& name) const;

  /// Whether `name@version` currently holds a materialized service.
  bool resident(const std::string& name, const std::string& version) const;

  /// Fleet snapshot (see RegistrySnapshot). Entry-level fields (health,
  /// retired counters, lifecycle) are captured atomically under the
  /// registry lock; the resident services' live counters and latency
  /// windows are then read with the lock RELEASED and the services pinned,
  /// so a scrape never blocks admission -- the live half may therefore be
  /// a few requests newer than the entry half.
  RegistrySnapshot stats() const;

  /// Start a new stats interval: reset() every resident service and zero
  /// all retired counters plus the health_fast_fails traffic counter.
  /// Structural counters (evictions, health state, materialize_failures)
  /// are kept -- they describe the registry, not an interval's traffic.
  void reset_stats();

  /// Materialization-failure message prefix (pinned by tests): every
  /// failure to load/adopt an entry's model surfaces as Unavailable with
  /// this prefix and the underlying error appended.
  static constexpr const char* kErrMaterializeFailed =
      "model failed to materialize";
  /// Fast-fail message prefixes (pinned by tests) while an entry's retry
  /// window is open: degraded-with-backoff vs. breaker-open quarantine.
  static constexpr const char* kErrBackoff =
      "model is backing off after a materialization failure";
  static constexpr const char* kErrQuarantined =
      "model is quarantined (circuit breaker open)";

 private:
  struct RetiredCounters {
    std::int64_t requests = 0;
    std::int64_t batches = 0;
    std::int64_t clip_events = 0;
    std::int64_t rejected = 0;
    std::int64_t deadline_misses = 0;
    /// Per-priority splits of requests/deadline_misses (the scalars stay
    /// the class sums), folded from the same retiring-service snapshots.
    std::array<std::int64_t, kNumPriorities> completed_by_priority{};
    std::array<std::int64_t, kNumPriorities> deadline_misses_by_priority{};
  };

  /// Cached telemetry series for one entry ({model} = "name@version").
  /// Resolved at registration BEFORE the registry lock is taken -- series
  /// lookup acquires telemetry::Registry::mu_, which must stay a leaf never
  /// taken under ModelRegistry::mu_ -- then recorded into with relaxed
  /// atomics only, which is legal under any lock. One transition counter
  /// per destination state so a scrape sees the full lifecycle churn.
  struct EntryMetrics {
    telemetry::Counter* to_loading = nullptr;
    telemetry::Counter* to_resident = nullptr;
    telemetry::Counter* to_draining = nullptr;
    telemetry::Counter* to_cold = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* fast_fails = nullptr;
    telemetry::Gauge* pins = nullptr;
    telemetry::Histogram* materialize_ms = nullptr;
  };

  struct Entry {
    std::string artifact_path;          ///< empty for in-memory-only entries
    std::optional<DeployedModel> model; ///< in-memory source while cold
    std::unique_ptr<InferenceService> service;  ///< resident runtime
    ServeConfig serve{};
    std::uint64_t last_used = 0;        ///< LRU tick
    std::int64_t evictions = 0;
    RetiredCounters retired{};          ///< from evicted/swapped services
    EntryMetrics metrics{};             ///< see EntryMetrics

    // --- lifecycle state machine (fields mutated only under the registry
    // lock, like the breaker below; the CondVar is internally synchronized
    // and entries are never removed, so waiting on it is always safe) ---
    LifecycleState state = LifecycleState::kCold;
    /// Threads currently using `service` with the registry lock RELEASED
    /// (an enqueue or a stats scrape -- never I/O). Eviction skips pinned
    /// entries; reload waits for the count to reach zero before detaching.
    int pins = 0;
    /// Bumped by reload(): a loader whose captured epoch no longer matches
    /// at publish time was superseded -- it discards its result and its
    /// failure is not charged to the repointed artifact's fresh health.
    std::uint64_t load_epoch = 0;
    /// Signals every state transition and every pins -> 0 edge. Waiters
    /// (requests behind an in-flight load/drain, reload waiting out pins)
    /// re-check their predicate; load-waiters shed on their own deadline.
    CondVar cv;

    // --- circuit breaker (mutated only under the registry lock) ---
    HealthState health = HealthState::kHealthy;
    int consecutive_failures = 0;
    std::int64_t materialize_failures = 0;
    std::int64_t health_fast_fails = 0;
    std::string last_error;
    /// End of the current backoff/quarantine window; requests before it
    /// fast-fail, the first one at/after it is the half-open probe.
    std::chrono::steady_clock::time_point retry_at{};

    bool artifact_backed() const { return !artifact_path.empty(); }
  };

  struct Family {
    std::map<std::string, Entry> versions;
    std::map<std::string, std::string> aliases;
    std::vector<VersionWeight> split;  ///< empty = no split
  };

  /// Resolve the telemetry series an entry records into. Takes the
  /// telemetry registration mutex, so it MUST be called with mu_ released
  /// (both register_* call it before locking); see EntryMetrics.
  static EntryMetrics resolve_entry_metrics(const std::string& name,
                                            const std::string& version)
      EPIM_EXCLUDES(mu_);
  /// Move the lifecycle machine and count the transition (relaxed atomic on
  /// a cached pointer -- no lock acquired). Every state assignment after
  /// registration goes through here so the epim_registry_transitions_total
  /// series can never drift from the machine.
  void set_state_locked(Entry& entry, LifecycleState next) EPIM_REQUIRES(mu_);
  /// Insert a fresh entry; shared precondition checks for both register_*.
  Entry& add_entry_locked(const std::string& name, const std::string& version,
                          const ServeConfig& serve) EPIM_REQUIRES(mu_);
  Entry& find_entry_locked(const std::string& name, const std::string& version)
      EPIM_REQUIRES(mu_);
  const Entry& find_entry_locked(const std::string& name,
                                 const std::string& version) const
      EPIM_REQUIRES(mu_);
  /// Single-flight load of a kCold `entry`: marks it kLoading, DROPS the
  /// registry lock across the artifact I/O + service construction, then
  /// re-acquires `lock` to publish kResident (or to record the failure and
  /// open a backoff window, rethrowing). A load superseded by a concurrent
  /// reload() (load_epoch moved) discards its result silently and returns;
  /// the caller loops and re-evaluates the entry. `lock` must be the
  /// MutexLock holding mu_; it is held again on every exit path.
  void materialize_as_loader(MutexLock& lock, const std::string& name,
                             const std::string& version, Entry& entry)
      EPIM_REQUIRES(mu_);
  /// Evict LRU residents until the budget holds, never evicting `fresh`,
  /// kLoading/kDraining, or pinned entries. Each victim is marked kDraining
  /// and drained with the lock DROPPED (detach blocks on in-flight
  /// batches), then folded + returned to kCold under the re-acquired lock.
  void enforce_budget(MutexLock& lock, Entry& fresh) EPIM_REQUIRES(mu_);
  /// Drain a swapped-out service outside the lock, then fold its final
  /// counters into the (never-removed) entry's retired totals. Must NOT be
  /// called with mu_ held: the drain blocks on in-flight traffic, and it
  /// re-acquires mu_ for the fold.
  void retire(std::unique_ptr<InferenceService> service,
              const std::string& name, const std::string& version)
      EPIM_EXCLUDES(mu_);
  int resident_count_locked() const EPIM_REQUIRES(mu_);
  /// Breaker gate for a cold entry: returns normally when the entry may
  /// attempt (re)materialization -- healthy, or its retry window expired
  /// (half-open probe). Otherwise counts `n_requests` fast-fails and throws
  /// Unavailable (kErrBackoff / kErrQuarantined) WITHOUT touching the load
  /// path. Two branches for healthy entries; no extra lock for anyone.
  void check_health_locked(Entry& entry, std::size_t n_requests)
      EPIM_REQUIRES(mu_);
  /// Unconditional fast-fail tail of check_health_locked: counts
  /// `n_requests` into health_fast_fails and throws the pinned
  /// kErrBackoff/kErrQuarantined Unavailable. Also used directly when the
  /// single-flight half-open probe is already in flight (entry kLoading and
  /// unhealthy): the herd behind an expired retry_at must not pile onto the
  /// disk behind the probe, whatever the clock says.
  [[noreturn]] void fail_unhealthy_locked(Entry& entry,
                                          std::size_t n_requests)
      EPIM_REQUIRES(mu_);
  /// Drop one pin; the zero edge wakes eviction/reload waiters.
  void unpin_locked(Entry& entry) EPIM_REQUIRES(mu_);
  /// Record one materialization failure: bump the failure counters, move
  /// the state machine (kDegraded, kQuarantined past quarantine_after) and
  /// open the next backoff window (exponential + seeded jitter).
  void record_materialize_failure_locked(Entry& entry, const std::string& what)
      EPIM_REQUIRES(mu_);

  RegistryConfig config_;
  /// One registry lock over the entry map -- held only for map lookups and
  /// state transitions, NEVER across I/O, service construction, a drain, or
  /// a service stats read (all of those run with the lock dropped and the
  /// entry pinned or in kLoading/kDraining). Lockdep consequence: since
  /// PR 8 this lock has NO outgoing edges -- it is never held while
  /// acquiring InferenceService::mu_/stats_mu_ or the fault registry's leaf
  /// mutex -- and the lockdep-gated tests pin that absence. Entry CondVar
  /// waits release and re-acquire this lock through the hooked
  /// MutexLock::unlock()/lock() path, so the lockdep held-set stays exact
  /// across blocking waits.
  mutable Mutex mu_{"ModelRegistry::mu_"};
  std::map<std::string, Family> families_ EPIM_GUARDED_BY(mu_);
  std::uint64_t tick_ EPIM_GUARDED_BY(mu_) = 0;
  /// Backoff jitter source (seeded from HealthPolicy::jitter_seed).
  Rng health_rng_ EPIM_GUARDED_BY(mu_);
};

/// The front door: resolves aliases and weighted splits, then forwards to
/// the registry. Owns the (seeded, mutex-guarded) Rng behind split draws,
/// so two routers over one registry route independently and a fixed seed
/// yields a pinned routing sequence.
class Router {
 public:
  explicit Router(ModelRegistry& registry, std::uint64_t seed = 0xF1EE7u)
      : registry_(registry), rng_(seed) {}

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Resolve `target` to the (name, version) the next submission would use,
  /// consuming one split draw iff the target is a bare name with a split.
  std::pair<std::string, std::string> route(const std::string& target);

  /// Resolve + submit. All split draws, admission rejections and shape
  /// errors surface here exactly as documented on ModelRegistry::submit.
  /// When the resolved family has a fallback configured (set_fallback) and
  /// the primary submission throws Unavailable, the same images are
  /// re-routed to the fallback target once; see the file header.
  std::future<InferenceResult> submit(const std::string& target,
                                      Tensor image);
  std::future<InferenceResult> submit(const std::string& target, Tensor image,
                                      const SubmitOptions& options);
  /// A burst routes as ONE unit: a single draw picks the version for the
  /// whole burst (a canary either sees an entire batch or none of it), and
  /// a fallback hop moves the entire burst or none of it.
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& target, std::vector<Tensor> images);
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& target, std::vector<Tensor> images,
      const SubmitOptions& options);

  /// Configure `fallback_target` (any routing target) as the once-only
  /// fallback for traffic whose PRIMARY resolution lands on family `name`
  /// and then throws Unavailable. The target is resolved at use time, so it
  /// may be registered, re-aliased or split after this call; a fallback
  /// that resolves back to the same broken model simply rethrows. No
  /// chaining: the fallback's own fallback is never consulted.
  void set_fallback(const std::string& name,
                    const std::string& fallback_target);
  void clear_fallback(const std::string& name);
  /// Bursts (submit counts as a burst of one) that were re-routed to a
  /// fallback target so far.
  std::int64_t fallbacks() const;

 private:
  ModelRegistry& registry_;
  mutable Mutex mu_{"Router::mu_"};
  Rng rng_ EPIM_GUARDED_BY(mu_);
  /// Family name -> fallback routing target.
  std::map<std::string, std::string> fallbacks_ EPIM_GUARDED_BY(mu_);
  std::int64_t fallback_count_ EPIM_GUARDED_BY(mu_) = 0;
};

}  // namespace epim
