// Multi-model serving: a registry of named, versioned `.epim` deployments
// and a routing front door over it -- the fleet layer above one
// InferenceService.
//
// A ModelRegistry owns entries keyed `name@version`, each backed by either
// a `.epim` artifact path (register_artifact) or an in-memory DeployedModel
// (register_model). Entries are materialized LAZILY: the first request for
// a version loads/adopts the model and stands up an InferenceService; until
// then an entry costs a map node, so a registry can index a whole model zoo
// while only the hot subset holds programmed crossbars. A configurable
// resident-model budget bounds that hot subset: materializing past it
// evicts the least-recently-used resident service (drained via
// InferenceService::detach, so no future is ever abandoned). An
// artifact-backed entry re-materializes from its file bit-identically (the
// PR 3 artifact determinism contract); an in-memory-only entry keeps its
// DeployedModel across eviction -- the eviction still frees its batch
// worker threads and queue.
//
// The Router resolves routing targets and forwards traffic:
//
//   "name@version"  exact version
//   "name@alias"    alias indirection (set_alias, e.g. resnet50@prod)
//   "name"          weighted split (set_split, canary rollout) when one is
//                   configured, else the "default" alias, else the sole
//                   registered version
//
// Split draws come from the Router's own seeded Rng, so a pinned request
// sequence routes deterministically -- the same property the rest of the
// repo enforces for kernels and search. Admission control is enforced by
// the per-model service queue bound (ServeConfig::max_queue, set from
// RegistryConfig): a full model rejects with epim::Unavailable instead of
// queueing without bound, so one hot model can never OOM the fleet.
//
// Hot reload: reload(name, version, path) atomically repoints the version
// at a new artifact. New traffic materializes the new artifact; requests
// already queued on the old service drain to completion on the old weights
// (outside the registry lock), and its counters fold into the entry's
// retired totals so fleet stats never lose history.
//
// Thread budget: resident services share the one `common/parallel` pool --
// an InferenceService owns only ServeConfig::workers blocking batch
// threads; all compute fans out across the process-wide pool, which
// accepts concurrent initiators. The resident budget therefore caps
// batch-worker threads and programmed-crossbar memory, not compute
// threads (RegistrySnapshot::workers reports the live worker footprint).
//
// Thread safety: every public method of ModelRegistry and Router may be
// called from any number of threads. Known tradeoff: one registry mutex
// guards all entries, and it is held across cold-entry materialization
// (artifact load + crossbar programming) and across an eviction victim's
// drain -- so a cold-start request briefly head-of-line blocks submissions
// to OTHER models. Enqueue on a warm entry is cheap (shape checks + queue
// push; all compute runs on the services' worker threads), which is the
// steady state the fleet bench measures. Per-entry materialization states
// would lift the cold-path stall and are the natural next step when model
// sizes grow.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/service.hpp"

namespace epim {

/// Fleet-level policy of a ModelRegistry.
struct RegistryConfig {
  /// Largest number of materialized services (programmed crossbars +
  /// batch worker threads) resident at once; must be positive. LRU beyond it.
  int max_resident_models = 4;
  /// Batching + admission policy for services the registry materializes;
  /// a per-entry ServeConfig passed at registration overrides it. Note the
  /// registry default BOUNDS the queue (max_queue = 1024) -- unbounded
  /// growth is opt-in here, unlike a standalone InferenceService.
  ServeConfig serve = default_serve();

  static ServeConfig default_serve() {
    ServeConfig s;
    s.max_queue = 1024;
    return s;
  }
};

/// One arm of a weighted traffic split (canary rollout).
struct VersionWeight {
  std::string version;
  double weight = 1.0;  ///< relative; must be positive
};

/// Per-model slice of a registry snapshot. Counters (requests, batches,
/// clip_events, rejected) span the entry's whole life, including retired
/// services (evicted or hot-swapped); rates and percentiles describe the
/// live service only (zero while cold).
struct ModelSnapshot {
  std::string name;
  std::string version;
  bool resident = false;
  /// Batch workers this entry's service runs when resident (its
  /// ServeConfig::workers); reported for cold entries too, since it is
  /// registration-time policy, not runtime state.
  int workers = 0;
  ServiceStats stats{};
  std::int64_t evictions = 0;
};

/// Registry-wide aggregate: per-model slices plus fleet totals.
struct RegistrySnapshot {
  std::vector<ModelSnapshot> models;  ///< sorted by (name, version)
  int resident = 0;                   ///< materialized services right now
  /// Batch-worker threads alive across the resident services (the fleet's
  /// batch-thread footprint; compute threads are the separate shared pool
  /// budget).
  int workers = 0;
  std::int64_t requests = 0;          ///< completed, fleet-wide
  std::int64_t rejected = 0;          ///< admission rejections, fleet-wide
  std::int64_t evictions = 0;         ///< LRU evictions, fleet-wide
  std::int64_t queued = 0;            ///< currently queued, fleet-wide
  /// Sum of the resident services' items/s (each measured over its own
  /// submit->completion window).
  double items_per_sec = 0.0;
  /// Percentiles over the POOLED latency windows of all resident services
  /// -- the fleet-wide digest a per-service p50/p99 cannot provide.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Named, versioned model store with lazy materialization, an LRU resident
/// budget, and atomic hot reload. The Router below is the intended traffic
/// entry point; the registry's own submit() is the version-explicit core it
/// delegates to.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  const RegistryConfig& config() const { return config_; }

  /// Register `name@version` backed by a `.epim` deployed-model artifact.
  /// The file's header is probed immediately (existence, magic, kind), the
  /// payload is loaded on first request. Throws InvalidArgument if the
  /// version already exists or the artifact is unusable.
  void register_artifact(const std::string& name, const std::string& version,
                         const std::string& path);
  void register_artifact(const std::string& name, const std::string& version,
                         const std::string& path, const ServeConfig& serve);

  /// Register `name@version` backed by an already-deployed in-memory model
  /// (e.g. fresh out of Pipeline::deploy, skipping the save/load cycle).
  /// The service is still materialized lazily; eviction detaches the model
  /// back into the entry instead of dropping it.
  void register_model(const std::string& name, const std::string& version,
                      DeployedModel model);
  void register_model(const std::string& name, const std::string& version,
                      DeployedModel model, const ServeConfig& serve);

  /// Point `name@alias` at an existing version (re-pointing is allowed; an
  /// alias equal to a version name is rejected as shadowing). The alias
  /// "default" also resolves bare-name targets with no split.
  void set_alias(const std::string& name, const std::string& alias,
                 const std::string& version);

  /// Weighted split over existing versions of `name`, applied to bare-name
  /// targets (weights positive, versions distinct). Replaces any previous
  /// split; an empty vector is rejected -- use clear_split().
  void set_split(const std::string& name, std::vector<VersionWeight> split);
  void clear_split(const std::string& name);

  /// Hot swap: repoint an existing `name@version` at a new artifact. The
  /// swap is atomic under the registry lock; the old service (if resident)
  /// drains its in-flight requests outside the lock and folds its counters
  /// into the entry's retired totals.
  void reload(const std::string& name, const std::string& version,
              const std::string& path);

  /// Version-explicit submission: materializes the entry if cold (evicting
  /// LRU residents past the budget), then enqueues on its service. Throws
  /// InvalidArgument for unknown targets or bad shapes, Unavailable when
  /// the model's queue is full.
  std::future<InferenceResult> submit(const std::string& name,
                                      const std::string& version,
                                      Tensor image);
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& name, const std::string& version,
      std::vector<Tensor> images);

  /// Resolve a routing target (see file header) to a concrete
  /// (name, version). `split_draw` must be a uniform draw in [0, 1) when
  /// the target is a bare name with a split configured; it is ignored
  /// otherwise (pass a negative value to assert no split is consulted).
  std::pair<std::string, std::string> resolve(const std::string& target,
                                              double split_draw) const;

  /// Same, but the draw is produced on demand: `split_draw` is invoked
  /// (under the registry lock) only if the target actually routes through
  /// a split. This is the race-free form the Router uses -- checking for a
  /// split and drawing in two steps would let a concurrent set_split()
  /// land in between.
  std::pair<std::string, std::string> resolve(
      const std::string& target,
      const std::function<double()>& split_draw) const;

  /// Whether bare-name targets for `name` currently route via a split.
  bool has_split(const std::string& name) const;

  /// Registered versions of `name`, sorted (InvalidArgument if unknown).
  std::vector<std::string> versions(const std::string& name) const;

  /// Whether `name@version` currently holds a materialized service.
  bool resident(const std::string& name, const std::string& version) const;

  /// Consistent fleet snapshot (see RegistrySnapshot).
  RegistrySnapshot stats() const;

  /// Start a new stats interval: reset() every resident service and zero
  /// all retired counters. Structural counters (evictions) are kept --
  /// they describe the registry, not an interval's traffic.
  void reset_stats();

 private:
  struct RetiredCounters {
    std::int64_t requests = 0;
    std::int64_t batches = 0;
    std::int64_t clip_events = 0;
    std::int64_t rejected = 0;
  };

  struct Entry {
    std::string artifact_path;          ///< empty for in-memory-only entries
    std::optional<DeployedModel> model; ///< in-memory source while cold
    std::unique_ptr<InferenceService> service;  ///< resident runtime
    ServeConfig serve{};
    std::uint64_t last_used = 0;        ///< LRU tick
    std::int64_t evictions = 0;
    RetiredCounters retired{};          ///< from evicted/swapped services

    bool artifact_backed() const { return !artifact_path.empty(); }
  };

  struct Family {
    std::map<std::string, Entry> versions;
    std::map<std::string, std::string> aliases;
    std::vector<VersionWeight> split;  ///< empty = no split
  };

  /// Insert a fresh entry; shared precondition checks for both register_*.
  Entry& add_entry_locked(const std::string& name, const std::string& version,
                          const ServeConfig& serve) EPIM_REQUIRES(mu_);
  Entry& find_entry_locked(const std::string& name, const std::string& version)
      EPIM_REQUIRES(mu_);
  const Entry& find_entry_locked(const std::string& name,
                                 const std::string& version) const
      EPIM_REQUIRES(mu_);
  /// Stand up `entry`'s service if cold, then evict LRU residents (never
  /// `entry` itself) until the budget holds.
  void materialize_locked(const std::string& name, const std::string& version,
                          Entry& entry) EPIM_REQUIRES(mu_);
  /// Detach + retire one resident service (drains its queue; caller holds
  /// the registry lock, acceptable because eviction picks cold services).
  void evict_locked(Entry& entry) EPIM_REQUIRES(mu_);
  /// Drain a swapped-out service outside the lock, then fold its final
  /// counters into the (never-removed) entry's retired totals. Must NOT be
  /// called with mu_ held: the drain blocks on in-flight traffic, and it
  /// re-acquires mu_ for the fold.
  void retire(std::unique_ptr<InferenceService> service,
              const std::string& name, const std::string& version)
      EPIM_EXCLUDES(mu_);
  int resident_count_locked() const EPIM_REQUIRES(mu_);

  RegistryConfig config_;
  /// One registry lock over the whole entry map (the documented cold-start
  /// head-of-line tradeoff above). Lockdep order: ModelRegistry::mu_ ->
  /// InferenceService::mu_ -> InferenceService::stats_mu_.
  mutable Mutex mu_{"ModelRegistry::mu_"};
  std::map<std::string, Family> families_ EPIM_GUARDED_BY(mu_);
  std::uint64_t tick_ EPIM_GUARDED_BY(mu_) = 0;
};

/// The front door: resolves aliases and weighted splits, then forwards to
/// the registry. Owns the (seeded, mutex-guarded) Rng behind split draws,
/// so two routers over one registry route independently and a fixed seed
/// yields a pinned routing sequence.
class Router {
 public:
  explicit Router(ModelRegistry& registry, std::uint64_t seed = 0xF1EE7u)
      : registry_(registry), rng_(seed) {}

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Resolve `target` to the (name, version) the next submission would use,
  /// consuming one split draw iff the target is a bare name with a split.
  std::pair<std::string, std::string> route(const std::string& target);

  /// Resolve + submit. All split draws, admission rejections and shape
  /// errors surface here exactly as documented on ModelRegistry::submit.
  std::future<InferenceResult> submit(const std::string& target,
                                      Tensor image);
  /// A burst routes as ONE unit: a single draw picks the version for the
  /// whole burst (a canary either sees an entire batch or none of it).
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& target, std::vector<Tensor> images);

 private:
  ModelRegistry& registry_;
  Mutex mu_{"Router::mu_"};
  Rng rng_ EPIM_GUARDED_BY(mu_);
};

}  // namespace epim
