#include "registry/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_inject.hpp"
#include "common/math_util.hpp"
#include "serve/artifact.hpp"

namespace epim {

namespace {

using Clock = std::chrono::steady_clock;

void check_target_component(const std::string& value, const char* what) {
  EPIM_CHECK(!value.empty(), std::string(what) + " must be non-empty");
  EPIM_CHECK(value.find('@') == std::string::npos,
             std::string(what) + " must not contain '@', got '" + value + "'");
}

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ModelRegistry: registration
// ---------------------------------------------------------------------------

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config)), health_rng_(config_.health.jitter_seed) {
  EPIM_CHECK(config_.max_resident_models >= 1,
             "registry.max_resident_models must be positive");
  // Fail at construction, not at the first materialization.
  validate_serve(config_.serve);
  EPIM_CHECK(config_.health.quarantine_after >= 1,
             "health.quarantine_after must be positive");
  EPIM_CHECK(config_.health.backoff_base_ms > 0.0,
             "health.backoff_base_ms must be positive");
  EPIM_CHECK(config_.health.backoff_max_ms >= config_.health.backoff_base_ms,
             "health.backoff_max_ms must be >= backoff_base_ms");
  EPIM_CHECK(config_.health.jitter >= 0.0 && config_.health.jitter < 1.0,
             "health.jitter must be in [0, 1)");
}

ModelRegistry::~ModelRegistry() = default;

ModelRegistry::Entry& ModelRegistry::add_entry_locked(
    const std::string& name, const std::string& version,
    const ServeConfig& serve) {
  check_target_component(name, "model name");
  check_target_component(version, "model version");
  // Validate the per-entry policy NOW: a bad ServeConfig must fail the
  // registration, not the first routed request (materialization moves the
  // model into the service, so a ctor throw there would strand the entry).
  validate_serve(serve);
  Family& family = families_[name];
  EPIM_CHECK(family.versions.find(version) == family.versions.end(),
             "model '" + name + "@" + version + "' is already registered");
  EPIM_CHECK(family.aliases.find(version) == family.aliases.end(),
             "version '" + version + "' would shadow an alias of '" + name +
                 "'");
  Entry& entry = family.versions[version];
  entry.serve = serve;
  return entry;
}

void ModelRegistry::register_artifact(const std::string& name,
                                      const std::string& version,
                                      const std::string& path) {
  register_artifact(name, version, path, config_.serve);
}

void ModelRegistry::register_artifact(const std::string& name,
                                      const std::string& version,
                                      const std::string& path,
                                      const ServeConfig& serve) {
  // Probe the header up front: a typo'd path or a compiled-model artifact
  // should fail at registration, not at the first routed request.
  const artifact::Info info = artifact::probe(path);
  EPIM_CHECK(info.kind == artifact::Kind::kDeployedModel,
             "registry artifacts must be deployed models: " + path);
  MutexLock lock(mu_);
  Entry& entry = add_entry_locked(name, version, serve);
  entry.artifact_path = path;
}

void ModelRegistry::register_model(const std::string& name,
                                   const std::string& version,
                                   DeployedModel model) {
  register_model(name, version, std::move(model), config_.serve);
}

void ModelRegistry::register_model(const std::string& name,
                                   const std::string& version,
                                   DeployedModel model,
                                   const ServeConfig& serve) {
  MutexLock lock(mu_);
  Entry& entry = add_entry_locked(name, version, serve);
  entry.model.emplace(std::move(model));
}

void ModelRegistry::set_alias(const std::string& name,
                              const std::string& alias,
                              const std::string& version) {
  check_target_component(alias, "alias");
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  Family& family = family_it->second;
  EPIM_CHECK(family.versions.find(version) != family.versions.end(),
             "alias target '" + name + "@" + version + "' is not registered");
  EPIM_CHECK(family.versions.find(alias) == family.versions.end(),
             "alias '" + alias + "' would shadow a version of '" + name +
                 "'");
  family.aliases[alias] = version;
}

void ModelRegistry::set_split(const std::string& name,
                              std::vector<VersionWeight> split) {
  EPIM_CHECK(!split.empty(),
             "split must name at least one version (use clear_split)");
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  Family& family = family_it->second;
  for (std::size_t i = 0; i < split.size(); ++i) {
    EPIM_CHECK(family.versions.find(split[i].version) !=
                   family.versions.end(),
               "split target '" + name + "@" + split[i].version +
                   "' is not registered");
    EPIM_CHECK(split[i].weight > 0.0, "split weights must be positive");
    for (std::size_t j = 0; j < i; ++j) {
      EPIM_CHECK(split[j].version != split[i].version,
                 "split names version '" + split[i].version + "' twice");
    }
  }
  family.split = std::move(split);
}

void ModelRegistry::clear_split(const std::string& name) {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  family_it->second.split.clear();
}

// ---------------------------------------------------------------------------
// ModelRegistry: lookup + resolution
// ---------------------------------------------------------------------------

ModelRegistry::Entry& ModelRegistry::find_entry_locked(
    const std::string& name, const std::string& version) {
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  const auto entry_it = family_it->second.versions.find(version);
  EPIM_CHECK(entry_it != family_it->second.versions.end(),
             "unknown version '" + version + "' of model '" + name + "'");
  return entry_it->second;
}

const ModelRegistry::Entry& ModelRegistry::find_entry_locked(
    const std::string& name, const std::string& version) const {
  return const_cast<ModelRegistry*>(this)->find_entry_locked(name, version);
}

std::pair<std::string, std::string> ModelRegistry::resolve(
    const std::string& target, double split_draw) const {
  return resolve(target, std::function<double()>([split_draw] {
                   return split_draw;
                 }));
}

std::pair<std::string, std::string> ModelRegistry::resolve(
    const std::string& target,
    const std::function<double()>& split_draw) const {
  const std::size_t at = target.find('@');
  const std::string name = target.substr(0, at);
  EPIM_CHECK(!name.empty(), "routing target must start with a model name");

  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  const Family& family = family_it->second;

  if (at != std::string::npos) {
    const std::string suffix = target.substr(at + 1);
    EPIM_CHECK(!suffix.empty(),
               "routing target '" + target + "' has an empty version");
    if (family.versions.find(suffix) != family.versions.end()) {
      return {name, suffix};
    }
    const auto alias_it = family.aliases.find(suffix);
    EPIM_CHECK(alias_it != family.aliases.end(),
               "unknown version or alias '" + suffix + "' of model '" + name +
                   "'");
    return {name, alias_it->second};
  }

  // Bare name: split > "default" alias > sole version.
  if (!family.split.empty()) {
    const double draw = split_draw();
    EPIM_CHECK(draw >= 0.0 && draw < 1.0,
               "bare-name target '" + name +
                   "' has a traffic split; resolve needs a uniform draw in "
                   "[0, 1)");
    double total = 0.0;
    for (const VersionWeight& arm : family.split) total += arm.weight;
    double cumulative = 0.0;
    for (const VersionWeight& arm : family.split) {
      cumulative += arm.weight / total;
      if (draw < cumulative) return {name, arm.version};
    }
    return {name, family.split.back().version};  // guard rounding at 1.0
  }
  const auto default_it = family.aliases.find("default");
  if (default_it != family.aliases.end()) return {name, default_it->second};
  EPIM_CHECK(family.versions.size() == 1,
             "bare-name target '" + name + "' is ambiguous: " +
                 std::to_string(family.versions.size()) +
                 " versions and no split or 'default' alias");
  return {name, family.versions.begin()->first};
}

bool ModelRegistry::has_split(const std::string& name) const {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  return family_it != families_.end() && !family_it->second.split.empty();
}

std::vector<std::string> ModelRegistry::versions(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  std::vector<std::string> out;
  for (const auto& [version, entry] : family_it->second.versions) {
    out.push_back(version);
  }
  return out;
}

bool ModelRegistry::resident(const std::string& name,
                             const std::string& version) const {
  MutexLock lock(mu_);
  return find_entry_locked(name, version).service != nullptr;
}

// ---------------------------------------------------------------------------
// ModelRegistry: materialization + eviction + reload
// ---------------------------------------------------------------------------

int ModelRegistry::resident_count_locked() const {
  int count = 0;
  for (const auto& [name, family] : families_) {
    for (const auto& [version, entry] : family.versions) {
      count += entry.service != nullptr;
    }
  }
  return count;
}

void ModelRegistry::evict_locked(Entry& entry) {
  // Callers pick victims from the resident set, so a cold entry here is a
  // selection bug, not bad input.
  EPIM_DCHECK(entry.service != nullptr, "evicting a non-resident entry");
  // detach() joins ALL the service's batch workers after they drain the
  // queue (in-flight batches included): every future handed out for this
  // service resolves before the service is retired. Eviction picks LRU
  // victims, so the drain is typically empty.
  DeployedModel recovered = entry.service->detach();
  const ServiceStats final = entry.service->stats();
  entry.retired.requests += final.requests;
  entry.retired.batches += final.batches;
  entry.retired.clip_events += final.clip_events;
  entry.retired.rejected += final.rejected;
  entry.retired.deadline_misses += final.deadline_misses;
  entry.service.reset();
  entry.evictions += 1;
  if (!entry.artifact_backed()) {
    // No artifact to re-materialize from: keep the programmed model so the
    // entry stays servable. The eviction still frees the batch workers.
    entry.model.emplace(std::move(recovered));
  }
}

void ModelRegistry::materialize_locked(const std::string& name,
                                       const std::string& version,
                                       Entry& entry) {
  if (entry.service != nullptr) return;
  // Chaos hook: fires BEFORE the in-memory model could be consumed, so an
  // injected materialization failure is always retryable -- exactly like
  // the artifact-load failures it stands in for.
  fault::maybe_fail("registry.materialize");
  const bool from_memory = entry.model.has_value();
  DeployedModel model = [&] {
    if (from_memory) {
      DeployedModel m = std::move(*entry.model);
      entry.model.reset();
      return m;
    }
    // Bit-identical by the artifact determinism contract, so an evicted
    // model answers exactly as it did before eviction.
    return Pipeline::load_deployed(entry.artifact_path);
  }();
  try {
    entry.service = std::make_unique<InferenceService>(std::move(model),
                                                       entry.serve);
  } catch (...) {
    // The serve config was validated at registration, so this is a
    // resource failure (thread/memory). `model` was consumed by the
    // attempted construction; an in-memory-only entry cannot recover it,
    // so surface that plainly instead of leaving a husk that later fails
    // with a misleading empty-path artifact error.
    if (from_memory) {
      throw InternalError(
          "failed to materialize in-memory model '" + name + "@" + version +
          "'; its DeployedModel was consumed by the failed service "
          "construction and the entry has no artifact to restore from");
    }
    throw;
  }
  // Enforce the budget, never evicting the entry we just warmed.
  while (resident_count_locked() > config_.max_resident_models) {
    Entry* victim = nullptr;
    for (auto& [fname, family] : families_) {
      for (auto& [fversion, candidate] : family.versions) {
        if (candidate.service == nullptr || &candidate == &entry) continue;
        if (victim == nullptr || candidate.last_used < victim->last_used) {
          victim = &candidate;
        }
      }
    }
    if (victim == nullptr) break;  // budget of 1 with only `entry` resident
    evict_locked(*victim);
  }
  // LRU loop postcondition: within budget, except the one-over case where
  // `entry` itself is the only survivor of a budget-of-1 registry.
  EPIM_DCHECK(resident_count_locked() <= config_.max_resident_models ||
                  resident_count_locked() == 1,
              "eviction loop left the registry over its resident budget");
  (void)name;
  (void)version;
}

void ModelRegistry::retire(std::unique_ptr<InferenceService> service,
                           const std::string& name,
                           const std::string& version) {
  if (service == nullptr) return;
  // Drain outside the registry lock: in-flight requests finish on the old
  // weights while new traffic already routes to the replacement.
  (void)service->detach();
  const ServiceStats final = service->stats();
  service.reset();
  MutexLock lock(mu_);
  // Entries are never removed, so the entry still exists.
  Entry& entry = find_entry_locked(name, version);
  entry.retired.requests += final.requests;
  entry.retired.batches += final.batches;
  entry.retired.clip_events += final.clip_events;
  entry.retired.rejected += final.rejected;
  entry.retired.deadline_misses += final.deadline_misses;
}

void ModelRegistry::reload(const std::string& name,
                           const std::string& version,
                           const std::string& path) {
  const artifact::Info info = artifact::probe(path);
  EPIM_CHECK(info.kind == artifact::Kind::kDeployedModel,
             "registry artifacts must be deployed models: " + path);
  std::unique_ptr<InferenceService> old;
  {
    MutexLock lock(mu_);
    Entry& entry = find_entry_locked(name, version);
    old = std::move(entry.service);
    entry.artifact_path = path;
    entry.model.reset();  // the old in-memory source is superseded
    // The repointed artifact deserves a fresh probe immediately: whatever
    // broke the old path says nothing about the new one. Lifetime
    // materialize_failures is kept (it describes the entry's history).
    entry.health = HealthState::kHealthy;
    entry.consecutive_failures = 0;
    entry.last_error.clear();
    entry.retry_at = Clock::time_point{};
  }
  retire(std::move(old), name, version);
}

// ---------------------------------------------------------------------------
// ModelRegistry: traffic + stats
// ---------------------------------------------------------------------------

std::future<InferenceResult> ModelRegistry::submit(const std::string& name,
                                                   const std::string& version,
                                                   Tensor image) {
  return submit(name, version, std::move(image), SubmitOptions{});
}

std::future<InferenceResult> ModelRegistry::submit(
    const std::string& name, const std::string& version, Tensor image,
    const SubmitOptions& options) {
  std::vector<Tensor> one;
  one.push_back(std::move(image));
  return std::move(
      submit_batch(name, version, std::move(one), options).front());
}

std::vector<std::future<InferenceResult>> ModelRegistry::submit_batch(
    const std::string& name, const std::string& version,
    std::vector<Tensor> images) {
  return submit_batch(name, version, std::move(images), SubmitOptions{});
}

std::vector<std::future<InferenceResult>> ModelRegistry::submit_batch(
    const std::string& name, const std::string& version,
    std::vector<Tensor> images, const SubmitOptions& options) {
  MutexLock lock(mu_);
  Entry& entry = find_entry_locked(name, version);
  if (entry.service == nullptr) {
    // Breaker gate first: while the entry's retry window is open this
    // throws without touching the load path (no artifact I/O, no extra
    // lock). Healthy or due-for-probe entries fall through and attempt a
    // real materialization.
    check_health_locked(entry, images.size());
    try {
      materialize_locked(name, version, entry);
    } catch (const InternalError& e) {
      // A consumed in-memory model is unrecoverable by design (see
      // materialize_locked); record the failure so stats show it, but
      // rethrow raw -- backoff/retry cannot help and Unavailable would
      // promise otherwise.
      record_materialize_failure_locked(entry, e.what());
      throw;
    } catch (const std::exception& e) {
      record_materialize_failure_locked(entry, e.what());
      throw Unavailable(std::string(kErrMaterializeFailed) + ": '" + name +
                        "@" + version + "': " + e.what());
    }
    // A successful (probe) materialization closes the breaker.
    entry.health = HealthState::kHealthy;
    entry.consecutive_failures = 0;
    entry.last_error.clear();
  }
  entry.last_used = ++tick_;
  // Enqueue while holding the registry lock so a concurrent reload/eviction
  // cannot destroy the service mid-submission; the enqueue itself is cheap
  // (shape checks + queue push), all compute runs on the service's workers.
  return entry.service->submit_batch(std::move(images), options);
}

void ModelRegistry::check_health_locked(Entry& entry,
                                        std::size_t n_requests) {
  if (entry.health == HealthState::kHealthy) return;
  if (Clock::now() >= entry.retry_at) return;  // half-open: caller probes
  entry.health_fast_fails += static_cast<std::int64_t>(n_requests);
  if (entry.health == HealthState::kQuarantined) {
    throw Unavailable(std::string(kErrQuarantined) + " after " +
                      std::to_string(entry.consecutive_failures) +
                      " consecutive failures; last: " + entry.last_error);
  }
  throw Unavailable(std::string(kErrBackoff) + " (failure " +
                    std::to_string(entry.consecutive_failures) +
                    "); last: " + entry.last_error);
}

void ModelRegistry::record_materialize_failure_locked(
    Entry& entry, const std::string& what) {
  entry.consecutive_failures += 1;
  entry.materialize_failures += 1;
  entry.last_error = what;
  entry.health = entry.consecutive_failures >= config_.health.quarantine_after
                     ? HealthState::kQuarantined
                     : HealthState::kDegraded;
  // Exponential backoff, capped (exponent clamped so ldexp cannot
  // overflow), then jittered by a seeded draw so a fleet of entries broken
  // by the same outage does not probe in lockstep when it ends.
  const int exponent = std::min(entry.consecutive_failures - 1, 40);
  double delay_ms = std::min(std::ldexp(config_.health.backoff_base_ms,
                                        exponent),
                             config_.health.backoff_max_ms);
  delay_ms *= 1.0 + config_.health.jitter * health_rng_.uniform(-1.0, 1.0);
  entry.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          delay_ms));
}

HealthState ModelRegistry::health(const std::string& name,
                                  const std::string& version) const {
  MutexLock lock(mu_);
  return find_entry_locked(name, version).health;
}

RegistrySnapshot ModelRegistry::stats() const {
  RegistrySnapshot snapshot;
  std::vector<double> pooled;
  MutexLock lock(mu_);
  for (const auto& [name, family] : families_) {
    for (const auto& [version, entry] : family.versions) {
      ModelSnapshot m;
      m.name = name;
      m.version = version;
      m.resident = entry.service != nullptr;
      m.workers = entry.serve.workers;
      m.evictions = entry.evictions;
      if (entry.service != nullptr) {
        snapshot.workers += entry.serve.workers;
        m.stats = entry.service->stats();
        const std::vector<double> window =
            entry.service->recent_latencies_ms();
        pooled.insert(pooled.end(), window.begin(), window.end());
        snapshot.items_per_sec += m.stats.items_per_sec;
        snapshot.queued += m.stats.queued;
      }
      m.stats.requests += entry.retired.requests;
      m.stats.batches += entry.retired.batches;
      m.stats.clip_events += entry.retired.clip_events;
      m.stats.rejected += entry.retired.rejected;
      m.stats.deadline_misses += entry.retired.deadline_misses;
      m.health = entry.health;
      m.consecutive_failures = entry.consecutive_failures;
      m.materialize_failures = entry.materialize_failures;
      m.health_fast_fails = entry.health_fast_fails;
      m.last_error = entry.last_error;
      snapshot.resident += m.resident;
      snapshot.requests += m.stats.requests;
      snapshot.rejected += m.stats.rejected;
      snapshot.evictions += m.evictions;
      snapshot.quarantined += m.health == HealthState::kQuarantined;
      snapshot.deadline_misses += m.stats.deadline_misses;
      snapshot.health_fast_fails += m.health_fast_fails;
      snapshot.models.push_back(std::move(m));
    }
  }
  std::sort(pooled.begin(), pooled.end());
  snapshot.p50_latency_ms = nearest_rank_percentile(pooled, 0.50);
  snapshot.p99_latency_ms = nearest_rank_percentile(pooled, 0.99);
  return snapshot;
}

void ModelRegistry::reset_stats() {
  MutexLock lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [version, entry] : family.versions) {
      if (entry.service != nullptr) entry.service->reset();
      entry.retired = RetiredCounters{};
      // Traffic counter, so it belongs to the interval; the breaker state
      // and lifetime materialize_failures are structural and stay.
      entry.health_fast_fails = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> Router::route(const std::string& target) {
  // Hold the rng lock across the resolve so the "is there a split?" check
  // and the draw are one atomic step against concurrent set_split(), and
  // concurrent routers still consume exactly one draw per split routing.
  MutexLock lock(mu_);
  return registry_.resolve(target,
                           std::function<double()>([&] {
                             return rng_.uniform();
                           }));
}

std::future<InferenceResult> Router::submit(const std::string& target,
                                            Tensor image) {
  return submit(target, std::move(image), SubmitOptions{});
}

std::future<InferenceResult> Router::submit(const std::string& target,
                                            Tensor image,
                                            const SubmitOptions& options) {
  std::vector<Tensor> one;
  one.push_back(std::move(image));
  return std::move(submit_batch(target, std::move(one), options).front());
}

std::vector<std::future<InferenceResult>> Router::submit_batch(
    const std::string& target, std::vector<Tensor> images) {
  return submit_batch(target, std::move(images), SubmitOptions{});
}

std::vector<std::future<InferenceResult>> Router::submit_batch(
    const std::string& target, std::vector<Tensor> images,
    const SubmitOptions& options) {
  const auto [name, version] = route(target);
  std::string fallback;
  {
    MutexLock lock(mu_);
    const auto it = fallbacks_.find(name);
    if (it != fallbacks_.end()) fallback = it->second;
  }
  if (fallback.empty()) {
    return registry_.submit_batch(name, version, std::move(images), options);
  }
  // submit_batch consumes the images even when it throws, so the burst is
  // copied up front while a fallback might need it. Families without a
  // fallback (the steady state) skip the copy via the branch above.
  std::vector<Tensor> primary_copy = images;
  try {
    return registry_.submit_batch(name, version, std::move(primary_copy),
                                  options);
  } catch (const Unavailable&) {
    // Quarantine, backoff, a failed probe, or queue-full admission: all
    // mean "this model cannot take the burst right now", which is exactly
    // what the fallback is for. One hop only -- if the fallback is itself
    // unavailable, that error propagates.
    const auto [fb_name, fb_version] = route(fallback);
    {
      MutexLock lock(mu_);
      fallback_count_ += 1;
    }
    return registry_.submit_batch(fb_name, fb_version, std::move(images),
                                  options);
  }
}

void Router::set_fallback(const std::string& name,
                          const std::string& fallback_target) {
  check_target_component(name, "fallback family name");
  EPIM_CHECK(!fallback_target.empty(),
             "fallback target must be non-empty (use clear_fallback)");
  MutexLock lock(mu_);
  fallbacks_[name] = fallback_target;
}

void Router::clear_fallback(const std::string& name) {
  MutexLock lock(mu_);
  fallbacks_.erase(name);
}

std::int64_t Router::fallbacks() const {
  MutexLock lock(mu_);
  return fallback_count_;
}

}  // namespace epim
