#include "registry/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_inject.hpp"
#include "common/math_util.hpp"
#include "serve/artifact.hpp"
#include "telemetry/metrics.hpp"

namespace epim {

namespace {

using Clock = std::chrono::steady_clock;

void check_target_component(const std::string& value, const char* what) {
  EPIM_CHECK(!value.empty(), std::string(what) + " must be non-empty");
  EPIM_CHECK(value.find('@') == std::string::npos,
             std::string(what) + " must not contain '@', got '" + value + "'");
}

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

const char* to_string(LifecycleState state) {
  switch (state) {
    case LifecycleState::kCold:
      return "cold";
    case LifecycleState::kLoading:
      return "loading";
    case LifecycleState::kResident:
      return "resident";
    case LifecycleState::kDraining:
      return "draining";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ModelRegistry: registration
// ---------------------------------------------------------------------------

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config)), health_rng_(config_.health.jitter_seed) {
  EPIM_CHECK(config_.max_resident_models >= 1,
             "registry.max_resident_models must be positive");
  // Fail at construction, not at the first materialization.
  validate_serve(config_.serve);
  EPIM_CHECK(config_.health.quarantine_after >= 1,
             "health.quarantine_after must be positive");
  EPIM_CHECK(config_.health.backoff_base_ms > 0.0,
             "health.backoff_base_ms must be positive");
  EPIM_CHECK(config_.health.backoff_max_ms >= config_.health.backoff_base_ms,
             "health.backoff_max_ms must be >= backoff_base_ms");
  EPIM_CHECK(config_.health.jitter >= 0.0 && config_.health.jitter < 1.0,
             "health.jitter must be in [0, 1)");
}

ModelRegistry::~ModelRegistry() = default;

ModelRegistry::EntryMetrics ModelRegistry::resolve_entry_metrics(
    const std::string& name, const std::string& version) {
  telemetry::metrics::ensure_registered();
  telemetry::Registry& reg = telemetry::Registry::process();
  const std::string label = name + "@" + version;
  EntryMetrics m;
  m.to_loading = reg.counter("epim_registry_transitions_total",
                             {{"model", label}, {"to", "loading"}});
  m.to_resident = reg.counter("epim_registry_transitions_total",
                              {{"model", label}, {"to", "resident"}});
  m.to_draining = reg.counter("epim_registry_transitions_total",
                              {{"model", label}, {"to", "draining"}});
  m.to_cold = reg.counter("epim_registry_transitions_total",
                          {{"model", label}, {"to", "cold"}});
  m.evictions =
      reg.counter("epim_registry_evictions_total", {{"model", label}});
  m.fast_fails =
      reg.counter("epim_registry_fast_fails_total", {{"model", label}});
  m.pins = reg.gauge("epim_registry_pins_depth", {{"model", label}});
  m.materialize_ms =
      reg.histogram("epim_registry_materialize_ms", {{"model", label}});
  return m;
}

void ModelRegistry::set_state_locked(Entry& entry, LifecycleState next) {
  entry.state = next;
  switch (next) {
    case LifecycleState::kCold:
      entry.metrics.to_cold->inc(1);
      break;
    case LifecycleState::kLoading:
      entry.metrics.to_loading->inc(1);
      break;
    case LifecycleState::kResident:
      entry.metrics.to_resident->inc(1);
      break;
    case LifecycleState::kDraining:
      entry.metrics.to_draining->inc(1);
      break;
  }
}

ModelRegistry::Entry& ModelRegistry::add_entry_locked(
    const std::string& name, const std::string& version,
    const ServeConfig& serve) {
  check_target_component(name, "model name");
  check_target_component(version, "model version");
  // Validate the per-entry policy NOW: a bad ServeConfig must fail the
  // registration, not the first routed request (materialization moves the
  // model into the service, so a ctor throw there would strand the entry).
  validate_serve(serve);
  Family& family = families_[name];
  EPIM_CHECK(family.versions.find(version) == family.versions.end(),
             "model '" + name + "@" + version + "' is already registered");
  EPIM_CHECK(family.aliases.find(version) == family.aliases.end(),
             "version '" + version + "' would shadow an alias of '" + name +
                 "'");
  Entry& entry = family.versions[version];
  entry.serve = serve;
  return entry;
}

void ModelRegistry::register_artifact(const std::string& name,
                                      const std::string& version,
                                      const std::string& path) {
  register_artifact(name, version, path, config_.serve);
}

void ModelRegistry::register_artifact(const std::string& name,
                                      const std::string& version,
                                      const std::string& path,
                                      const ServeConfig& serve) {
  // Probe the header up front: a typo'd path or a compiled-model artifact
  // should fail at registration, not at the first routed request.
  const artifact::Info info = artifact::probe(path);
  EPIM_CHECK(info.kind == artifact::Kind::kDeployedModel,
             "registry artifacts must be deployed models: " + path);
  // Resolve the entry's telemetry series BEFORE taking the registry lock:
  // the lookup acquires the telemetry leaf mutex, which must never nest
  // under ModelRegistry::mu_ (lockdep pins the absence of that edge).
  const EntryMetrics metrics = resolve_entry_metrics(name, version);
  MutexLock lock(mu_);
  Entry& entry = add_entry_locked(name, version, serve);
  entry.artifact_path = path;
  entry.metrics = metrics;
}

void ModelRegistry::register_model(const std::string& name,
                                   const std::string& version,
                                   DeployedModel model) {
  register_model(name, version, std::move(model), config_.serve);
}

void ModelRegistry::register_model(const std::string& name,
                                   const std::string& version,
                                   DeployedModel model,
                                   const ServeConfig& serve) {
  // Same ordering contract as register_artifact: series first, lock second.
  const EntryMetrics metrics = resolve_entry_metrics(name, version);
  MutexLock lock(mu_);
  Entry& entry = add_entry_locked(name, version, serve);
  entry.model.emplace(std::move(model));
  entry.metrics = metrics;
}

void ModelRegistry::set_alias(const std::string& name,
                              const std::string& alias,
                              const std::string& version) {
  check_target_component(alias, "alias");
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  Family& family = family_it->second;
  EPIM_CHECK(family.versions.find(version) != family.versions.end(),
             "alias target '" + name + "@" + version + "' is not registered");
  EPIM_CHECK(family.versions.find(alias) == family.versions.end(),
             "alias '" + alias + "' would shadow a version of '" + name +
                 "'");
  family.aliases[alias] = version;
}

void ModelRegistry::set_split(const std::string& name,
                              std::vector<VersionWeight> split) {
  EPIM_CHECK(!split.empty(),
             "split must name at least one version (use clear_split)");
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  Family& family = family_it->second;
  for (std::size_t i = 0; i < split.size(); ++i) {
    EPIM_CHECK(family.versions.find(split[i].version) !=
                   family.versions.end(),
               "split target '" + name + "@" + split[i].version +
                   "' is not registered");
    EPIM_CHECK(split[i].weight > 0.0, "split weights must be positive");
    for (std::size_t j = 0; j < i; ++j) {
      EPIM_CHECK(split[j].version != split[i].version,
                 "split names version '" + split[i].version + "' twice");
    }
  }
  family.split = std::move(split);
}

void ModelRegistry::clear_split(const std::string& name) {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  family_it->second.split.clear();
}

// ---------------------------------------------------------------------------
// ModelRegistry: lookup + resolution
// ---------------------------------------------------------------------------

ModelRegistry::Entry& ModelRegistry::find_entry_locked(
    const std::string& name, const std::string& version) {
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  const auto entry_it = family_it->second.versions.find(version);
  EPIM_CHECK(entry_it != family_it->second.versions.end(),
             "unknown version '" + version + "' of model '" + name + "'");
  return entry_it->second;
}

const ModelRegistry::Entry& ModelRegistry::find_entry_locked(
    const std::string& name, const std::string& version) const {
  return const_cast<ModelRegistry*>(this)->find_entry_locked(name, version);
}

std::pair<std::string, std::string> ModelRegistry::resolve(
    const std::string& target, double split_draw) const {
  return resolve(target, std::function<double()>([split_draw] {
                   return split_draw;
                 }));
}

std::pair<std::string, std::string> ModelRegistry::resolve(
    const std::string& target,
    const std::function<double()>& split_draw) const {
  const std::size_t at = target.find('@');
  const std::string name = target.substr(0, at);
  EPIM_CHECK(!name.empty(), "routing target must start with a model name");

  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  const Family& family = family_it->second;

  if (at != std::string::npos) {
    const std::string suffix = target.substr(at + 1);
    EPIM_CHECK(!suffix.empty(),
               "routing target '" + target + "' has an empty version");
    if (family.versions.find(suffix) != family.versions.end()) {
      return {name, suffix};
    }
    const auto alias_it = family.aliases.find(suffix);
    EPIM_CHECK(alias_it != family.aliases.end(),
               "unknown version or alias '" + suffix + "' of model '" + name +
                   "'");
    return {name, alias_it->second};
  }

  // Bare name: split > "default" alias > sole version.
  if (!family.split.empty()) {
    const double draw = split_draw();
    EPIM_CHECK(draw >= 0.0 && draw < 1.0,
               "bare-name target '" + name +
                   "' has a traffic split; resolve needs a uniform draw in "
                   "[0, 1)");
    double total = 0.0;
    for (const VersionWeight& arm : family.split) total += arm.weight;
    double cumulative = 0.0;
    for (const VersionWeight& arm : family.split) {
      cumulative += arm.weight / total;
      if (draw < cumulative) return {name, arm.version};
    }
    return {name, family.split.back().version};  // guard rounding at 1.0
  }
  const auto default_it = family.aliases.find("default");
  if (default_it != family.aliases.end()) return {name, default_it->second};
  EPIM_CHECK(family.versions.size() == 1,
             "bare-name target '" + name + "' is ambiguous: " +
                 std::to_string(family.versions.size()) +
                 " versions and no split or 'default' alias");
  return {name, family.versions.begin()->first};
}

bool ModelRegistry::has_split(const std::string& name) const {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  return family_it != families_.end() && !family_it->second.split.empty();
}

std::vector<std::string> ModelRegistry::versions(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto family_it = families_.find(name);
  EPIM_CHECK(family_it != families_.end(), "unknown model '" + name + "'");
  std::vector<std::string> out;
  for (const auto& [version, entry] : family_it->second.versions) {
    out.push_back(version);
  }
  return out;
}

bool ModelRegistry::resident(const std::string& name,
                             const std::string& version) const {
  MutexLock lock(mu_);
  return find_entry_locked(name, version).state == LifecycleState::kResident;
}

// ---------------------------------------------------------------------------
// ModelRegistry: materialization + eviction + reload
// ---------------------------------------------------------------------------

int ModelRegistry::resident_count_locked() const {
  int count = 0;
  for (const auto& [name, family] : families_) {
    for (const auto& [version, entry] : family.versions) {
      count += entry.state == LifecycleState::kResident;
    }
  }
  return count;
}

void ModelRegistry::materialize_as_loader(MutexLock& lock,
                                          const std::string& name,
                                          const std::string& version,
                                          Entry& entry) {
  EPIM_DCHECK(entry.state == LifecycleState::kCold,
              "only a cold entry can claim the single-flight load");
  set_state_locked(entry, LifecycleState::kLoading);
  const std::uint64_t epoch = entry.load_epoch;
  const std::string path = entry.artifact_path;
  const ServeConfig serve = entry.serve;
  // Take the in-memory source along while still locked; any failure that
  // did NOT consume it puts it back, so injected faults stay retryable.
  std::optional<DeployedModel> source = std::move(entry.model);
  entry.model.reset();

  // ---- lock dropped: all I/O and construction happen out here ----
  lock.unlock();
  const auto load_start = Clock::now();
  std::unique_ptr<InferenceService> fresh;
  bool failed = false;
  bool internal = false;
  std::string what;
  try {
    // Chaos hook: fires BEFORE the in-memory model could be consumed, so
    // an injected materialization failure is always retryable -- exactly
    // like the artifact-load failures it stands in for.
    fault::maybe_fail("registry.materialize");
    const bool from_memory = source.has_value();
    // Bit-identical by the artifact determinism contract, so an evicted
    // model answers exactly as it did before eviction.
    DeployedModel model = from_memory ? std::move(*source)
                                      : Pipeline::load_deployed(path);
    source.reset();
    try {
      fresh = std::make_unique<InferenceService>(std::move(model), serve,
                                                 name + "@" + version);
    } catch (...) {
      // The serve config was validated at registration, so this is a
      // resource failure (thread/memory). `model` was consumed by the
      // attempted construction; an in-memory-only entry cannot recover it,
      // so surface that plainly instead of leaving a husk that later fails
      // with a misleading empty-path artifact error.
      if (from_memory) {
        throw InternalError(
            "failed to materialize in-memory model '" + name + "@" + version +
            "'; its DeployedModel was consumed by the failed service "
            "construction and the entry has no artifact to restore from");
      }
      throw;
    }
  } catch (const InternalError& e) {
    failed = true;
    internal = true;
    what = e.what();
  } catch (const std::exception& e) {
    failed = true;
    what = e.what();
  }
  const double load_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - load_start)
          .count();
  lock.lock();

  if (entry.load_epoch != epoch) {
    // A reload() superseded this load: the entry now points at a DIFFERENT
    // artifact with freshly reset health. Discard the stale result -- and
    // do not charge a stale failure -- then hand the entry back to the
    // caller's retry loop. The stale service (if built) carried no traffic,
    // so destroying it outside the lock just joins idle workers.
    set_state_locked(entry, LifecycleState::kCold);
    entry.cv.notify_all();
    if (fresh != nullptr) {
      lock.unlock();
      fresh.reset();
      lock.lock();
    }
    return;
  }

  if (failed) {
    if (source.has_value()) entry.model = std::move(source);  // retryable
    set_state_locked(entry, LifecycleState::kCold);
    record_materialize_failure_locked(entry, what);
    entry.cv.notify_all();
    if (internal) throw InternalError(what);
    throw Unavailable(std::string(kErrMaterializeFailed) + ": '" + name +
                      "@" + version + "': " + what);
  }

  entry.service = std::move(fresh);
  set_state_locked(entry, LifecycleState::kResident);
  // Successful loads only: the histogram answers "how long does a cold
  // start take when it works" -- failures are counted separately.
  entry.metrics.materialize_ms->observe(load_ms);
  // A successful (probe) materialization closes the breaker.
  entry.health = HealthState::kHealthy;
  entry.consecutive_failures = 0;
  entry.last_error.clear();
  entry.cv.notify_all();
  enforce_budget(lock, entry);
}

void ModelRegistry::enforce_budget(MutexLock& lock, Entry& fresh) {
  while (resident_count_locked() > config_.max_resident_models) {
    Entry* victim = nullptr;
    for (auto& [fname, family] : families_) {
      for (auto& [fversion, candidate] : family.versions) {
        // Only unpinned residents are evictable: kLoading/kDraining have no
        // service to evict, a pinned entry is mid-enqueue/mid-scrape on
        // another thread, and `fresh` is the entry we just warmed.
        if (candidate.state != LifecycleState::kResident) continue;
        if (candidate.pins > 0 || &candidate == &fresh) continue;
        if (victim == nullptr || candidate.last_used < victim->last_used) {
          victim = &candidate;
        }
      }
    }
    // No evictable victim: budget of 1 with only `fresh` resident, or every
    // other resident is pinned right now. A transient overshoot is the
    // correct outcome -- the next materialization re-runs this loop.
    if (victim == nullptr) break;
    set_state_locked(*victim, LifecycleState::kDraining);
    std::unique_ptr<InferenceService> old = std::move(victim->service);
    // detach() joins ALL the service's batch workers after they drain the
    // queue (in-flight batches included): every future handed out for this
    // service resolves before the service is retired. The drain blocks on
    // that traffic, so it runs with the registry lock DROPPED -- the fleet
    // keeps serving while the victim winds down. `victim` stays valid
    // across the unlock: entries are never removed and map nodes are
    // stable; kDraining keeps every other thread off it.
    lock.unlock();
    DeployedModel recovered = old->detach();
    const ServiceStats final = old->stats();
    old.reset();
    lock.lock();
    victim->retired.requests += final.requests;
    victim->retired.batches += final.batches;
    victim->retired.clip_events += final.clip_events;
    victim->retired.rejected += final.rejected;
    victim->retired.deadline_misses += final.deadline_misses;
    for (int p = 0; p < kNumPriorities; ++p) {
      victim->retired.completed_by_priority[static_cast<std::size_t>(p)] +=
          final.completed_by_priority[static_cast<std::size_t>(p)];
      victim->retired
          .deadline_misses_by_priority[static_cast<std::size_t>(p)] +=
          final.deadline_misses_by_priority[static_cast<std::size_t>(p)];
    }
    victim->evictions += 1;
    victim->metrics.evictions->inc(1);
    if (!victim->artifact_backed()) {
      // No artifact to re-materialize from: keep the programmed model so
      // the entry stays servable. The eviction still frees the batch
      // workers. (A reload() that repointed the entry at an artifact while
      // we drained makes it artifact-backed, and the recovered model is
      // superseded -- dropping it here is exactly right.)
      victim->model.emplace(std::move(recovered));
    }
    set_state_locked(*victim, LifecycleState::kCold);
    victim->cv.notify_all();
  }
}

void ModelRegistry::retire(std::unique_ptr<InferenceService> service,
                           const std::string& name,
                           const std::string& version) {
  if (service == nullptr) return;
  // Drain outside the registry lock: in-flight requests finish on the old
  // weights while new traffic already routes to the replacement.
  (void)service->detach();
  const ServiceStats final = service->stats();
  service.reset();
  MutexLock lock(mu_);
  // Entries are never removed, so the entry still exists.
  Entry& entry = find_entry_locked(name, version);
  entry.retired.requests += final.requests;
  entry.retired.batches += final.batches;
  entry.retired.clip_events += final.clip_events;
  entry.retired.rejected += final.rejected;
  entry.retired.deadline_misses += final.deadline_misses;
  for (int p = 0; p < kNumPriorities; ++p) {
    entry.retired.completed_by_priority[static_cast<std::size_t>(p)] +=
        final.completed_by_priority[static_cast<std::size_t>(p)];
    entry.retired.deadline_misses_by_priority[static_cast<std::size_t>(p)] +=
        final.deadline_misses_by_priority[static_cast<std::size_t>(p)];
  }
}

void ModelRegistry::reload(const std::string& name,
                           const std::string& version,
                           const std::string& path) {
  const artifact::Info info = artifact::probe(path);
  EPIM_CHECK(info.kind == artifact::Kind::kDeployedModel,
             "registry artifacts must be deployed models: " + path);
  std::unique_ptr<InferenceService> old;
  {
    MutexLock lock(mu_);
    Entry& entry = find_entry_locked(name, version);
    // Supersede any in-flight load: the loader compares this epoch at
    // publish time, discards its (stale-artifact) result, and does NOT
    // charge a stale failure against the fresh health below.
    entry.load_epoch += 1;
    entry.artifact_path = path;
    entry.model.reset();  // the old in-memory source is superseded
    // The repointed artifact deserves a fresh probe immediately: whatever
    // broke the old path says nothing about the new one. Lifetime
    // materialize_failures is kept (it describes the entry's history).
    entry.health = HealthState::kHealthy;
    entry.consecutive_failures = 0;
    entry.last_error.clear();
    entry.retry_at = Clock::time_point{};
    if (entry.state == LifecycleState::kResident) {
      set_state_locked(entry, LifecycleState::kDraining);
      // Wait out readers that pinned the service before we got the lock.
      // Bounded: pins cover an enqueue or a stats read, never I/O, and
      // kDraining stops new pins from arriving.
      while (entry.pins > 0) entry.cv.wait(lock);
      old = std::move(entry.service);
      set_state_locked(entry, LifecycleState::kCold);
      entry.cv.notify_all();
    }
    // kLoading: the epoch bump above retires the loader's result; it (or a
    // waiter) re-materializes from the new path. kDraining: an eviction is
    // already winding the old service down and folds its stats itself.
  }
  retire(std::move(old), name, version);
}

// ---------------------------------------------------------------------------
// ModelRegistry: traffic + stats
// ---------------------------------------------------------------------------

std::future<InferenceResult> ModelRegistry::submit(const std::string& name,
                                                   const std::string& version,
                                                   Tensor image) {
  return submit(name, version, std::move(image), SubmitOptions{});
}

std::future<InferenceResult> ModelRegistry::submit(
    const std::string& name, const std::string& version, Tensor image,
    const SubmitOptions& options) {
  std::vector<Tensor> one;
  one.push_back(std::move(image));
  return std::move(
      submit_batch(name, version, std::move(one), options).front());
}

std::vector<std::future<InferenceResult>> ModelRegistry::submit_batch(
    const std::string& name, const std::string& version,
    std::vector<Tensor> images) {
  return submit_batch(name, version, std::move(images), SubmitOptions{});
}

std::vector<std::future<InferenceResult>> ModelRegistry::submit_batch(
    const std::string& name, const std::string& version,
    std::vector<Tensor> images, const SubmitOptions& options) {
  const std::size_t n = images.size();
  // Requests that end up waiting behind an in-flight load/drain shed on
  // the same deadline the service would enforce at admission; no deadline
  // means wait until the entry settles. (Negative deadlines are rejected
  // by the service at enqueue, exactly as before.)
  Clock::time_point wait_deadline = Clock::time_point::max();
  if (options.deadline_ms > 0.0) {
    wait_deadline = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            options.deadline_ms));
  }

  MutexLock lock(mu_);
  Entry& entry = find_entry_locked(name, version);
  while (entry.state != LifecycleState::kResident) {
    if (entry.state == LifecycleState::kCold) {
      // Breaker gate first: while the entry's retry window is open this
      // throws without touching the load path (no artifact I/O, no extra
      // lock). Healthy or due-for-probe entries fall through and claim the
      // single-flight load, which drops the registry lock across the I/O.
      check_health_locked(entry, n);
      materialize_as_loader(lock, name, version, entry);
      // Re-evaluate rather than assume kResident: a concurrent reload()
      // may have superseded the load (the loader then returned with the
      // entry back in kCold, repointed at the new artifact).
      continue;
    }
    if (entry.state == LifecycleState::kLoading &&
        entry.health != HealthState::kHealthy) {
      // The single-flight half-open probe is already in flight. The herd
      // that piled up behind an expired retry_at must NOT wait on the
      // probe (let alone slam the disk after it): fast-fail exactly like
      // any other request inside the retry window.
      fail_unhealthy_locked(entry, n);
    }
    // kLoading (healthy) or kDraining: wait for the transition, shedding
    // at the caller's deadline. The wait releases the registry lock, so
    // traffic to OTHER entries is untouched.
    if (wait_deadline == Clock::time_point::max()) {
      entry.cv.wait(lock);
    } else if (entry.cv.wait_until(lock, wait_deadline) ==
                   std::cv_status::timeout &&
               entry.state != LifecycleState::kResident) {
      entry.retired.deadline_misses += static_cast<std::int64_t>(n);
      entry.retired.deadline_misses_by_priority[static_cast<std::size_t>(
          options.priority)] += static_cast<std::int64_t>(n);
      throw DeadlineExceeded(
          std::string(InferenceService::kErrDeadlineExceeded) + ": model '" +
          name + "@" + version + "' was still " + to_string(entry.state) +
          " at the deadline");
    }
  }
  entry.last_used = ++tick_;
  // Pin + enqueue with the lock RELEASED: the pin keeps eviction/reload
  // from destroying the service mid-enqueue, and admission on one model no
  // longer serializes behind the fleet-wide mutex (the enqueue takes the
  // service's own lock, which can briefly block behind a batch close).
  entry.pins += 1;
  entry.metrics.pins->add(1);
  InferenceService* service = entry.service.get();
  lock.unlock();
  try {
    std::vector<std::future<InferenceResult>> futures =
        service->submit_batch(std::move(images), options);
    lock.lock();
    unpin_locked(entry);
    return futures;
  } catch (...) {
    lock.lock();
    unpin_locked(entry);
    throw;
  }
}

void ModelRegistry::unpin_locked(Entry& entry) {
  EPIM_DCHECK(entry.pins > 0, "unpinning an entry with no pins");
  entry.pins -= 1;
  entry.metrics.pins->sub(1);
  if (entry.pins == 0) entry.cv.notify_all();
}

void ModelRegistry::check_health_locked(Entry& entry,
                                        std::size_t n_requests) {
  if (entry.health == HealthState::kHealthy) return;
  if (Clock::now() >= entry.retry_at) return;  // half-open: caller probes
  fail_unhealthy_locked(entry, n_requests);
}

void ModelRegistry::fail_unhealthy_locked(Entry& entry,
                                          std::size_t n_requests) {
  entry.health_fast_fails += static_cast<std::int64_t>(n_requests);
  entry.metrics.fast_fails->inc(static_cast<std::int64_t>(n_requests));
  if (entry.health == HealthState::kQuarantined) {
    throw Unavailable(std::string(kErrQuarantined) + " after " +
                      std::to_string(entry.consecutive_failures) +
                      " consecutive failures; last: " + entry.last_error);
  }
  throw Unavailable(std::string(kErrBackoff) + " (failure " +
                    std::to_string(entry.consecutive_failures) +
                    "); last: " + entry.last_error);
}

void ModelRegistry::record_materialize_failure_locked(
    Entry& entry, const std::string& what) {
  entry.consecutive_failures += 1;
  entry.materialize_failures += 1;
  entry.last_error = what;
  entry.health = entry.consecutive_failures >= config_.health.quarantine_after
                     ? HealthState::kQuarantined
                     : HealthState::kDegraded;
  // Exponential backoff, capped (exponent clamped so ldexp cannot
  // overflow), then jittered by a seeded draw so a fleet of entries broken
  // by the same outage does not probe in lockstep when it ends.
  const int exponent = std::min(entry.consecutive_failures - 1, 40);
  double delay_ms = std::min(std::ldexp(config_.health.backoff_base_ms,
                                        exponent),
                             config_.health.backoff_max_ms);
  delay_ms *= 1.0 + config_.health.jitter * health_rng_.uniform(-1.0, 1.0);
  entry.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          delay_ms));
}

HealthState ModelRegistry::health(const std::string& name,
                                  const std::string& version) const {
  MutexLock lock(mu_);
  return find_entry_locked(name, version).health;
}

RegistrySnapshot ModelRegistry::stats() const {
  // Two-phase scrape: entry-level state under the lock, then the resident
  // services' live counters with the lock RELEASED and the entries pinned
  // (a scrape must never stall fleet admission -- the old single-phase
  // scrape held mu_ across every service's stats lock). The pins keep
  // eviction/reload from destroying a service mid-read.
  ModelRegistry& self = *const_cast<ModelRegistry*>(this);
  RegistrySnapshot snapshot;
  struct PinnedRef {
    Entry* entry;
    InferenceService* service;
    std::size_t index;  ///< into snapshot.models
  };
  std::vector<PinnedRef> pinned;
  MutexLock lock(self.mu_);
  for (auto& [name, family] : self.families_) {
    for (auto& [version, entry] : family.versions) {
      ModelSnapshot m;
      m.name = name;
      m.version = version;
      m.lifecycle = entry.state;
      m.resident = entry.state == LifecycleState::kResident;
      m.workers = entry.serve.workers;
      m.evictions = entry.evictions;
      // Retired counters now; the live service's share is folded in below,
      // outside the lock.
      m.stats.requests = entry.retired.requests;
      m.stats.batches = entry.retired.batches;
      m.stats.clip_events = entry.retired.clip_events;
      m.stats.rejected = entry.retired.rejected;
      m.stats.deadline_misses = entry.retired.deadline_misses;
      m.stats.completed_by_priority = entry.retired.completed_by_priority;
      m.stats.deadline_misses_by_priority =
          entry.retired.deadline_misses_by_priority;
      m.health = entry.health;
      m.consecutive_failures = entry.consecutive_failures;
      m.materialize_failures = entry.materialize_failures;
      m.health_fast_fails = entry.health_fast_fails;
      m.last_error = entry.last_error;
      if (m.resident) {
        snapshot.workers += entry.serve.workers;
        entry.pins += 1;
        entry.metrics.pins->add(1);
        pinned.push_back(
            {&entry, entry.service.get(), snapshot.models.size()});
      }
      snapshot.models.push_back(std::move(m));
    }
  }
  lock.unlock();

  std::vector<double> pooled;
  for (const PinnedRef& p : pinned) {
    ModelSnapshot& m = snapshot.models[p.index];
    ServiceStats live = p.service->stats();
    const std::vector<double> window = p.service->recent_latencies_ms();
    pooled.insert(pooled.end(), window.begin(), window.end());
    // Fold the retired counters captured under the lock into the live
    // snapshot; rates/gauges (items_per_sec, queued, percentiles, workers)
    // describe the live service alone and come along unchanged.
    live.requests += m.stats.requests;
    live.batches += m.stats.batches;
    live.clip_events += m.stats.clip_events;
    live.rejected += m.stats.rejected;
    live.deadline_misses += m.stats.deadline_misses;
    for (int p = 0; p < kNumPriorities; ++p) {
      live.completed_by_priority[static_cast<std::size_t>(p)] +=
          m.stats.completed_by_priority[static_cast<std::size_t>(p)];
      live.deadline_misses_by_priority[static_cast<std::size_t>(p)] +=
          m.stats.deadline_misses_by_priority[static_cast<std::size_t>(p)];
    }
    m.stats = live;
  }

  lock.lock();
  for (const PinnedRef& p : pinned) self.unpin_locked(*p.entry);

  for (const ModelSnapshot& m : snapshot.models) {
    snapshot.resident += m.resident;
    snapshot.requests += m.stats.requests;
    snapshot.rejected += m.stats.rejected;
    snapshot.evictions += m.evictions;
    snapshot.quarantined += m.health == HealthState::kQuarantined;
    snapshot.deadline_misses += m.stats.deadline_misses;
    snapshot.health_fast_fails += m.health_fast_fails;
    snapshot.items_per_sec += m.stats.items_per_sec;
    snapshot.queued += m.stats.queued;
    for (int p = 0; p < kNumPriorities; ++p) {
      snapshot.queued_by_priority[static_cast<std::size_t>(p)] +=
          m.stats.queued_by_priority[static_cast<std::size_t>(p)];
      snapshot.completed_by_priority[static_cast<std::size_t>(p)] +=
          m.stats.completed_by_priority[static_cast<std::size_t>(p)];
      snapshot.deadline_misses_by_priority[static_cast<std::size_t>(p)] +=
          m.stats.deadline_misses_by_priority[static_cast<std::size_t>(p)];
    }
  }
  std::sort(pooled.begin(), pooled.end());
  snapshot.p50_latency_ms = nearest_rank_percentile(pooled, 0.50);
  snapshot.p99_latency_ms = nearest_rank_percentile(pooled, 0.99);
  return snapshot;
}

void ModelRegistry::reset_stats() {
  struct PinnedRef {
    Entry* entry;
    InferenceService* service;
  };
  std::vector<PinnedRef> pinned;
  MutexLock lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [version, entry] : family.versions) {
      entry.retired = RetiredCounters{};
      // Traffic counter, so it belongs to the interval; the breaker state
      // and lifetime materialize_failures are structural and stay.
      entry.health_fast_fails = 0;
      if (entry.state == LifecycleState::kResident) {
        entry.pins += 1;
        entry.metrics.pins->add(1);
        pinned.push_back({&entry, entry.service.get()});
      }
    }
  }
  lock.unlock();
  // Service resets take the services' own locks; like every service call
  // they run with the registry lock released.
  for (const PinnedRef& p : pinned) p.service->reset();
  lock.lock();
  for (const PinnedRef& p : pinned) unpin_locked(*p.entry);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> Router::route(const std::string& target) {
  // Hold the rng lock across the resolve so the "is there a split?" check
  // and the draw are one atomic step against concurrent set_split(), and
  // concurrent routers still consume exactly one draw per split routing.
  MutexLock lock(mu_);
  return registry_.resolve(target,
                           std::function<double()>([&] {
                             return rng_.uniform();
                           }));
}

std::future<InferenceResult> Router::submit(const std::string& target,
                                            Tensor image) {
  return submit(target, std::move(image), SubmitOptions{});
}

std::future<InferenceResult> Router::submit(const std::string& target,
                                            Tensor image,
                                            const SubmitOptions& options) {
  std::vector<Tensor> one;
  one.push_back(std::move(image));
  return std::move(submit_batch(target, std::move(one), options).front());
}

std::vector<std::future<InferenceResult>> Router::submit_batch(
    const std::string& target, std::vector<Tensor> images) {
  return submit_batch(target, std::move(images), SubmitOptions{});
}

std::vector<std::future<InferenceResult>> Router::submit_batch(
    const std::string& target, std::vector<Tensor> images,
    const SubmitOptions& options) {
  const auto [name, version] = route(target);
  std::string fallback;
  {
    MutexLock lock(mu_);
    const auto it = fallbacks_.find(name);
    if (it != fallbacks_.end()) fallback = it->second;
  }
  if (fallback.empty()) {
    return registry_.submit_batch(name, version, std::move(images), options);
  }
  // submit_batch consumes the images even when it throws, so the burst is
  // copied up front while a fallback might need it. Families without a
  // fallback (the steady state) skip the copy via the branch above.
  std::vector<Tensor> primary_copy = images;
  try {
    return registry_.submit_batch(name, version, std::move(primary_copy),
                                  options);
  } catch (const Unavailable&) {
    // Quarantine, backoff, a failed probe, or queue-full admission: all
    // mean "this model cannot take the burst right now", which is exactly
    // what the fallback is for. One hop only -- if the fallback is itself
    // unavailable, that error propagates.
    const auto [fb_name, fb_version] = route(fallback);
    {
      MutexLock lock(mu_);
      fallback_count_ += 1;
    }
    return registry_.submit_batch(fb_name, fb_version, std::move(images),
                                  options);
  }
}

void Router::set_fallback(const std::string& name,
                          const std::string& fallback_target) {
  check_target_component(name, "fallback family name");
  EPIM_CHECK(!fallback_target.empty(),
             "fallback target must be non-empty (use clear_fallback)");
  MutexLock lock(mu_);
  fallbacks_[name] = fallback_target;
}

void Router::clear_fallback(const std::string& name) {
  MutexLock lock(mu_);
  fallbacks_.erase(name);
}

std::int64_t Router::fallbacks() const {
  MutexLock lock(mu_);
  return fallback_count_;
}

}  // namespace epim
