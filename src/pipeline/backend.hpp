// Pluggable evaluation backends for the Pipeline façade.
//
// A backend answers two questions about a compiled model:
//  * evaluate()       -- whole-network hardware cost plus projected accuracy;
//  * layer_activity() -- per-layer crossbar activity counts (activation
//                        rounds, channel-wrapping replica copies), the
//                        HW/SW agreement surface between the analytical
//                        estimator and the functional datapath.
//
// Two implementations ship today: AnalyticalBackend (the behaviour-level
// estimator, fast enough for search loops) and DatapathBackend (the same
// cost composition, but activity counts are *measured* by executing the
// IFAT/IFRT/OFAT datapath and cross-checked against the analytical model).
// Future backends (batched, multi-chip) implement the same interface, so
// callers of the façade never change.
#pragma once

#include <cstdint>

#include "core/assignment.hpp"
#include "pim/estimator.hpp"
#include "quant/accuracy_model.hpp"
#include "quant/epitome_quant.hpp"
#include "sim/simulator.hpp"

namespace epim {

/// Crossbar activity of one layer over a full inference. These counts times
/// the HardwareLut entries are the dynamic cost model, so two backends that
/// agree here agree on dynamic energy attribution.
struct LayerActivity {
  std::int64_t positions = 0;        ///< output feature-map positions
  std::int64_t crossbar_rounds = 0;  ///< crossbar activations
  std::int64_t replica_copies = 0;   ///< channel-wrapping buffer copies

  bool operator==(const LayerActivity&) const = default;
};

class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;

  virtual const char* name() const = 0;

  /// Whole-network evaluation: analytical NetworkCost plus projected
  /// accuracy from measured quantization noise (see EpimSimulator).
  virtual EpimSimulator::Evaluation evaluate(
      const NetworkAssignment& assignment, const PrecisionConfig& precision,
      const QuantConfig& scheme, const AccuracyProjector& projector,
      std::uint64_t seed) const = 0;

  /// Activity counts for one layer executed as an epitome. Counts depend
  /// only on the sampling plan, not on precision.
  virtual LayerActivity layer_activity(const ConvLayerInfo& layer,
                                       const EpitomeSpec& spec,
                                       std::uint64_t seed) const = 0;
};

/// Behaviour-level estimator backend (paper Sec. 4.3 / 6.1 modelling).
class AnalyticalBackend : public EvaluationBackend {
 public:
  AnalyticalBackend(CrossbarConfig config, HardwareLut lut)
      : sim_(config, lut) {}

  const char* name() const override { return "analytical-estimator"; }
  const EpimSimulator& simulator() const { return sim_; }

  EpimSimulator::Evaluation evaluate(const NetworkAssignment& assignment,
                                     const PrecisionConfig& precision,
                                     const QuantConfig& scheme,
                                     const AccuracyProjector& projector,
                                     std::uint64_t seed) const override;

  LayerActivity layer_activity(const ConvLayerInfo& layer,
                               const EpitomeSpec& spec,
                               std::uint64_t seed) const override;

 private:
  EpimSimulator sim_;
};

/// Functional-datapath backend: costs and accuracy projection compose the
/// same way as the analytical backend, but per-layer activity counts come
/// from actually executing the IFAT/IFRT/OFAT datapath on a probe input.
/// evaluate() additionally cross-checks every distinct epitome layer's
/// functional counts against the analytical model and throws InternalError
/// on disagreement -- the façade's HW/SW agreement check.
class DatapathBackend : public EvaluationBackend {
 public:
  DatapathBackend(CrossbarConfig config, HardwareLut lut)
      : sim_(config, lut) {}

  const char* name() const override { return "functional-datapath"; }

  EpimSimulator::Evaluation evaluate(const NetworkAssignment& assignment,
                                     const PrecisionConfig& precision,
                                     const QuantConfig& scheme,
                                     const AccuracyProjector& projector,
                                     std::uint64_t seed) const override;

  /// Executes the datapath at a minimal feature-map size (activity per
  /// output position is position-independent) and scales the measured
  /// counters to the layer's real geometry.
  LayerActivity layer_activity(const ConvLayerInfo& layer,
                               const EpitomeSpec& spec,
                               std::uint64_t seed) const override;

 private:
  EpimSimulator sim_;
};

}  // namespace epim
