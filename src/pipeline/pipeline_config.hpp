// Aggregate configuration of the epim::Pipeline façade.
//
// Every knob of the compile-evaluate-deploy flow lives here, grouped by the
// subsystem it feeds: hardware (crossbar geometry + cost LUT), design policy
// (which epitome shapes the compiler picks), precision plan (uniform / FP32 /
// HAWQ-lite mixed), quantization scheme, evolutionary search, and on-chip
// deployment. `validate()` cross-checks the groups against each other --
// callers get one InvalidArgument at Pipeline construction instead of a
// failure half-way through an evaluation.
#pragma once

#include <cstdint>

#include "core/designer.hpp"
#include "pim/config.hpp"
#include "pim/crossbar.hpp"
#include "pim/estimator.hpp"
#include "quant/accuracy_model.hpp"
#include "quant/epitome_quant.hpp"
#include "quant/mixed_precision.hpp"
#include "search/evolution.hpp"

namespace epim {

/// Hardware description shared by estimation, search and deployment.
struct HardwareConfig {
  CrossbarConfig crossbar{};
  HardwareLut lut{};
  /// ADC resolution used when *deploying* a trained model onto functional
  /// crossbars (CompiledModel::deploy / Pipeline::deploy). Cost estimation
  /// keeps `crossbar.adc_bits` (the paper's 9-bit regime); the bit-accurate
  /// runtime instead needs enough ADC headroom to digitize a full column of
  /// partial sums without clipping, so deployment defaults to 12 bits.
  /// This replaces the silent `adc_bits = 12` override RuntimeConfig's
  /// constructor used to apply.
  int deploy_adc_bits = 12;
};

/// Which assignment `Pipeline::compile()` produces (before any search
/// refinement via `CompiledModel::search()`).
enum class DesignPolicy {
  kBaseline,  ///< every layer keeps its convolution
  kUniform,   ///< the paper's uniform "1024 x 256"-style epitome policy
};

struct DesignConfig {
  DesignPolicy policy = DesignPolicy::kUniform;
  /// Parameters of the uniform policy (ignored for kBaseline).
  UniformDesign uniform{};
  /// Enable output channel wrapping (paper Sec. 5.3) on every epitome layer
  /// of the compiled assignment.
  bool wrap_output = false;
};

/// How per-layer weight bits are chosen.
enum class PrecisionMode {
  kFp32,      ///< 32-bit everywhere (modelled as fixed-point equivalent)
  kUniform,   ///< `weight_bits` on every layer
  kHawqMixed, ///< HAWQ-lite low/high allocation under a crossbar budget
};

struct PrecisionPlan {
  PrecisionMode mode = PrecisionMode::kUniform;
  /// Weight bits for kUniform (ignored by the other modes).
  int weight_bits = 9;
  /// Activation bits, used by every mode.
  int act_bits = 9;
  /// HAWQ-lite parameters for kHawqMixed.
  MixedPrecisionConfig mixed{};

  static PrecisionPlan fp32() {
    PrecisionPlan p;
    p.mode = PrecisionMode::kFp32;
    return p;
  }
  static PrecisionPlan uniform(int wbits, int abits) {
    PrecisionPlan p;
    p.weight_bits = wbits;
    p.act_bits = abits;
    return p;
  }
  static PrecisionPlan hawq_mixed(MixedPrecisionConfig mixed = {},
                                  int abits = 9) {
    PrecisionPlan p;
    p.mode = PrecisionMode::kHawqMixed;
    p.mixed = mixed;
    p.act_bits = abits;
    return p;
  }
};

/// Evolutionary refinement (CompiledModel::search()).
struct SearchConfig {
  /// search() throws unless enabled; validate() requires a positive crossbar
  /// budget when enabled (Eq. 7's feasibility mask is meaningless without
  /// one).
  bool enabled = false;
  /// Algorithm-1 parameters. `evo.precision` is ignored: the pipeline always
  /// searches at the precision its own plan resolves to.
  EvoSearchConfig evo{};
};

/// Bit-accurate on-chip deployment of a trained SmallEpitomeNet.
struct DeployConfig {
  /// Weight/activation bits programmed on chip. 0 means "derive": the
  /// precision plan's bits under kUniform, else the runtime's historical
  /// W6A8 defaults (a per-layer mixed plan for an ImageNet-scale network
  /// does not transfer to the small deployed CNN).
  int weight_bits = 0;
  int act_bits = 0;
  /// Clipping percentile for activation calibration (1.0 = min/max).
  double act_percentile = 1.0;
  /// Memristor write variation / stuck-at faults applied at program time.
  NonIdealityConfig non_ideal{};
};

/// Continuous-batching policy of an InferenceService (serve/service.hpp).
/// Requests queue until either `max_batch` of them are pending or the oldest
/// has waited `flush_deadline_ms`; a free worker then closes the batch and
/// runs it (fanning out across the shared thread pool) while the remaining
/// workers keep draining the queue, so with `workers > 1` several batches
/// are in flight at once and batch formation overlaps execution. Results
/// are bit-identical to unbatched evaluation at any batch size, worker
/// count or thread count -- scheduling only changes throughput, latency and
/// completion order.
struct ServeConfig {
  /// Largest batch one flush executes (must be positive).
  int max_batch = 32;
  /// Longest a queued request waits for batch-mates, in milliseconds (must
  /// be positive; the latency price of throughput).
  double flush_deadline_ms = 2.0;
  /// Batch-closing worker threads (validated against the compute pool's
  /// detail::kMaxThreads ceiling, currently 256). Each worker pulls
  /// a batch off the queue and runs it to completion; with more than one,
  /// a long batch no longer head-of-line-blocks the queue behind it.
  /// Workers only *initiate* compute -- the arithmetic itself fans out
  /// across the one process-wide `common/parallel` pool, so this knob buys
  /// overlap (batching latency hidden behind compute, multiple in-flight
  /// batches), not extra compute threads.
  int workers = 1;
  /// How many of the most recent completed requests the p50/p99 latency
  /// digest covers (must be positive). Bounds ServiceStats memory to O(1)
  /// for a long-lived service.
  int latency_window = 4096;
  /// Admission bound: largest number of requests allowed to sit queued
  /// (not yet flushed into a batch). A submission that would exceed it is
  /// rejected with epim::Unavailable instead of growing the queue -- the
  /// backpressure a multi-model registry relies on. 0 = unbounded (the
  /// historical single-service behaviour). A reslice-eligible burst (see
  /// reslice_bursts) is admitted against max_queue + max_workers*max_batch
  /// instead: its slices go straight to the worker pool rather than sitting
  /// queued, and the whole burst is counted ONCE at submit so concurrent
  /// slices can never double-reject.
  int max_queue = 0;
  /// Adaptive-pool ceiling: the worker pool grows one thread at a time from
  /// `workers` up to this bound while queued requests exceed what the idle
  /// workers can absorb (queued > idle * max_batch), and shrinks back --
  /// never below `workers` -- as extra workers sit idle. 0 (the default)
  /// means max_workers == workers: a fixed pool, the historical behaviour.
  int max_workers = 0;
  /// Scheduler fairness knob (must be positive), in requests. Doubles as
  /// the deficit-round-robin top-up per client per ring visit and as the
  /// anti-starvation bound: a non-empty priority class passed over this
  /// many consecutive batch selections gets the next batch's first slot.
  int fairness_quantum = 4;
  /// When true (the default), a submit_batch burst larger than max_batch is
  /// re-sliced: enqueued whole, then closed as ceil(queued/idle-workers)
  /// slices by concurrent workers instead of draining as serial max_batch
  /// chunks on one. Results are unchanged (bit-identity invariant); only
  /// completion order and latency move. When false, bursts drain serially
  /// and admission reverts to the strict max_queue bound.
  bool reslice_bursts = true;
};

/// Which EvaluationBackend Pipeline constructs by default.
enum class BackendKind {
  kAnalytical,  ///< behaviour-level estimator + accuracy projection
  kDatapath,    ///< analytical costs cross-checked against the functional
                ///< IFAT/IFRT/OFAT datapath's activity counters
};

/// Validates one design policy group (also used by Pipeline::compile's
/// per-call design overrides); throws InvalidArgument.
void validate_design(const DesignConfig& design);

/// Validates one serving policy group (also used by InferenceService and
/// the model registry, which accept standalone ServeConfigs); throws
/// InvalidArgument.
void validate_serve(const ServeConfig& serve);

/// The aggregate. One PipelineConfig fully determines a Pipeline.
struct PipelineConfig {
  HardwareConfig hardware{};
  DesignConfig design{};
  PrecisionPlan precision{};
  /// Epitome-aware quantization scheme used for noise measurement and
  /// accuracy projection (paper Sec. 4.2).
  QuantConfig quant{};
  SearchConfig search{};
  DeployConfig deploy{};
  ServeConfig serve{};
  /// Accuracy anchors of the target model family (paper FP32 points).
  AccuracyAnchors anchors = AccuracyAnchors::resnet50();
  BackendKind backend = BackendKind::kAnalytical;
  /// Seed for the synthetic weight draws of noise measurement; matches
  /// EpimSimulator::evaluate's default so façade estimates are bit-identical
  /// to hand-wired ones.
  std::uint64_t seed = 0x51D'E57u;

  /// Deployment bits after applying the DeployConfig derivation rule.
  int resolved_deploy_weight_bits() const;
  int resolved_deploy_act_bits() const;

  /// Throws InvalidArgument on any inconsistent or out-of-range setting
  /// (e.g. weight bits whose cell slices exceed one crossbar's columns, or
  /// search enabled with no crossbar budget).
  void validate() const;
};

}  // namespace epim
