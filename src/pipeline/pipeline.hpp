// epim::Pipeline -- the one-stop compile-evaluate-deploy API over the
// designer, evolutionary search, quantizer, estimator and runtime.
//
// The façade mirrors how a compiler toolchain is driven:
//
//   PipelineConfig cfg;                       // aggregate of all sub-configs
//   cfg.precision = PrecisionPlan::uniform(9, 9);
//   Pipeline pipeline(cfg);                   // validates, builds backend
//   CompiledModel model = pipeline.compile(resnet50());
//   auto eval = model.estimate();             // cost + projected accuracy
//   model.search();                           // optional evo refinement
//   auto chip = pipeline.deploy(trained_net, calibration);  // bit-accurate
//   std::puts(model.summary().c_str());
//
// CompiledModel owns its Network copy, chosen NetworkAssignment and precision
// plan, so it stays valid after the source Network goes away. Evaluation is
// delegated to a pluggable EvaluationBackend (see backend.hpp); swapping the
// backend never changes caller code.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "core/assignment.hpp"
#include "pipeline/backend.hpp"
#include "pipeline/pipeline_config.hpp"
#include "quant/mixed_precision.hpp"
#include "runtime/pim_runtime.hpp"
#include "search/evolution.hpp"
#include "train/trainer.hpp"

namespace epim {

class ArtifactCodec;
class InferenceService;

/// A trained model programmed onto the simulated chip: thin façade over
/// PimNetworkRuntime so callers never wire RuntimeConfig by hand.
class DeployedModel {
 public:
  DeployedModel(DeployedModel&&) noexcept = default;
  DeployedModel& operator=(DeployedModel&&) noexcept = default;

  /// The runtime configuration the pipeline derived (bits, ADC, faults).
  const RuntimeConfig& runtime_config() const { return config_; }

  /// Crossbars programmed across all on-chip layers.
  std::int64_t total_crossbars() const;

  /// ADC clip events during the most recent forward (diagnostics).
  std::int64_t last_clip_count() const;

  /// Run one (C, H, W) image fully on the simulated chip; returns logits.
  Tensor forward(const Tensor& image);

  /// Thread-safe batched forward: logits[i] is bit-identical to
  /// forward(images[i]) at any batch size and thread count; per-image clip
  /// counts are reported through `per_image_clips` when non-null.
  std::vector<Tensor> forward_batch(
      const std::vector<Tensor>& images,
      std::vector<std::int64_t>* per_image_clips = nullptr) const;

  /// Geometry of the deployed model's inputs (what submit() validates
  /// against): channels x image_size x image_size.
  const SmallNetConfig& model_config() const;

  /// Top-1 accuracy over a dataset, everything executed on-chip.
  double evaluate(const Dataset& dataset);

  /// Serialize to a `.epim` artifact (see serve/artifact.hpp). A later
  /// Pipeline::load_deployed(path) answers bit-identically to this model.
  void save(const std::string& path) const;

  /// Batching policy serve() uses: the pipeline's ServeConfig when this
  /// model came from deploy(), defaults after an artifact load.
  const ServeConfig& serve_config() const { return serve_config_; }

  /// Move this model into a batched InferenceService (serve/service.hpp).
  /// Rvalue-qualified: the service takes ownership of the programmed chip,
  /// e.g. `auto svc = std::move(chip).serve();`.
  InferenceService serve() &&;
  InferenceService serve(const ServeConfig& config) &&;

 private:
  friend class Pipeline;
  friend class CompiledModel;
  friend class ArtifactCodec;
  DeployedModel(RuntimeConfig config, const SmallEpitomeNet& model,
                const Dataset& calibration, ServeConfig serve = {});
  /// Restore path (artifact load): adopt an already-programmed runtime.
  DeployedModel(RuntimeConfig config,
                std::unique_ptr<PimNetworkRuntime> runtime);

  RuntimeConfig config_;
  ServeConfig serve_config_{};
  std::unique_ptr<PimNetworkRuntime> runtime_;
};

/// The artifact Pipeline::compile() produces: network copy + epitome
/// assignment + resolved precision plan, with evaluation, search refinement,
/// deployment and reporting hanging off it.
class CompiledModel {
 public:
  using Evaluation = EpimSimulator::Evaluation;

  CompiledModel(CompiledModel&&) noexcept = default;
  CompiledModel& operator=(CompiledModel&&) noexcept = default;

  const PipelineConfig& config() const { return *config_; }
  const Network& network() const { return *net_; }
  const NetworkAssignment& assignment() const { return assignment_; }
  const PrecisionConfig& precision() const { return precision_; }
  const EvaluationBackend& backend() const { return *backend_; }

  /// HAWQ-lite allocation detail (set iff the plan is kHawqMixed).
  const std::optional<MixedPrecisionResult>& mixed_precision() const {
    return mixed_;
  }

  /// Analytical NetworkCost + projected accuracy via the backend. Cached;
  /// recomputed after search() changes the assignment.
  const Evaluation& estimate() const;

  /// Evolutionary layer-wise refinement (paper Algorithm 1) under the
  /// config's search settings; replaces this model's assignment with the
  /// best feasible design found. Throws InvalidArgument unless
  /// config.search.enabled. The returned result's `best` assignment refers
  /// to this CompiledModel's network.
  EvoSearchResult search();

  /// Bit-accurate deployment of a trained model (see Pipeline::deploy).
  DeployedModel deploy(const SmallEpitomeNet& model,
                       const Dataset& calibration) const;

  /// One-line-per-metric deployment report (built on common/table.hpp).
  TextTable to_table() const;

  /// to_table() rendered with a title -- the report a hardware team reviews.
  std::string summary() const;

  /// Serialize to a `.epim` artifact: full PipelineConfig, network topology,
  /// assignment (including any search() refinement) and the resolved
  /// per-layer precision plan. Pipeline::load(path) round-trips it with
  /// byte-identical estimator numbers.
  void save(const std::string& path) const;

 private:
  friend class Pipeline;
  friend class ArtifactCodec;
  CompiledModel(std::shared_ptr<const PipelineConfig> config,
                std::shared_ptr<const EvaluationBackend> backend,
                std::shared_ptr<const PimEstimator> estimator,
                std::unique_ptr<Network> net, const DesignConfig& design);

  /// Re-resolve the precision plan against the current assignment.
  void resolve_precision();

  std::shared_ptr<const PipelineConfig> config_;
  std::shared_ptr<const EvaluationBackend> backend_;
  std::shared_ptr<const PimEstimator> estimator_;
  std::unique_ptr<Network> net_;  ///< owned; stable address for assignment_
  DesignConfig design_;           ///< policy this model was compiled under
  NetworkAssignment assignment_;
  PrecisionConfig precision_;
  std::optional<MixedPrecisionResult> mixed_;
  AccuracyProjector projector_;
  bool searched_ = false;
  mutable std::optional<Evaluation> estimate_cache_;
};

/// The façade. Construction validates the config and builds the evaluation
/// backend; compile() turns Networks into CompiledModel artifacts; deploy()
/// programs trained models onto the functional chip.
class Pipeline {
 public:
  /// Validates `config` (throws InvalidArgument) and constructs the backend
  /// selected by `config.backend`.
  explicit Pipeline(PipelineConfig config);

  /// Same, with a caller-supplied backend (batched / multi-chip / test
  /// doubles slot in here).
  Pipeline(PipelineConfig config,
           std::shared_ptr<const EvaluationBackend> backend);

  const PipelineConfig& config() const { return *config_; }
  const EvaluationBackend& backend() const { return *backend_; }

  /// The analytical estimator built from the hardware config (exposed for
  /// layer-level probes and auxiliary planners: duplication, chip model).
  const PimEstimator& estimator() const { return *estimator_; }

  /// Compile a network: design the epitome assignment under the config's
  /// policy and resolve the precision plan.
  CompiledModel compile(const Network& net) const;

  /// Compile under a one-off design policy (sweeps), keeping everything
  /// else from the config.
  CompiledModel compile(const Network& net, const DesignConfig& design) const;

  /// Quantize + calibrate + program a trained model onto functional
  /// crossbars, with bits/ADC/non-idealities derived from the config.
  DeployedModel deploy(const SmallEpitomeNet& model,
                       const Dataset& calibration) const;

  /// Fake-quantize a trained model's weights with the config's quant scheme
  /// and measure real accuracy (the trainer-level PTQ path).
  QuantEvalResult evaluate_quantized(SmallEpitomeNet& model,
                                     const Dataset& dataset) const;

  /// Load a CompiledModel artifact saved by CompiledModel::save(). The
  /// artifact embeds its PipelineConfig, so no Pipeline instance is needed.
  static CompiledModel load(const std::string& path);

  /// Load a DeployedModel artifact saved by DeployedModel::save();
  /// re-programs the crossbars bit-identically (non-ideality draws replay
  /// from the stored seed).
  static DeployedModel load_deployed(const std::string& path);

 private:
  std::shared_ptr<const PipelineConfig> config_;
  std::shared_ptr<const EvaluationBackend> backend_;
  std::shared_ptr<const PimEstimator> estimator_;
};

}  // namespace epim
