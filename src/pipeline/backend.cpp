#include "pipeline/backend.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/epitome.hpp"
#include "datapath/datapath_sim.hpp"

namespace epim {

namespace {

LayerActivity activity_from_cost(const LayerCost& cost) {
  LayerActivity a;
  a.positions = cost.positions;
  a.crossbar_rounds = cost.positions * cost.rounds_per_position;
  a.replica_copies = cost.positions * cost.replicas_per_position;
  return a;
}

/// The analytical activity derivation shared by AnalyticalBackend and
/// DatapathBackend's cross-check. Counts depend only on the sampling plan,
/// so the probe precision (W9A9) is arbitrary.
LayerActivity analytical_activity(const EpimSimulator& sim,
                                  const ConvLayerInfo& layer,
                                  const EpitomeSpec& spec) {
  return activity_from_cost(sim.estimator().eval_epitome_layer(layer, spec,
                                                               9, 9));
}

}  // namespace

// ---------------------------------------------------------------------------
// AnalyticalBackend
// ---------------------------------------------------------------------------

EpimSimulator::Evaluation AnalyticalBackend::evaluate(
    const NetworkAssignment& assignment, const PrecisionConfig& precision,
    const QuantConfig& scheme, const AccuracyProjector& projector,
    std::uint64_t seed) const {
  return sim_.evaluate(assignment, precision, scheme, projector, seed);
}

LayerActivity AnalyticalBackend::layer_activity(const ConvLayerInfo& layer,
                                                const EpitomeSpec& spec,
                                                std::uint64_t /*seed*/) const {
  return analytical_activity(sim_, layer, spec);
}

// ---------------------------------------------------------------------------
// DatapathBackend
// ---------------------------------------------------------------------------

LayerActivity DatapathBackend::layer_activity(const ConvLayerInfo& layer,
                                              const EpitomeSpec& spec,
                                              std::uint64_t seed) const {
  const ConvSpec& conv = layer.conv;
  // Shrink the feature map to the smallest size with at least one output
  // position: per-position activity is position-independent, so measuring a
  // handful of positions and scaling is exact (and keeps ResNet-scale
  // agreement checks cheap).
  const std::int64_t probe_h =
      std::max<std::int64_t>(conv.kernel_h - 2 * conv.pad, 1);
  const std::int64_t probe_w =
      std::max<std::int64_t>(conv.kernel_w - 2 * conv.pad, 1);
  const ConvLayerInfo probe{layer.name, conv, probe_h, probe_w};
  const std::int64_t probe_positions = probe.output_positions();
  EPIM_ASSERT(probe_positions > 0, "datapath probe has no output positions");

  Rng rng(seed);
  Epitome epitome = Epitome::random(spec, conv, rng);
  DatapathSimulator datapath(probe, std::move(epitome));
  Tensor x({conv.in_channels, probe_h, probe_w});
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  datapath.run(x);
  const DatapathStats& stats = datapath.stats();
  EPIM_ASSERT(stats.crossbar_rounds % probe_positions == 0 &&
                  stats.replica_copies % probe_positions == 0,
              "datapath activity is not position-uniform");

  LayerActivity a;
  a.positions = layer.output_positions();
  a.crossbar_rounds = a.positions * (stats.crossbar_rounds / probe_positions);
  a.replica_copies = a.positions * (stats.replica_copies / probe_positions);
  return a;
}

EpimSimulator::Evaluation DatapathBackend::evaluate(
    const NetworkAssignment& assignment, const PrecisionConfig& precision,
    const QuantConfig& scheme, const AccuracyProjector& projector,
    std::uint64_t seed) const {
  // Cross-check every distinct (conv, epitome) pair: the analytical
  // estimator's activity accounting must equal what the functional datapath
  // actually does. Distinct pairs only -- ResNet stages repeat shapes. The
  // pairs are collected serially (order-dependent dedup) and then the
  // datapath executions, the expensive part, fan out across threads; a
  // disagreement on any layer still surfaces as InternalError.
  std::vector<std::pair<ConvSpec, EpitomeSpec>> checked;
  std::vector<const ConvLayerInfo*> to_check;
  for (std::int64_t i = 0; i < assignment.num_layers(); ++i) {
    const auto& choice = assignment.choice(i);
    if (!choice.has_value()) continue;
    const ConvLayerInfo& layer =
        assignment.layers()[static_cast<std::size_t>(i)];
    const auto key = std::make_pair(layer.conv, *choice);
    if (std::find(checked.begin(), checked.end(), key) != checked.end()) {
      continue;
    }
    checked.push_back(key);
    to_check.push_back(&layer);
  }
  parallel_for(static_cast<std::int64_t>(to_check.size()),
               [&](std::int64_t i) {
                 const ConvLayerInfo& layer =
                     *to_check[static_cast<std::size_t>(i)];
                 const EpitomeSpec& spec =
                     checked[static_cast<std::size_t>(i)].second;
                 const LayerActivity functional =
                     layer_activity(layer, spec, seed);
                 const LayerActivity analytical =
                     analytical_activity(sim_, layer, spec);
                 EPIM_ASSERT(functional == analytical,
                             "HW/SW activity disagreement on layer " +
                                 layer.name);
               });
  return sim_.evaluate(assignment, precision, scheme, projector, seed);
}

}  // namespace epim
