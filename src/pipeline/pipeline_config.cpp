#include "pipeline/pipeline_config.hpp"

#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace epim {

namespace {

/// One weight of `bits` must fit on a single crossbar: its cell slices lie
/// side by side along the bit-line dimension.
void check_weight_fits_crossbar(const CrossbarConfig& xbar, int bits,
                                const char* what) {
  EPIM_CHECK(bits >= 1 && bits <= 32,
             std::string(what) + " weight bits must be in [1, 32], got " +
                 std::to_string(bits));
  const std::int64_t slices = xbar.weight_slices(bits);
  EPIM_CHECK(slices <= xbar.cols,
             std::string(what) + " weights need " + std::to_string(slices) +
                 " cell slices per weight but the crossbar has only " +
                 std::to_string(xbar.cols) +
                 " columns (weight bits exceed crossbar cell capacity)");
}

}  // namespace

void validate_serve(const ServeConfig& serve) {
  EPIM_CHECK(serve.max_batch >= 1, "serve.max_batch must be positive");
  EPIM_CHECK(serve.flush_deadline_ms > 0.0,
             "serve.flush_deadline_ms must be positive");
  // Same ceiling as the compute pool: a stray worker count must not
  // fork-bomb the process either.
  EPIM_CHECK(serve.workers >= 1 && serve.workers <= detail::kMaxThreads,
             "serve.workers must be in [1, " +
                 std::to_string(detail::kMaxThreads) + "]");
  EPIM_CHECK(serve.latency_window >= 1,
             "serve.latency_window must be positive");
  EPIM_CHECK(serve.max_queue >= 0,
             "serve.max_queue must be non-negative (0 = unbounded)");
  EPIM_CHECK(serve.max_workers == 0 ||
                 (serve.max_workers >= serve.workers &&
                  serve.max_workers <= detail::kMaxThreads),
             "serve.max_workers must be 0 (= workers, fixed pool) or in "
             "[workers, " +
                 std::to_string(detail::kMaxThreads) + "]");
  EPIM_CHECK(serve.fairness_quantum >= 1,
             "serve.fairness_quantum must be positive");
}

void validate_design(const DesignConfig& design) {
  if (design.policy != DesignPolicy::kUniform) return;
  EPIM_CHECK(
      design.uniform.target_rows >= 1 && design.uniform.target_cout >= 1,
      "uniform design targets must be positive");
  EPIM_CHECK(design.uniform.crossbar_size >= 1,
             "uniform design crossbar_size must be positive");
  EPIM_CHECK(design.uniform.spatial_slack >= 0,
             "spatial_slack must be non-negative");
}

int PipelineConfig::resolved_deploy_weight_bits() const {
  if (deploy.weight_bits > 0) return deploy.weight_bits;
  return precision.mode == PrecisionMode::kUniform ? precision.weight_bits : 6;
}

int PipelineConfig::resolved_deploy_act_bits() const {
  if (deploy.act_bits > 0) return deploy.act_bits;
  return precision.mode == PrecisionMode::kUniform ? precision.act_bits : 8;
}

void PipelineConfig::validate() const {
  // --- hardware ---
  const CrossbarConfig& xbar = hardware.crossbar;
  EPIM_CHECK(xbar.rows >= 1 && xbar.cols >= 1,
             "crossbar geometry must be positive");
  EPIM_CHECK(xbar.cell_bits >= 1 && xbar.cell_bits <= 8,
             "cell_bits must be in [1, 8]");
  EPIM_CHECK(xbar.adc_bits >= 1 && xbar.adc_bits <= 32,
             "adc_bits must be in [1, 32]");
  EPIM_CHECK(xbar.adc_share >= 1, "adc_share must be positive");
  EPIM_CHECK(xbar.fp32_weight_bits >= 1 && xbar.fp32_act_bits >= 1,
             "FP32 fixed-point equivalents must be positive");
  EPIM_CHECK(hardware.deploy_adc_bits >= 1 && hardware.deploy_adc_bits <= 32,
             "deploy_adc_bits must be in [1, 32]");

  // --- design policy ---
  validate_design(design);

  // --- precision plan ---
  EPIM_CHECK(precision.act_bits >= 1 && precision.act_bits <= 32,
             "activation bits must be in [1, 32]");
  switch (precision.mode) {
    case PrecisionMode::kFp32:
      check_weight_fits_crossbar(xbar, xbar.fp32_weight_bits,
                                 "FP32-equivalent");
      break;
    case PrecisionMode::kUniform:
      check_weight_fits_crossbar(xbar, precision.weight_bits, "uniform");
      break;
    case PrecisionMode::kHawqMixed:
      EPIM_CHECK(precision.mixed.low_bits < precision.mixed.high_bits,
                 "HAWQ-lite low_bits must be below high_bits");
      EPIM_CHECK(precision.mixed.budget_fraction >= 0.0 &&
                     precision.mixed.budget_fraction <= 1.0,
                 "HAWQ-lite budget_fraction must be in [0, 1]");
      check_weight_fits_crossbar(xbar, precision.mixed.low_bits,
                                 "HAWQ-lite low");
      check_weight_fits_crossbar(xbar, precision.mixed.high_bits,
                                 "HAWQ-lite high");
      break;
  }

  // --- quantization scheme ---
  EPIM_CHECK(quant.bits >= 1 && quant.bits <= 16,
             "quantization bits must be in [1, 16]");
  EPIM_CHECK(quant.w1 >= 0.0 && quant.w2 >= 0.0 && quant.w1 + quant.w2 > 0.0,
             "overlap range weights must be non-negative and not both zero");
  EPIM_CHECK(quant.xbar_rows >= 1 && quant.xbar_cols >= 1,
             "quantization crossbar block geometry must be positive");

  // --- search ---
  if (search.enabled) {
    EPIM_CHECK(search.evo.crossbar_budget > 0,
               "search is enabled but the crossbar budget is zero; Eq. 7's "
               "feasibility mask needs a positive budget");
    EPIM_CHECK(search.evo.population >= 1, "search population must be >= 1");
    EPIM_CHECK(
        search.evo.parents >= 1 && search.evo.parents <= search.evo.population,
        "search parents must be in [1, population]");
    EPIM_CHECK(search.evo.iterations >= 1, "search iterations must be >= 1");
    EPIM_CHECK(
        search.evo.mutation_rate >= 0.0 && search.evo.mutation_rate <= 1.0,
        "mutation_rate must be in [0, 1]");
    EPIM_CHECK(!search.evo.candidates.row_targets.empty() &&
                   !search.evo.candidates.cout_targets.empty(),
               "search candidate targets must be non-empty");
    EPIM_CHECK(search.evo.candidates.crossbar_size >= 1,
               "search candidate crossbar_size must be positive");
  }

  // --- deployment ---
  EPIM_CHECK(deploy.weight_bits >= 0 && deploy.weight_bits <= 32 &&
                 deploy.act_bits >= 0 && deploy.act_bits <= 32,
             "deploy bit overrides must be in [0, 32] (0 = derive)");
  EPIM_CHECK(deploy.act_percentile > 0.0 && deploy.act_percentile <= 1.0,
             "act_percentile must be in (0, 1]");
  EPIM_CHECK(deploy.non_ideal.conductance_sigma >= 0.0 &&
                 deploy.non_ideal.stuck_at_zero_prob >= 0.0 &&
                 deploy.non_ideal.stuck_at_zero_prob <= 1.0 &&
                 deploy.non_ideal.stuck_at_max_prob >= 0.0 &&
                 deploy.non_ideal.stuck_at_max_prob <= 1.0,
             "non-ideality parameters out of range");
  check_weight_fits_crossbar(xbar, resolved_deploy_weight_bits(), "deploy");

  // --- serving ---
  validate_serve(serve);
}

}  // namespace epim
