#include "pipeline/pipeline.hpp"

#include <utility>

#include "common/check.hpp"

namespace epim {

namespace {

NetworkAssignment build_assignment(const Network& net,
                                   const DesignConfig& design) {
  if (design.policy == DesignPolicy::kBaseline) {
    return NetworkAssignment::baseline(net);
  }
  NetworkAssignment assignment = NetworkAssignment::uniform(net,
                                                            design.uniform);
  if (design.wrap_output) assignment.set_wrap_output(true);
  return assignment;
}

RuntimeConfig derive_runtime_config(const PipelineConfig& config) {
  RuntimeConfig rc;
  rc.weight_bits = config.resolved_deploy_weight_bits();
  rc.act_bits = config.resolved_deploy_act_bits();
  rc.act_percentile = config.deploy.act_percentile;
  rc.crossbar = config.hardware.crossbar;
  rc.crossbar.adc_bits = config.hardware.deploy_adc_bits;
  rc.non_ideal = config.deploy.non_ideal;
  return rc;
}

std::string design_description(const DesignConfig& design, bool searched) {
  if (searched) return "layer-wise (evo-searched)";
  if (design.policy == DesignPolicy::kBaseline) return "conv baseline";
  std::string s = "uniform " + std::to_string(design.uniform.target_rows) +
                  "x" + std::to_string(design.uniform.target_cout);
  if (design.wrap_output) s += " + channel wrapping";
  return s;
}

std::string precision_description(const PrecisionPlan& plan) {
  switch (plan.mode) {
    case PrecisionMode::kFp32:
      return "FP32";
    case PrecisionMode::kUniform:
      return "W" + std::to_string(plan.weight_bits) + "A" +
             std::to_string(plan.act_bits);
    case PrecisionMode::kHawqMixed:
      return "W" + std::to_string(plan.mixed.low_bits) + "/" +
             std::to_string(plan.mixed.high_bits) + "mpA" +
             std::to_string(plan.act_bits) + " (HAWQ-lite)";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// DeployedModel
// ---------------------------------------------------------------------------

DeployedModel::DeployedModel(RuntimeConfig config,
                             const SmallEpitomeNet& model,
                             const Dataset& calibration, ServeConfig serve)
    : config_(config),
      serve_config_(serve),
      runtime_(std::make_unique<PimNetworkRuntime>(model, calibration,
                                                   config)) {}

DeployedModel::DeployedModel(RuntimeConfig config,
                             std::unique_ptr<PimNetworkRuntime> runtime)
    : config_(config), runtime_(std::move(runtime)) {}

std::int64_t DeployedModel::total_crossbars() const {
  return runtime_->total_crossbars();
}

std::int64_t DeployedModel::last_clip_count() const {
  return runtime_->last_clip_count();
}

Tensor DeployedModel::forward(const Tensor& image) {
  return runtime_->forward(image);
}

std::vector<Tensor> DeployedModel::forward_batch(
    const std::vector<Tensor>& images,
    std::vector<std::int64_t>* per_image_clips) const {
  return runtime_->forward_batch(images, per_image_clips);
}

const SmallNetConfig& DeployedModel::model_config() const {
  return runtime_->deploy_state().config;
}

double DeployedModel::evaluate(const Dataset& dataset) {
  return runtime_->evaluate(dataset);
}

// ---------------------------------------------------------------------------
// CompiledModel
// ---------------------------------------------------------------------------

CompiledModel::CompiledModel(std::shared_ptr<const PipelineConfig> config,
                             std::shared_ptr<const EvaluationBackend> backend,
                             std::shared_ptr<const PimEstimator> estimator,
                             std::unique_ptr<Network> net,
                             const DesignConfig& design)
    : config_(std::move(config)),
      backend_(std::move(backend)),
      estimator_(std::move(estimator)),
      net_(std::move(net)),
      design_(design),
      assignment_(build_assignment(*net_, design_)),
      projector_(config_->anchors) {
  resolve_precision();
}

void CompiledModel::resolve_precision() {
  mixed_.reset();
  const PrecisionPlan& plan = config_->precision;
  switch (plan.mode) {
    case PrecisionMode::kFp32:
      // Modelled as the fixed-point equivalent in CrossbarConfig; matches
      // the hand-wired PrecisionConfig::uniform(32, 32) convention.
      precision_ = PrecisionConfig::uniform(32, 32);
      break;
    case PrecisionMode::kUniform:
      precision_ = PrecisionConfig::uniform(plan.weight_bits, plan.act_bits);
      break;
    case PrecisionMode::kHawqMixed: {
      MixedPrecisionResult alloc = hawq_lite_allocate(
          assignment_, plan.mixed, config_->hardware.crossbar);
      alloc.precision.act_bits = plan.act_bits;
      precision_ = alloc.precision;
      mixed_ = std::move(alloc);
      break;
    }
  }
}

const CompiledModel::Evaluation& CompiledModel::estimate() const {
  if (!estimate_cache_) {
    estimate_cache_ = backend_->evaluate(assignment_, precision_,
                                         config_->quant, projector_,
                                         config_->seed);
  }
  return *estimate_cache_;
}

EvoSearchResult CompiledModel::search() {
  EPIM_CHECK(config_->search.enabled,
             "CompiledModel::search() requires config.search.enabled");
  EvoSearchConfig evo = config_->search.evo;
  evo.precision = precision_;
  EvolutionSearch searcher(*net_, *estimator_, evo);
  EvoSearchResult result = searcher.run();
  assignment_ = result.best;
  searched_ = true;
  // A HAWQ-lite plan is assignment-dependent; re-allocate for the refined
  // design.
  resolve_precision();
  estimate_cache_.reset();
  return result;
}

DeployedModel CompiledModel::deploy(const SmallEpitomeNet& model,
                                    const Dataset& calibration) const {
  return DeployedModel(derive_runtime_config(*config_), model, calibration,
                       config_->serve);
}

TextTable CompiledModel::to_table() const {
  const Evaluation& e = estimate();
  TextTable table({"metric", "value"});
  table.add_row({"network", net_->name()});
  table.add_row({"weighted layers", std::to_string(assignment_.num_layers())});
  table.add_row(
      {"epitome layers", std::to_string(assignment_.num_epitome_layers())});
  table.add_row({"design", design_description(design_, searched_)});
  table.add_row({"precision", precision_description(config_->precision)});
  table.add_row({"backend", backend_->name()});
  table.add_row(
      {"parameters (M)",
       fmt(static_cast<double>(assignment_.total_weights()) / 1e6, 2)});
  table.add_row(
      {"param compression", fmt(assignment_.parameter_compression()) + "x"});
  table.add_row({"crossbars", std::to_string(e.cost.num_crossbars)});
  table.add_row({"latency (ms)", fmt(e.cost.latency_ms, 1)});
  table.add_row({"dynamic energy (mJ)", fmt(e.cost.dynamic_energy_mj, 1)});
  table.add_row({"static energy (mJ)", fmt(e.cost.static_energy_mj, 1)});
  table.add_row({"energy (mJ)", fmt(e.cost.energy_mj(), 1)});
  table.add_row({"EDP (mJ*ms)", fmt(e.cost.edp(), 0)});
  table.add_row(
      {"memristor utilization", fmt(100.0 * e.cost.utilization, 1) + "%"});
  table.add_row(
      {"top-1 accuracy (projected)", fmt(e.projected_accuracy)});
  return table;
}

std::string CompiledModel::summary() const {
  return "=== EPIM pipeline report: " + net_->name() + " ===\n" +
         to_table().to_string();
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline::Pipeline(PipelineConfig config)
    : Pipeline(std::move(config), nullptr) {}

Pipeline::Pipeline(PipelineConfig config,
                   std::shared_ptr<const EvaluationBackend> backend) {
  config.validate();
  config_ = std::make_shared<const PipelineConfig>(std::move(config));
  estimator_ = std::make_shared<const PimEstimator>(config_->hardware.crossbar,
                                                    config_->hardware.lut);
  if (backend != nullptr) {
    backend_ = std::move(backend);
  } else if (config_->backend == BackendKind::kDatapath) {
    backend_ = std::make_shared<const DatapathBackend>(
        config_->hardware.crossbar, config_->hardware.lut);
  } else {
    backend_ = std::make_shared<const AnalyticalBackend>(
        config_->hardware.crossbar, config_->hardware.lut);
  }
}

CompiledModel Pipeline::compile(const Network& net) const {
  return compile(net, config_->design);
}

CompiledModel Pipeline::compile(const Network& net,
                                const DesignConfig& design) const {
  validate_design(design);
  return CompiledModel(config_, backend_, estimator_,
                       std::make_unique<Network>(net), design);
}

DeployedModel Pipeline::deploy(const SmallEpitomeNet& model,
                               const Dataset& calibration) const {
  return DeployedModel(derive_runtime_config(*config_), model, calibration,
                       config_->serve);
}

QuantEvalResult Pipeline::evaluate_quantized(SmallEpitomeNet& model,
                                             const Dataset& dataset) const {
  return ::epim::evaluate_quantized(model, dataset, config_->quant);
}

}  // namespace epim
