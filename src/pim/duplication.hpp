// Weight-duplication throughput planner (the MNSIM "multi-copy" mapping).
//
// A convolution layer's crossbars process one output position per round; if
// spare crossbars exist, programming K copies of a layer's weights lets K
// positions proceed in parallel, dividing that layer's latency by K at the
// cost of K-1 extra weight footprints. The planner spends a crossbar budget
// greedily on whichever layer currently bounds network latency -- the
// classic bottleneck-relief loop. Epitomes make this *cheaper*: a compressed
// layer's copy costs a fraction of the convolution's, so the same budget
// buys more parallelism (a synergy the paper leaves as future work; see the
// ablation bench).
#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "pim/estimator.hpp"

namespace epim {

struct DuplicationPlan {
  /// Copies per weighted layer (>= 1 each).
  std::vector<std::int64_t> copies;
  std::int64_t extra_crossbars = 0;
  double latency_before_ms = 0.0;
  double latency_after_ms = 0.0;

  double speedup() const { return latency_before_ms / latency_after_ms; }
};

/// Plan duplication under a total *extra* crossbar budget.
DuplicationPlan plan_duplication(const PimEstimator& estimator,
                                 const NetworkAssignment& assignment,
                                 const PrecisionConfig& precision,
                                 std::int64_t extra_crossbar_budget);

}  // namespace epim
