// Behaviour-level latency / energy / area estimator (paper Sec. 4.3, 6.1).
//
// Modelling assumptions, mirrored from the paper's MNSIM-based simulator:
//  * A convolution layer's tiles are all activated in parallel; one output
//    position costs `act_bits` bit-serial cycles.
//  * An epitome layer activates its crossbars once per *active* patch round;
//    rounds are sequential, so latency scales with the sampling plan length
//    (Sec. 5.1: "latency increase is roughly proportional to the compression
//    rate").
//  * Every round's partial outputs pass through the joint module and are
//    accumulated in the output buffer, so buffer write traffic scales with
//    the number of rounds (the paper's energy-increase mechanism); channel
//    wrapping turns all but one output group into cheap buffer copies.
//  * Programmed crossbars leak for the whole inference (static energy =
//    leakage x #crossbars x total latency), which is why halving crossbars
//    can lower energy even when latency rises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/sample_plan.hpp"
#include "nn/layer.hpp"
#include "pim/config.hpp"
#include "pim/mapping.hpp"

namespace epim {

/// Cost breakdown for one layer (dynamic only; static energy is a
/// network-level quantity because idle crossbars leak too).
struct LayerCost {
  std::string name;
  LayerMapping mapping;
  std::int64_t positions = 0;        ///< output feature map positions
  std::int64_t rounds_per_position = 1;  ///< crossbar activation rounds
  std::int64_t replicas_per_position = 0;  ///< wrapped copies (no activation)
  double latency_ms = 0.0;
  double dynamic_energy_mj = 0.0;
  /// Dynamic energy split (mJ), for ablation reporting.
  double adc_mj = 0.0;
  double buffer_mj = 0.0;
  double xbar_mj = 0.0;
  double other_mj = 0.0;
  std::int64_t params = 0;
};

/// Whole-network cost (paper Table 1 row).
struct NetworkCost {
  std::vector<LayerCost> layers;
  std::int64_t num_crossbars = 0;
  double latency_ms = 0.0;
  double dynamic_energy_mj = 0.0;
  double static_energy_mj = 0.0;
  double utilization = 0.0;  ///< used cells / allocated cells, whole chip
  std::int64_t params = 0;

  double energy_mj() const { return dynamic_energy_mj + static_energy_mj; }
  double edp() const { return energy_mj() * latency_ms; }  ///< mJ*ms
};

/// Per-layer weight precision plus a shared activation precision.
/// weight_bits may hold a single entry (uniform precision) or one entry per
/// weighted layer (mixed precision, paper's W3mp rows).
struct PrecisionConfig {
  std::vector<int> weight_bits = {9};
  int act_bits = 9;

  static PrecisionConfig uniform(int wbits, int abits) {
    return PrecisionConfig{{wbits}, abits};
  }
  int layer_weight_bits(std::int64_t layer) const;
};

class PimEstimator {
 public:
  PimEstimator(CrossbarConfig config, HardwareLut lut)
      : config_(config), lut_(lut) {}

  const CrossbarConfig& config() const { return config_; }
  const HardwareLut& lut() const { return lut_; }

  /// Cost of a plain convolution layer.
  LayerCost eval_conv_layer(const ConvLayerInfo& layer, int weight_bits,
                            int act_bits) const;

  /// Cost of a layer executed as an epitome.
  LayerCost eval_epitome_layer(const ConvLayerInfo& layer,
                               const EpitomeSpec& spec, int weight_bits,
                               int act_bits) const;

  /// Cost of a whole network under an epitome assignment and precision
  /// config. FP32 (weight_bits == 32) is modelled as the fixed-point
  /// equivalent in CrossbarConfig.
  NetworkCost eval_network(const NetworkAssignment& assignment,
                           const PrecisionConfig& precision) const;

 private:
  /// Latency (ns) of one activation round given the active column count on
  /// the busiest crossbar and the number of weight slices to merge.
  double round_latency_ns(int act_bits, std::int64_t active_cols_per_xbar,
                          std::int64_t slices, bool epitome_round) const;

  /// Map "32" to the fixed-point-equivalent hardware precision.
  int effective_weight_bits(int weight_bits) const;
  int effective_act_bits(int act_bits) const;

  CrossbarConfig config_;
  HardwareLut lut_;
};

}  // namespace epim
