// Chip-level architecture model above the per-layer estimator.
//
// MNSIM-style hierarchy: crossbars are grouped into tiles laid out on a 2-D
// mesh NoC; a layer occupies a contiguous run of tiles, and each layer's
// output feature map travels over the mesh to the tiles of the next layer.
// The model adds two effects the flat estimator cannot see:
//  * NoC transport latency/energy between consecutive layers, growing with
//    feature-map size and tile distance;
//  * layer pipelining: in steady state (streaming inputs) throughput is
//    bounded by the slowest layer, not the sum of all layers.
#pragma once

#include <cstdint>

#include "core/assignment.hpp"
#include "pim/estimator.hpp"

namespace epim {

struct TileConfig {
  /// Crossbars per tile (a 4x4 PE array of crossbars by default).
  std::int64_t crossbars_per_tile = 16;
  /// Per-hop latency of one flit through a mesh router.
  double noc_hop_ns = 2.0;
  /// Per-hop transport energy per byte.
  double noc_hop_pj_per_byte = 1.1;
  /// Flit width.
  std::int64_t noc_flit_bytes = 32;
};

/// Bytes one activation occupies on the mesh NoC. Activations travel in
/// their quantized integer width, except the "FP32" regime: floating point
/// cannot leave a crossbar tile anyway (cells and ADCs are fixed-point, see
/// CrossbarConfig::fp32_act_bits), so full-precision activations are
/// transported as 16-bit values -- the same half-width transport assumption
/// ISAAC-style designs make, and the transport twin of fp32_weight_bits=16.
/// A 32-bit activation therefore costs 2 bytes of NoC traffic, not 4; the
/// regression test pins this so the assumption cannot silently change.
std::int64_t noc_act_bytes(int act_bits);

struct ChipCost {
  NetworkCost compute;             ///< flat estimator result
  std::int64_t num_tiles = 0;
  std::int64_t mesh_dim = 0;       ///< mesh is mesh_dim x mesh_dim
  double noc_latency_ms = 0.0;
  double noc_energy_mj = 0.0;
  /// Single-image latency including NoC transport (sequential layers).
  double total_latency_ms() const {
    return compute.latency_ms + noc_latency_ms;
  }
  double total_energy_mj() const {
    return compute.energy_mj() + noc_energy_mj;
  }
  /// Steady-state latency per image with layer pipelining: the slowest
  /// layer bounds throughput, other layers overlap.
  double pipelined_latency_ms = 0.0;
};

class ChipModel {
 public:
  ChipModel(const PimEstimator& estimator, TileConfig tiles)
      : estimator_(&estimator), tiles_(tiles) {}

  const TileConfig& tile_config() const { return tiles_; }

  ChipCost eval(const NetworkAssignment& assignment,
                const PrecisionConfig& precision) const;

 private:
  const PimEstimator* estimator_;
  TileConfig tiles_;
};

}  // namespace epim
