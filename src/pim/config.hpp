// Hardware configuration of the behaviour-level PIM model.
//
// Follows the MNSIM 2.0 modelling approach: the accelerator is a grid of
// memristor crossbars with per-component latency/energy characteristics kept
// in a look-up table (HardwareLut); costs are LUT values multiplied by
// activation counts derived from the workload. Default values are set in the
// ISAAC/MNSIM regime and calibrated so the ResNet-50 FP32 baseline lands at
// the paper's reported scale (~140 ms / ~214 mJ per inference); see
// EXPERIMENTS.md for the calibration notes.
#pragma once

#include <cstdint>

namespace epim {

/// Geometry and precision of one memristor crossbar array.
struct CrossbarConfig {
  std::int64_t rows = 128;    ///< word lines
  std::int64_t cols = 128;    ///< bit lines
  int cell_bits = 2;          ///< conductance levels per cell = 2^cell_bits
  int adc_bits = 9;           ///< ADC resolution
  std::int64_t adc_share = 8; ///< bit-line columns multiplexed per ADC

  /// Fixed-point equivalent used when a model is "FP32": weights are held as
  /// 16-bit fixed-point across cell slices and activations streamed over 32
  /// bit-serial cycles (floating point cannot be stored on memristor cells).
  int fp32_weight_bits = 16;
  int fp32_act_bits = 32;

  /// Cells along the bit-line dimension for one k-bit weight.
  std::int64_t weight_slices(int weight_bits) const;
};

/// Per-component latency (ns) and energy (pJ) look-up table.
struct HardwareLut {
  // --- latency, ns ---
  double dac_ns = 5.0;         ///< input drive (per bit-serial cycle)
  double xbar_ns = 30.0;       ///< crossbar analog settle (per cycle)
  double sh_ns = 2.0;          ///< sample & hold (per cycle)
  double adc_ns = 1.0;         ///< one ADC conversion
  double shift_add_ns = 3.0;   ///< digital shift-add per weight slice/cycle
  double index_table_ns = 1.0; ///< one IFAT/IFRT/OFAT lookup (per round)
  double joint_add_ns = 1.0;   ///< joint-module merge of one round's outputs
  double buffer_copy_ns = 0.5; ///< per wrapped-replica output copy burst

  // --- energy, pJ ---
  double dac_pj = 0.5;          ///< per driven row per cycle
  double cell_pj = 0.005;       ///< per active cell per cycle
  double sh_pj = 0.001;         ///< per active column per cycle
  double adc_pj = 8.0;          ///< per conversion (ADCs dominate, as in ISAAC)
  double shift_add_pj = 0.05;   ///< per active column per cycle
  double buffer_rd_pj = 1.0;    ///< per byte read from a feature buffer
  double buffer_wr_pj = 1.5;    ///< per byte written to a feature buffer
  double index_table_pj = 0.5;  ///< per table lookup
  double joint_add_pj = 0.1;    ///< per merged output element

  // --- static ---
  /// Leakage/peripheral standby power per crossbar (mW). All programmed
  /// crossbars leak for the whole inference, so a model with fewer crossbars
  /// saves static energy even when it runs longer.
  double leakage_mw_per_xbar = 0.1;
};

}  // namespace epim
