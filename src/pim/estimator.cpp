#include "pim/estimator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

namespace {
constexpr double kNsToMs = 1e-6;
constexpr double kPjToMj = 1e-9;

/// Bytes occupied by one value of the given bit width in a feature buffer.
double value_bytes(int bits) { return static_cast<double>(ceil_div(bits, 8)); }
}  // namespace

int PrecisionConfig::layer_weight_bits(std::int64_t layer) const {
  EPIM_CHECK(!weight_bits.empty(), "precision config has no weight bits");
  if (weight_bits.size() == 1) return weight_bits.front();
  EPIM_CHECK(layer >= 0 &&
                 layer < static_cast<std::int64_t>(weight_bits.size()),
             "layer index out of range for mixed-precision config");
  return weight_bits[static_cast<std::size_t>(layer)];
}

int PimEstimator::effective_weight_bits(int weight_bits) const {
  EPIM_CHECK(weight_bits >= 1 && weight_bits <= 32,
             "weight bits out of range");
  return weight_bits == 32 ? config_.fp32_weight_bits : weight_bits;
}

int PimEstimator::effective_act_bits(int act_bits) const {
  EPIM_CHECK(act_bits >= 1 && act_bits <= 32, "act bits out of range");
  return act_bits == 32 ? config_.fp32_act_bits : act_bits;
}

double PimEstimator::round_latency_ns(int act_bits,
                                      std::int64_t active_cols_per_xbar,
                                      std::int64_t slices,
                                      bool epitome_round) const {
  // One bit-serial cycle: drive DACs, settle the crossbar, sample & hold,
  // digitize the active columns through the shared ADCs, then merge the
  // weight slices digitally (one shift-add stage per slice, which is why
  // lower weight precision also runs faster, not just smaller).
  const double adc_serial =
      static_cast<double>(ceil_div(active_cols_per_xbar, config_.adc_share)) *
      lut_.adc_ns;
  const double cycle = lut_.dac_ns + lut_.xbar_ns + lut_.sh_ns + adc_serial +
                       static_cast<double>(slices) * lut_.shift_add_ns;
  double latency = static_cast<double>(act_bits) * cycle;
  if (epitome_round) {
    // Index-table lookups (IFAT + IFRT before, OFAT after) and the joint
    // module's merge are pipelined with the analog phase except for their
    // setup cost once per round.
    latency += 3.0 * lut_.index_table_ns + lut_.joint_add_ns;
  }
  return latency;
}

LayerCost PimEstimator::eval_conv_layer(const ConvLayerInfo& layer,
                                        int weight_bits, int act_bits) const {
  const int wb = effective_weight_bits(weight_bits);
  const int ab = effective_act_bits(act_bits);
  LayerCost cost;
  cost.name = layer.name;
  cost.params = layer.conv.weight_count();
  cost.mapping = map_weight_matrix(layer.conv.unrolled_rows(),
                                   layer.conv.unrolled_cols(), wb, config_);
  cost.positions = layer.output_positions();
  cost.rounds_per_position = 1;

  const LayerMapping& m = cost.mapping;
  // All tiles fire in parallel; the busiest crossbar digitizes a full column
  // complement (or fewer if the matrix is narrow).
  const std::int64_t busiest_cols = std::min(m.cols_physical, config_.cols);
  const double lat_ns = static_cast<double>(cost.positions) *
                        round_latency_ns(ab, busiest_cols, m.slices, false);
  cost.latency_ms = lat_ns * kNsToMs;

  // Dynamic energy per output position.
  const double act_bytes = value_bytes(ab);
  const double acc_bytes = 2.0;  // partial-sum/output word in the buffer
  const double rows = static_cast<double>(m.rows);
  const double cols_phys = static_cast<double>(m.cols_physical);
  const double cycles = static_cast<double>(ab);
  // Row drivers replicate the input across column tiles.
  const double dac = rows * static_cast<double>(m.tiles_c) * cycles *
                     lut_.dac_pj;
  const double cells = rows * cols_phys * cycles * lut_.cell_pj;
  const double sh_adc_sa =
      cols_phys * cycles * (lut_.sh_pj + lut_.adc_pj + lut_.shift_add_pj);
  const double buf_rd = rows * act_bytes * lut_.buffer_rd_pj;
  const double buf_wr = static_cast<double>(m.cols_logical) * acc_bytes *
                        lut_.buffer_wr_pj;
  const double per_pos = dac + cells + sh_adc_sa + buf_rd + buf_wr;
  const double positions = static_cast<double>(cost.positions);
  cost.adc_mj = positions * cols_phys * cycles * lut_.adc_pj * kPjToMj;
  cost.buffer_mj = positions * (buf_rd + buf_wr) * kPjToMj;
  cost.xbar_mj = positions * cells * kPjToMj;
  cost.dynamic_energy_mj = positions * per_pos * kPjToMj;
  cost.other_mj =
      cost.dynamic_energy_mj - cost.adc_mj - cost.buffer_mj - cost.xbar_mj;
  return cost;
}

LayerCost PimEstimator::eval_epitome_layer(const ConvLayerInfo& layer,
                                           const EpitomeSpec& spec,
                                           int weight_bits,
                                           int act_bits) const {
  const int wb = effective_weight_bits(weight_bits);
  const int ab = effective_act_bits(act_bits);
  const SamplePlan plan(spec, layer.conv);
  LayerCost cost;
  cost.name = layer.name;
  cost.params = spec.weight_count();
  // The epitome itself is what occupies crossbars, programmed once.
  cost.mapping = map_weight_matrix(spec.rows(), spec.cout_e, wb, config_);
  cost.positions = layer.output_positions();
  cost.rounds_per_position = plan.active_rounds();
  cost.replicas_per_position = plan.total_patches() - plan.active_rounds();

  const LayerMapping& m = cost.mapping;
  const double act_bytes = value_bytes(ab);
  const double acc_bytes = 2.0;
  const double cycles = static_cast<double>(ab);
  const std::int64_t slices = m.slices;

  double lat_round_ns = 0.0;
  double dyn_pj = 0.0, adc_pj_sum = 0.0, buf_pj_sum = 0.0, cell_pj_sum = 0.0;
  for (const PatchSample& s : plan.samples()) {
    const double patch_rows = static_cast<double>(
        s.ci_len * layer.conv.kernel_h * layer.conv.kernel_w);
    const double patch_cols_phys = static_cast<double>(s.co_len * slices);
    if (s.replicated) {
      // Channel wrapping: this patch's outputs are copies of an earlier
      // round -- only output-buffer write traffic, no crossbar activity.
      const double copy = static_cast<double>(s.co_len) * acc_bytes *
                          lut_.buffer_wr_pj;
      buf_pj_sum += copy;
      dyn_pj += copy + lut_.index_table_pj;  // OFAT lookup to place the copy
      lat_round_ns += lut_.buffer_copy_ns;
      continue;
    }
    const std::int64_t busiest_cols =
        std::min<std::int64_t>(s.co_len * slices, config_.cols);
    lat_round_ns += round_latency_ns(ab, busiest_cols, slices, true);
    // Word lines not in this patch are held at zero (Sec. 4.3), so only the
    // patch's rows/cells/columns draw dynamic power.
    const double tiles_c_active =
        static_cast<double>(ceil_div(s.co_len * slices, config_.cols));
    const double dac = patch_rows * tiles_c_active * cycles * lut_.dac_pj;
    const double cells = patch_rows * patch_cols_phys * cycles * lut_.cell_pj;
    const double sh_adc_sa = patch_cols_phys * cycles *
                             (lut_.sh_pj + lut_.adc_pj + lut_.shift_add_pj);
    const double buf_rd = patch_rows * act_bytes * lut_.buffer_rd_pj;
    // Joint module: read-modify-write of the partial sums every round (this
    // is the output-buffer amplification the paper's Sec. 5.1 analyses).
    const double buf_accum = static_cast<double>(s.co_len) * acc_bytes *
                             (lut_.buffer_rd_pj + lut_.buffer_wr_pj);
    const double tables = 3.0 * lut_.index_table_pj +
                          static_cast<double>(s.co_len) * lut_.joint_add_pj;
    adc_pj_sum += patch_cols_phys * cycles * lut_.adc_pj;
    buf_pj_sum += buf_rd + buf_accum;
    cell_pj_sum += cells;
    dyn_pj += dac + cells + sh_adc_sa + buf_rd + buf_accum + tables;
  }

  const double positions = static_cast<double>(cost.positions);
  cost.latency_ms = positions * lat_round_ns * kNsToMs;
  cost.dynamic_energy_mj = positions * dyn_pj * kPjToMj;
  cost.adc_mj = positions * adc_pj_sum * kPjToMj;
  cost.buffer_mj = positions * buf_pj_sum * kPjToMj;
  cost.xbar_mj = positions * cell_pj_sum * kPjToMj;
  cost.other_mj =
      cost.dynamic_energy_mj - cost.adc_mj - cost.buffer_mj - cost.xbar_mj;
  return cost;
}

NetworkCost PimEstimator::eval_network(const NetworkAssignment& assignment,
                                       const PrecisionConfig& precision) const {
  NetworkCost total;
  const auto& layers = assignment.layers();
  double used_cells = 0.0, allocated_cells = 0.0;
  for (std::int64_t i = 0; i < assignment.num_layers(); ++i) {
    const int wb = precision.layer_weight_bits(i);
    const auto& choice = assignment.choice(i);
    LayerCost cost =
        choice.has_value()
            ? eval_epitome_layer(layers[static_cast<std::size_t>(i)], *choice,
                                 wb, precision.act_bits)
            : eval_conv_layer(layers[static_cast<std::size_t>(i)], wb,
                              precision.act_bits);
    total.num_crossbars += cost.mapping.num_crossbars;
    total.latency_ms += cost.latency_ms;
    total.dynamic_energy_mj += cost.dynamic_energy_mj;
    total.params += cost.params;
    used_cells += static_cast<double>(cost.mapping.used_cells());
    allocated_cells += static_cast<double>(cost.mapping.num_crossbars) *
                       static_cast<double>(config_.rows * config_.cols);
    total.layers.push_back(std::move(cost));
  }
  // Static energy: every programmed crossbar leaks for the full inference.
  total.static_energy_mj = lut_.leakage_mw_per_xbar *
                           static_cast<double>(total.num_crossbars) *
                           total.latency_ms * 1e-3;  // mW * ms = uJ -> mJ
  total.utilization = allocated_cells > 0 ? used_cells / allocated_cells : 0.0;
  return total;
}

}  // namespace epim
