// Functional (bit-accurate) memristor crossbar model.
//
// The estimator (estimator.hpp) predicts latency/energy analytically; this
// class models the *values*: integer weights are programmed into 2^cell_bits-
// level cells across bit slices (offset binary encoding so negative weights
// fit on non-negative conductances), inputs are streamed bit-serially, column
// currents are digitized by an ADC of finite resolution, and shift-add logic
// recombines slices and input bits. With sufficient ADC resolution the result
// is exactly the integer matrix-vector product -- a property the test suite
// verifies -- and with a starved ADC it degrades, which the ablation bench
// sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "pim/config.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// Device non-idealities applied at programming time (write variation and
/// hard faults). With all fields zero the array is ideal and bit-exact.
struct NonIdealityConfig {
  /// Std-dev of Gaussian conductance error per cell, in conductance-level
  /// units (a 2-bit cell has levels 0..3; sigma 0.1 means ~10% of a level).
  double conductance_sigma = 0.0;
  /// Probability that a cell is stuck at zero conductance (open fault).
  double stuck_at_zero_prob = 0.0;
  /// Probability that a cell is stuck at maximum conductance (short fault).
  double stuck_at_max_prob = 0.0;
  std::uint64_t seed = 0x5711Cu;

  bool ideal() const {
    return conductance_sigma == 0.0 && stuck_at_zero_prob == 0.0 &&
           stuck_at_max_prob == 0.0;
  }
};

/// One physical crossbar programmed with an integer weight matrix.
class CrossbarArray {
 public:
  /// Program a (rows x cols) *logical* integer weight matrix. Weights must
  /// fit in weight_bits two's-complement. rows/cols must fit the crossbar
  /// (cols * slices <= config.cols). Non-idealities, if any, perturb the
  /// programmed conductances once (write-time variation model).
  CrossbarArray(const CrossbarConfig& config, int weight_bits,
                const std::vector<std::vector<int>>& weights,
                const NonIdealityConfig& non_ideal = {});

  std::int64_t logical_rows() const { return rows_; }
  std::int64_t logical_cols() const { return cols_; }

  /// Bit-serial MVM: `input` holds unsigned integer activations (each fitting
  /// in act_bits) for every logical row; `row_enable` masks word lines (the
  /// IFRT mechanism: disabled rows contribute nothing). Returns one signed
  /// integer accumulator per logical column.
  ///
  /// The computation is exact iff every per-cycle column current fits in the
  /// ADC range; otherwise currents clip (saturating ADC).
  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                const std::vector<bool>& row_enable,
                                int act_bits) const;

  /// Convenience: all rows enabled.
  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                int act_bits) const;

  /// Number of ADC clippings observed in the last mvm() call (diagnostic for
  /// the ADC-resolution ablation).
  std::int64_t last_clip_count() const { return clip_count_; }

 private:
  CrossbarConfig config_;
  int weight_bits_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t slices_ = 0;
  std::int64_t offset_ = 0;  ///< offset-binary bias: stored = w + offset
  /// cells_[slice][r][c]: programmed conductance in level units. Exactly the
  /// digit of (w + offset) for an ideal array; perturbed by the non-ideality
  /// model otherwise.
  std::vector<std::vector<std::vector<double>>> cells_;
  bool ideal_ = true;
  mutable std::int64_t clip_count_ = 0;
};

}  // namespace epim
