// Functional (bit-accurate) memristor crossbar model.
//
// The estimator (estimator.hpp) predicts latency/energy analytically; this
// class models the *values*: integer weights are programmed into 2^cell_bits-
// level cells across bit slices (offset binary encoding so negative weights
// fit on non-negative conductances), inputs are streamed bit-serially, column
// currents are digitized by an ADC of finite resolution, and shift-add logic
// recombines slices and input bits. With sufficient ADC resolution the result
// is exactly the integer matrix-vector product -- a property the test suite
// verifies -- and with a starved ADC it degrades, which the ablation bench
// sweeps.
//
// Storage is one contiguous buffer (slice-major, row-major planes) walked
// with pointer arithmetic, and two fast paths cover the ideal-device case:
//  * wide-ADC ideal arrays (no clipping possible for any input) collapse the
//    whole bit-serial schedule into one int64 dot product per column;
//  * narrow-ADC ideal arrays run the bit-serial schedule on integer digits,
//    reproducing ADC saturation without double round-trips.
// Both are bit-identical to the analog reference path, which non-ideal
// arrays still take.
#pragma once

#include <cstdint>
#include <vector>

#include "pim/config.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// Device non-idealities applied at programming time (write variation and
/// hard faults). With all fields zero the array is ideal and bit-exact.
struct NonIdealityConfig {
  /// Std-dev of Gaussian conductance error per cell, in conductance-level
  /// units (a 2-bit cell has levels 0..3; sigma 0.1 means ~10% of a level).
  double conductance_sigma = 0.0;
  /// Probability that a cell is stuck at zero conductance (open fault).
  double stuck_at_zero_prob = 0.0;
  /// Probability that a cell is stuck at maximum conductance (short fault).
  double stuck_at_max_prob = 0.0;
  std::uint64_t seed = 0x5711Cu;

  bool ideal() const {
    return conductance_sigma == 0.0 && stuck_at_zero_prob == 0.0 &&
           stuck_at_max_prob == 0.0;
  }
};

/// One physical crossbar programmed with an integer weight matrix.
class CrossbarArray {
 public:
  /// Program a (rows x cols) *logical* integer weight matrix. Weights must
  /// fit in weight_bits two's-complement. rows/cols must fit the crossbar
  /// (cols * slices <= config.cols). Non-idealities, if any, perturb the
  /// programmed conductances once (write-time variation model).
  CrossbarArray(const CrossbarConfig& config, int weight_bits,
                const std::vector<std::vector<int>>& weights,
                const NonIdealityConfig& non_ideal = {});

  std::int64_t logical_rows() const { return rows_; }
  std::int64_t logical_cols() const { return cols_; }

  /// Bit-serial MVM: `input` holds unsigned integer activations (each fitting
  /// in act_bits) for every logical row; `row_enable` masks word lines (the
  /// IFRT mechanism: disabled rows contribute nothing). Returns one signed
  /// integer accumulator per logical column.
  ///
  /// The computation is exact iff every per-cycle column current fits in the
  /// ADC range; otherwise currents clip (saturating ADC).
  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                const std::vector<bool>& row_enable,
                                int act_bits) const;

  /// Convenience: all rows enabled.
  std::vector<std::int64_t> mvm(const std::vector<std::uint32_t>& input,
                                int act_bits) const;

  /// Thread-safe variant: identical output, but ADC clip events are reported
  /// through *clip_count (accumulated, not reset) instead of the mutable
  /// last_clip_count() diagnostic, so concurrent callers sharing one
  /// programmed array never race.
  void mvm(const std::vector<std::uint32_t>& input,
           const std::vector<bool>& row_enable, int act_bits,
           std::vector<std::int64_t>& acc, std::int64_t* clip_count) const;

  /// Number of ADC clippings observed in the last mvm() call (diagnostic for
  /// the ADC-resolution ablation). Undefined under concurrent mvm() -- use
  /// the clip-out overload there.
  std::int64_t last_clip_count() const { return clip_count_; }

 private:
  /// Analog reference path (always taken by non-ideal arrays).
  void mvm_analog(const std::vector<std::uint32_t>& input,
                  const std::vector<std::int32_t>& active, int act_bits,
                  std::int64_t* acc, std::int64_t& clips) const;
  /// Ideal array, ADC too narrow for the worst-case column current:
  /// bit-serial on integer digits, bit-identical saturation behaviour.
  void mvm_ideal_serial(const std::vector<std::uint32_t>& input,
                        const std::vector<std::int32_t>& active, int act_bits,
                        std::int64_t* acc, std::int64_t& clips) const;

  CrossbarConfig config_;
  int weight_bits_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t slices_ = 0;
  std::int64_t offset_ = 0;  ///< offset-binary bias: stored = w + offset
  /// Programmed conductances in level units, one contiguous buffer:
  /// cells_[(s * rows_ + r) * cols_ + c]. Exactly the digit of (w + offset)
  /// for an ideal array; perturbed by the non-ideality model otherwise.
  std::vector<double> cells_;
  /// Ideal arrays only: the same digits as integers (same flat layout), the
  /// operands of the bit-serial integer fast path.
  std::vector<std::int32_t> digits_;
  /// Ideal arrays only: the signed logical weights, row-major (rows x cols),
  /// the operands of the direct int64 fast path.
  std::vector<std::int64_t> signed_weights_;
  bool ideal_ = true;
  /// True when no per-cycle column current can exceed the ADC range for any
  /// input (precomputed worst case: all rows enabled, all input bits set);
  /// licenses the direct integer path, which skips the ADC entirely.
  bool never_clips_ = false;
  mutable std::int64_t clip_count_ = 0;
};

}  // namespace epim
