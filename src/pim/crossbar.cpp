#include "pim/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace epim {

CrossbarArray::CrossbarArray(const CrossbarConfig& config, int weight_bits,
                             const std::vector<std::vector<int>>& weights,
                             const NonIdealityConfig& non_ideal)
    : config_(config), weight_bits_(weight_bits) {
  rows_ = static_cast<std::int64_t>(weights.size());
  EPIM_CHECK(rows_ > 0 && rows_ <= config.rows,
             "crossbar row count out of range");
  cols_ = static_cast<std::int64_t>(weights.front().size());
  EPIM_CHECK(cols_ > 0, "crossbar must have at least one column");
  slices_ = config.weight_slices(weight_bits);
  EPIM_CHECK(cols_ * slices_ <= config.cols,
             "weight matrix does not fit the crossbar's bit lines");
  // Offset-binary encoding: a k-bit two's-complement weight w in
  // [-2^(k-1), 2^(k-1)-1] is stored as the non-negative value w + 2^(k-1),
  // which fits in k bits and therefore in `slices_` cell digits. The mvm()
  // path subtracts offset * sum(inputs) digitally.
  offset_ = std::int64_t{1} << (weight_bits - 1);
  const std::int64_t lo = -offset_, hi = offset_ - 1;
  const int radix_bits = config.cell_bits;
  const int radix_mask = (1 << radix_bits) - 1;
  const double level_max = static_cast<double>(radix_mask);
  ideal_ = non_ideal.ideal();
  Rng rng(non_ideal.seed);
  cells_.assign(static_cast<std::size_t>(slices_),
                std::vector<std::vector<double>>(
                    static_cast<std::size_t>(rows_),
                    std::vector<double>(static_cast<std::size_t>(cols_),
                                        0.0)));
  for (std::int64_t r = 0; r < rows_; ++r) {
    EPIM_CHECK(static_cast<std::int64_t>(weights[static_cast<std::size_t>(r)]
                                             .size()) == cols_,
               "ragged weight matrix");
    for (std::int64_t c = 0; c < cols_; ++c) {
      const int w = weights[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(c)];
      EPIM_CHECK(w >= lo && w <= hi,
                 "weight out of range for " + std::to_string(weight_bits) +
                     "-bit encoding");
      std::int64_t stored = static_cast<std::int64_t>(w) + offset_;
      for (std::int64_t s = 0; s < slices_; ++s) {
        double level = static_cast<double>(stored & radix_mask);
        if (!ideal_) {
          // Write-time variation and hard faults, applied once per cell.
          if (non_ideal.stuck_at_zero_prob > 0.0 &&
              rng.flip(non_ideal.stuck_at_zero_prob)) {
            level = 0.0;
          } else if (non_ideal.stuck_at_max_prob > 0.0 &&
                     rng.flip(non_ideal.stuck_at_max_prob)) {
            level = level_max;
          } else if (non_ideal.conductance_sigma > 0.0) {
            level = std::clamp(
                level + rng.normal(0.0, non_ideal.conductance_sigma), 0.0,
                level_max);
          }
        }
        cells_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)]
              [static_cast<std::size_t>(c)] = level;
        stored >>= radix_bits;
      }
    }
  }
}

std::vector<std::int64_t> CrossbarArray::mvm(
    const std::vector<std::uint32_t>& input,
    const std::vector<bool>& row_enable, int act_bits) const {
  EPIM_CHECK(static_cast<std::int64_t>(input.size()) == rows_,
             "input length must equal logical rows");
  EPIM_CHECK(static_cast<std::int64_t>(row_enable.size()) == rows_,
             "row_enable length must equal logical rows");
  EPIM_CHECK(act_bits >= 1 && act_bits <= 32, "act_bits out of range");
  clip_count_ = 0;
  const std::int64_t adc_max = (std::int64_t{1} << config_.adc_bits) - 1;
  const int radix_bits = config_.cell_bits;
  std::vector<std::int64_t> acc(static_cast<std::size_t>(cols_), 0);
  std::int64_t input_sum = 0;  // for the offset-binary correction
  // Bit-serial input streaming: cycle t drives input bit t on every enabled
  // word line; each slice's column current is digitized and shift-added.
  // (Row-major accumulation: word lines whose input bit is zero draw no
  // current and are skipped outright.)
  std::vector<double> current(static_cast<std::size_t>(cols_));
  for (int t = 0; t < act_bits; ++t) {
    for (std::int64_t s = 0; s < slices_; ++s) {
      const auto& plane = cells_[static_cast<std::size_t>(s)];
      std::fill(current.begin(), current.end(), 0.0);
      for (std::int64_t r = 0; r < rows_; ++r) {
        if (!row_enable[static_cast<std::size_t>(r)]) continue;
        if (((input[static_cast<std::size_t>(r)] >> t) & 1u) == 0u) continue;
        const auto& row = plane[static_cast<std::size_t>(r)];
        for (std::int64_t c = 0; c < cols_; ++c) {
          current[static_cast<std::size_t>(c)] +=
              row[static_cast<std::size_t>(c)];
        }
      }
      for (std::int64_t c = 0; c < cols_; ++c) {
        // The ADC digitizes the analog column current to an integer code.
        std::int64_t code = static_cast<std::int64_t>(
            std::llround(current[static_cast<std::size_t>(c)]));
        if (code > adc_max) {  // saturating ADC
          code = adc_max;
          ++clip_count_;
        }
        if (code < 0) code = 0;
        acc[static_cast<std::size_t>(c)] +=
            code << (t + static_cast<int>(s) * radix_bits);
      }
    }
  }
  for (std::int64_t r = 0; r < rows_; ++r) {
    if (row_enable[static_cast<std::size_t>(r)]) {
      input_sum += input[static_cast<std::size_t>(r)];
    }
  }
  // Remove the offset-binary bias: stored = w + offset, so the analog result
  // overcounts by offset * sum(enabled inputs).
  for (std::int64_t c = 0; c < cols_; ++c) {
    acc[static_cast<std::size_t>(c)] -= offset_ * input_sum;
  }
  return acc;
}

std::vector<std::int64_t> CrossbarArray::mvm(
    const std::vector<std::uint32_t>& input, int act_bits) const {
  return mvm(input, std::vector<bool>(input.size(), true), act_bits);
}

}  // namespace epim
