#include "pim/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace epim {

CrossbarArray::CrossbarArray(const CrossbarConfig& config, int weight_bits,
                             const std::vector<std::vector<int>>& weights,
                             const NonIdealityConfig& non_ideal)
    : config_(config), weight_bits_(weight_bits) {
  rows_ = static_cast<std::int64_t>(weights.size());
  EPIM_CHECK(rows_ > 0 && rows_ <= config.rows,
             "crossbar row count out of range");
  cols_ = static_cast<std::int64_t>(weights.front().size());
  EPIM_CHECK(cols_ > 0, "crossbar must have at least one column");
  slices_ = config.weight_slices(weight_bits);
  EPIM_CHECK(cols_ * slices_ <= config.cols,
             "weight matrix does not fit the crossbar's bit lines");
  // Offset-binary encoding: a k-bit two's-complement weight w in
  // [-2^(k-1), 2^(k-1)-1] is stored as the non-negative value w + 2^(k-1),
  // which fits in k bits and therefore in `slices_` cell digits. The mvm()
  // path subtracts offset * sum(inputs) digitally.
  offset_ = std::int64_t{1} << (weight_bits - 1);
  const std::int64_t lo = -offset_, hi = offset_ - 1;
  const int radix_bits = config.cell_bits;
  const int radix_mask = (1 << radix_bits) - 1;
  const double level_max = static_cast<double>(radix_mask);
  ideal_ = non_ideal.ideal();
  Rng rng(non_ideal.seed);
  const std::size_t plane = static_cast<std::size_t>(rows_ * cols_);
  cells_.assign(static_cast<std::size_t>(slices_) * plane, 0.0);
  if (ideal_) {
    digits_.assign(cells_.size(), 0);
    signed_weights_.assign(plane, 0);
  }
  for (std::int64_t r = 0; r < rows_; ++r) {
    EPIM_CHECK(static_cast<std::int64_t>(weights[static_cast<std::size_t>(r)]
                                             .size()) == cols_,
               "ragged weight matrix");
    for (std::int64_t c = 0; c < cols_; ++c) {
      const int w = weights[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(c)];
      EPIM_CHECK(w >= lo && w <= hi,
                 "weight out of range for " + std::to_string(weight_bits) +
                     "-bit encoding");
      std::int64_t stored = static_cast<std::int64_t>(w) + offset_;
      for (std::int64_t s = 0; s < slices_; ++s) {
        const std::int64_t digit = stored & radix_mask;
        double level = static_cast<double>(digit);
        if (!ideal_) {
          // Write-time variation and hard faults, applied once per cell.
          if (non_ideal.stuck_at_zero_prob > 0.0 &&
              rng.flip(non_ideal.stuck_at_zero_prob)) {
            level = 0.0;
          } else if (non_ideal.stuck_at_max_prob > 0.0 &&
                     rng.flip(non_ideal.stuck_at_max_prob)) {
            level = level_max;
          } else if (non_ideal.conductance_sigma > 0.0) {
            level = std::clamp(
                level + rng.normal(0.0, non_ideal.conductance_sigma), 0.0,
                level_max);
          }
        }
        const std::size_t idx =
            static_cast<std::size_t>((s * rows_ + r) * cols_ + c);
        cells_[idx] = level;
        if (ideal_) digits_[idx] = static_cast<std::int32_t>(digit);
        stored >>= radix_bits;
      }
      if (ideal_) {
        signed_weights_[static_cast<std::size_t>(r * cols_ + c)] = w;
      }
    }
  }
  if (ideal_) {
    // Worst-case per-cycle column current: every row enabled and driving a
    // one bit. If even that fits the ADC, no input can ever clip and the
    // whole bit-serial schedule collapses to one integer dot product.
    const std::int64_t adc_max = (std::int64_t{1} << config_.adc_bits) - 1;
    std::int64_t worst = 0;
    for (std::int64_t s = 0; s < slices_; ++s) {
      for (std::int64_t c = 0; c < cols_; ++c) {
        std::int64_t sum = 0;
        const std::int32_t* col = digits_.data() + s * rows_ * cols_ + c;
        for (std::int64_t r = 0; r < rows_; ++r) sum += col[r * cols_];
        worst = std::max(worst, sum);
      }
    }
    never_clips_ = worst <= adc_max;
  }
}

namespace {

/// Per-thread scratch for mvm(): the kernel is called once per tile per
/// round per output position, so these buffers must not be reallocated per
/// call. Thread-local keeps the thread-safe overload allocation-free and
/// race-free; every element is overwritten before use, so results stay
/// deterministic.
thread_local std::vector<std::int32_t> t_active;
thread_local std::vector<double> t_current_analog;
thread_local std::vector<std::int64_t> t_current_ideal;

}  // namespace

void CrossbarArray::mvm_analog(const std::vector<std::uint32_t>& input,
                               const std::vector<std::int32_t>& active,
                               int act_bits, std::int64_t* acc,
                               std::int64_t& clips) const {
  const std::int64_t adc_max = (std::int64_t{1} << config_.adc_bits) - 1;
  const int radix_bits = config_.cell_bits;
  // Bit-serial input streaming: cycle t drives input bit t on every enabled
  // word line; each slice's column current is digitized and shift-added.
  // (Row-major accumulation in ascending row order: word lines whose input
  // bit is zero draw no current and are skipped outright.)
  std::vector<double>& current = t_current_analog;
  current.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int t = 0; t < act_bits; ++t) {
    for (std::int64_t s = 0; s < slices_; ++s) {
      const double* plane = cells_.data() + s * rows_ * cols_;
      std::fill(current.begin(), current.end(), 0.0);
      for (const std::int32_t r : active) {
        if (((input[static_cast<std::size_t>(r)] >> t) & 1u) == 0u) continue;
        const double* row = plane + static_cast<std::int64_t>(r) * cols_;
        for (std::int64_t c = 0; c < cols_; ++c) current[c] += row[c];
      }
      for (std::int64_t c = 0; c < cols_; ++c) {
        // The ADC digitizes the analog column current to an integer code.
        std::int64_t code = static_cast<std::int64_t>(
            std::llround(current[static_cast<std::size_t>(c)]));
        if (code > adc_max) {  // saturating ADC
          code = adc_max;
          ++clips;
        }
        if (code < 0) code = 0;
        acc[c] += code << (t + static_cast<int>(s) * radix_bits);
      }
    }
  }
}

void CrossbarArray::mvm_ideal_serial(const std::vector<std::uint32_t>& input,
                                     const std::vector<std::int32_t>& active,
                                     int act_bits, std::int64_t* acc,
                                     std::int64_t& clips) const {
  // Same schedule as the analog path, but on exact integer digits: column
  // sums of small non-negative integers are exactly representable, so this
  // is bit-identical to digitizing the double-precision currents.
  const std::int64_t adc_max = (std::int64_t{1} << config_.adc_bits) - 1;
  const int radix_bits = config_.cell_bits;
  std::vector<std::int64_t>& current = t_current_ideal;
  current.assign(static_cast<std::size_t>(cols_), 0);
  for (int t = 0; t < act_bits; ++t) {
    for (std::int64_t s = 0; s < slices_; ++s) {
      const std::int32_t* plane = digits_.data() + s * rows_ * cols_;
      std::fill(current.begin(), current.end(), 0);
      for (const std::int32_t r : active) {
        if (((input[static_cast<std::size_t>(r)] >> t) & 1u) == 0u) continue;
        const std::int32_t* row = plane + static_cast<std::int64_t>(r) * cols_;
        for (std::int64_t c = 0; c < cols_; ++c) current[c] += row[c];
      }
      for (std::int64_t c = 0; c < cols_; ++c) {
        std::int64_t code = current[static_cast<std::size_t>(c)];
        if (code > adc_max) {  // saturating ADC
          code = adc_max;
          ++clips;
        }
        acc[c] += code << (t + static_cast<int>(s) * radix_bits);
      }
    }
  }
}

void CrossbarArray::mvm(const std::vector<std::uint32_t>& input,
                        const std::vector<bool>& row_enable, int act_bits,
                        std::vector<std::int64_t>& acc,
                        std::int64_t* clip_count) const {
  EPIM_CHECK(static_cast<std::int64_t>(input.size()) == rows_,
             "input length must equal logical rows");
  EPIM_CHECK(static_cast<std::int64_t>(row_enable.size()) == rows_,
             "row_enable length must equal logical rows");
  EPIM_CHECK(act_bits >= 1 && act_bits <= 32, "act_bits out of range");
  acc.assign(static_cast<std::size_t>(cols_), 0);

  // Row gating as a dense index list: every path below walks only the
  // enabled word lines.
  std::vector<std::int32_t>& active = t_active;
  active.clear();
  active.reserve(static_cast<std::size_t>(rows_));
  for (std::int64_t r = 0; r < rows_; ++r) {
    if (row_enable[static_cast<std::size_t>(r)]) {
      active.push_back(static_cast<std::int32_t>(r));
    }
  }

  if (ideal_ && never_clips_) {
    // Direct path: with exact digits and a wide ADC the shift-add over
    // cycles and slices telescopes to sum_r in[r] * (w[r][c] + offset) with
    // in[r] = input[r] truncated to act_bits, and the offset correction
    // cancels against the truncated part of the bias -- so compute the
    // signed product outright. For in-contract inputs the residual
    // correction below is zero.
    const std::uint32_t mask =
        act_bits >= 32 ? 0xFFFF'FFFFu : (1u << act_bits) - 1u;
    std::int64_t full_sum = 0, masked_sum = 0;
    for (const std::int32_t r : active) {
      full_sum += input[static_cast<std::size_t>(r)];
      const std::int64_t in = input[static_cast<std::size_t>(r)] & mask;
      masked_sum += in;
      if (in == 0) continue;
      const std::int64_t* row =
          signed_weights_.data() + static_cast<std::int64_t>(r) * cols_;
      for (std::int64_t c = 0; c < cols_; ++c) {
        acc[static_cast<std::size_t>(c)] += in * row[c];
      }
    }
    if (full_sum != masked_sum) {
      // The bit-serial reference streams only act_bits input bits but
      // corrects with the *full* input sum; mirror that bit-for-bit.
      for (std::int64_t c = 0; c < cols_; ++c) {
        acc[static_cast<std::size_t>(c)] -= offset_ * (full_sum - masked_sum);
      }
    }
    return;  // no clipping by construction
  }

  std::int64_t clips = 0;
  if (ideal_) {
    mvm_ideal_serial(input, active, act_bits, acc.data(), clips);
  } else {
    mvm_analog(input, active, act_bits, acc.data(), clips);
  }
  // Remove the offset-binary bias: stored = w + offset, so the analog result
  // overcounts by offset * sum(enabled inputs).
  std::int64_t input_sum = 0;
  for (const std::int32_t r : active) {
    input_sum += input[static_cast<std::size_t>(r)];
  }
  for (std::int64_t c = 0; c < cols_; ++c) {
    acc[static_cast<std::size_t>(c)] -= offset_ * input_sum;
  }
  if (clip_count != nullptr) *clip_count += clips;
}

std::vector<std::int64_t> CrossbarArray::mvm(
    const std::vector<std::uint32_t>& input,
    const std::vector<bool>& row_enable, int act_bits) const {
  std::vector<std::int64_t> acc;
  std::int64_t clips = 0;
  mvm(input, row_enable, act_bits, acc, &clips);
  clip_count_ = clips;
  return acc;
}

std::vector<std::int64_t> CrossbarArray::mvm(
    const std::vector<std::uint32_t>& input, int act_bits) const {
  return mvm(input, std::vector<bool>(input.size(), true), act_bits);
}

}  // namespace epim
