// Weight-to-crossbar mapping (paper Sec. 4.1, following MNSIM [13]).
//
// A weight tensor is unrolled to a (cin*kh*kw) x cout matrix; rows map to
// word lines, columns to bit lines. A k-bit weight spans ceil(k/cell_bits)
// physical columns (bit slices). The matrix is tiled over as many crossbars
// as needed. Epitomes map identically, just with their own (smaller) matrix.
#pragma once

#include <cstdint>

#include "pim/config.hpp"

namespace epim {

/// Result of mapping one weight matrix onto crossbars.
struct LayerMapping {
  std::int64_t rows = 0;           ///< logical matrix rows (word lines used)
  std::int64_t cols_logical = 0;   ///< logical matrix cols (output channels)
  int weight_bits = 0;
  std::int64_t slices = 0;         ///< physical columns per logical column
  std::int64_t cols_physical = 0;  ///< cols_logical * slices
  std::int64_t tiles_r = 0;        ///< crossbar tiles along rows
  std::int64_t tiles_c = 0;        ///< crossbar tiles along physical cols
  std::int64_t num_crossbars = 0;  ///< tiles_r * tiles_c
  double utilization = 0.0;        ///< used cells / allocated cells

  std::int64_t used_cells() const { return rows * cols_physical; }
};

/// Map a rows x cols logical weight matrix at the given precision.
LayerMapping map_weight_matrix(std::int64_t rows, std::int64_t cols,
                               int weight_bits, const CrossbarConfig& config);

}  // namespace epim
