#include "pim/mapping.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

std::int64_t CrossbarConfig::weight_slices(int weight_bits) const {
  EPIM_CHECK(weight_bits >= 1, "weight bits must be positive");
  EPIM_CHECK(cell_bits >= 1, "cell bits must be positive");
  return ceil_div(weight_bits, cell_bits);
}

LayerMapping map_weight_matrix(std::int64_t rows, std::int64_t cols,
                               int weight_bits,
                               const CrossbarConfig& config) {
  EPIM_CHECK(rows > 0 && cols > 0, "weight matrix must be non-empty");
  LayerMapping m;
  m.rows = rows;
  m.cols_logical = cols;
  m.weight_bits = weight_bits;
  m.slices = config.weight_slices(weight_bits);
  m.cols_physical = cols * m.slices;
  m.tiles_r = ceil_div(rows, config.rows);
  m.tiles_c = ceil_div(m.cols_physical, config.cols);
  m.num_crossbars = m.tiles_r * m.tiles_c;
  const double allocated = static_cast<double>(m.num_crossbars) *
                           static_cast<double>(config.rows * config.cols);
  m.utilization = static_cast<double>(m.used_cells()) / allocated;
  return m;
}

}  // namespace epim
