#include "pim/chip.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

std::int64_t noc_act_bytes(int act_bits) {
  EPIM_CHECK(act_bits >= 1 && act_bits <= 32, "act_bits out of range");
  return ceil_div(act_bits == 32 ? 16 : act_bits, 8);
}

ChipCost ChipModel::eval(const NetworkAssignment& assignment,
                         const PrecisionConfig& precision) const {
  EPIM_CHECK(tiles_.crossbars_per_tile > 0,
             "tiles must hold at least one crossbar");
  ChipCost chip;
  chip.compute = estimator_->eval_network(assignment, precision);

  // Floorplan: layers occupy contiguous tile runs in layer order; the mesh
  // is the smallest square holding all tiles.
  std::vector<std::int64_t> tile_begin;  // first tile of each layer
  std::int64_t next_tile = 0;
  for (const LayerCost& layer : chip.compute.layers) {
    tile_begin.push_back(next_tile);
    next_tile += ceil_div(layer.mapping.num_crossbars,
                          tiles_.crossbars_per_tile);
  }
  chip.num_tiles = std::max<std::int64_t>(1, next_tile);
  chip.mesh_dim = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(chip.num_tiles))));

  // NoC transport of every layer's OFM to the next layer's tiles (FP32
  // activations travel half-width; see noc_act_bytes).
  const double act_bytes =
      static_cast<double>(noc_act_bytes(precision.act_bits));
  auto tile_xy = [&](std::int64_t t) {
    return std::pair<std::int64_t, std::int64_t>{t % chip.mesh_dim,
                                                 t / chip.mesh_dim};
  };
  const auto& layers = assignment.layers();
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    const ConvLayerInfo& src = layers[i];
    const double bytes = static_cast<double>(src.conv.out_channels *
                                             src.output_positions()) *
                         act_bytes;
    const auto [ax, ay] = tile_xy(tile_begin[i]);
    const auto [bx, by] = tile_xy(tile_begin[i + 1]);
    const double hops = static_cast<double>(
        std::max<std::int64_t>(1, std::abs(ax - bx) + std::abs(ay - by)));
    const double flits =
        std::ceil(bytes / static_cast<double>(tiles_.noc_flit_bytes));
    // Wormhole-style: head flit pays the hop chain, the rest stream behind.
    chip.noc_latency_ms +=
        (hops * tiles_.noc_hop_ns + flits * tiles_.noc_hop_ns) * 1e-6;
    chip.noc_energy_mj += bytes * hops * tiles_.noc_hop_pj_per_byte * 1e-9;
  }

  // Pipelined steady state: the slowest layer bounds per-image latency; the
  // NoC overlaps with compute except for the final drain.
  double slowest = 0.0;
  for (const LayerCost& layer : chip.compute.layers) {
    slowest = std::max(slowest, layer.latency_ms);
  }
  chip.pipelined_latency_ms = slowest;
  return chip;
}

}  // namespace epim
