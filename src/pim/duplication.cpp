#include "pim/duplication.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace epim {

DuplicationPlan plan_duplication(const PimEstimator& estimator,
                                 const NetworkAssignment& assignment,
                                 const PrecisionConfig& precision,
                                 std::int64_t extra_crossbar_budget) {
  EPIM_CHECK(extra_crossbar_budget >= 0, "budget must be non-negative");
  const NetworkCost base = estimator.eval_network(assignment, precision);
  const std::size_t n = base.layers.size();

  DuplicationPlan plan;
  plan.copies.assign(n, 1);
  plan.latency_before_ms = base.latency_ms;

  // Greedy bottleneck relief: repeatedly duplicate the layer with the
  // largest effective latency while its next copy fits the budget.
  std::int64_t spent = 0;
  auto effective = [&](std::size_t i) {
    return base.layers[i].latency_ms /
           static_cast<double>(plan.copies[i]);
  };
  while (true) {
    std::size_t worst = 0;
    double worst_lat = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (effective(i) > worst_lat) {
        worst_lat = effective(i);
        worst = i;
      }
    }
    const std::int64_t copy_cost = base.layers[worst].mapping.num_crossbars;
    if (copy_cost <= 0 || spent + copy_cost > extra_crossbar_budget) break;
    // Adding a copy must actually help; when one copy would take the layer
    // below the runner-up it still helps, so the only stop is the budget.
    plan.copies[worst] += 1;
    spent += copy_cost;
  }
  plan.extra_crossbars = spent;
  plan.latency_after_ms = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    plan.latency_after_ms += effective(i);
  }
  return plan;
}

}  // namespace epim
