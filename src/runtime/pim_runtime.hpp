// Bit-accurate execution of a *trained* model on the simulated PIM chip.
//
// This is the deployment leg of the repo: it takes a trained
// SmallEpitomeNet, quantizes weights per output channel (symmetric signed,
// crossbar-programmable) and activations per site (unsigned, calibrated on
// a calibration set), programs the epitome weights onto functional
// CrossbarArrays -- optionally with device non-idealities -- and runs
// inference entirely through the IFAT/IFRT/OFAT engine, with digital
// per-channel dequantization, folded-BatchNorm affine, ReLU, pooling and the
// float classifier head.
//
// Because every MAC goes through the bit-sliced crossbar model, the
// accuracy this runtime measures is the accuracy the simulated chip would
// deliver -- the quantity behind the paper's "deployed" numbers.
//
// evaluate() fans images out across threads (see common/parallel.hpp); every
// image's forward pass is pure against the programmed crossbars and scratch
// state lives in per-chunk workspaces, so accuracy and clip counts are
// bit-identical at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "datapath/pim_engine.hpp"
#include "pim/crossbar.hpp"
#include "quant/activation_quant.hpp"
#include "train/dataset.hpp"
#include "train/small_net.hpp"

namespace epim {

struct RuntimeConfig {
  int weight_bits = 6;
  int act_bits = 8;
  /// Clipping percentile for activation calibration (1.0 = min/max).
  double act_percentile = 1.0;
  /// Crossbar geometry/precision the model is programmed onto. Note the
  /// default `adc_bits` (9) is the estimator's cost-model regime; the
  /// bit-accurate runtime usually needs a wider ADC to digitize a full
  /// column of partial sums without clipping. The Pipeline façade derives
  /// this from HardwareConfig::deploy_adc_bits (default 12); set it
  /// explicitly when constructing a RuntimeConfig by hand.
  CrossbarConfig crossbar{};
  NonIdealityConfig non_ideal{};
};

class PimNetworkRuntime {
 public:
  /// Calibrated input quantizers of the three on-chip blocks, in block
  /// order -- the state the activation-calibration pass produces and a
  /// deploy artifact persists.
  using ActivationParams = std::array<QuantParams, 3>;

  /// Compile the trained model: quantize, calibrate on `calibration`
  /// (forwarding it through the float model to observe activation ranges),
  /// and program the crossbars.
  PimNetworkRuntime(const SmallEpitomeNet& model, const Dataset& calibration,
                    RuntimeConfig config);

  /// Restore path (artifact load): rebuild from a deploy snapshot plus
  /// already-calibrated activation quantizers -- no calibration set needed.
  /// Weight quantization and crossbar programming are deterministic (the
  /// non-ideality RNG replays from config.non_ideal.seed), so the restored
  /// runtime is bit-identical to the one the snapshot was taken from.
  PimNetworkRuntime(SmallEpitomeNet::Deploy deploy,
                    const ActivationParams& act_params, RuntimeConfig config);

  const RuntimeConfig& config() const { return config_; }

  /// The float-side model state this runtime was compiled from (what a
  /// deploy artifact persists alongside config() and activation_params()).
  const SmallEpitomeNet::Deploy& deploy_state() const { return deploy_; }

  /// The calibrated input quantizers, block1..3.
  ActivationParams activation_params() const;

  /// Crossbars programmed across all on-chip layers.
  std::int64_t total_crossbars() const;

  /// ADC clip events during the most recent forward() (or, after
  /// evaluate(), summed over the whole dataset). Diagnostics only.
  std::int64_t last_clip_count() const { return clip_count_; }

  /// Run one (C, H, W) image fully on the simulated chip; returns logits.
  Tensor forward(const Tensor& image);

  /// Thread-safe variant: identical logits, clip events reported through
  /// *clips (set, not accumulated) instead of last_clip_count(), so
  /// concurrent callers sharing one programmed runtime never race.
  Tensor forward(const Tensor& image, std::int64_t* clips) const;

  /// Run a batch of (C, H, W) images, fanning out across the shared thread
  /// pool with per-chunk workspaces. logits[i] is bit-identical to
  /// forward(images[i]) at any batch size and thread count; when
  /// `per_image_clips` is non-null it receives one clip count per image.
  std::vector<Tensor> forward_batch(
      const std::vector<Tensor>& images,
      std::vector<std::int64_t>* per_image_clips = nullptr) const;

  /// Top-1 accuracy over a dataset, everything executed on-chip. Images are
  /// evaluated in parallel; the result is thread-count independent.
  double evaluate(const Dataset& dataset);

 private:
  struct CompiledBlock {
    ConvLayerInfo layer;
    std::unique_ptr<PimLayerEngine> engine;
    std::vector<double> weight_scale;  ///< per output channel
    /// Fully-resolved dequantization factor per output channel:
    /// act_in.scale * weight_scale[co % cout_e], hoisted out of run_block's
    /// pixel loops.
    std::vector<double> dequant;
    ChannelAffine bn;
    QuantParams act_in;  ///< quantizer for this block's input activations
  };

  /// Reusable per-thread scratch for one forward pass (quantized input
  /// codes); avoids reallocating the integer images for every block of
  /// every image.
  struct Workspace {
    IntImage pos, neg;
  };

  /// Quantize an epitome's weights per output channel and build the engine.
  CompiledBlock compile_block(const Epitome& epitome, const ChannelAffine& bn,
                              std::int64_t ifm, const std::string& name);

  /// Shared tail of both constructors: compile the three blocks, install the
  /// activation quantizers and hoist the per-channel dequant factors.
  void compile_network(const ActivationParams& act_params);

  /// Pure against the compiled model: all mutable state is in `ws`/`clips`.
  Tensor run_block(const CompiledBlock& block, const Tensor& input,
                   Workspace& ws, std::int64_t& clips) const;
  Tensor forward_impl(const Tensor& image, Workspace& ws,
                      std::int64_t& clips) const;

  RuntimeConfig config_;
  SmallEpitomeNet::Deploy deploy_;
  std::vector<CompiledBlock> blocks_;  // block1..3 in order
  Workspace scratch_;                  // forward()'s serial-path workspace
  std::int64_t clip_count_ = 0;
};

}  // namespace epim
