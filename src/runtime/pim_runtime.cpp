#include "runtime/pim_runtime.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "nn/conv_exec.hpp"

namespace epim {

namespace {

/// Float reference of one deployed block (for activation calibration).
Tensor float_block(const Epitome& epitome, const ChannelAffine& bn,
                   const Tensor& x, bool pool) {
  Tensor y = conv2d(x, epitome.reconstruct(), /*stride=*/1, /*pad=*/1);
  affine_relu(y, bn);
  return pool ? max_pool2d(y, 2, 2, 0) : y;
}

}  // namespace

PimNetworkRuntime::PimNetworkRuntime(const SmallEpitomeNet& model,
                                     const Dataset& calibration,
                                     RuntimeConfig config)
    : config_(config), deploy_(model.deploy()) {
  EPIM_CHECK(config_.weight_bits >= 2 && config_.weight_bits <= 16,
             "weight bits out of range");
  EPIM_CHECK(config_.act_bits >= 2 && config_.act_bits <= 16,
             "act bits out of range");
  EPIM_CHECK(calibration.size() > 0, "calibration set must be non-empty");

  // --- activation calibration on the float model ---
  ActivationObserver in_obs(config_.act_percentile);
  ActivationObserver mid2_obs(config_.act_percentile);
  ActivationObserver mid3_obs(config_.act_percentile);
  const std::int64_t n_cal = std::min<std::int64_t>(calibration.size(), 32);
  for (std::int64_t i = 0; i < n_cal; ++i) {
    const Tensor x = calibration.sample(i);
    // The first block sees signed inputs; observe magnitudes so the
    // symmetric input quantizer covers them.
    Tensor mag(x.shape());
    for (std::int64_t j = 0; j < x.numel(); ++j) {
      mag.at(j) = std::abs(x.at(j));
    }
    in_obs.observe(mag);
    const Tensor a1 = float_block(deploy_.block1, deploy_.bn1, x, false);
    mid2_obs.observe(a1);
    const Tensor a2 = float_block(deploy_.block2, deploy_.bn2, a1, true);
    mid3_obs.observe(a2);
  }

  // Input quantizers: block1 symmetric (signed, one bit spent on sign via
  // the +/- split); blocks 2-3 unsigned post-ReLU.
  compile_network({in_obs.params(config_.act_bits - 1),
                   mid2_obs.params(config_.act_bits),
                   mid3_obs.params(config_.act_bits)});
}

PimNetworkRuntime::PimNetworkRuntime(SmallEpitomeNet::Deploy deploy,
                                     const ActivationParams& act_params,
                                     RuntimeConfig config)
    : config_(config), deploy_(std::move(deploy)) {
  EPIM_CHECK(config_.weight_bits >= 2 && config_.weight_bits <= 16,
             "weight bits out of range");
  EPIM_CHECK(config_.act_bits >= 2 && config_.act_bits <= 16,
             "act bits out of range");
  for (const QuantParams& p : act_params) {
    EPIM_CHECK(p.scale > 0.0, "activation quantizer scale must be positive");
  }
  compile_network(act_params);
}

void PimNetworkRuntime::compile_network(const ActivationParams& act_params) {
  const std::int64_t s = deploy_.config.image_size;
  blocks_.push_back(compile_block(deploy_.block1, deploy_.bn1, s, "block1"));
  blocks_.push_back(compile_block(deploy_.block2, deploy_.bn2, s, "block2"));
  blocks_.push_back(
      compile_block(deploy_.block3, deploy_.bn3, s / 2, "block3"));
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    blocks_[b].act_in = act_params[b];
  }
  // With input scales known, resolve the full per-channel dequantization
  // factor once; run_block's inner loops index it directly.
  for (CompiledBlock& block : blocks_) {
    const std::int64_t cout = block.layer.conv.out_channels;
    const std::int64_t cout_e = block.engine->spec().cout_e;
    block.dequant.resize(static_cast<std::size_t>(cout));
    for (std::int64_t co = 0; co < cout; ++co) {
      block.dequant[static_cast<std::size_t>(co)] =
          block.act_in.scale *
          block.weight_scale[static_cast<std::size_t>(co % cout_e)];
    }
  }
}

PimNetworkRuntime::ActivationParams PimNetworkRuntime::activation_params()
    const {
  return {blocks_[0].act_in, blocks_[1].act_in, blocks_[2].act_in};
}

PimNetworkRuntime::CompiledBlock PimNetworkRuntime::compile_block(
    const Epitome& epitome, const ChannelAffine& bn, std::int64_t ifm,
    const std::string& name) {
  const EpitomeSpec& spec = epitome.spec();
  const std::int64_t rows = spec.rows();
  const std::int64_t cols = spec.cout_e;
  const std::int64_t qmax = (std::int64_t{1} << (config_.weight_bits - 1)) - 1;

  // Per-output-channel symmetric quantization: every epitome column gets its
  // own scale (hardware: one digital scaling factor per bit-line group,
  // matching the paper's per-crossbar scaling factors).
  CompiledBlock block;
  block.layer = ConvLayerInfo{name, epitome.conv(), ifm, ifm};
  block.bn = bn;
  block.weight_scale.assign(static_cast<std::size_t>(cols), 1.0);
  const Tensor& w = epitome.weights();  // (cout_e, cin_e, p, q)
  std::vector<std::vector<int>> qmatrix(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols), 0));
  for (std::int64_t c = 0; c < cols; ++c) {
    double amax = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
      amax = std::max(amax, std::abs(static_cast<double>(w.at(c * rows + r))));
    }
    const double scale = amax > 0 ? amax / static_cast<double>(qmax) : 1.0;
    block.weight_scale[static_cast<std::size_t>(c)] = scale;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t q = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::llround(w.at(c * rows + r) / scale)),
          -qmax, qmax);
      qmatrix[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          static_cast<int>(q);
    }
  }
  block.engine = std::make_unique<PimLayerEngine>(
      block.layer, spec, qmatrix, config_.weight_bits, config_.crossbar,
      config_.non_ideal);
  return block;
}

Tensor PimNetworkRuntime::run_block(const CompiledBlock& block,
                                    const Tensor& input, Workspace& ws,
                                    std::int64_t& clips) const {
  const ConvSpec& conv = block.layer.conv;
  const std::int64_t oh = block.layer.ofm_h(), ow = block.layer.ofm_w();
  const double s_in = block.act_in.scale;
  const bool signed_input = &block == &blocks_.front();

  auto to_codes = [&](IntImage& img, auto select) -> const IntImage& {
    img.channels = input.dim(0);
    img.height = input.dim(1);
    img.width = input.dim(2);
    img.data.resize(static_cast<std::size_t>(img.numel()));
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      img.data[static_cast<std::size_t>(i)] = select(input.at(i));
    }
    return img;
  };
  const std::int64_t code_max = block.act_in.max_code();
  auto quant = [&](float v) {
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::llround(std::abs(v) / s_in)), 0,
        code_max));
  };

  const int abits = signed_input ? config_.act_bits - 1 : config_.act_bits;
  IntOutput acc;
  if (signed_input) {
    // Differential input encoding: x = x+ - x-, two crossbar passes.
    const IntImage& pos =
        to_codes(ws.pos, [&](float v) { return v > 0 ? quant(v) : 0u; });
    const IntImage& neg =
        to_codes(ws.neg, [&](float v) { return v < 0 ? quant(v) : 0u; });
    acc = block.engine->run(pos, abits, &clips);
    const IntOutput acc_neg = block.engine->run(neg, abits, &clips);
    for (std::size_t i = 0; i < acc.data.size(); ++i) {
      acc.data[i] -= acc_neg.data[i];
    }
  } else {
    acc = block.engine->run(
        to_codes(ws.pos, [&](float v) { return quant(v); }), abits, &clips);
  }

  // Digital dequantization (per-channel weight scale x activation scale),
  // then the folded BatchNorm + ReLU.
  Tensor out({conv.out_channels, oh, ow});
  const std::int64_t plane = oh * ow;
  for (std::int64_t co = 0; co < conv.out_channels; ++co) {
    const double d = block.dequant[static_cast<std::size_t>(co)];
    for (std::int64_t p = 0; p < plane; ++p) {
      out.at(co * plane + p) = static_cast<float>(
          d * static_cast<double>(
                  acc.data[static_cast<std::size_t>(co * plane + p)]));
    }
  }
  affine_relu(out, block.bn);
  return out;
}

std::int64_t PimNetworkRuntime::total_crossbars() const {
  std::int64_t n = 0;
  for (const auto& b : blocks_) n += b.engine->num_crossbars();
  return n;
}

Tensor PimNetworkRuntime::forward_impl(const Tensor& image, Workspace& ws,
                                       std::int64_t& clips) const {
  EPIM_CHECK(image.rank() == 3, "forward expects a (C, H, W) image");
  Tensor a1 = run_block(blocks_[0], image, ws, clips);
  Tensor a2 = max_pool2d(run_block(blocks_[1], a1, ws, clips), 2, 2, 0);
  Tensor a3 = max_pool2d(run_block(blocks_[2], a2, ws, clips), 2, 2, 0);
  const Tensor pooled = global_avg_pool(a3);  // (64)
  // Float classifier head (kept at full precision, as in training).
  const std::int64_t k = deploy_.dense_w.dim(0);
  Tensor logits({k});
  for (std::int64_t j = 0; j < k; ++j) {
    double accum = deploy_.dense_b(j);
    for (std::int64_t f = 0; f < deploy_.dense_w.dim(1); ++f) {
      accum += static_cast<double>(deploy_.dense_w(j, f)) * pooled(f);
    }
    logits(j) = static_cast<float>(accum);
  }
  return logits;
}

Tensor PimNetworkRuntime::forward(const Tensor& image) {
  std::int64_t clips = 0;
  Tensor logits = forward_impl(image, scratch_, clips);
  clip_count_ = clips;
  return logits;
}

Tensor PimNetworkRuntime::forward(const Tensor& image,
                                  std::int64_t* clips) const {
  Workspace ws;
  std::int64_t c = 0;
  Tensor logits = forward_impl(image, ws, c);
  if (clips != nullptr) *clips = c;
  return logits;
}

std::vector<Tensor> PimNetworkRuntime::forward_batch(
    const std::vector<Tensor>& images,
    std::vector<std::int64_t>* per_image_clips) const {
  const std::int64_t n = static_cast<std::int64_t>(images.size());
  std::vector<Tensor> logits(images.size());
  if (per_image_clips != nullptr) {
    per_image_clips->assign(images.size(), 0);
  }
  // Every image's forward is pure against the programmed crossbars; results
  // land in per-image slots, so placement cannot affect the output.
  parallel_for_chunks(n, [&](int, std::int64_t begin, std::int64_t end) {
    Workspace ws;
    for (std::int64_t i = begin; i < end; ++i) {
      std::int64_t clips = 0;
      logits[static_cast<std::size_t>(i)] =
          forward_impl(images[static_cast<std::size_t>(i)], ws, clips);
      if (per_image_clips != nullptr) {
        (*per_image_clips)[static_cast<std::size_t>(i)] = clips;
      }
    }
  });
  return logits;
}

double PimNetworkRuntime::evaluate(const Dataset& dataset) {
  EPIM_CHECK(dataset.size() > 0, "cannot evaluate on an empty dataset");
  // Images fan out across threads; each chunk keeps its own workspace and
  // integer tallies, combined in chunk order (exact integer sums, so the
  // result is identical at any thread count).
  struct Tally {
    std::int64_t correct = 0;
    std::int64_t clips = 0;
  };
  const int chunks = std::max(num_chunks(dataset.size()), 1);
  std::vector<Tally> tallies(static_cast<std::size_t>(chunks));
  parallel_for_chunks(
      dataset.size(), chunks,
      [&](int chunk, std::int64_t begin, std::int64_t end) {
        Workspace ws;
        Tally& tally = tallies[static_cast<std::size_t>(chunk)];
        for (std::int64_t i = begin; i < end; ++i) {
          const Tensor logits = forward_impl(dataset.sample(i), ws,
                                             tally.clips);
          std::int64_t arg = 0;
          for (std::int64_t j = 1; j < logits.numel(); ++j) {
            if (logits.at(j) > logits.at(arg)) arg = j;
          }
          tally.correct +=
              arg == dataset.labels[static_cast<std::size_t>(i)] ? 1 : 0;
        }
      });
  std::int64_t correct = 0, clips = 0;
  for (const Tally& t : tallies) {
    correct += t.correct;
    clips += t.clips;
  }
  clip_count_ = clips;
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace epim
