#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "common/fault_inject.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/pim_runtime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace epim {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// The error a shed request's future carries. The prefix is pinned
/// (kErrDeadlineExceeded); the suffix reports how long the request actually
/// waited so a log line is actionable.
std::exception_ptr deadline_error(Clock::time_point enqueued,
                                  Clock::time_point now) {
  return std::make_exception_ptr(DeadlineExceeded(
      std::string(InferenceService::kErrDeadlineExceeded) + ": queued for " +
      std::to_string(ms_between(enqueued, now)) + " ms"));
}

/// How long a beyond-the-floor worker sits idle before retiring its slot
/// (the adaptive pool's shrink hysteresis: growth is one slot per
/// submission/batch-close event, shrink is one idle timeout per slot).
constexpr std::chrono::milliseconds kPoolShrinkIdle{50};

std::size_t prio_index(Priority priority) {
  return static_cast<std::size_t>(priority);
}

}  // namespace

InferenceService::InferenceService(DeployedModel model, ServeConfig config,
                                   const std::string& telemetry_label)
    : model_(std::move(model)),
      // Validate before any knob is consumed: sched_ below is built from
      // fairness_quantum, so a bad config must die here with the pinned
      // validate_serve message, not inside the scheduler.
      config_((validate_serve(config), config)),
      telemetry_label_(telemetry_label.empty() ? "default" : telemetry_label),
      sched_(config.fairness_quantum) {
  pool_cap_ = config_.max_workers > 0 ? config_.max_workers : config_.workers;
  // Resolve every series before any worker exists: the lookups take the
  // telemetry registration mutex (a leaf), and doing it here keeps that
  // mutex off every path that holds mu_/stats_mu_.
  telemetry::metrics::ensure_registered();
  {
    telemetry::Registry& reg = telemetry::Registry::process();
    const telemetry::Labels labels{{"model", telemetry_label_}};
    m_requests_ = reg.counter("epim_serve_requests_total", labels);
    m_batches_ = reg.counter("epim_serve_batches_total", labels);
    m_rejected_ = reg.counter("epim_serve_rejected_total", labels);
    m_deadline_misses_ =
        reg.counter("epim_serve_deadline_misses_total", labels);
    m_clip_events_ = reg.counter("epim_serve_clip_events_total", labels);
    // Queue depth and latency split by scheduling class: one
    // {model, priority} series per class, resolved up front like the rest.
    for (int p = 0; p < kNumPriorities; ++p) {
      const telemetry::Labels by_prio{
          {"model", telemetry_label_},
          {"priority", priority_name(static_cast<Priority>(p))}};
      m_queue_depth_[static_cast<std::size_t>(p)] =
          reg.gauge("epim_serve_queue_depth", by_prio);
      m_latency_[static_cast<std::size_t>(p)] =
          reg.histogram("epim_serve_latency_ms", by_prio);
    }
  }
  {
    // No worker exists yet, but these are guarded fields and the analysis
    // (correctly) has no "threads not started" concept; an uncontended
    // lock documents the invariant at zero cost.
    MutexLock lock(mu_);
    worker_in_flight_.assign(static_cast<std::size_t>(pool_cap_), 0);
    worker_live_.assign(static_cast<std::size_t>(pool_cap_), 0);
    for (int w = 0; w < config_.workers; ++w) {
      worker_live_[static_cast<std::size_t>(w)] = 1;
    }
    live_workers_ = config_.workers;
  }
  workers_.resize(static_cast<std::size_t>(pool_cap_));
  for (int w = 0; w < config_.workers; ++w) {
    workers_[static_cast<std::size_t>(w)] =
        std::thread([this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

InferenceService::~InferenceService() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();  // no-op after detach()
  }
}

DeployedModel InferenceService::detach() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // The workers' shutdown path flushes everything still queued (each keeps
  // closing batches until the queue is empty), and a worker mid-batch
  // finishes it before exiting, so every outstanding future resolves before
  // the model changes hands. stop_ also makes maybe_grow_locked a no-op,
  // so nothing mutates workers_ under this unlocked join.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  return std::move(model_);
}

std::future<InferenceResult> InferenceService::submit(Tensor image) {
  return submit(std::move(image), SubmitOptions{});
}

std::future<InferenceResult> InferenceService::submit(
    Tensor image, const SubmitOptions& options) {
  std::vector<Tensor> one;
  one.push_back(std::move(image));
  return std::move(submit_batch(std::move(one), options).front());
}

std::vector<std::future<InferenceResult>> InferenceService::submit_batch(
    std::vector<Tensor> images) {
  return submit_batch(std::move(images), SubmitOptions{});
}

std::vector<std::future<InferenceResult>> InferenceService::submit_batch(
    std::vector<Tensor> images, const SubmitOptions& options) {
  // An empty burst would either flush a zero-item batch or silently do
  // nothing depending on worker timing; pin it as a caller error.
  EPIM_CHECK(!images.empty(), "submit_batch requires a non-empty batch");
  EPIM_CHECK(options.deadline_ms >= 0.0,
             "deadline_ms must be non-negative (0 = no deadline), got " +
                 std::to_string(options.deadline_ms));
  const std::size_t prio = prio_index(options.priority);
  EPIM_CHECK(prio < static_cast<std::size_t>(kNumPriorities),
             "SubmitOptions::priority is out of range");

  // A burst larger than max_batch is reslice-eligible: its requests skip
  // the flush-deadline hold (their batch-mates arrived with them) and the
  // closing workers split the backlog into concurrent per-worker slices.
  const bool resliced =
      config_.reslice_bursts &&
      images.size() > static_cast<std::size_t>(config_.max_batch);

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(images.size());
  const auto now = Clock::now();
  {
    MutexLock lock(mu_);
    // The stop check must precede any model_ access: detach() moves the
    // model out (after setting stop_ under this lock), so a late submitter
    // must bounce here and never touch the husk.
    EPIM_CHECK(!stop_, "submit on a stopped InferenceService");
    // Validate every shape before anything is enqueued: a malformed
    // request fails fast at the submission site and can never take down
    // batch-mates.
    const SmallNetConfig& net = model_.model_config();
    for (const Tensor& image : images) {
      EPIM_CHECK(image.rank() == 3, "submit expects a (C, H, W) image");
      EPIM_CHECK(image.dim(0) == net.in_channels &&
                     image.dim(1) == net.image_size &&
                     image.dim(2) == net.image_size,
                 "submitted image shape does not match the deployed model");
    }
    if (config_.max_queue > 0) {
      // A reslice-eligible burst does not sit queued -- its slices stream
      // straight to the pool -- so it is admitted against max_queue plus
      // the pool's one-batch-per-worker absorption capacity. Everything
      // else (singles, bursts within max_batch, any burst with re-slicing
      // disabled) faces the strict max_queue bound: a burst that exceeds
      // max_queue only because re-slicing is off still throws the pinned
      // kErrBurstTooLarge.
      const std::size_t bound =
          static_cast<std::size_t>(config_.max_queue) +
          (resliced ? static_cast<std::size_t>(pool_cap_) *
                          static_cast<std::size_t>(config_.max_batch)
                    : 0);
      // A burst larger than the whole bound can NEVER be admitted, however
      // empty the queue: a caller error, not transient overload. It throws
      // InvalidArgument (Unavailable would invite futile retries) and does
      // not count as a rejection -- rejected_ measures genuine overload.
      EPIM_CHECK(images.size() <= bound,
                 std::string(kErrBurstTooLarge) + ": " +
                     std::to_string(images.size()) + " submitted > " +
                     std::to_string(bound) +
                     (resliced ? " (max_queue + max_workers*max_batch)"
                               : " (max_queue)"));
      // Admission control: all-or-nothing for the burst, decided atomically
      // with the enqueue so concurrent submitters can never overshoot the
      // bound -- and decided exactly ONCE, so the concurrent slices of an
      // admitted resliced burst are never re-checked (no double-reject).
      // Rejection is immediate: never block, never grow the queue. When
      // the bound would reject, first shed queued requests that are
      // already past their deadline: the workers would drop them at batch
      // close anyway, and live traffic must not bounce off the dead.
      if (sched_.size() + images.size() > bound) {
        shed_expired_locked(now);
      }
      if (sched_.size() + images.size() > bound) {
        m_rejected_->inc(static_cast<std::int64_t>(images.size()));
        MutexLock stats_lock(stats_mu_);
        rejected_ += static_cast<std::int64_t>(images.size());
        throw Unavailable(std::string(kErrQueueFull) + ": " +
                          std::to_string(sched_.size()) + " queued + " +
                          std::to_string(images.size()) + " submitted > " +
                          std::to_string(bound));
      }
    }
    // Record the throughput-window start *before* the requests become
    // visible to the workers: once any of them is counted in completed_,
    // the window start is guaranteed set. (Lock order mu_ -> stats_mu_ is
    // used nowhere in reverse.)
    {
      MutexLock stats_lock(stats_mu_);
      if (!saw_first_submit_) {
        saw_first_submit_ = true;
        first_submit_ = now;
      }
    }
    Clock::time_point deadline = Clock::time_point::max();
    if (options.deadline_ms > 0.0) {
      deadline = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options.deadline_ms));
    }
    for (Tensor& image : images) {
      SchedRequest request;
      request.image = std::move(image);
      request.enqueued = now;
      request.deadline = deadline;
      request.priority = options.priority;
      request.no_hold = resliced;
      futures.push_back(request.promise.get_future());
      sched_.enqueue(std::move(request), options.client_id);
    }
    // The per-class gauge mirrors sched_.size(Priority): +n here, -n at
    // batch close and at every deadline shed. Relaxed atomic, so updating
    // it under mu_ keeps the mirror exact without any new lock edge.
    m_queue_depth_[prio]->add(static_cast<std::int64_t>(images.size()));
    // Demand just arrived: give the adaptive pool its growth event.
    maybe_grow_locked();
  }
  cv_.notify_all();
  return futures;
}

int InferenceService::busy_workers_locked() const {
  int busy = 0;
  for (const std::int64_t n : worker_in_flight_) busy += n > 0;
  return busy;
}

void InferenceService::maybe_grow_locked() {
  if (stop_ || live_workers_ >= pool_cap_) return;
  const std::int64_t idle =
      static_cast<std::int64_t>(live_workers_) - busy_workers_locked();
  if (static_cast<std::int64_t>(sched_.size()) <=
      idle * static_cast<std::int64_t>(config_.max_batch)) {
    return;
  }
  for (std::size_t slot = 0; slot < worker_live_.size(); ++slot) {
    if (worker_live_[slot]) continue;
    // A retired slot's thread has cleared worker_live_ under mu_ and is
    // past any further locking -- the join below waits only for its
    // epilogue, never for mu_.
    if (workers_[slot].joinable()) workers_[slot].join();
    worker_live_[slot] = 1;
    ++live_workers_;
    workers_[slot] = std::thread([this, slot] { worker_loop(slot); });
    return;  // one slot per event: growth hysteresis
  }
}

void InferenceService::worker_loop(std::size_t worker) {
  const auto flush_dur =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              config_.flush_deadline_ms));
  MutexLock lock(mu_);
  for (;;) {
    // Explicit wait loop, not the predicate form: stop_ and sched_ are
    // guarded fields, and here the analysis can see mu_ is held. A worker
    // beyond the configured floor retires its slot after sitting idle for
    // the shrink hysteresis window; floor workers wait forever.
    while (!stop_ && sched_.empty()) {
      if (static_cast<int>(worker) >= config_.workers) {
        if (cv_.wait_until(lock, Clock::now() + kPoolShrinkIdle) ==
                std::cv_status::timeout &&
            !stop_ && sched_.empty()) {
          worker_live_[worker] = 0;
          --live_workers_;
          return;
        }
      } else {
        cv_.wait(lock);
      }
    }
    if (sched_.empty()) {
      if (stop_) return;
      continue;
    }
    // Continuous batching: hold for batch-mates until the oldest queued
    // request's flush deadline, a full batch, or shutdown (which flushes
    // immediately) -- but wake EARLY at the soonest request deadline, so an
    // expiring request is shed the moment it dies instead of riding out the
    // flush timer. A queued reslice burst also skips the hold: its
    // batch-mates arrived with it, so waiting buys nothing but latency and
    // would serialize the slices behind one worker's flush timer. A peer
    // may close a batch over this same queue while we wait, so both
    // deadlines re-anchor on whatever is queued now, and a drained queue
    // sends us back to the outer wait.
    while (!stop_ && sched_.no_hold_count() == 0 &&
           static_cast<int>(sched_.size()) < config_.max_batch) {
      const auto now = Clock::now();
      shed_expired_locked(now);
      if (sched_.empty()) break;
      const auto flush_at = sched_.oldest_enqueued() + flush_dur;
      if (now >= flush_at) break;
      const auto wake = std::min(flush_at, sched_.soonest_deadline());
      cv_.wait_until(lock, wake);
      if (sched_.empty()) break;
    }
    if (sched_.empty()) continue;
    // Close the batch. A final sweep first: a batch never runs work that is
    // already dead, including requests that expired during the waits above
    // or while this worker held a full queue. The timestamp doubles as the
    // batch-close time for the trace-span layer.
    const auto closed_at = Clock::now();
    shed_expired_locked(closed_at);
    if (sched_.empty()) continue;
    // Batch size: normally up to max_batch. While a resliced burst is
    // queued, split the backlog evenly across the idle workers (self
    // included) instead -- ceil(queued/idle), still capped at max_batch --
    // so the burst drains as concurrent slices rather than serial
    // max_batch chunks on this one worker.
    std::size_t n = std::min<std::size_t>(
        sched_.size(), static_cast<std::size_t>(config_.max_batch));
    if (sched_.no_hold_count() > 0) {
      const std::size_t idle = static_cast<std::size_t>(std::max(
          1, live_workers_ - busy_workers_locked()));
      const std::size_t slice = (sched_.size() + idle - 1) / idle;
      n = std::min(n, std::max<std::size_t>(1, slice));
    }
    std::vector<SchedRequest> batch;
    batch.reserve(n);
    sched_.select(n, batch);
    std::array<std::int64_t, kNumPriorities> closed_by_prio{};
    for (const SchedRequest& r : batch) ++closed_by_prio[prio_index(r.priority)];
    for (int p = 0; p < kNumPriorities; ++p) {
      if (closed_by_prio[static_cast<std::size_t>(p)] > 0) {
        m_queue_depth_[static_cast<std::size_t>(p)]->sub(
            closed_by_prio[static_cast<std::size_t>(p)]);
      }
    }
    worker_in_flight_[worker] = static_cast<std::int64_t>(batch.size());
    // This worker is about to go busy; if the remaining backlog still
    // exceeds what the (now fewer) idle workers can absorb, grow the pool
    // so the next slice closes concurrently.
    maybe_grow_locked();
    // Run the batch with the queue unlocked: peers keep closing batches
    // (multiple in flight per model) and submitters keep enqueueing while
    // this one computes. forward_batch is const and pure against the
    // programmed crossbars, so concurrent batches stay bit-identical.
    lock.unlock();
    cv_.notify_all();
    try {
      // Chaos hook at the batch-close seam: an injected serve.schedule
      // fault fails exactly this batch's futures (via the guard below) and
      // must never kill the worker or wedge the pool.
      fault::maybe_fail("serve.schedule");
      run_batch(batch, worker, closed_at);
    } catch (...) {
      // run_batch already routes forward-pass failures to the batch's
      // futures; this guard is for everything it could not anticipate
      // (bad_alloc in the stats fold, an armed serve.schedule fault, a
      // throwing fault point outside the forward try). A worker thread
      // must never die: fail whatever futures are still unfulfilled and
      // keep draining.
      const std::exception_ptr error = std::current_exception();
      for (SchedRequest& r : batch) {
        try {
          r.promise.set_exception(error);
        } catch (const std::future_error&) {
          // Promise already satisfied before the throw -- keep its value.
        }
      }
    }
    lock.lock();
    worker_in_flight_[worker] = 0;
  }
}

std::size_t InferenceService::shed_expired_locked(Clock::time_point now) {
  std::vector<SchedRequest> expired;
  if (sched_.shed_expired(now, expired) == 0) return 0;
  std::array<std::int64_t, kNumPriorities> shed_by_prio{};
  for (const SchedRequest& r : expired) ++shed_by_prio[prio_index(r.priority)];
  for (int p = 0; p < kNumPriorities; ++p) {
    if (shed_by_prio[static_cast<std::size_t>(p)] > 0) {
      m_queue_depth_[static_cast<std::size_t>(p)]->sub(
          shed_by_prio[static_cast<std::size_t>(p)]);
    }
  }
  m_deadline_misses_->inc(static_cast<std::int64_t>(expired.size()));
  // Count BEFORE failing the futures: a caller that observes a future's
  // DeadlineExceeded and then reads stats() must see the miss counted.
  {
    MutexLock stats_lock(stats_mu_);
    deadline_misses_ += static_cast<std::int64_t>(expired.size());
    for (int p = 0; p < kNumPriorities; ++p) {
      deadline_misses_by_priority_[static_cast<std::size_t>(p)] +=
          shed_by_prio[static_cast<std::size_t>(p)];
    }
  }
  for (SchedRequest& r : expired) {
    r.promise.set_exception(deadline_error(r.enqueued, now));
  }
  return expired.size();
}

void InferenceService::run_batch(std::vector<SchedRequest>& batch,
                                 std::size_t worker,
                                 Clock::time_point closed_at) {
  // One relaxed load decides whether this batch pays any tracing cost at
  // all; the run-begin clock read happens only when armed.
  const bool traced = telemetry::tracing();
  const auto run_begin = traced ? Clock::now() : closed_at;

  std::vector<Tensor> images;
  images.reserve(batch.size());
  for (SchedRequest& r : batch) images.push_back(std::move(r.image));

  std::vector<Tensor> logits;
  std::vector<std::int64_t> clips;
  try {
    // Chaos hook: an injected serve.run_batch fault takes the exact same
    // recovery path as a real forward-pass failure.
    fault::maybe_fail("serve.run_batch");
    logits = model_.forward_batch(images, &clips);
  } catch (...) {
    // Shapes were validated at submit, so this is unexpected; fail the
    // whole batch rather than wedge its futures, and keep serving.
    const std::exception_ptr error = std::current_exception();
    for (SchedRequest& r : batch) r.promise.set_exception(error);
    return;
  }

  // forward_batch's contract: one logits tensor and one clip count per
  // image. Per-batch hot path, so debug-only.
  EPIM_DCHECK(logits.size() == batch.size() && clips.size() == batch.size(),
              "forward_batch result count does not match the batch");

  const auto done = Clock::now();
  std::vector<InferenceResult> results(batch.size());
  std::int64_t batch_clips = 0;
  std::vector<double> batch_latencies;
  batch_latencies.reserve(batch.size());
  std::array<std::int64_t, kNumPriorities> done_by_prio{};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    InferenceResult& result = results[i];
    result.logits = std::move(logits[i]);
    result.clip_count = clips[i];
    for (std::int64_t j = 1; j < result.logits.numel(); ++j) {
      if (result.logits.at(j) > result.logits.at(result.predicted)) {
        result.predicted = j;
      }
    }
    batch_clips += clips[i];
    batch_latencies.push_back(ms_between(batch[i].enqueued, done));
    ++done_by_prio[prio_index(batch[i].priority)];
  }

  // Fleet telemetry: cached series pointers, relaxed atomics only -- no
  // lock is held and none is taken. The shared per-priority latency series
  // are cumulative (scrape-facing); interval_latency_ additionally backs
  // the resettable ServiceStats percentiles.
  m_requests_->inc(static_cast<std::int64_t>(batch.size()));
  m_batches_->inc(1);
  m_clip_events_->inc(batch_clips);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    m_latency_[prio_index(batch[i].priority)]->observe(batch_latencies[i]);
    interval_latency_.observe(batch_latencies[i]);
  }
  if (traced) {
    telemetry::SpanRecord span;
    std::snprintf(span.model, sizeof(span.model), "%s",
                  telemetry_label_.c_str());
    span.worker = static_cast<std::uint32_t>(worker);
    span.batch = static_cast<std::uint32_t>(batch.size());
    span.close_ms = telemetry::trace_ms(closed_at);
    span.run_begin_ms = telemetry::trace_ms(run_begin);
    span.run_end_ms = telemetry::trace_ms(done);
    for (const SchedRequest& r : batch) {
      span.submit_ms = telemetry::trace_ms(r.enqueued);
      telemetry::record_span(span);
    }
  }

  // Record stats before fulfilling any promise, so a stats() snapshot taken
  // right after a future resolves already counts that request.
  {
    MutexLock lock(stats_mu_);
    completed_ += static_cast<std::int64_t>(batch.size());
    batches_ += 1;
    clip_events_ += batch_clips;
    for (int p = 0; p < kNumPriorities; ++p) {
      completed_by_priority_[static_cast<std::size_t>(p)] +=
          done_by_prio[static_cast<std::size_t>(p)];
    }
    // Concurrent batches can reach this lock out of completion order; the
    // throughput window must end at the LATEST completion seen.
    if (done > last_done_) last_done_ = done;
    const auto window = static_cast<std::size_t>(config_.latency_window);
    for (const double latency : batch_latencies) {
      if (latencies_ms_.size() < window) {
        latencies_ms_.push_back(latency);
      } else {
        latencies_ms_[latency_next_] = latency;
        latency_next_ = (latency_next_ + 1) % window;
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
}

void InferenceService::reset() {
  // The interval histogram is per-instance, so resetting it here cannot
  // disturb the shared (cumulative) scrape series.
  interval_latency_.reset();
  MutexLock lock(stats_mu_);
  latencies_ms_.clear();
  latency_next_ = 0;
  completed_ = 0;
  batches_ = 0;
  clip_events_ = 0;
  rejected_ = 0;
  deadline_misses_ = 0;
  completed_by_priority_.fill(0);
  deadline_misses_by_priority_.fill(0);
  saw_first_submit_ = false;
  // Re-anchor the throughput window at the reset itself: requests that
  // were in flight across the reset complete into the NEW interval, so
  // their rate must be measured from now -- not from the old interval's
  // first submit. (The next submit re-anchors again via saw_first_submit_.)
  first_submit_ = Clock::now();
  last_done_ = first_submit_;
}

std::vector<double> InferenceService::recent_latencies_ms() const {
  MutexLock lock(stats_mu_);
  // Unroll the ring chronologically: once saturated, latency_next_ is the
  // oldest slot; while filling it stays 0, so this is a plain copy then.
  const std::size_t n = latencies_ms_.size();
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(latencies_ms_[(latency_next_ + i) % n]);
  }
  return out;
}

ServiceStats InferenceService::stats() const {
  ServiceStats s;
  s.workers = config_.workers;
  s.max_workers = pool_cap_;
  {
    MutexLock lock(stats_mu_);
    s.requests = completed_;
    s.batches = batches_;
    s.clip_events = clip_events_;
    s.rejected = rejected_;
    s.deadline_misses = deadline_misses_;
    s.completed_by_priority = completed_by_priority_;
    s.deadline_misses_by_priority = deadline_misses_by_priority_;
    if (completed_ > 0) {
      s.mean_batch_size = static_cast<double>(completed_) /
                          static_cast<double>(batches_);
      const double wall_s =
          std::chrono::duration<double>(last_done_ - first_submit_).count();
      s.items_per_sec = serve_detail::items_rate(completed_, wall_s);
    }
  }
  {
    MutexLock lock(mu_);
    s.queued = static_cast<std::int64_t>(sched_.size());
    for (int p = 0; p < kNumPriorities; ++p) {
      s.queued_by_priority[static_cast<std::size_t>(p)] =
          static_cast<std::int64_t>(
              sched_.size(static_cast<Priority>(p)));
    }
    for (const std::int64_t n : worker_in_flight_) {
      s.in_flight += n;
      s.busy_workers += n > 0;
    }
    s.live_workers = live_workers_;
  }
  // Percentiles come from the whole-interval histogram digest (every
  // completion since the last reset()), not the bounded recent-latency
  // ring: a burst larger than the ring can no longer evict the samples a
  // p99 is supposed to be made of. Resolution is the bucket upper bound.
  s.p50_latency_ms = interval_latency_.quantile(0.50);
  s.p99_latency_ms = interval_latency_.quantile(0.99);
  return s;
}

// DeployedModel::serve lives here so pipeline.hpp only needs a forward
// declaration of InferenceService.

InferenceService DeployedModel::serve() && {
  const ServeConfig config = serve_config_;
  return InferenceService(std::move(*this), config);
}

InferenceService DeployedModel::serve(const ServeConfig& config) && {
  return InferenceService(std::move(*this), config);
}

}  // namespace epim
