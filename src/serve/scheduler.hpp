// SLA-aware request scheduler backing InferenceService's dispatch core.
//
// The service used to drain one FIFO std::deque<Request>: a latency-critical
// request queued behind any bulk burst, and whichever client submitted
// fastest owned the queue. The Scheduler replaces that deque with a
// three-level policy, applied in order at every batch close:
//
//   1. PRIORITY  -- strict priority across the three classes
//                   (kInteractive > kNormal > kBulk), with an
//                   anti-starvation reservation: a class that sat non-empty
//                   through `fairness_quantum` consecutive selections while
//                   contributing nothing gets the FIRST slot of the next
//                   batch, so bulk work is delayed at most a bounded number
//                   of batch closes, never forever.
//   2. FAIRNESS  -- deficit round robin across clients within a class
//                   (SubmitOptions::client_id): each client's deficit is
//                   topped up by `fairness_quantum` requests when the ring
//                   cursor visits it and drawn down one per selected
//                   request, so a chatty client cannot lock out a quiet one
//                   and a quiet client cannot bank unbounded credit. The
//                   client table is bounded (kMaxClientQueues): clients past
//                   the bound share the anonymous "" bucket, so an
//                   adversarial client-id stream cannot grow memory.
//   3. FIFO      -- within one (class, client) queue, strict submission
//                   order.
//
// With a single client and a single class the whole policy degenerates to
// the original FIFO queue -- pinned by tests/test_scheduler.cpp.
//
// Burst re-slicing rides on the per-request `no_hold` flag: a reslice-
// eligible burst (larger than max_batch, reslice_bursts on) is enqueued
// whole with no_hold set, the service's hold loop skips the flush-deadline
// wait while any such request is queued, and each closing worker takes a
// ceil(queued/idle-workers) slice -- so the burst drains across the pool
// concurrently instead of as ceil(burst/max_batch) serial batches on one
// worker.
//
// Locking: the Scheduler is deliberately a PLAIN data structure with no
// mutex of its own. It slots under the existing InferenceService::mu_
// (declared EPIM_GUARDED_BY(mu_) there), so the fleet lock order
// `ModelRegistry::mu_` -> `InferenceService::mu_` -> stats_mu_ gains no new
// node and `ModelRegistry::mu_` keeps zero outgoing edges -- the lockdep
// invariant PR 8 pinned. tests/test_lockdebug.cpp drives priority traffic
// through a registry to prove it.
//
// Determinism contract: the scheduler only picks WHICH queued requests a
// worker closes next. Results stay bit-identical to direct forward_batch at
// any priority/client/worker mix -- scheduling may change completion order,
// never values (tests/test_serve.cpp pins the full grid).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace epim {

/// One completed inference.
struct InferenceResult {
  Tensor logits;
  /// argmax over the logits (top-1 class).
  std::int64_t predicted = 0;
  /// ADC clip events this image caused (0 = bit-exact digitization).
  std::int64_t clip_count = 0;
};

/// Request priority class. Strict ordering: a queued kInteractive request
/// is always selected before kNormal, which beats kBulk -- subject only to
/// the anti-starvation reservation documented on Scheduler.
enum class Priority : int {
  kInteractive = 0,  ///< latency-critical; always first
  kNormal = 1,       ///< the default
  kBulk = 2,         ///< throughput traffic; yields to everything
};

/// Number of priority classes (array extent for per-class counters).
inline constexpr int kNumPriorities = 3;

/// Telemetry label / log name for a class ("interactive"/"normal"/"bulk").
const char* priority_name(Priority priority);

/// Per-submission options (a struct so future knobs ride along without
/// another overload set).
struct SubmitOptions {
  /// Queueing budget in milliseconds, measured from submission: the request
  /// must be closed into a batch within this long or it is shed with
  /// DeadlineExceeded. 0 (the default) means no deadline; negative values
  /// are rejected with InvalidArgument.
  double deadline_ms = 0.0;
  /// Scheduling class (strict priority with a bounded anti-starvation
  /// reservation; see Priority).
  Priority priority = Priority::kNormal;
  /// Fairness bucket for deficit-round-robin selection within the class.
  /// Empty (the default) is the shared anonymous bucket; distinct ids get
  /// distinct DRR queues up to Scheduler::kMaxClientQueues, beyond which
  /// new ids fold back into the anonymous bucket.
  std::string client_id;
};

/// One queued request, as the scheduler stores it. Owned by the scheduler
/// from enqueue() until select()/shed_expired() moves it back out.
struct SchedRequest {
  Tensor image;
  std::promise<InferenceResult> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// Latest time a worker may close this request into a batch; max() means
  /// no deadline. Set once at submit from SubmitOptions::deadline_ms.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  Priority priority = Priority::kNormal;
  /// Set on every request of a reslice-eligible burst: the service's hold
  /// loop must not wait out the flush deadline while one is queued (its
  /// batch-mates arrived with it; holding buys nothing but latency).
  bool no_hold = false;
};

class Scheduler {
 public:
  /// Distinct named client queues per priority class. The 65th client of a
  /// class shares the anonymous "" bucket -- fairness degrades gracefully
  /// instead of memory growing with attacker-chosen ids.
  static constexpr std::size_t kMaxClientQueues = 64;

  /// `fairness_quantum` is both the DRR top-up (requests per client per
  /// ring visit) and the anti-starvation bound (consecutive empty-handed
  /// selections before a class gets a reserved slot). Validated >= 1 by
  /// validate_serve before the service constructs one.
  explicit Scheduler(int fairness_quantum);

  /// Queue `request` under (request.priority, client). FIFO within the
  /// (class, client) queue.
  void enqueue(SchedRequest request, const std::string& client);

  std::size_t size() const { return total_; }
  std::size_t size(Priority priority) const {
    return classes_[static_cast<std::size_t>(priority)].total;
  }
  bool empty() const { return total_ == 0; }
  /// Queued requests carrying the no_hold flag (reslice-eligible bursts).
  std::size_t no_hold_count() const { return no_hold_; }

  /// Earliest `enqueued` timestamp over all queued requests (the flush-
  /// deadline anchor). Requires !empty().
  std::chrono::steady_clock::time_point oldest_enqueued() const;
  /// Earliest deadline over all queued requests; time_point::max() when
  /// nothing queued carries one (the shed wake-up anchor).
  std::chrono::steady_clock::time_point soonest_deadline() const;

  /// Move up to `n` requests into `out` (appended) by priority -> DRR
  /// fairness -> FIFO. Returns the number selected. Selection never
  /// inspects request payloads, so it cannot affect results -- only order.
  std::size_t select(std::size_t n, std::vector<SchedRequest>& out);

  /// Remove every queued request whose deadline has passed, appending them
  /// to `out` (the caller fails their futures and counts the misses).
  /// Returns the number shed.
  std::size_t shed_expired(std::chrono::steady_clock::time_point now,
                           std::vector<SchedRequest>& out);

 private:
  struct ClientQueue {
    ClientQueue() = default;
    // Explicitly move-only: deque<SchedRequest>'s copy constructor is
    // declared (only ill-formed on instantiation, since promises cannot be
    // copied), so without this vector realloc would select the copy via
    // move_if_noexcept and fail to compile.
    ClientQueue(const ClientQueue&) = delete;
    ClientQueue& operator=(const ClientQueue&) = delete;
    ClientQueue(ClientQueue&&) = default;
    ClientQueue& operator=(ClientQueue&&) = default;

    std::string id;
    std::deque<SchedRequest> queue;
    /// DRR credit, in requests. Topped up by fairness_quantum_ when the
    /// ring cursor lands here with no credit left; drawn down one per
    /// selected request; discarded when the queue empties.
    int deficit = 0;
  };
  struct ClassState {
    /// Active clients in ring order. Bounded by kMaxClientQueues (+1 for
    /// the anonymous bucket); entries are erased as their queues empty.
    std::vector<ClientQueue> clients;
    std::size_t cursor = 0;  ///< DRR ring position
    std::size_t total = 0;   ///< queued requests across all clients
    /// Consecutive select() calls this class sat non-empty but contributed
    /// nothing (starved behind higher classes). At fairness_quantum_ the
    /// next select() reserves its first slot for this class.
    int passed_over = 0;
  };

  ClientQueue& client_queue(ClassState& cls, const std::string& id);
  /// DRR selection of up to `budget` requests from one class.
  std::size_t take_from_class(ClassState& cls, std::size_t budget,
                              std::vector<SchedRequest>& out);

  int fairness_quantum_;
  ClassState classes_[kNumPriorities];
  std::size_t total_ = 0;
  std::size_t no_hold_ = 0;
};

}  // namespace epim
