// Versioned binary serialization of pipeline artifacts (.epim files).
//
// An artifact turns a CompiledModel or DeployedModel into a durable,
// process-independent file: network topology, epitome weights, assignment,
// per-layer precision plan, calibrated quantizer state and the full
// HardwareConfig/PipelineConfig round-trip through one container, so a model
// compiled (or calibrated) once can be served by any number of processes
// without paying Pipeline::compile()/deploy() again.
//
// Container layout (all integers little-endian):
//
//   [0..7]   magic "EPIMART\0"
//   [8..11]  schema version (u32, currently kSchemaVersion below)
//   [12..15] artifact kind (u32: 1 = compiled model, 2 = deployed model)
//   [16..19] section count (u32)
//   then per section:
//     tag      8 bytes, NUL-padded ("config\0\0", "network\0", ...)
//     size     u64 payload bytes
//     checksum u64 FNV-1a over the payload
//     payload  size bytes
//
// load() verifies magic, version, kind and the section table up front;
// truncation, foreign files, future versions and bit corruption are all
// rejected with distinct InvalidArgument messages (see kErr* below, pinned
// by tests/test_serve.cpp). WHEN payload checksums are verified depends on
// the I/O mode (see IoMode): the mmap path maps the file read-only and
// checks each section lazily on its first decode touch; the read() path
// slurps the file and checks every section eagerly before decoding a byte.
// Both paths decode bit-identically and reject corruption with the same
// pinned kErrChecksum.
//
// Determinism contract: loading re-resolves the precision plan and
// re-programs the crossbars (non-ideality draws are re-seeded from the
// stored NonIdealityConfig::seed), so a loaded model is bit-identical to the
// one that was saved -- same estimator numbers, same logits, same clip
// counts. The property tests assert this for randomized configs.
#pragma once

#include <cstdint>
#include <string>

namespace epim {

class CompiledModel;
class DeployedModel;

namespace artifact {

/// Schema version written by save(); load() rejects anything else (the
/// codec reads fields positionally, so older payloads cannot be decoded
/// either -- they fail with a clean version error, never a misparse).
/// History: v1 = PR 3; v2 = ServeConfig gained latency_window/max_queue;
/// v3 = ServeConfig gained workers (continuous-batching worker count);
/// v4 = ServeConfig gained max_workers/fairness_quantum/reslice_bursts
/// (SLA-aware scheduling core).
inline constexpr std::uint32_t kSchemaVersion = 4;

/// Artifact kinds stored in the header.
enum class Kind : std::uint32_t {
  kCompiledModel = 1,
  kDeployedModel = 2,
};

// Exact rejection messages (EPIM_CHECK prepends "invalid argument: " and
// appends the failing expression/location).
inline constexpr const char* kErrCannotOpen = "cannot open artifact";
inline constexpr const char* kErrNotFile =
    "artifact path is not a regular file";
inline constexpr const char* kErrTruncated = "truncated artifact";
inline constexpr const char* kErrBadMagic = "not an EPIM artifact (bad magic)";
inline constexpr const char* kErrBadVersion =
    "unsupported artifact schema version";
inline constexpr const char* kErrBadKind = "artifact kind mismatch";
inline constexpr const char* kErrChecksum =
    "artifact section checksum mismatch";

/// Backing store load_*() decodes from.
enum class IoMode : std::uint32_t {
  /// Map the file read-only (zero-copy: decoders consume the page cache
  /// directly, no slurped heap duplicate of the weights) and verify each
  /// section's checksum LAZILY, on its first decode touch.
  kMmap,
  /// Slurp the whole file and verify every section EAGERLY before decoding
  /// a byte -- the original codec, kept as the golden reference the mmap
  /// path must stay bit-identical to (including rejection errors).
  kRead,
};

/// Process-wide I/O mode switch (atomic; applies to subsequent loads).
/// Defaults to kMmap on POSIX and kRead elsewhere; on platforms without
/// mmap the setting is recorded but loads always take the read path.
void set_io_mode(IoMode mode);
IoMode io_mode();

/// Header summary of an artifact on disk (cheap: reads only the 20-byte
/// header, never the payload).
struct Info {
  std::uint32_t version = 0;
  Kind kind = Kind::kCompiledModel;
};
Info probe(const std::string& path);

/// Serialize a compiled model (topology + assignment + precision plan +
/// full PipelineConfig) to `path`. Overwrites any existing file.
void save(const CompiledModel& model, const std::string& path);

/// Serialize a deployed model (quantized weights, folded BatchNorms, dense
/// head, calibrated activation quantizers, RuntimeConfig) to `path`.
void save(const DeployedModel& model, const std::string& path);

/// Load a compiled-model artifact. The embedded PipelineConfig rebuilds the
/// backend/estimator, so the result is self-contained.
CompiledModel load_compiled(const std::string& path);

/// Load a deployed-model artifact and re-program the crossbars; the result
/// answers forward()/evaluate() bit-identically to the saved model.
DeployedModel load_deployed(const std::string& path);

}  // namespace artifact

/// Private-access bridge between the artifact codec and the façade types
/// (declared a friend by CompiledModel/DeployedModel/PimNetworkRuntime).
class ArtifactCodec {
 public:
  static void save_compiled(const CompiledModel& model,
                            const std::string& path);
  static void save_deployed(const DeployedModel& model,
                            const std::string& path);
  static CompiledModel load_compiled(const std::string& path);
  static DeployedModel load_deployed(const std::string& path);
};

}  // namespace epim
