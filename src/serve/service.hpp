// Throughput-oriented serving front-end over a DeployedModel.
//
// An InferenceService owns a programmed chip (a DeployedModel, typically
// loaded from a `.epim` artifact) plus a pool of ServeConfig::workers batch
// threads implementing continuous batching: submitted requests queue until
// either `max_batch` of them are pending or the oldest has waited
// `flush_deadline_ms`; a free worker then closes that batch and runs it
// (PimNetworkRuntime::forward_batch, fanning out across the shared compute
// pool) while the remaining workers keep draining the queue. With
// `workers > 1` several batches are in flight per model, so batch formation
// overlaps execution and a large batch no longer head-of-line-blocks the
// requests queued behind it. This is the compiled-artifact + batched-executor
// split of TVM/MLPerf-style serving stacks, applied to the simulated PIM
// chip.
//
// Determinism contract: every image's forward pass is pure against the
// programmed crossbars, so the logits (and per-request clip counts) a
// service returns are bit-identical to direct PimNetworkRuntime::evaluate /
// forward at ANY batch size, worker count and thread count -- scheduling
// changes throughput, latency and completion ORDER, never values.
// tests/test_serve.cpp asserts this.
//
// Thread safety: submit()/submit_batch()/stats()/reset() may be called from
// any number of threads. The destructor (and detach()) drains the queue
// (every returned future is fulfilled) before joining all workers.
// Admission control: with ServeConfig::max_queue set, a submission that
// would push the queue past the bound throws epim::Unavailable immediately
// instead of blocking or growing the queue without bound; a single burst
// larger than the bound itself can never be admitted and throws
// InvalidArgument instead (retrying cannot help).
//
// Deadlines: a request submitted with SubmitOptions::deadline_ms must START
// EXECUTING within that budget or it is shed -- its future fails with
// epim::DeadlineExceeded (pinned kErrDeadlineExceeded prefix) and the miss
// is counted in ServiceStats::deadline_misses. Shedding happens at two
// seams and nowhere else: (1) at batch close, so a closing worker never
// runs work that is already dead (dead requests anywhere in the queue are
// swept, not just at the front), and (2) at admission when the queue is at
// the max_queue bound, where expired queued requests are swept first so
// live traffic is not rejected behind the dead. A request whose deadline
// passes mid-execution still completes normally: the deadline bounds
// queueing delay, not execution.
//
// Scheduling (serve/scheduler.hpp): batch selection is strict priority
// (SubmitOptions::priority) -> deficit-round-robin client fairness
// (SubmitOptions::client_id) -> FIFO, with a bounded anti-starvation
// reservation so bulk traffic is delayed at most ServeConfig::
// fairness_quantum batch closes. A submit_batch burst larger than
// max_batch is re-sliced across idle workers (ServeConfig::reslice_bursts)
// instead of draining serially, and the worker pool grows/shrinks within
// [workers, max_workers] from queue depth and busy workers. None of this
// can change results -- only completion order (the PR 5 bit-identity
// contract, re-pinned across the priorities x clients x workers grid).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace epim {

namespace serve_detail {

/// Completed-items rate over a measured wall interval. A coarse steady
/// clock can round (last completion - first submit) to exactly zero even
/// though requests completed; fall back to a one-tick wall so the rate is
/// finite and positive whenever anything completed (zero items is the only
/// zero rate). Free function so the zero-wall branch is unit-testable
/// without a hook into the clock.
inline double items_rate(std::int64_t completed, double wall_seconds) {
  if (completed <= 0) return 0.0;
  const double tick =
      std::chrono::duration<double>(std::chrono::steady_clock::duration(1))
          .count();
  return static_cast<double>(completed) / std::max(wall_seconds, tick);
}

}  // namespace serve_detail

/// Monotonic counters + latency digest, snapshotted under the stats lock.
struct ServiceStats {
  std::int64_t requests = 0;       ///< completed requests
  std::int64_t batches = 0;        ///< flushes executed
  double mean_batch_size = 0.0;    ///< requests / batches
  /// Completed requests per second of wall time between the first submit
  /// and the most recent completion (0 until something completed; a wall
  /// that rounds to zero on a coarse clock falls back to one clock tick,
  /// so completed traffic always reports a positive finite rate).
  double items_per_sec = 0.0;
  /// Request latency (submit -> result ready), simulated-request terms:
  /// wall clock of the simulator, not of modelled PIM hardware. Since the
  /// telemetry PR these come from the service's log-bucket latency
  /// histogram over the WHOLE interval (reset() starts a new one), so the
  /// digest covers every completed request at O(1) memory -- reported at
  /// bucket-upper-bound resolution (power-of-two buckets). The exact
  /// recent-window samples remain available via recent_latencies_ms().
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// ADC clip events summed over all completed requests.
  std::int64_t clip_events = 0;
  /// Requests refused by admission control (ServeConfig::max_queue), i.e.
  /// submissions that threw epim::Unavailable. Bursts rejected as never
  /// admissible (InvalidArgument) are caller errors, not traffic, and are
  /// NOT counted here.
  std::int64_t rejected = 0;
  /// Requests shed because their SubmitOptions::deadline_ms expired before
  /// a worker closed them into a batch (their futures failed with
  /// DeadlineExceeded). Disjoint from `rejected`: a miss was admitted and
  /// then died waiting; a rejection never entered the queue.
  std::int64_t deadline_misses = 0;
  /// Requests currently queued (not yet closed into a batch).
  std::int64_t queued = 0;
  /// Requests closed into a batch that is still executing, summed over all
  /// workers.
  std::int64_t in_flight = 0;
  /// Batch workers this service was configured with (ServeConfig::workers;
  /// the adaptive pool's floor).
  int workers = 0;
  /// Workers currently executing a batch (<= live_workers).
  int busy_workers = 0;
  /// Workers currently alive in the adaptive pool, in [workers,
  /// max_workers]. Equals `workers` for a fixed pool.
  int live_workers = 0;
  /// Adaptive-pool ceiling (resolved: equals `workers` when
  /// ServeConfig::max_workers is 0).
  int max_workers = 0;
  /// Per-priority-class splits of `queued`, `requests` and
  /// `deadline_misses`, indexed by static_cast<int>(Priority). The scalar
  /// fields above remain the class sums.
  std::array<std::int64_t, kNumPriorities> queued_by_priority{};
  std::array<std::int64_t, kNumPriorities> completed_by_priority{};
  std::array<std::int64_t, kNumPriorities> deadline_misses_by_priority{};
};

class InferenceService {
 public:
  /// Takes ownership of the programmed chip. `config` is validated here
  /// (same rules as PipelineConfig::validate()). `telemetry_label` is the
  /// {model} label this service's metric series carry in the process
  /// telemetry registry ("name@version" when the registry materializes it;
  /// "default" for a bare service). Instances sharing a label share series
  /// -- counters aggregate, the queue-depth gauge sums -- which is the
  /// Prometheus model. Series are resolved here, before any worker starts,
  /// so the hot path never touches the telemetry registration lock.
  InferenceService(DeployedModel model, ServeConfig config,
                   const std::string& telemetry_label);
  InferenceService(DeployedModel model, ServeConfig config)
      : InferenceService(std::move(model), std::move(config), "default") {}
  explicit InferenceService(DeployedModel model)
      : InferenceService(std::move(model), ServeConfig{}) {}

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Drains every pending request, then stops all workers.
  ~InferenceService();

  const RuntimeConfig& runtime_config() const {
    return model_.runtime_config();
  }

  /// Batch workers this service was configured with.
  int workers() const { return config_.workers; }

  /// Enqueue one (C, H, W) image. The shape is validated against the
  /// deployed model here (throws InvalidArgument), so a malformed request
  /// can never poison a batch. The future is fulfilled when the batch
  /// containing this request completes. When ServeConfig::max_queue is set
  /// and the queue is at the bound, throws epim::Unavailable immediately --
  /// admission never blocks the caller or grows the queue.
  std::future<InferenceResult> submit(Tensor image);
  /// As above, with per-request options (deadline). The future of a request
  /// shed for missing its deadline fails with epim::DeadlineExceeded.
  std::future<InferenceResult> submit(Tensor image,
                                      const SubmitOptions& options);

  /// Enqueue a burst atomically: the workers see all images at once, so
  /// full batches flush immediately instead of waiting out the deadline.
  /// An empty burst is rejected with InvalidArgument (a zero-item flush is
  /// always a caller bug), and so is a burst larger than its admission
  /// bound (it could never be admitted, no matter how empty the queue --
  /// that is a caller error, not transient overload, so it is not
  /// Unavailable and not counted in ServiceStats::rejected). The bound is
  /// max_queue, except for a reslice-eligible burst (reslice_bursts on and
  /// the burst larger than max_batch), which is admitted against max_queue
  /// + max_workers*max_batch: its slices go to the pool concurrently
  /// instead of sitting queued. Admission control applies to the whole
  /// burst, decided ONCE under the queue lock at submit: either every
  /// image is admitted or none is, and concurrent slices of an admitted
  /// burst can never be re-checked (so never double-rejected).
  std::vector<std::future<InferenceResult>> submit_batch(
      std::vector<Tensor> images);
  /// As above, with per-request options applied to every image in the burst.
  std::vector<std::future<InferenceResult>> submit_batch(
      std::vector<Tensor> images, const SubmitOptions& options);

  /// Consistent snapshot of the counters.
  ServiceStats stats() const;

  /// Zero every stats counter and clear the latency window, starting a new
  /// measurement interval (a registry snapshots per-interval fleet stats
  /// this way). Queued and in-flight requests are untouched: they complete
  /// normally and count toward the NEW interval; the throughput window
  /// restarts at the next submit after the reset.
  void reset();

  /// Copy of the recent-latency ring in CHRONOLOGICAL order (oldest first,
  /// at most ServeConfig::latency_window entries). Lets a fleet aggregator
  /// compute percentiles over the POOLED windows of many services -- which
  /// cannot be derived from the per-service p50/p99 -- and doubles as a
  /// time series for trend-style callers.
  std::vector<double> recent_latencies_ms() const;

  /// Drain every pending request, stop and join all workers, and return
  /// the deployed model -- the inverse of construction. The registry uses
  /// this to evict a cold service without losing an in-memory model, and
  /// to let in-flight traffic finish before a hot swap. Afterwards the
  /// service is terminal: submissions throw, but stats() stays readable
  /// (final values).
  ///
  /// Registry pin/drain contract: ModelRegistry never calls detach() while
  /// any thread holds a pin on the owning entry -- eviction skips pinned
  /// entries outright and reload() parks on the entry's condvar until
  /// pins reach zero -- so every submit_batch()/stats() issued through a
  /// pin runs against a live, un-detached service. detach() itself is
  /// always invoked with the registry mutex RELEASED (the entry is parked
  /// in kDraining first), so a drain can never stall registry admission.
  DeployedModel detach();

  /// Admission-rejection message prefix (pinned by tests).
  static constexpr const char* kErrQueueFull =
      "service queue is full (admission control)";
  /// Never-admissible-burst message prefix (pinned by tests): the burst is
  /// larger than its admission bound (max_queue, or max_queue +
  /// max_workers*max_batch for a reslice-eligible burst), so retrying can
  /// never succeed.
  static constexpr const char* kErrBurstTooLarge =
      "burst exceeds the admission bound and can never be admitted";
  /// Deadline-shed message prefix (pinned by tests). Carried by every
  /// epim::DeadlineExceeded this service raises.
  static constexpr const char* kErrDeadlineExceeded =
      "request deadline exceeded before execution started";

 private:
  void worker_loop(std::size_t worker) EPIM_EXCLUDES(mu_, stats_mu_);
  /// Sweep the scheduler for requests whose deadline has passed: each is
  /// removed, its future fails with DeadlineExceeded and the miss is
  /// counted (per class). Fulfilling a promise under mu_ is safe --
  /// set_exception only stores the error and wakes waiters, it runs no
  /// user code. Returns the number shed.
  std::size_t shed_expired_locked(std::chrono::steady_clock::time_point now)
      EPIM_REQUIRES(mu_) EPIM_EXCLUDES(stats_mu_);
  /// Adaptive-pool growth: start (or recycle) ONE retired worker slot when
  /// the queue holds more than the idle workers could absorb in a single
  /// batch each (queued > idle * max_batch) and the pool is below its
  /// ceiling. One slot per call is the growth hysteresis -- a burst grows
  /// the pool over several submissions/batch closes, not in one spike.
  /// No-op once stop_ is set, so teardown can join workers_ unlocked.
  void maybe_grow_locked() EPIM_REQUIRES(mu_);
  /// Workers currently executing a batch. EPIM_REQUIRES(mu_).
  int busy_workers_locked() const EPIM_REQUIRES(mu_);
  /// Runs with NO lock held (the closing worker unlocks around it): several
  /// batches execute concurrently, and the stats lock is taken only for the
  /// final counter fold. A throwing forward pass (or an armed
  /// serve.run_batch fault point) fails the batch's futures and leaves the
  /// worker serving; worker_loop adds a last-ditch guard so no exception
  /// whatsoever can kill a worker thread. `worker` and `closed_at` (the
  /// batch-close timestamp the closing worker already read) exist for the
  /// trace-span layer, which records them only while telemetry tracing is
  /// armed.
  void run_batch(std::vector<SchedRequest>& batch, std::size_t worker,
                 std::chrono::steady_clock::time_point closed_at)
      EPIM_EXCLUDES(mu_, stats_mu_);

  /// Exclusively owned by construction and (post-join) by detach(); workers
  /// read it concurrently through the const forward_batch path. Not
  /// guardable by a mutex: the stop_-then-join protocol is the guard (a
  /// submitter must check stop_ under mu_ before touching the model, and
  /// detach() moves it out only after every worker joined).
  DeployedModel model_;
  ServeConfig config_;  ///< immutable after construction

  // --- telemetry (resolved once in the constructor; every record below is
  // relaxed atomics on cached pointers, legal under any of our locks) ---
  std::string telemetry_label_;  ///< {model} label; immutable
  telemetry::Counter* m_requests_ = nullptr;
  telemetry::Counter* m_batches_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_deadline_misses_ = nullptr;
  telemetry::Counter* m_clip_events_ = nullptr;
  /// Per-priority {model, priority} series: the queue-depth gauges mirror
  /// sched_.size(Priority) exactly; the latency histograms are shared
  /// (cumulative, never reset). Indexed by static_cast<int>(Priority).
  std::array<telemetry::Gauge*, kNumPriorities> m_queue_depth_{};
  std::array<telemetry::Histogram*, kNumPriorities> m_latency_{};
  /// Private per-instance latency histogram backing ServiceStats::p50/p99
  /// (the shared series above aggregates across instances and outlives
  /// reset(), so it cannot serve per-service interval percentiles).
  /// Lock-free like every Histogram; reset() by the stats reset.
  telemetry::Histogram interval_latency_;

  /// Queue lock; ACQUIRED_BEFORE documents (and lockdep enforces) the only
  /// legal nesting with the stats lock: mu_ -> stats_mu_, never reverse.
  mutable Mutex mu_ EPIM_ACQUIRED_BEFORE(stats_mu_){"InferenceService::mu_"};
  CondVar cv_;
  /// The SLA-aware dispatch core. A plain data structure guarded by mu_ --
  /// NOT a lock of its own -- so the fleet lock order gains no new node
  /// and ModelRegistry::mu_ keeps zero outgoing edges (the PR 8 lockdep
  /// invariant; tests/test_lockdebug.cpp re-proves it under priority
  /// traffic).
  Scheduler sched_ EPIM_GUARDED_BY(mu_);
  bool stop_ EPIM_GUARDED_BY(mu_) = false;
  /// Adaptive-pool ceiling, resolved at construction (== workers when
  /// ServeConfig::max_workers is 0). Immutable; sizes the slot arrays.
  int pool_cap_ = 0;
  /// Requests each worker slot has closed into its current batch (0 =
  /// idle). Summed for ServiceStats::in_flight. Sized pool_cap_.
  std::vector<std::int64_t> worker_in_flight_ EPIM_GUARDED_BY(mu_);
  /// Which slots currently hold a live worker thread. A shrinking worker
  /// clears its flag under mu_ just before returning; maybe_grow_locked
  /// joins the exited thread and relaunches the slot. Sized pool_cap_.
  std::vector<char> worker_live_ EPIM_GUARDED_BY(mu_);
  int live_workers_ EPIM_GUARDED_BY(mu_) = 0;

  mutable Mutex stats_mu_{"InferenceService::stats_mu_"};
  /// Ring buffer of the last ServeConfig::latency_window request latencies.
  std::vector<double> latencies_ms_ EPIM_GUARDED_BY(stats_mu_);
  /// Ring write position once saturated.
  std::size_t latency_next_ EPIM_GUARDED_BY(stats_mu_) = 0;
  std::int64_t completed_ EPIM_GUARDED_BY(stats_mu_) = 0;
  std::int64_t batches_ EPIM_GUARDED_BY(stats_mu_) = 0;
  std::int64_t clip_events_ EPIM_GUARDED_BY(stats_mu_) = 0;
  std::int64_t rejected_ EPIM_GUARDED_BY(stats_mu_) = 0;
  std::int64_t deadline_misses_ EPIM_GUARDED_BY(stats_mu_) = 0;
  /// Per-class splits of completed_/deadline_misses_ (the scalars stay the
  /// sums, so existing consumers are untouched).
  std::array<std::int64_t, kNumPriorities> completed_by_priority_
      EPIM_GUARDED_BY(stats_mu_){};
  std::array<std::int64_t, kNumPriorities> deadline_misses_by_priority_
      EPIM_GUARDED_BY(stats_mu_){};
  bool saw_first_submit_ EPIM_GUARDED_BY(stats_mu_) = false;
  std::chrono::steady_clock::time_point first_submit_
      EPIM_GUARDED_BY(stats_mu_);
  std::chrono::steady_clock::time_point last_done_ EPIM_GUARDED_BY(stats_mu_);

  /// Worker threads by slot, sized pool_cap_ (retired slots hold joined or
  /// default-constructed threads). Last member: joins before teardown.
  /// Written only under mu_ while workers run (maybe_grow_locked) and by
  /// the quiescent join loops in ~InferenceService/detach(), which run
  /// after stop_ is set under mu_ -- at that point maybe_grow_locked is a
  /// no-op, so the unlocked joins race with nothing.
  std::vector<std::thread> workers_;
};

}  // namespace epim
