#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace epim {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBulk:
      return "bulk";
  }
  return "normal";  // unreachable for in-range enums
}

Scheduler::Scheduler(int fairness_quantum)
    : fairness_quantum_(fairness_quantum) {
  EPIM_CHECK(fairness_quantum >= 1,
             "scheduler fairness_quantum must be positive");
}

Scheduler::ClientQueue& Scheduler::client_queue(ClassState& cls,
                                                const std::string& id) {
  for (ClientQueue& client : cls.clients) {
    if (client.id == id) return client;
  }
  // Bound the table: a stream of fresh client ids folds into the shared
  // anonymous bucket instead of growing the ring without limit. The
  // anonymous bucket itself is always creatable (it is the fold target).
  if (!id.empty() && cls.clients.size() >= kMaxClientQueues) {
    return client_queue(cls, std::string());
  }
  cls.clients.push_back(ClientQueue{});
  cls.clients.back().id = id;
  return cls.clients.back();
}

void Scheduler::enqueue(SchedRequest request, const std::string& client) {
  ClassState& cls = classes_[static_cast<std::size_t>(request.priority)];
  if (request.no_hold) ++no_hold_;
  client_queue(cls, client).queue.push_back(std::move(request));
  ++cls.total;
  ++total_;
}

std::chrono::steady_clock::time_point Scheduler::oldest_enqueued() const {
  // Each (class, client) deque is FIFO, so its front is its oldest entry;
  // the global oldest is the min over fronts.
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const ClassState& cls : classes_) {
    for (const ClientQueue& client : cls.clients) {
      if (!client.queue.empty()) {
        oldest = std::min(oldest, client.queue.front().enqueued);
      }
    }
  }
  return oldest;
}

std::chrono::steady_clock::time_point Scheduler::soonest_deadline() const {
  // Deadlines are per-request (not monotone within a queue): scan them all,
  // exactly as the pre-scheduler FIFO loop scanned its deque.
  auto soonest = std::chrono::steady_clock::time_point::max();
  for (const ClassState& cls : classes_) {
    for (const ClientQueue& client : cls.clients) {
      for (const SchedRequest& request : client.queue) {
        soonest = std::min(soonest, request.deadline);
      }
    }
  }
  return soonest;
}

std::size_t Scheduler::take_from_class(ClassState& cls, std::size_t budget,
                                       std::vector<SchedRequest>& out) {
  std::size_t taken = 0;
  while (taken < budget && cls.total > 0) {
    if (cls.cursor >= cls.clients.size()) cls.cursor = 0;
    ClientQueue& client = cls.clients[cls.cursor];
    if (client.queue.empty()) {
      // Drained on a previous call; drop the entry (its banked deficit
      // with it -- credit never outlives the backlog that earned it).
      cls.clients.erase(cls.clients.begin() +
                        static_cast<std::ptrdiff_t>(cls.cursor));
      continue;
    }
    if (client.deficit <= 0) client.deficit += fairness_quantum_;
    while (taken < budget && client.deficit > 0 && !client.queue.empty()) {
      if (client.queue.front().no_hold) --no_hold_;
      out.push_back(std::move(client.queue.front()));
      client.queue.pop_front();
      --client.deficit;
      --cls.total;
      --total_;
      ++taken;
    }
    if (client.queue.empty()) {
      cls.clients.erase(cls.clients.begin() +
                        static_cast<std::ptrdiff_t>(cls.cursor));
    } else if (client.deficit <= 0) {
      ++cls.cursor;  // credit spent: next client's turn
    }
    // Budget exhausted with credit left: cursor stays put, so the next
    // select() resumes this client's turn -- classic DRR continuation.
  }
  return taken;
}

std::size_t Scheduler::select(std::size_t n, std::vector<SchedRequest>& out) {
  if (n == 0 || total_ == 0) return 0;
  std::size_t taken = 0;
  std::size_t contributed[kNumPriorities] = {0, 0, 0};
  // Anti-starvation reservation first: any class that sat non-empty through
  // fairness_quantum_ selections contributing nothing gets one slot BEFORE
  // the strict-priority fill, so bulk progress is bounded by batch closes,
  // not by interactive arrival gaps.
  for (std::size_t p = 0; p < kNumPriorities && taken < n; ++p) {
    ClassState& cls = classes_[p];
    if (cls.total > 0 && cls.passed_over >= fairness_quantum_) {
      const std::size_t got = take_from_class(cls, 1, out);
      taken += got;
      contributed[p] += got;
      cls.passed_over = 0;
    }
  }
  // Strict-priority fill of the remaining slots.
  for (std::size_t p = 0; p < kNumPriorities && taken < n; ++p) {
    const std::size_t got = take_from_class(classes_[p], n - taken, out);
    taken += got;
    contributed[p] += got;
  }
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    ClassState& cls = classes_[p];
    if (contributed[p] > 0) {
      cls.passed_over = 0;
    } else if (cls.total > 0) {
      ++cls.passed_over;
    }
  }
  return taken;
}

std::size_t Scheduler::shed_expired(std::chrono::steady_clock::time_point now,
                                    std::vector<SchedRequest>& out) {
  std::size_t shed = 0;
  for (ClassState& cls : classes_) {
    for (std::size_t c = 0; c < cls.clients.size();) {
      std::deque<SchedRequest>& queue = cls.clients[c].queue;
      for (auto it = queue.begin(); it != queue.end();) {
        if (it->deadline <= now) {
          if (it->no_hold) --no_hold_;
          out.push_back(std::move(*it));
          it = queue.erase(it);
          --cls.total;
          --total_;
          ++shed;
        } else {
          ++it;
        }
      }
      if (queue.empty()) {
        // Keep the ring cursor aimed at the same NEXT client.
        if (cls.cursor > c) --cls.cursor;
        cls.clients.erase(cls.clients.begin() +
                          static_cast<std::ptrdiff_t>(c));
      } else {
        ++c;
      }
    }
  }
  return shed;
}

}  // namespace epim
