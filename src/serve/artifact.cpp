#include "serve/artifact.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "common/fault_inject.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/pim_runtime.hpp"

namespace epim {

namespace {

using artifact::kErrBadKind;
using artifact::kErrBadMagic;
using artifact::kErrBadVersion;
using artifact::kErrChecksum;
using artifact::kErrTruncated;

constexpr char kMagic[8] = {'E', 'P', 'I', 'M', 'A', 'R', 'T', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4;
constexpr std::size_t kSectionHeaderBytes = 8 + 8 + 8;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Little-endian encoding primitives
// ---------------------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xffu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xffu);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void f32_vec(const std::vector<float>& v) {
    u64(v.size());
    if constexpr (std::endian::native == std::endian::little) {
      // Weight tensors dominate artifact size; bulk-append them instead of
      // shifting out four bytes per element.
      const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
      bytes_.insert(bytes_.end(), raw, raw + v.size() * sizeof(float));
    } else {
      for (float x : v) f32(x);
    }
  }
  void i64_vec(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (std::int64_t x : v) i64(x);
  }
  void i32_vec(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i32(x);
  }
  void tensor(const Tensor& t) {
    i64_vec(t.shape());
    f32_vec(t.storage());
  }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(
                                                      i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                      i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<float> f32_vec() {
    const std::uint64_t n = checked_count(4);
    std::vector<float> v(static_cast<std::size_t>(n));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(float));
      pos_ += v.size() * sizeof(float);
    } else {
      for (auto& x : v) x = f32();
    }
    return v;
  }
  std::vector<std::int64_t> i64_vec() {
    const std::uint64_t n = checked_count(8);
    std::vector<std::int64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = i64();
    return v;
  }
  std::vector<int> i32_vec() {
    const std::uint64_t n = checked_count(4);
    std::vector<int> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = i32();
    return v;
  }
  Tensor tensor() {
    Shape shape = i64_vec();
    std::vector<float> data = f32_vec();
    EPIM_CHECK(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
               "artifact tensor shape/data size mismatch");
    return Tensor(std::move(shape), std::move(data));
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) {
    EPIM_CHECK(n <= size_ - pos_, "artifact section payload exhausted");
  }
  /// Read an element count and bounds-check it against the remaining bytes
  /// before allocating (a corrupted-but-checksummed count must not OOM).
  std::uint64_t checked_count(std::uint64_t elem_bytes) {
    const std::uint64_t n = u64();
    EPIM_CHECK(n <= (size_ - pos_) / elem_bytes,
               "artifact section payload exhausted");
    return n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decode a serialized enum value, rejecting anything outside [0, max].
template <typename E>
E decode_enum(std::uint32_t raw, E max) {
  EPIM_CHECK(raw <= static_cast<std::uint32_t>(max),
             "artifact enum value out of range");
  return static_cast<E>(raw);
}

// ---------------------------------------------------------------------------
// Struct codecs (field order is the schema; bump kSchemaVersion on change)
// ---------------------------------------------------------------------------

void put_crossbar(Writer& w, const CrossbarConfig& c) {
  w.i64(c.rows);
  w.i64(c.cols);
  w.i32(c.cell_bits);
  w.i32(c.adc_bits);
  w.i64(c.adc_share);
  w.i32(c.fp32_weight_bits);
  w.i32(c.fp32_act_bits);
}

CrossbarConfig get_crossbar(Reader& r) {
  CrossbarConfig c;
  c.rows = r.i64();
  c.cols = r.i64();
  c.cell_bits = r.i32();
  c.adc_bits = r.i32();
  c.adc_share = r.i64();
  c.fp32_weight_bits = r.i32();
  c.fp32_act_bits = r.i32();
  return c;
}

void put_lut(Writer& w, const HardwareLut& l) {
  for (double v : {l.dac_ns, l.xbar_ns, l.sh_ns, l.adc_ns, l.shift_add_ns,
                   l.index_table_ns, l.joint_add_ns, l.buffer_copy_ns,
                   l.dac_pj, l.cell_pj, l.sh_pj, l.adc_pj, l.shift_add_pj,
                   l.buffer_rd_pj, l.buffer_wr_pj, l.index_table_pj,
                   l.joint_add_pj, l.leakage_mw_per_xbar}) {
    w.f64(v);
  }
}

HardwareLut get_lut(Reader& r) {
  HardwareLut l;
  for (double* v : {&l.dac_ns, &l.xbar_ns, &l.sh_ns, &l.adc_ns,
                    &l.shift_add_ns, &l.index_table_ns, &l.joint_add_ns,
                    &l.buffer_copy_ns, &l.dac_pj, &l.cell_pj, &l.sh_pj,
                    &l.adc_pj, &l.shift_add_pj, &l.buffer_rd_pj,
                    &l.buffer_wr_pj, &l.index_table_pj, &l.joint_add_pj,
                    &l.leakage_mw_per_xbar}) {
    *v = r.f64();
  }
  return l;
}

void put_non_ideal(Writer& w, const NonIdealityConfig& n) {
  w.f64(n.conductance_sigma);
  w.f64(n.stuck_at_zero_prob);
  w.f64(n.stuck_at_max_prob);
  w.u64(n.seed);
}

NonIdealityConfig get_non_ideal(Reader& r) {
  NonIdealityConfig n;
  n.conductance_sigma = r.f64();
  n.stuck_at_zero_prob = r.f64();
  n.stuck_at_max_prob = r.f64();
  n.seed = r.u64();
  return n;
}

void put_quant_config(Writer& w, const QuantConfig& q) {
  w.i32(q.bits);
  w.u32(static_cast<std::uint32_t>(q.scheme));
  w.f64(q.w1);
  w.f64(q.w2);
  w.i64(q.xbar_rows);
  w.i64(q.xbar_cols);
}

QuantConfig get_quant_config(Reader& r) {
  QuantConfig q;
  q.bits = r.i32();
  q.scheme = decode_enum(r.u32(), RangeScheme::kOverlapWeighted);
  q.w1 = r.f64();
  q.w2 = r.f64();
  q.xbar_rows = r.i64();
  q.xbar_cols = r.i64();
  return q;
}

void put_mixed_config(Writer& w, const MixedPrecisionConfig& m) {
  w.i32(m.low_bits);
  w.i32(m.high_bits);
  w.f64(m.budget_fraction);
  put_quant_config(w, m.quant);
  w.u64(m.seed);
}

MixedPrecisionConfig get_mixed_config(Reader& r) {
  MixedPrecisionConfig m;
  m.low_bits = r.i32();
  m.high_bits = r.i32();
  m.budget_fraction = r.f64();
  m.quant = get_quant_config(r);
  m.seed = r.u64();
  return m;
}

void put_uniform_design(Writer& w, const UniformDesign& u) {
  w.i64(u.target_rows);
  w.i64(u.target_cout);
  w.i64(u.crossbar_size);
  w.i64(u.spatial_slack);
  w.boolean(u.wrap_output);
  w.boolean(u.skip_small_layers);
}

UniformDesign get_uniform_design(Reader& r) {
  UniformDesign u;
  u.target_rows = r.i64();
  u.target_cout = r.i64();
  u.crossbar_size = r.i64();
  u.spatial_slack = r.i64();
  u.wrap_output = r.boolean();
  u.skip_small_layers = r.boolean();
  return u;
}

void put_design(Writer& w, const DesignConfig& d) {
  w.u32(static_cast<std::uint32_t>(d.policy));
  put_uniform_design(w, d.uniform);
  w.boolean(d.wrap_output);
}

DesignConfig get_design(Reader& r) {
  DesignConfig d;
  d.policy = decode_enum(r.u32(), DesignPolicy::kUniform);
  d.uniform = get_uniform_design(r);
  d.wrap_output = r.boolean();
  return d;
}

void put_candidates(Writer& w, const CandidateConfig& c) {
  w.i64_vec(c.row_targets);
  w.i64_vec(c.cout_targets);
  w.i64(c.crossbar_size);
  w.i64(c.spatial_slack);
  w.boolean(c.wrap_output);
  w.boolean(c.include_identity);
}

CandidateConfig get_candidates(Reader& r) {
  CandidateConfig c;
  c.row_targets = r.i64_vec();
  c.cout_targets = r.i64_vec();
  c.crossbar_size = r.i64();
  c.spatial_slack = r.i64();
  c.wrap_output = r.boolean();
  c.include_identity = r.boolean();
  return c;
}

void put_precision_config(Writer& w, const PrecisionConfig& p) {
  w.i32_vec(p.weight_bits);
  w.i32(p.act_bits);
}

PrecisionConfig get_precision_config(Reader& r) {
  PrecisionConfig p;
  p.weight_bits = r.i32_vec();
  p.act_bits = r.i32();
  return p;
}

void put_pipeline_config(Writer& w, const PipelineConfig& c) {
  put_crossbar(w, c.hardware.crossbar);
  put_lut(w, c.hardware.lut);
  w.i32(c.hardware.deploy_adc_bits);
  put_design(w, c.design);
  w.u32(static_cast<std::uint32_t>(c.precision.mode));
  w.i32(c.precision.weight_bits);
  w.i32(c.precision.act_bits);
  put_mixed_config(w, c.precision.mixed);
  put_quant_config(w, c.quant);
  w.boolean(c.search.enabled);
  w.i32(c.search.evo.population);
  w.i32(c.search.evo.iterations);
  w.i32(c.search.evo.parents);
  w.f64(c.search.evo.mutation_rate);
  w.u32(static_cast<std::uint32_t>(c.search.evo.objective));
  w.i64(c.search.evo.crossbar_budget);
  put_candidates(w, c.search.evo.candidates);
  put_precision_config(w, c.search.evo.precision);
  w.u64(c.search.evo.seed);
  w.i32(c.deploy.weight_bits);
  w.i32(c.deploy.act_bits);
  w.f64(c.deploy.act_percentile);
  put_non_ideal(w, c.deploy.non_ideal);
  w.i32(c.serve.max_batch);
  w.f64(c.serve.flush_deadline_ms);
  w.i32(c.serve.workers);
  w.i32(c.serve.latency_window);
  w.i32(c.serve.max_queue);
  // Scheduler knobs appended by schema v4 (SLA-aware scheduling core);
  // kSchemaVersion bumped 3 -> 4 with them -- the codec is positional, so
  // a v3 payload cannot be decoded and is rejected by the version check.
  w.i32(c.serve.max_workers);
  w.i32(c.serve.fairness_quantum);
  w.boolean(c.serve.reslice_bursts);
  w.str(c.anchors.model);
  w.f64(c.anchors.conv_fp32);
  w.f64(c.anchors.epitome_fp32);
  w.f64(c.anchors.penalty_scale);
  w.f64(c.anchors.prune_penalty_scale);
  w.u32(static_cast<std::uint32_t>(c.backend));
  w.u64(c.seed);
}

PipelineConfig get_pipeline_config(Reader& r) {
  PipelineConfig c;
  c.hardware.crossbar = get_crossbar(r);
  c.hardware.lut = get_lut(r);
  c.hardware.deploy_adc_bits = r.i32();
  c.design = get_design(r);
  c.precision.mode = decode_enum(r.u32(), PrecisionMode::kHawqMixed);
  c.precision.weight_bits = r.i32();
  c.precision.act_bits = r.i32();
  c.precision.mixed = get_mixed_config(r);
  c.quant = get_quant_config(r);
  c.search.enabled = r.boolean();
  c.search.evo.population = r.i32();
  c.search.evo.iterations = r.i32();
  c.search.evo.parents = r.i32();
  c.search.evo.mutation_rate = r.f64();
  c.search.evo.objective = decode_enum(r.u32(), SearchObjective::kEdp);
  c.search.evo.crossbar_budget = r.i64();
  c.search.evo.candidates = get_candidates(r);
  c.search.evo.precision = get_precision_config(r);
  c.search.evo.seed = r.u64();
  c.deploy.weight_bits = r.i32();
  c.deploy.act_bits = r.i32();
  c.deploy.act_percentile = r.f64();
  c.deploy.non_ideal = get_non_ideal(r);
  c.serve.max_batch = r.i32();
  c.serve.flush_deadline_ms = r.f64();
  c.serve.workers = r.i32();
  c.serve.latency_window = r.i32();
  c.serve.max_queue = r.i32();
  // Schema v4 scheduler knobs (see the writer's matching comment).
  c.serve.max_workers = r.i32();
  c.serve.fairness_quantum = r.i32();
  c.serve.reslice_bursts = r.boolean();
  c.anchors.model = r.str();
  c.anchors.conv_fp32 = r.f64();
  c.anchors.epitome_fp32 = r.f64();
  c.anchors.penalty_scale = r.f64();
  c.anchors.prune_penalty_scale = r.f64();
  c.backend = decode_enum(r.u32(), BackendKind::kDatapath);
  c.seed = r.u64();
  return c;
}

void put_conv_spec(Writer& w, const ConvSpec& c) {
  w.i64(c.in_channels);
  w.i64(c.out_channels);
  w.i64(c.kernel_h);
  w.i64(c.kernel_w);
  w.i64(c.stride);
  w.i64(c.pad);
}

ConvSpec get_conv_spec(Reader& r) {
  ConvSpec c;
  c.in_channels = r.i64();
  c.out_channels = r.i64();
  c.kernel_h = r.i64();
  c.kernel_w = r.i64();
  c.stride = r.i64();
  c.pad = r.i64();
  return c;
}

void put_network(Writer& w, const Network& net) {
  w.str(net.name());
  w.u64(static_cast<std::uint64_t>(net.num_conv_layers()));
  for (const ConvLayerInfo& layer : net.conv_layers()) {
    w.str(layer.name);
    put_conv_spec(w, layer.conv);
    w.i64(layer.ifm_h);
    w.i64(layer.ifm_w);
  }
  w.boolean(net.has_fc());
  if (net.has_fc()) {
    w.str(net.fc().name);
    w.i64(net.fc().in_features);
    w.i64(net.fc().out_features);
  }
}

Network get_network(Reader& r) {
  Network net(r.str());
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    ConvLayerInfo layer;
    layer.name = r.str();
    layer.conv = get_conv_spec(r);
    layer.ifm_h = r.i64();
    layer.ifm_w = r.i64();
    net.add_conv(std::move(layer));
  }
  if (r.boolean()) {
    FcLayerInfo fc;
    fc.name = r.str();
    fc.in_features = r.i64();
    fc.out_features = r.i64();
    net.set_fc(std::move(fc));
  }
  return net;
}

void put_epitome_spec(Writer& w, const EpitomeSpec& s) {
  w.i64(s.p);
  w.i64(s.q);
  w.i64(s.cin_e);
  w.i64(s.cout_e);
  w.i64(s.offset_stride);
  w.boolean(s.wrap_output);
}

EpitomeSpec get_epitome_spec(Reader& r) {
  EpitomeSpec s;
  s.p = r.i64();
  s.q = r.i64();
  s.cin_e = r.i64();
  s.cout_e = r.i64();
  s.offset_stride = r.i64();
  s.wrap_output = r.boolean();
  return s;
}

void put_epitome(Writer& w, const Epitome& e) {
  put_epitome_spec(w, e.spec());
  put_conv_spec(w, e.conv());
  w.tensor(e.weights());
}

Epitome get_epitome(Reader& r) {
  const EpitomeSpec spec = get_epitome_spec(r);
  const ConvSpec conv = get_conv_spec(r);
  Tensor weights = r.tensor();
  Epitome e(spec, conv);
  EPIM_CHECK(weights.shape() == e.weights().shape(),
             "artifact epitome weight shape mismatch");
  e.weights() = std::move(weights);
  return e;
}

void put_affine(Writer& w, const ChannelAffine& a) {
  w.f32_vec(a.scale);
  w.f32_vec(a.shift);
}

ChannelAffine get_affine(Reader& r) {
  ChannelAffine a;
  a.scale = r.f32_vec();
  a.shift = r.f32_vec();
  EPIM_CHECK(a.scale.size() == a.shift.size(),
             "artifact affine scale/shift size mismatch");
  return a;
}

void put_quant_params(Writer& w, const QuantParams& p) {
  w.f64(p.scale);
  w.i64(p.zero_point);
  w.i32(p.bits);
}

QuantParams get_quant_params(Reader& r) {
  QuantParams p;
  p.scale = r.f64();
  p.zero_point = r.i64();
  p.bits = r.i32();
  return p;
}

void put_runtime_config(Writer& w, const RuntimeConfig& c) {
  w.i32(c.weight_bits);
  w.i32(c.act_bits);
  w.f64(c.act_percentile);
  put_crossbar(w, c.crossbar);
  put_non_ideal(w, c.non_ideal);
}

RuntimeConfig get_runtime_config(Reader& r) {
  RuntimeConfig c;
  c.weight_bits = r.i32();
  c.act_bits = r.i32();
  c.act_percentile = r.f64();
  c.crossbar = get_crossbar(r);
  c.non_ideal = get_non_ideal(r);
  return c;
}

void put_small_net_config(Writer& w, const SmallNetConfig& c) {
  w.i32(c.num_classes);
  w.i64(c.image_size);
  w.i64(c.in_channels);
  w.boolean(c.use_epitome);
  w.boolean(c.wrap_output);
  w.u64(c.seed);
}

SmallNetConfig get_small_net_config(Reader& r) {
  SmallNetConfig c;
  c.num_classes = r.i32();
  c.image_size = r.i64();
  c.in_channels = r.i64();
  c.use_epitome = r.boolean();
  c.wrap_output = r.boolean();
  c.seed = r.u64();
  return c;
}

void put_deploy_state(Writer& w, const SmallEpitomeNet::Deploy& d) {
  put_small_net_config(w, d.config);
  put_epitome(w, d.block1);
  put_epitome(w, d.block2);
  put_epitome(w, d.block3);
  put_affine(w, d.bn1);
  put_affine(w, d.bn2);
  put_affine(w, d.bn3);
  w.tensor(d.dense_w);
  w.tensor(d.dense_b);
}

SmallEpitomeNet::Deploy get_deploy_state(Reader& r) {
  SmallNetConfig config = get_small_net_config(r);
  Epitome b1 = get_epitome(r);
  Epitome b2 = get_epitome(r);
  Epitome b3 = get_epitome(r);
  ChannelAffine bn1 = get_affine(r);
  ChannelAffine bn2 = get_affine(r);
  ChannelAffine bn3 = get_affine(r);
  Tensor dense_w = r.tensor();
  Tensor dense_b = r.tensor();
  return SmallEpitomeNet::Deploy{config,
                                 std::move(b1),
                                 std::move(b2),
                                 std::move(b3),
                                 std::move(bn1),
                                 std::move(bn2),
                                 std::move(bn3),
                                 std::move(dense_w),
                                 std::move(dense_b)};
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

struct Section {
  std::string tag;  ///< at most 8 bytes, NUL-padded on disk
  std::vector<std::uint8_t> payload;
};

void write_container(const std::string& path, artifact::Kind kind,
                     const std::vector<Section>& sections) {
  // Atomic save: stream into a same-directory temp file, then rename over
  // the destination. A crash (or an armed artifact.write fault) mid-save
  // can therefore never leave a truncated container at `path` -- readers
  // see either the complete old artifact or the complete new one. The
  // counter keeps concurrent saves to the same path from clobbering each
  // other's temp file; last rename wins, each rename is whole.
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    EPIM_CHECK(out.good(), "cannot open artifact path for writing: " + path);
    const auto emit = [&out](const Writer& w) {
      out.write(reinterpret_cast<const char*>(w.bytes().data()),
                static_cast<std::streamsize>(w.bytes().size()));
    };
    Writer header;
    for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
    header.u32(artifact::kSchemaVersion);
    header.u32(static_cast<std::uint32_t>(kind));
    header.u32(static_cast<std::uint32_t>(sections.size()));
    emit(header);
    // Section payloads stream straight to the file; the artifact is never
    // assembled a second time in memory.
    for (const Section& s : sections) {
      // Chaos hook: simulate a crash between sections -- exactly the
      // partial write the temp-file protocol exists to contain.
      fault::maybe_fail("artifact.write");
      EPIM_ASSERT(s.tag.size() <= 8, "artifact section tag too long");
      Writer sh;
      for (std::size_t i = 0; i < 8; ++i) {
        sh.u8(i < s.tag.size() ? static_cast<std::uint8_t>(s.tag[i]) : 0);
      }
      sh.u64(s.payload.size());
      sh.u64(fnv1a(s.payload.data(), s.payload.size()));
      emit(sh);
      out.write(reinterpret_cast<const char*>(s.payload.data()),
                static_cast<std::streamsize>(s.payload.size()));
    }
    out.flush();
    EPIM_CHECK(out.good(), "failed writing artifact: " + path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // best-effort; the throw is the news
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    EPIM_CHECK(false, "failed writing artifact: " + path + " (rename: " +
                          ec.message() + ")");
  }
}

/// Reject paths an ifstream would "open" but never read sensibly (a
/// directory opens fine on POSIX and only fails at the first read, which
/// would surface as a misleading kErrTruncated). Pinned messages:
/// nonexistent -> kErrCannotOpen, directory/device -> kErrNotFile.
void check_readable_file(const std::string& path) {
  // Chaos hook: a failed open (permissions, unmounted volume) happens here,
  // before any filesystem call.
  fault::maybe_fail("artifact.open");
  std::error_code ec;
  const std::filesystem::file_status status =
      std::filesystem::status(path, ec);
  EPIM_CHECK(!ec && std::filesystem::exists(status),
             std::string(artifact::kErrCannotOpen) + ": " + path);
  EPIM_CHECK(std::filesystem::is_regular_file(status),
             std::string(artifact::kErrNotFile) + ": " + path);
}

/// Whole-file slurp; the caller has already run check_readable_file().
std::vector<std::uint8_t> slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EPIM_CHECK(in.good(), std::string(artifact::kErrCannotOpen) + ": " + path);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void check_header(const std::uint8_t* data, std::size_t size) {
  EPIM_CHECK(size >= kHeaderBytes, kErrTruncated);
  EPIM_CHECK(std::memcmp(data, kMagic, 8) == 0, kErrBadMagic);
}

std::atomic<artifact::IoMode> g_io_mode{
#ifndef _WIN32
    artifact::IoMode::kMmap
#else
    artifact::IoMode::kRead
#endif
};

#ifndef _WIN32
/// Read-only mmap of a whole file, the backing store of the zero-copy load
/// path: decoders consume the page cache directly instead of a slurped heap
/// duplicate. An empty file maps nothing (data() == nullptr, size() == 0);
/// header validation rejects it as truncated before any payload access.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    EPIM_CHECK(fd >= 0, std::string(artifact::kErrCannotOpen) + ": " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      EPIM_CHECK(false,
                 std::string(artifact::kErrCannotOpen) + ": " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        EPIM_CHECK(false, std::string(artifact::kErrCannotOpen) + ": " +
                              path + " (mmap)");
      }
      data_ = static_cast<const std::uint8_t*>(addr);
    }
    ::close(fd);  // the mapping keeps the file contents reachable
  }
  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};
#endif

/// Parsed .epim container over one of two interchangeable backing stores:
///
///  * IoMode::kMmap -- the file is mapped read-only and section payloads are
///    validated LAZILY: the FNV-1a checksum runs on a section's first
///    reader() touch, so a load never checksums (or copies) bytes it does
///    not decode.
///  * IoMode::kRead -- the file is slurped and every checksum verified
///    EAGERLY before any payload is decoded: the original codec, kept as
///    the golden reference the mmap path must stay bit-identical to.
///
/// Either way the section table is fully bounds-checked up front and a
/// corrupt payload raises the same pinned kErrChecksum.
class Container {
 public:
  Container(const std::string& path, artifact::Kind expected_kind) {
    check_readable_file(path);
#ifndef _WIN32
    if (g_io_mode.load(std::memory_order_relaxed) ==
        artifact::IoMode::kMmap) {
      map_.emplace(path);
      data_ = map_->data();
      size_ = map_->size();
      lazy_ = true;
    }
#endif
    if (!lazy_) {
      bytes_ = slurp_file(path);
      data_ = bytes_.data();
      size_ = bytes_.size();
    }
    // Chaos hook: an I/O error mid-read (truncated slurp, yanked disk); on
    // the mmap path it fires once the mapping is established.
    fault::maybe_fail("artifact.read");
    parse(expected_kind);
    if (!lazy_) {
      for (SectionView& s : sections_) validate(s);
    }
  }

  /// Decoder positioned at the start of the section tagged `tag`. On the
  /// mmap path this is where the section's checksum is verified (once).
  Reader reader(const std::string& tag) {
    for (SectionView& s : sections_) {
      if (s.tag != tag) continue;
      if (!s.validated) validate(s);
      return Reader(s.data, s.size);
    }
    EPIM_CHECK(false, "artifact is missing section '" + tag + "'");
    // Unreachable; EPIM_CHECK(false, ...) always throws.
    throw InternalError("unreachable");
  }

 private:
  struct SectionView {
    std::string tag;  ///< NUL padding stripped
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::uint64_t checksum = 0;
    bool validated = false;
  };

  /// Header + section-table walk. Bounds-checks every section against the
  /// file size but touches no payload bytes (keeps the lazy path lazy).
  void parse(artifact::Kind expected_kind) {
    check_header(data_, size_);
    Reader header(data_, size_);
    for (int i = 0; i < 8; ++i) header.u8();  // magic, already checked
    const std::uint32_t version = header.u32();
    EPIM_CHECK(version == artifact::kSchemaVersion, kErrBadVersion);
    const std::uint32_t kind = header.u32();
    EPIM_CHECK(kind == static_cast<std::uint32_t>(expected_kind),
               kErrBadKind);
    const std::uint32_t count = header.u32();

    std::size_t pos = kHeaderBytes;
    for (std::uint32_t s = 0; s < count; ++s) {
      EPIM_CHECK(size_ - pos >= kSectionHeaderBytes, kErrTruncated);
      Reader sh(data_ + pos, kSectionHeaderBytes);
      SectionView view;
      for (int i = 0; i < 8; ++i) {
        const char c = static_cast<char>(sh.u8());
        if (c != '\0') view.tag.push_back(c);
      }
      const std::uint64_t size = sh.u64();
      view.checksum = sh.u64();
      pos += kSectionHeaderBytes;
      EPIM_CHECK(size <= size_ - pos, kErrTruncated);
      view.data = data_ + pos;
      view.size = static_cast<std::size_t>(size);
      pos += view.size;
      sections_.push_back(std::move(view));
    }
  }

  void validate(SectionView& s) {
    // Chaos hook folded into the verification itself: a firing
    // artifact.checksum fault takes the REAL corruption-rejection path and
    // raises the same pinned kErrChecksum as flipped bits on disk would.
    EPIM_CHECK(!fault::should_fire("artifact.checksum") &&
                   fnv1a(s.data, s.size) == s.checksum,
               kErrChecksum);
    s.validated = true;
  }

#ifndef _WIN32
  std::optional<MappedFile> map_;
#endif
  std::vector<std::uint8_t> bytes_;  ///< kRead backing store
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool lazy_ = false;
  std::vector<SectionView> sections_;
};

/// A fully-decoded section must have no bytes left: a checksummed-but-longer
/// payload means the writer's schema drifted past this reader's.
void expect_exhausted(const Reader& r, const char* tag) {
  EPIM_CHECK(r.exhausted(), std::string("artifact section '") + tag +
                                "' has trailing bytes");
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactCodec
// ---------------------------------------------------------------------------

void ArtifactCodec::save_compiled(const CompiledModel& model,
                                  const std::string& path) {
  std::vector<Section> sections;
  {
    Writer w;
    put_pipeline_config(w, *model.config_);
    sections.push_back({"pipecfg", w.bytes()});
  }
  {
    Writer w;
    put_design(w, model.design_);
    sections.push_back({"design", w.bytes()});
  }
  {
    Writer w;
    put_network(w, *model.net_);
    sections.push_back({"network", w.bytes()});
  }
  {
    Writer w;
    const NetworkAssignment& a = model.assignment_;
    w.u64(static_cast<std::uint64_t>(a.num_layers()));
    for (std::int64_t i = 0; i < a.num_layers(); ++i) {
      const auto& choice = a.choice(i);
      w.boolean(choice.has_value());
      if (choice.has_value()) put_epitome_spec(w, *choice);
    }
    w.boolean(model.searched_);
    sections.push_back({"assign", w.bytes()});
  }
  {
    Writer w;
    put_precision_config(w, model.precision_);
    sections.push_back({"precis", w.bytes()});
  }
  write_container(path, artifact::Kind::kCompiledModel, sections);
}

CompiledModel ArtifactCodec::load_compiled(const std::string& path) {
  Container container(path, artifact::Kind::kCompiledModel);

  Reader cfg_r = container.reader("pipecfg");
  const PipelineConfig cfg = get_pipeline_config(cfg_r);
  expect_exhausted(cfg_r, "pipecfg");
  Reader design_r = container.reader("design");
  const DesignConfig design = get_design(design_r);
  expect_exhausted(design_r, "design");
  Reader net_r = container.reader("network");
  const Network net = get_network(net_r);
  expect_exhausted(net_r, "network");

  Reader assign_r = container.reader("assign");
  const std::uint64_t n_layers = assign_r.u64();
  std::vector<std::optional<EpitomeSpec>> choices;
  choices.reserve(static_cast<std::size_t>(n_layers));
  for (std::uint64_t i = 0; i < n_layers; ++i) {
    if (assign_r.boolean()) {
      choices.push_back(get_epitome_spec(assign_r));
    } else {
      choices.push_back(std::nullopt);
    }
  }
  const bool searched = assign_r.boolean();
  expect_exhausted(assign_r, "assign");

  Reader precis_r = container.reader("precis");
  const PrecisionConfig stored_precision = get_precision_config(precis_r);
  expect_exhausted(precis_r, "precis");

  // Rebuild the pipeline (validates the config, constructs backend +
  // estimator) and compile under the stored design, then overwrite the
  // designed assignment with the stored per-layer choices (which may carry a
  // search() refinement the design policy alone would not reproduce).
  Pipeline pipeline(cfg);
  CompiledModel model = pipeline.compile(net, design);
  EPIM_CHECK(static_cast<std::int64_t>(n_layers) ==
                 model.assignment_.num_layers(),
             "artifact assignment layer count mismatch");
  for (std::int64_t i = 0; i < model.assignment_.num_layers(); ++i) {
    model.assignment_.set_choice(i, choices[static_cast<std::size_t>(i)]);
  }
  model.searched_ = searched;
  model.resolve_precision();
  model.estimate_cache_.reset();
  // Precision is re-resolved deterministically from the assignment; the
  // stored plan is a redundancy check against schema drift.
  EPIM_CHECK(model.precision_.weight_bits == stored_precision.weight_bits &&
                 model.precision_.act_bits == stored_precision.act_bits,
             "artifact precision plan does not match re-resolved plan");
  return model;
}

void ArtifactCodec::save_deployed(const DeployedModel& model,
                                  const std::string& path) {
  const PimNetworkRuntime& runtime = *model.runtime_;
  std::vector<Section> sections;
  {
    Writer w;
    put_runtime_config(w, runtime.config());
    sections.push_back({"runcfg", w.bytes()});
  }
  {
    Writer w;
    put_deploy_state(w, runtime.deploy_state());
    sections.push_back({"model", w.bytes()});
  }
  {
    Writer w;
    for (const QuantParams& p : runtime.activation_params()) {
      put_quant_params(w, p);
    }
    sections.push_back({"actq", w.bytes()});
  }
  write_container(path, artifact::Kind::kDeployedModel, sections);
}

DeployedModel ArtifactCodec::load_deployed(const std::string& path) {
  Container container(path, artifact::Kind::kDeployedModel);
  Reader cfg_r = container.reader("runcfg");
  const RuntimeConfig config = get_runtime_config(cfg_r);
  expect_exhausted(cfg_r, "runcfg");
  Reader model_r = container.reader("model");
  SmallEpitomeNet::Deploy deploy = get_deploy_state(model_r);
  expect_exhausted(model_r, "model");
  Reader actq_r = container.reader("actq");
  PimNetworkRuntime::ActivationParams act_params;
  for (QuantParams& p : act_params) p = get_quant_params(actq_r);
  expect_exhausted(actq_r, "actq");

  auto runtime = std::make_unique<PimNetworkRuntime>(std::move(deploy),
                                                     act_params, config);
  return DeployedModel(config, std::move(runtime));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

namespace artifact {

void set_io_mode(IoMode mode) {
  g_io_mode.store(mode, std::memory_order_relaxed);
}

IoMode io_mode() { return g_io_mode.load(std::memory_order_relaxed); }

Info probe(const std::string& path) {
  // Header only -- probing a multi-megabyte deployed artifact must not
  // slurp the weights (nor map them; the 20 bytes are cheaper read).
  check_readable_file(path);
  std::ifstream in(path, std::ios::binary);
  EPIM_CHECK(in.good(), std::string(kErrCannotOpen) + ": " + path);
  std::vector<std::uint8_t> bytes(kHeaderBytes);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  check_header(bytes.data(), bytes.size());
  Reader r(bytes.data(), bytes.size());
  for (int i = 0; i < 8; ++i) r.u8();
  Info info;
  info.version = r.u32();
  const std::uint32_t kind = r.u32();
  EPIM_CHECK(kind == static_cast<std::uint32_t>(Kind::kCompiledModel) ||
                 kind == static_cast<std::uint32_t>(Kind::kDeployedModel),
             kErrBadKind);
  info.kind = static_cast<Kind>(kind);
  return info;
}

void save(const CompiledModel& model, const std::string& path) {
  ArtifactCodec::save_compiled(model, path);
}

void save(const DeployedModel& model, const std::string& path) {
  ArtifactCodec::save_deployed(model, path);
}

CompiledModel load_compiled(const std::string& path) {
  return ArtifactCodec::load_compiled(path);
}

DeployedModel load_deployed(const std::string& path) {
  return ArtifactCodec::load_deployed(path);
}

}  // namespace artifact

// Façade forwarding: declared in pipeline/pipeline.hpp, implemented here so
// the pipeline layer stays ignorant of the container format.

void CompiledModel::save(const std::string& path) const {
  ArtifactCodec::save_compiled(*this, path);
}

void DeployedModel::save(const std::string& path) const {
  ArtifactCodec::save_deployed(*this, path);
}

CompiledModel Pipeline::load(const std::string& path) {
  return ArtifactCodec::load_compiled(path);
}

DeployedModel Pipeline::load_deployed(const std::string& path) {
  return ArtifactCodec::load_deployed(path);
}

}  // namespace epim
