// Plain-text table rendering used by the benchmark harness to print
// paper-style result tables (Table 1/2/3) and figure series.
#pragma once

#include <string>
#include <vector>

namespace epim {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  /// Render as comma-separated values (machine-readable output for plots).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 2);

}  // namespace epim
