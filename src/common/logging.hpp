// Minimal leveled logging used by long-running components (training loops,
// evolutionary search) to report progress without a hard dependency on a
// logging framework.
//
// Thread safety: every entry point may be called from any thread. The
// level is an explicit atomic (read on every statement, racing writers are
// fine: a message filtered against a stale level is indistinguishable from
// one logged just before set_log_level). The sink is swapped under an
// epim::Mutex and invoked WITHOUT it held, so a slow sink never serializes
// the process and can itself take locks without creating logging-ordered
// lock edges.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace epim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for formatted messages that passed the level filter.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the sink (nullptr restores the default stderr writer). Returns
/// the previous sink, so scoped capture (tests) can restore it.
LogSink set_log_sink(LogSink sink);

namespace detail {
void log_message(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: EPIM_LOG(kInfo) << "generation " << g;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream();
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace epim

#define EPIM_LOG(level) ::epim::LogStream(::epim::LogLevel::level)
