// Minimal leveled logging used by long-running components (training loops,
// evolutionary search) to report progress without a hard dependency on a
// logging framework.
#pragma once

#include <sstream>
#include <string>

namespace epim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_message(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: EPIM_LOG(kInfo) << "generation " << g;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream();
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace epim

#define EPIM_LOG(level) ::epim::LogStream(::epim::LogLevel::level)
