// Shared parallel-execution layer: a persistent thread pool plus a
// deterministic parallel_for.
//
// Design constraints, in order:
//  * Determinism. Work is split into a fixed number of contiguous chunks
//    (derived only from the trip count and the configured thread count), and
//    every chunk writes results keyed by loop index or chunk index -- never by
//    worker-thread identity. Callers that reduce must either use
//    order-independent arithmetic (integer sums) or combine per-chunk partials
//    in chunk order; parallel_reduce below does the latter. Under these rules
//    results are bit-identical at any thread count, which the test suite
//    asserts for the runtime and the evolution search.
//  * Re-entrancy. A parallel_for issued from inside a worker (nested
//    parallelism) runs inline on the calling thread instead of deadlocking on
//    the pool.
//  * Shared budget. Any number of threads may initiate parallel regions
//    concurrently (e.g. several batch workers per resident model in a serving
//    fleet); their jobs queue on the ONE process-wide pool and workers drain
//    them in submission order, so the machine-wide thread budget is
//    num_threads() no matter how many subsystems are active. Each initiator
//    always participates in its own region, so progress never depends on
//    worker availability.
//  * Zero configuration. The pool is lazily created with EPIM_THREADS threads
//    (or std::thread::hardware_concurrency() when unset) and can be resized
//    at runtime with set_num_threads() -- the knob the thread-scaling benches
//    and determinism tests turn.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace epim {

namespace detail {

/// Hard ceiling on the pool size; EPIM_THREADS and set_num_threads() both
/// clamp here so a stray "999999999" cannot fork-bomb the process.
inline constexpr int kMaxThreads = 256;

/// Parse an EPIM_THREADS-style value: returns the thread count clamped to
/// [1, kMaxThreads], or 0 when the value is not a positive integer ("0",
/// "-1", "abc", "") -- the caller falls back to hardware concurrency.
int parse_thread_env(const char* value);

}  // namespace detail

/// Threads the pool currently runs work on (>= 1; 1 means serial execution
/// on the calling thread). First call reads EPIM_THREADS (garbage or
/// non-positive values fall back to hardware concurrency; huge values clamp
/// to detail::kMaxThreads).
int num_threads();

/// Resize the pool. Clamped to [1, detail::kMaxThreads]. Safe to call
/// between parallel regions; must not be called from inside one.
void set_num_threads(int n);

/// Run fn(i) for every i in [0, n). Iterations are grouped into at most
/// num_threads() contiguous chunks; each chunk executes on exactly one
/// thread, in ascending index order within the chunk.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

/// Chunked variant: fn(chunk, begin, end) once per non-empty chunk. Chunk
/// boundaries depend only on n and num_threads(), so per-chunk scratch state
/// (workspaces, partial reductions) is deterministic. `chunk` indexes a dense
/// range [0, chunks) usable directly as a scratch-slot key. To reduce
/// deterministically, accumulate into a per-chunk partial and fold the
/// partials in chunk order after the call.
void parallel_for_chunks(
    std::int64_t n,
    const std::function<void(int chunk, std::int64_t begin, std::int64_t end)>&
        fn);

/// Explicit-chunk-count variant: uses exactly min(chunks, n) chunks
/// regardless of the live thread setting. Callers that size per-chunk
/// scratch up front pass the same count here, so a concurrent
/// set_num_threads() can never hand fn a chunk index beyond the scratch.
void parallel_for_chunks(
    std::int64_t n, int chunks,
    const std::function<void(int chunk, std::int64_t begin, std::int64_t end)>&
        fn);

/// Number of chunks parallel_for_chunks(n, fn) would use for a trip count
/// of n under the current thread setting; the canonical scratch-slot count.
int num_chunks(std::int64_t n);

}  // namespace epim
