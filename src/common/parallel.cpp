#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace epim {

namespace {

/// Set while a thread is executing chunks of a parallel region; nested
/// regions detect it and run inline.
thread_local bool t_in_parallel_region = false;

int default_thread_count() {
  if (const char* env = std::getenv("EPIM_THREADS")) {
    const int n = detail::parse_thread_env(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min(static_cast<int>(hw), detail::kMaxThreads);
}

/// One parallel region in flight. Heap-allocated and shared with workers so
/// a straggler waking up after the region retired only ever sees an
/// exhausted dispenser -- it can never re-run a chunk of a newer job.
/// Several jobs may be live at once (one per initiating thread): a serving
/// fleet has several batch workers per resident model, and all of them draw on this
/// one pool instead of spawning private ones.
///
/// Not EPIM_GUARDED_BY anything: `fn`/`chunks`/`errors`-slots are written
/// before the job is published under the pool mutex and read after it is
/// popped from it (or through the atomic dispenser), so the mutex + the
/// acquire/release pair on `pending` carry the happens-before edges.
struct Job {
  const std::function<void(int)>* fn = nullptr;
  int chunks = 0;
  std::atomic<int> next{0};
  std::atomic<int> pending{0};
  /// One slot per chunk; the initiating thread rethrows the lowest-chunk
  /// exception, matching what serial execution would have thrown first.
  std::vector<std::exception_ptr> errors;
};

/// Persistent pool of (threads - 1) workers; the calling thread always
/// participates, so a 1-thread configuration holds no workers at all.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int threads() {
    MutexLock lock(mutex_);
    return static_cast<int>(workers_.size()) + 1;
  }

  void resize(int n) EPIM_EXCLUDES(mutex_) {
    n = std::clamp(n, 1, detail::kMaxThreads);
    EPIM_CHECK(!t_in_parallel_region,
               "set_num_threads inside a parallel region");
    // Stop + hand off the old workers under the lock, join them OUTSIDE
    // it: exiting workers take the mutex themselves on their way out, so a
    // join under the lock would be both an analysis violation and a real
    // (if unlikely) stall amplifier.
    std::vector<std::thread> retired;
    {
      MutexLock lock(mutex_);
      if (static_cast<int>(workers_.size()) + 1 == n) return;
      stop_ = true;
      work_cv_.notify_all();
      retired.swap(workers_);
    }
    for (std::thread& w : retired) w.join();
    MutexLock lock(mutex_);
    stop_ = false;
    for (int i = 0; i < n - 1; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Execute chunk_fn(c) for every c in [0, chunks), blocking until all
  /// chunks finished. Chunks are handed out through an atomic dispenser, so
  /// which *thread* runs a chunk is unspecified -- determinism comes from
  /// chunk boundaries, never from placement. Safe to call from any number
  /// of threads concurrently: each caller enqueues its own job, workers
  /// drain whichever live job still has chunks (FIFO across jobs), and the
  /// initiating thread always participates in its own job, so a region
  /// finishes even when every worker is busy elsewhere.
  void run(int chunks, const std::function<void(int)>& chunk_fn)
      EPIM_EXCLUDES(mutex_) {
    // parallel_for_chunks runs chunks <= 1 inline; a non-positive count
    // here would publish a job no worker can ever finish.
    EPIM_DCHECK(chunks > 0, "ThreadPool::run with a non-positive chunk count");
    auto job = std::make_shared<Job>();
    job->fn = &chunk_fn;
    job->chunks = chunks;
    job->pending.store(chunks, std::memory_order_relaxed);
    job->errors.assign(static_cast<std::size_t>(chunks), nullptr);
    // Relaxed atomics on pointers cached at pool construction -- never a
    // lookup here (series lookup takes the telemetry leaf mutex, and run()
    // may be deep under a batch worker's call stack).
    m_jobs_->inc(1);
    m_queue_depth_->add(1);
    {
      MutexLock lock(mutex_);
      jobs_.push_back(job);
    }
    work_cv_.notify_all();
    t_in_parallel_region = true;
    drain(*job);
    t_in_parallel_region = false;
    {
      MutexLock lock(mutex_);
      // Predicate form is safe here: it reads only the job's atomic, never
      // a guarded field (see CondVar::wait).
      done_cv_.wait(lock, [&] {
        return job->pending.load(std::memory_order_acquire) == 0;
      });
      jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
    }
    m_queue_depth_->sub(1);
    for (const std::exception_ptr& e : job->errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  ~ThreadPool() {
    std::vector<std::thread> retired;
    {
      MutexLock lock(mutex_);
      stop_ = true;
      work_cv_.notify_all();
      retired.swap(workers_);
    }
    for (std::thread& w : retired) w.join();
  }

 private:
  ThreadPool() {
    // Resolve the pool's series once, before any worker or job exists.
    telemetry::metrics::ensure_registered();
    telemetry::Registry& reg = telemetry::Registry::process();
    m_jobs_ = reg.counter("epim_pool_jobs_total");
    m_queue_depth_ = reg.gauge("epim_pool_queue_depth");
    resize(default_thread_count());
  }

  void drain(Job& job) EPIM_EXCLUDES(mutex_) {
    for (;;) {
      const int c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) break;
      try {
        (*job.fn)(c);
      } catch (...) {
        job.errors[static_cast<std::size_t>(c)] = std::current_exception();
      }
      if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Pair the notify with the mutex so the initiating thread cannot
        // miss it between its predicate check and its wait.
        { MutexLock lock(mutex_); }
        done_cv_.notify_all();
      }
    }
  }

  /// First live job whose dispenser still has chunks.
  std::shared_ptr<Job> next_available_locked() const EPIM_REQUIRES(mutex_) {
    for (const std::shared_ptr<Job>& job : jobs_) {
      if (job->next.load(std::memory_order_relaxed) < job->chunks) return job;
    }
    return nullptr;
  }

  void worker_loop() EPIM_EXCLUDES(mutex_) {
    t_in_parallel_region = true;  // workers only ever run inside a region
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mutex_);
        // Explicit wait loop, not the predicate form: stop_ and jobs_ are
        // guarded fields, and here the analysis can see mutex_ is held.
        for (;;) {
          if (stop_) return;
          job = next_available_locked();
          if (job != nullptr) break;
          work_cv_.wait(lock);
        }
      }
      drain(*job);
      job.reset();  // drop the ref before blocking on the next wait
    }
  }

  /// Cached telemetry series (see the constructor); recording is relaxed
  /// atomics only, so it is legal wherever run() is called from.
  telemetry::Counter* m_jobs_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;

  mutable Mutex mutex_{"parallel::ThreadPool::mutex_"};
  CondVar work_cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_ EPIM_GUARDED_BY(mutex_);
  bool stop_ EPIM_GUARDED_BY(mutex_) = false;
  /// Live jobs in submission order; erased by their initiating thread once
  /// drained. A job stays listed (dispenser exhausted) until every chunk
  /// *finished*, so stragglers can never resurrect it.
  std::vector<std::shared_ptr<Job>> jobs_ EPIM_GUARDED_BY(mutex_);
};

}  // namespace

namespace detail {

int parse_thread_env(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return 0;  // "abc", "4x", " "
  if (n < 1) return 0;  // "0", "-1", negative overflow (LONG_MIN)
  // Huge values (including positive overflow saturating at LONG_MAX) clamp.
  return static_cast<int>(std::min<long>(n, kMaxThreads));
}

}  // namespace detail

int num_threads() { return ThreadPool::instance().threads(); }

void set_num_threads(int n) { ThreadPool::instance().resize(n); }

int num_chunks(std::int64_t n) {
  if (n <= 0) return 0;
  return static_cast<int>(
      std::min<std::int64_t>(n, static_cast<std::int64_t>(num_threads())));
}

void parallel_for_chunks(
    std::int64_t n,
    const std::function<void(int chunk, std::int64_t begin, std::int64_t end)>&
        fn) {
  parallel_for_chunks(n, num_chunks(n), fn);
}

void parallel_for_chunks(
    std::int64_t n, int chunks,
    const std::function<void(int chunk, std::int64_t begin, std::int64_t end)>&
        fn) {
  if (n <= 0 || chunks <= 0) return;
  chunks = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(chunks), n));
  const std::int64_t per = (n + chunks - 1) / chunks;
  auto run_chunk = [&](int c) {
    const std::int64_t begin = static_cast<std::int64_t>(c) * per;
    const std::int64_t end = std::min<std::int64_t>(n, begin + per);
    if (begin < end) fn(c, begin, end);
  };
  if (chunks == 1 || t_in_parallel_region) {
    // Serial (or nested) execution: same chunk decomposition, same order.
    for (int c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  ThreadPool::instance().run(chunks, run_chunk);
}

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunks(n, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace epim
