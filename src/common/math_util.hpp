// Small arithmetic helpers shared across the library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace epim {

/// Nearest-rank percentile of an already-sorted sample (0 for an empty
/// one). The serving layer's per-service and fleet-pooled latency digests
/// both use this, so their numbers stay comparable by construction.
inline double nearest_rank_percentile(const std::vector<double>& sorted,
                                      double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1,
                         std::max<std::size_t>(rank, 1) - 1)];
}

/// Ceiling division for non-negative integers; b must be positive.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Round a up to the next multiple of b (b > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// True if x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Integer log2 of a power of two.
inline int ilog2(std::int64_t x) {
  EPIM_CHECK(is_pow2(x), "ilog2 requires a positive power of two");
  int n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

}  // namespace epim
