#include "common/rng.hpp"

#include "common/check.hpp"

namespace epim {

int Rng::uniform_int(int lo, int hi) {
  EPIM_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

int Rng::index(int n) {
  EPIM_CHECK(n > 0, "index requires n > 0");
  return uniform_int(0, n - 1);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::flip(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<int> Rng::permutation(int n) {
  EPIM_CHECK(n >= 0, "permutation requires n >= 0");
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = uniform_int(0, i);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

void Rng::fill_normal(float* data, std::size_t n, float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  for (std::size_t i = 0; i < n; ++i) data[i] = dist(engine_);
}

void Rng::fill_uniform(float* data, std::size_t n, float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  for (std::size_t i = 0; i < n; ++i) data[i] = dist(engine_);
}

}  // namespace epim
