// Error types thrown by the EPIM library. The check macros that throw them
// (EPIM_CHECK / EPIM_ASSERT / EPIM_DCHECK) live in common/check.hpp --
// include that header to validate, this one to catch.
#pragma once

#include <stdexcept>
#include <string>

namespace epim {

/// Base class for all errors thrown by the EPIM library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates an API precondition (bad shapes, out-of-range
/// arguments, inconsistent configuration).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a request is refused because a resource is at capacity
/// (admission control: a full service queue, an exhausted budget). Unlike
/// InvalidArgument, nothing about the request itself is wrong -- the caller
/// may retry the identical request later.
class Unavailable : public Error {
 public:
  explicit Unavailable(const std::string& what) : Error(what) {}
};

/// Thrown when a request's deadline expired before its work started: the
/// serving tier sheds it at admission or at batch close instead of running
/// already-dead work. Retrying the identical request is pointless -- the
/// caller should retry with a fresh (or no) deadline, or shed load upstream.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

}  // namespace epim
