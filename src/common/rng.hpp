// Deterministic random number generation.
//
// All stochastic components (weight init, dataset synthesis, evolutionary
// search mutation) draw from an explicitly seeded Rng so every experiment in
// the repo is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace epim {

/// Seedable random generator wrapping a 64-bit Mersenne twister with
/// convenience samplers used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED'E91Au) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int index(int n);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Gaussian sample.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool flip(double p = 0.5);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<int> permutation(int n);

  /// Fill a float buffer with N(mean, stddev) samples.
  void fill_normal(float* data, std::size_t n, float mean, float stddev);

  /// Fill a float buffer with U[lo, hi) samples.
  void fill_uniform(float* data, std::size_t n, float lo, float hi);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace epim
