// Runtime lock-order ("lockdep") checking behind epim::Mutex.
//
// Clang's thread-safety analysis proves per-field locking discipline at
// compile time, but it cannot see the GLOBAL acquisition order across
// objects (EPIM_ACQUIRED_BEFORE is only checked under an off-by-default
// beta warning group, and never across classes). This registry closes that
// gap dynamically, the way the Linux kernel's lockdep does: it needs a lock
// ORDER to be exercised only once -- not an actual deadlock interleaving --
// to flag the inversion, so every existing service/registry/parallel test
// doubles as a lock-order test.
//
// Model:
//  * Every epim::Mutex carries a NAME; the name -- not the instance -- is
//    the node in the acquisition graph, so all InferenceService queue
//    mutexes (for example) are one lock class, and an order proven bad on
//    any pair of instances indicts the class.
//  * Each thread keeps a held-lock stack (thread-local, so no
//    synchronization is needed to read it).
//  * Acquiring lock B while holding A records the directed edge A -> B
//    (once, with a snapshot of the holder's stack). Before a NEW edge
//    A -> B is recorded, the registry checks whether B already reaches A in
//    the graph; if so this acquisition inverts an established order and the
//    violation handler fires with both stacks' lock names. Acquiring a
//    mutex the thread already holds (same instance) is reported as
//    guaranteed self-deadlock; nesting two instances of the same CLASS is
//    reported too (the repo has no lock hierarchies within a class -- if
//    one ever appears, it gets distinct names, not a suppression).
//
// The registry is always compiled (so tests can drive it directly), but
// epim::Mutex only calls into it when the library is built with
// -DEPIM_LOCK_DEBUG=ON (the ASan and TSan CI jobs do). The default
// violation handler prints the report and aborts; tests install a capturing
// handler instead.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace epim {
namespace debug {

/// Whether this build compiled the lockdep hooks into epim::Mutex (the
/// EPIM_LOCK_DEBUG CMake option). The registry below works either way; this
/// tells you whether real Mutex traffic feeds it.
#if defined(EPIM_LOCK_DEBUG)
inline constexpr bool kLockDebugEnabled = true;
#else
inline constexpr bool kLockDebugEnabled = false;
#endif

class LockOrderRegistry {
 public:
  using ViolationHandler = std::function<void(const std::string& report)>;

  /// Process-wide registry. Intentionally leaked: static destructors in
  /// other translation units may still lock mutexes during shutdown.
  static LockOrderRegistry& instance();

  /// Called by Mutex::lock() immediately BEFORE blocking: checks for
  /// recursive/self-deadlock and order inversions, records new edges, and
  /// pushes the lock onto the calling thread's held stack.
  void on_acquire(const void* lock, const char* name);

  /// Called by Mutex::try_lock() after a SUCCESSFUL attempt: records held
  /// state and edges but never fires the inversion handler -- a try-lock
  /// yields instead of deadlocking, so it establishes order without risk.
  void on_try_acquire(const void* lock, const char* name);

  /// Called by Mutex::unlock(): removes the lock from the held stack.
  void on_release(const void* lock);

  /// Install a violation handler (nullptr restores the default
  /// print-and-abort). Returns the previous handler. The handler runs with
  /// no registry lock held, so it may query the registry freely.
  ViolationHandler set_violation_handler(ViolationHandler handler);

  // ---- introspection (tests, diagnostics) ----

  /// Whether the edge `before` -> `after` has been observed.
  bool has_edge(const std::string& before, const std::string& after) const;
  /// Total directed edges recorded.
  std::size_t edge_count() const;
  /// Locks the CALLING thread currently holds (its own stack).
  std::size_t held_count() const;
  /// Drop every recorded edge (the held stacks of live threads are
  /// untouched). Test isolation only.
  void reset();

 private:
  LockOrderRegistry();
  ~LockOrderRegistry();

  struct Impl;
  Impl* impl_;
};

}  // namespace debug
}  // namespace epim
