#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace epim {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EPIM_CHECK(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  EPIM_CHECK(row.size() == header_.size(),
             "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "+") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace epim
