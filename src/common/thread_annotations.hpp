// Clang thread-safety-analysis capability wrappers: the ONLY place in the
// library allowed to touch <mutex>/<condition_variable> directly (enforced
// by tools/lint.py). Everything concurrent in the repo locks through
// epim::Mutex / epim::MutexLock / epim::CondVar so that
//
//  * a clang build (-Werror=thread-safety, wired up in CMakeLists.txt for
//    every clang configure) proves at COMPILE TIME that each field marked
//    EPIM_GUARDED_BY is only touched with its mutex held, that
//    EPIM_REQUIRES contracts hold at every call site, and that a scoped
//    lock is never leaked across a path that should have released it;
//  * a -DEPIM_LOCK_DEBUG=ON build (the ASan/TSan CI jobs) additionally
//    checks at RUN TIME what the static analysis cannot: the global
//    acquisition ORDER across objects. Every Mutex carries a name; the
//    debug::LockOrderRegistry records per-thread held-lock sets, grows the
//    name-level acquisition graph, and reports the first cycle (lock-order
//    inversion) with both acquisition stacks -- see lock_debug.hpp.
//
// The attribute macros expand to nothing on GCC (which has no thread-safety
// analysis), so the annotations are free documentation there and a build
// gate under clang.
//
// CondVar wraps std::condition_variable_any waiting directly on MutexLock,
// so a wait's internal unlock/relock flows through Mutex::unlock()/lock()
// and the lockdep held-set stays exact across blocking waits. Prefer
// explicit `while (!pred) cv.wait(lock);` loops over the predicate overload
// when the predicate reads EPIM_GUARDED_BY fields: the analysis checks the
// enclosing function (where the lock is provably held), whereas a predicate
// lambda is analyzed out of context.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(EPIM_LOCK_DEBUG)
#include "common/lock_debug.hpp"
#endif

// ---------------------------------------------------------------- macros ---
// Canonical -Wthread-safety attribute spellings (see the clang Thread Safety
// Analysis docs). No-ops on non-clang compilers.
#if defined(__clang__)
#define EPIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EPIM_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define EPIM_CAPABILITY(x) EPIM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose lifetime acquires/releases a capability.
#define EPIM_SCOPED_CAPABILITY EPIM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written with the given mutex held.
#define EPIM_GUARDED_BY(x) EPIM_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed with the given mutex held.
#define EPIM_PT_GUARDED_BY(x) EPIM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Documented global acquisition order (checked by the runtime lockdep
/// layer; clang only verifies these under the off-by-default beta group).
#define EPIM_ACQUIRED_BEFORE(...) \
  EPIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EPIM_ACQUIRED_AFTER(...) \
  EPIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Caller must hold the given mutex(es) when calling this function.
#define EPIM_REQUIRES(...) \
  EPIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) (the function acquires them, or
/// calling with them held would deadlock/invert).
#define EPIM_EXCLUDES(...) \
  EPIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and returns holding it.
#define EPIM_ACQUIRE(...) \
  EPIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define EPIM_RELEASE(...) \
  EPIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `cond`.
#define EPIM_TRY_ACQUIRE(...) \
  EPIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Escape hatch; every use needs a comment justifying it.
#define EPIM_NO_THREAD_SAFETY_ANALYSIS \
  EPIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace epim {

// ----------------------------------------------------------------- Mutex ---

/// std::mutex with a capability annotation and a diagnostic name. The name
/// is the lock's identity in the lock-order graph: instances that play the
/// same role (e.g. every InferenceService's queue mutex) share one name, so
/// an ordering bug found on any instance pair indicts the whole class.
class EPIM_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the Mutex (string literals in practice).
  explicit Mutex(const char* name = "epim::Mutex") : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EPIM_ACQUIRE() {
#if defined(EPIM_LOCK_DEBUG)
    // Check + record BEFORE blocking: a true inversion may already be
    // deadlocking right here, so the report must not wait for the lock.
    debug::LockOrderRegistry::instance().on_acquire(this, name_);
#endif
    mu_.lock();
  }

  void unlock() EPIM_RELEASE() {
    mu_.unlock();
#if defined(EPIM_LOCK_DEBUG)
    debug::LockOrderRegistry::instance().on_release(this);
#endif
  }

  bool try_lock() EPIM_TRY_ACQUIRE(true) {
    const bool locked = mu_.try_lock();
#if defined(EPIM_LOCK_DEBUG)
    // A successful try_lock cannot deadlock by itself, so it records held
    // state and graph edges without cycle enforcement (see lock_debug.hpp).
    if (locked) debug::LockOrderRegistry::instance().on_try_acquire(this, name_);
#endif
    return locked;
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
};

// ------------------------------------------------------------- MutexLock ---

/// Scoped lock over epim::Mutex, relockable (the clang-documented managed
/// scoped-capability shape): `unlock()` / `lock()` let a worker drop the
/// lock around a long computation, and CondVar waits through the same two
/// entry points, so both the static analysis and the runtime lockdep see
/// every ownership transition.
class EPIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EPIM_ACQUIRE(mu) : mu_(&mu), owned_(true) {
    mu_->lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() EPIM_RELEASE() {
    if (owned_) mu_->unlock();
  }

  /// Drop the lock mid-scope (e.g. to run a batch while peers drain the
  /// queue). The destructor then releases only if re-locked.
  void unlock() EPIM_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }

  /// Re-acquire after unlock().
  void lock() EPIM_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }

  bool owns_lock() const { return owned_; }

 private:
  Mutex* mu_;
  bool owned_;
};

// --------------------------------------------------------------- CondVar ---

/// Condition variable over epim::Mutex. Implemented on
/// std::condition_variable_any so waits take the annotated MutexLock itself:
/// the wait's internal release/reacquire goes through MutexLock::unlock()/
/// lock() and therefore through the lockdep hooks. From the static
/// analysis's view the capability is held across a wait (the unlock happens
/// inside a system header it does not analyze), which is exactly the
/// invariant callers rely on for their EPIM_GUARDED_BY fields.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock); }

  /// Predicate form. Only use when the predicate touches no guarded fields
  /// (atomics, locals): clang analyzes the lambda out of context, so
  /// guarded reads inside it cannot be proven -- write an explicit
  /// `while (!pred) wait(lock);` loop instead.
  template <typename Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock, tp);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace epim
