// Canonical home of the repo's check macros. All three carry the failing
// expression text plus a caller message, and throw typed epim errors (never
// printf-and-abort), so a failure is testable and carries context:
//
//   EPIM_CHECK(cond, msg)   caller-precondition check; always compiled;
//                           throws epim::InvalidArgument.
//   EPIM_ASSERT(cond, msg)  internal invariant; always compiled (the
//                           simulator is not hot enough to compile its
//                           release-build safety out); throws
//                           epim::InternalError.
//   EPIM_DCHECK(cond, msg)  internal invariant that IS hot-path or
//                           redundant with an always-on check upstream:
//                           compiled out under NDEBUG (Release), throws
//                           epim::InternalError in Debug (so the sanitizer
//                           and lockdep CI jobs, which build Debug, run
//                           every DCHECK). The disabled form keeps the
//                           condition parsed-but-unevaluated, so a DCHECK
//                           cannot hide a compile error or change behavior.
//
// Rule of thumb: validating what a CALLER handed you is EPIM_CHECK;
// validating what YOUR OWN code just computed is EPIM_ASSERT, or EPIM_DCHECK
// when the check sits on a per-item path.
#pragma once

#include "common/error.hpp"

/// Validate a caller-supplied precondition; throws epim::InvalidArgument.
#define EPIM_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::epim::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,     \
                                             (msg));                        \
    }                                                                       \
  } while (0)

/// Validate an internal invariant; throws epim::InternalError.
#define EPIM_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::epim::detail::throw_internal_error(#cond, __FILE__, __LINE__,       \
                                           (msg));                          \
    }                                                                       \
  } while (0)

/// Debug-only internal invariant; compiled out in Release builds. The
/// disabled branch still typechecks `cond` and `msg` (unevaluated sizeof),
/// so Release cannot drift from Debug.
#ifdef NDEBUG
#define EPIM_DCHECK(cond, msg)                                              \
  do {                                                                      \
    (void)sizeof(static_cast<bool>(cond));                                  \
    (void)sizeof(msg);                                                      \
  } while (0)
#else
#define EPIM_DCHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::epim::detail::throw_internal_error(#cond, __FILE__, __LINE__,       \
                                           (msg));                          \
    }                                                                       \
  } while (0)
#endif
