#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/thread_annotations.hpp"

namespace epim {

namespace {

/// Explicit documented atomic: the threshold is read on every log statement
/// from any thread; last-writer-wins is the intended semantics, so a mutex
/// would buy nothing. (Everything with invariants spanning multiple fields
/// in this library is guarded by an epim::Mutex instead.)
std::atomic<LogLevel> g_level{LogLevel::kInfo};

Mutex g_sink_mu("logging::g_sink_mu");
/// Current sink; empty = default stderr writer.
LogSink g_sink EPIM_GUARDED_BY(g_sink_mu);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mu);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Copy the sink under the lock, invoke it outside: a sink that blocks or
  // logs (or locks) must not hold the logging mutex while doing so.
  LogSink sink;
  {
    MutexLock lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[epim %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

LogStream::~LogStream() { detail::log_message(level_, stream_.str()); }

}  // namespace epim
