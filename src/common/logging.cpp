#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace epim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[epim %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

LogStream::~LogStream() { detail::log_message(level_, stream_.str()); }

}  // namespace epim
