// Compile-time build-flavor identification, so artifacts that carry
// performance numbers (the BENCH_*.json rows) can label which kind of
// binary produced them. A Debug, sanitizer, or lockdep-instrumented build
// is 2-20x slower than Release; without these fields a checker-instrumented
// run could silently be compared against a Release baseline.
#pragma once

#include "common/lock_debug.hpp"

namespace epim {

/// True when the lock-order checker is compiled into epim::Mutex
/// (-DEPIM_LOCK_DEBUG=ON); re-exported here so benches need one include.
inline constexpr bool kLockDebugBuild = debug::kLockDebugEnabled;

/// Short flavor tag: "release" or "debug", with "+asan"/"+tsan" appended
/// when the matching sanitizer is compiled in. Perf baselines are only
/// comparable within one flavor (and with lock_debug matching).
inline const char* build_flavor() {
#if defined(NDEBUG)
#define EPIM_BUILD_INFO_BASE "release"
#else
#define EPIM_BUILD_INFO_BASE "debug"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EPIM_BUILD_INFO_ASAN "+asan"
#endif
#if __has_feature(thread_sanitizer)
#define EPIM_BUILD_INFO_TSAN "+tsan"
#endif
#endif
#if !defined(EPIM_BUILD_INFO_ASAN) && defined(__SANITIZE_ADDRESS__)
#define EPIM_BUILD_INFO_ASAN "+asan"
#endif
#if !defined(EPIM_BUILD_INFO_TSAN) && defined(__SANITIZE_THREAD__)
#define EPIM_BUILD_INFO_TSAN "+tsan"
#endif
#if !defined(EPIM_BUILD_INFO_ASAN)
#define EPIM_BUILD_INFO_ASAN ""
#endif
#if !defined(EPIM_BUILD_INFO_TSAN)
#define EPIM_BUILD_INFO_TSAN ""
#endif
  return EPIM_BUILD_INFO_BASE EPIM_BUILD_INFO_ASAN EPIM_BUILD_INFO_TSAN;
#undef EPIM_BUILD_INFO_BASE
#undef EPIM_BUILD_INFO_ASAN
#undef EPIM_BUILD_INFO_TSAN
}

}  // namespace epim
