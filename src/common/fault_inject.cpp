#include "common/fault_inject.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace epim {
namespace fault {

namespace detail {
std::atomic<int> g_armed_points{0};
}  // namespace detail

namespace {

enum class TriggerKind { kProbability, kNth, kGate };

struct Point {
  bool armed = false;
  TriggerKind kind = TriggerKind::kProbability;
  double rate = 0.0;
  Rng rng{0};
  std::int64_t nth = 0;
  /// Gate trigger only: hits pass through once true (open_gate).
  bool gate_open = false;
  std::int64_t hit_count = 0;
  std::int64_t fire_count = 0;
  /// Telemetry mirrors of the two counters above ({point} label). Resolved
  /// by the arm_* entry points BEFORE this registry's mutex is taken (both
  /// that mutex and the telemetry registration mutex are lockdep leaves, so
  /// neither may nest under the other); non-null on every armed point.
  telemetry::Counter* hits_series = nullptr;
  telemetry::Counter* fires_series = nullptr;
};

// Keyed registry of every point ever armed. Intentionally leaked (like the
// lockdep registry): fault points are evaluated from worker threads that may
// outlive static destruction in exotic shutdown orders.
struct FaultRegistry {
  Mutex mu{"fault::FaultRegistry::mu_"};
  std::map<std::string, Point> points EPIM_GUARDED_BY(mu);
  /// Signals every hit and every arming change: gate-blocked hits and
  /// wait_for_hits() callers park here with `mu` released.
  CondVar cv;
};

FaultRegistry& fault_registry() {
  static FaultRegistry* registry = new FaultRegistry;
  return *registry;
}

void recount_armed_locked(const std::map<std::string, Point>& points) {
  int armed = 0;
  for (const auto& [name, point] : points) armed += point.armed ? 1 : 0;
  detail::g_armed_points.store(armed, std::memory_order_relaxed);
}

/// Resolve a point's telemetry series. MUST run before the fault mutex is
/// taken (see the Point comment); the lookup itself takes the telemetry
/// registration leaf mutex.
void resolve_point_series(const std::string& name, Point& point) {
  telemetry::metrics::ensure_registered();
  telemetry::Registry& reg = telemetry::Registry::process();
  const telemetry::Labels labels{{"point", name}};
  point.hits_series = reg.counter("epim_fault_hits_total", labels);
  point.fires_series = reg.counter("epim_fault_fires_total", labels);
}

void arm_locked(std::map<std::string, Point>& points, const std::string& name,
                Point point) {
  EPIM_CHECK(!name.empty(), "fault point name must be non-empty");
  point.armed = true;
  points[name] = std::move(point);
  recount_armed_locked(points);
}

// Parses EPIM_FAULT exactly once per process; a malformed spec aborts with a
// diagnostic rather than silently chaos-testing nothing (and rather than
// throwing out of a static initializer, which would terminate without one).
struct EnvLoader {
  EnvLoader() {
    try {
      reload_env();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "EPIM_FAULT: %s\n", e.what());
      std::abort();
    }
  }
};
const EnvLoader g_env_loader;

}  // namespace

namespace detail {

bool should_fire_slow(const char* point) {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end() || !it->second.armed) return false;
  Point& p = it->second;
  p.hit_count += 1;
  p.hits_series->inc(1);  // relaxed atomic; no lock acquired under mu
  // Every hit is announced so wait_for_hits() callers can make progress
  // (armed runs are tests/chaos drills; the disarmed fast path never gets
  // here).
  registry.cv.notify_all();
  bool fire = false;
  switch (p.kind) {
    case TriggerKind::kProbability:
      fire = p.rng.flip(p.rate);
      break;
    case TriggerKind::kNth:
      fire = p.hit_count == p.nth;
      break;
    case TriggerKind::kGate:
      // Counted above, now parked: the wait releases the fault mutex, so
      // other points (and this one's counters) stay reachable while this
      // hit is held. Re-check armed/kind each wake -- disarm_all() and
      // re-arming both release parked hits. Gated hits never fire.
      while (p.armed && p.kind == TriggerKind::kGate && !p.gate_open) {
        registry.cv.wait(lock);
      }
      return false;
  }
  if (fire) {
    p.fire_count += 1;
    p.fires_series->inc(1);
  }
  return fire;
}

}  // namespace detail

void maybe_fail(const char* point) {
  if (should_fire(point)) {
    throw Unavailable(std::string(kErrInjected) + " at point '" + point + "'");
  }
}

void arm_probability(const std::string& point, double rate,
                     std::uint64_t seed) {
  EPIM_CHECK(rate >= 0.0 && rate <= 1.0,
             "fault probability must be in [0, 1], got " +
                 std::to_string(rate));
  Point p;
  p.kind = TriggerKind::kProbability;
  p.rate = rate;
  p.rng = Rng(seed);
  resolve_point_series(point, p);
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  arm_locked(registry.points, point, std::move(p));
  registry.cv.notify_all();  // re-arming releases hits parked at an old gate
}

void arm_nth(const std::string& point, std::int64_t n) {
  EPIM_CHECK(n >= 1, "fault nth trigger must be >= 1, got " +
                         std::to_string(n));
  Point p;
  p.kind = TriggerKind::kNth;
  p.nth = n;
  resolve_point_series(point, p);
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  arm_locked(registry.points, point, std::move(p));
  registry.cv.notify_all();  // re-arming releases hits parked at an old gate
}

void arm_gate(const std::string& point) {
  Point p;
  p.kind = TriggerKind::kGate;
  resolve_point_series(point, p);
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  arm_locked(registry.points, point, std::move(p));
  registry.cv.notify_all();
}

void open_gate(const std::string& point) {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) return;
  it->second.gate_open = true;
  registry.cv.notify_all();
}

void wait_for_hits(const std::string& point, std::int64_t n) {
  EPIM_CHECK(n >= 1, "wait_for_hits needs n >= 1, got " + std::to_string(n));
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  for (;;) {
    auto it = registry.points.find(point);
    if (it != registry.points.end() && it->second.hit_count >= n) return;
    registry.cv.wait(lock);
  }
}

void arm_spec(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    EPIM_CHECK(eq != std::string::npos && eq > 0,
               "fault spec entry must be 'point=trigger', got '" + entry +
                   "'");
    const std::string point = entry.substr(0, eq);
    const std::string trigger = entry.substr(eq + 1);

    // Split the trigger into ':'-separated fields: prob:RATE[:SEED], nth:N.
    std::vector<std::string> fields;
    std::size_t fstart = 0;
    while (fstart <= trigger.size()) {
      std::size_t fend = trigger.find(':', fstart);
      if (fend == std::string::npos) fend = trigger.size();
      fields.push_back(trigger.substr(fstart, fend - fstart));
      fstart = fend + 1;
    }
    const auto parse_number = [&entry](const std::string& text,
                                       bool integer) -> double {
      try {
        std::size_t used = 0;
        const double value =
            integer ? static_cast<double>(std::stoll(text, &used))
                    : std::stod(text, &used);
        EPIM_CHECK(used == text.size(),
                   "trailing junk in fault spec entry '" + entry + "'");
        return value;
      } catch (const Error&) {
        throw;
      } catch (const std::exception&) {
        EPIM_CHECK(false, "bad number '" + text + "' in fault spec entry '" +
                       entry + "'");
        return 0.0;  // unreachable
      }
    };
    if (fields[0] == "prob") {
      EPIM_CHECK(fields.size() == 2 || fields.size() == 3,
                 "prob trigger takes RATE[:SEED], got '" + entry + "'");
      const double rate = parse_number(fields[1], /*integer=*/false);
      std::uint64_t seed = 0xFA117u;
      if (fields.size() == 3) {
        seed = static_cast<std::uint64_t>(
            parse_number(fields[2], /*integer=*/true));
      }
      arm_probability(point, rate, seed);
    } else if (fields[0] == "nth") {
      EPIM_CHECK(fields.size() == 2,
                 "nth trigger takes exactly N, got '" + entry + "'");
      arm_nth(point, static_cast<std::int64_t>(
                         parse_number(fields[1], /*integer=*/true)));
    } else {
      EPIM_CHECK(false, "unknown fault trigger '" + fields[0] +
                            "' in entry '" + entry +
                            "' (expected prob or nth)");
    }
  }
}

int reload_env() {
  const char* spec = std::getenv("EPIM_FAULT");
  if (spec == nullptr || *spec == '\0') return 0;
  const int before = detail::g_armed_points.load(std::memory_order_relaxed);
  arm_spec(spec);
  return detail::g_armed_points.load(std::memory_order_relaxed) - before;
}

void disarm(const std::string& point) {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) return;
  it->second.armed = false;
  recount_armed_locked(registry.points);
  registry.cv.notify_all();  // release any hits parked at this gate
}

void disarm_all() {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  for (auto& [name, point] : registry.points) point.armed = false;
  recount_armed_locked(registry.points);
  registry.cv.notify_all();  // release hits parked at any gate
}

std::int64_t hits(const std::string& point) {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.hit_count;
}

std::int64_t fires(const std::string& point) {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.fire_count;
}

std::vector<PointStatus> status() {
  FaultRegistry& registry = fault_registry();
  MutexLock lock(registry.mu);
  std::vector<PointStatus> out;
  out.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    PointStatus s;
    s.point = name;
    s.armed = point.armed;
    s.hits = point.hit_count;
    s.fires = point.fire_count;
    out.push_back(std::move(s));
  }
  return out;
}

Mutex& registry_mutex() { return fault_registry().mu; }

}  // namespace fault
}  // namespace epim
