#include "common/lock_debug.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace epim {
namespace debug {

namespace {

// The registry must not lock an epim::Mutex (it runs INSIDE every Mutex
// acquisition), so its shared state sits behind a minimal spinlock built on
// std::atomic_flag. Debug-only code path; fairness does not matter.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

struct HeldLock {
  const void* lock;
  std::string name;
};

/// Per-thread held-lock stack, bottom (oldest) first. Thread-local, so only
/// the owning thread ever touches it -- no synchronization.
///
/// Wrapped in a destruction-sentinel struct: glibc runs the main thread's
/// TLS destructors at the START of exit(), BEFORE static destructors, so a
/// Mutex locked inside a static destructor (e.g. ~ThreadPool joining its
/// workers) would otherwise push into the already-freed vector. `destroyed`
/// is trivially destructible and its TLS storage outlives the object, so
/// the hooks read it afterwards (the standard exit-guard idiom) and become
/// no-ops during teardown -- the process is single-threaded by then, there
/// is no ordering left to enforce.
struct HeldStack {
  std::vector<HeldLock> held;
  bool destroyed = false;
  ~HeldStack() { destroyed = true; }
};
thread_local HeldStack t_stack;

std::string stack_description(const std::vector<HeldLock>& held,
                              const char* acquiring) {
  std::string out = "acquiring \"";
  out += acquiring;
  out += "\" while holding [";
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + held[i].name + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

struct LockOrderRegistry::Impl {
  mutable SpinLock spin;
  /// graph[a][b] = description of the thread stack that first established
  /// the edge a -> b ("acquiring \"b\" while holding [.., \"a\"]").
  std::map<std::string, std::map<std::string, std::string>> graph;
  ViolationHandler handler;

  /// True when `from` reaches `to` through recorded edges (including
  /// from == to, which makes a new to -> from edge a self-loop). Iterative
  /// DFS; fills `parent` for path reconstruction. Caller holds `spin`.
  bool reaches(const std::string& from, const std::string& to,
               std::map<std::string, std::string>* parent) const {
    if (from == to) return true;
    std::set<std::string> visited{from};
    std::deque<std::string> frontier{from};
    while (!frontier.empty()) {
      const std::string node = frontier.front();
      frontier.pop_front();
      const auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const auto& [next, desc] : it->second) {
        if (!visited.insert(next).second) continue;
        if (parent != nullptr) (*parent)[next] = node;
        if (next == to) return true;
        frontier.push_back(next);
      }
    }
    return false;
  }
};

LockOrderRegistry::LockOrderRegistry() : impl_(new Impl) {}
LockOrderRegistry::~LockOrderRegistry() { delete impl_; }

LockOrderRegistry& LockOrderRegistry::instance() {
  // Leaked on purpose (see header): mutexes in static destructors of other
  // translation units may still call in during shutdown.
  static LockOrderRegistry* registry = new LockOrderRegistry();
  return *registry;
}

void LockOrderRegistry::on_acquire(const void* lock, const char* name) {
  if (t_stack.destroyed) return;  // exit-time teardown; see HeldStack
  std::vector<HeldLock>& t_held = t_stack.held;
  // Same-instance recursion deadlocks std::mutex unconditionally; report
  // before the thread wedges.
  for (const HeldLock& held : t_held) {
    if (held.lock == lock) {
      std::string report = "lock-order violation: recursive acquisition of \"";
      report += name;
      report += "\" (same mutex instance already held by this thread; ";
      report += stack_description(t_held, name) + ")";
      ViolationHandler handler;
      {
        SpinGuard guard(impl_->spin);
        handler = impl_->handler;
      }
      if (handler) {
        handler(report);
      } else {
        std::fprintf(stderr, "[epim lockdep] %s\n", report.c_str());
        std::abort();
      }
      // Fall through and push anyway so release bookkeeping stays balanced
      // (only reachable when a test handler swallowed the report).
      break;
    }
  }

  std::string violation;
  {
    SpinGuard guard(impl_->spin);
    for (const HeldLock& held : t_held) {
      auto& out_edges = impl_->graph[held.name];
      if (out_edges.find(name) != out_edges.end()) continue;  // known order
      // New edge held.name -> name: if `name` already reaches held.name,
      // this acquisition inverts an established order (a cycle).
      std::map<std::string, std::string> parent;
      if (impl_->reaches(name, held.name, &parent)) {
        // Reconstruct the established reverse path name -> ... -> held.name
        // and quote the stack that first recorded its initial edge.
        std::vector<std::string> path{held.name};
        while (path.back() != name) {
          const auto parent_it = parent.find(path.back());
          if (parent_it == parent.end()) break;  // from == to self-loop
          path.push_back(parent_it->second);
        }
        std::string chain;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          if (!chain.empty()) chain += " -> ";
          chain += "\"" + *it + "\"";
        }
        if (path.size() < 2) chain += " -> \"" + std::string(name) + "\"";
        const std::string& first_hop =
            path.size() >= 2 ? path[path.size() - 2] : held.name;
        std::string established = "(unrecorded)";
        const auto fwd = impl_->graph.find(name);
        if (fwd != impl_->graph.end()) {
          const auto hop = fwd->second.find(first_hop);
          if (hop != fwd->second.end()) established = hop->second;
        }
        violation = "lock-order inversion: this thread is " +
                    stack_description(t_held, name) +
                    ", but the order " + chain +
                    " was established earlier by a thread " + established;
      }
      // Record the edge either way: it describes what the program actually
      // did, and recording it makes the report fire once per new edge
      // instead of once per acquisition.
      out_edges.emplace(name, stack_description(t_held, name));
    }
  }
  if (!violation.empty()) {
    ViolationHandler handler;
    {
      SpinGuard guard(impl_->spin);
      handler = impl_->handler;
    }
    if (handler) {
      handler(violation);
    } else {
      std::fprintf(stderr, "[epim lockdep] %s\n", violation.c_str());
      std::abort();
    }
  }
  t_held.push_back(HeldLock{lock, name});
}

void LockOrderRegistry::on_try_acquire(const void* lock, const char* name) {
  if (t_stack.destroyed) return;  // exit-time teardown; see HeldStack
  std::vector<HeldLock>& t_held = t_stack.held;
  // A successful try-lock establishes real ordering facts but cannot
  // deadlock (it would have yielded), so: record edges, skip enforcement.
  {
    SpinGuard guard(impl_->spin);
    for (const HeldLock& held : t_held) {
      auto& out_edges = impl_->graph[held.name];
      if (out_edges.find(name) == out_edges.end()) {
        out_edges.emplace(name, stack_description(t_held, name));
      }
    }
  }
  t_held.push_back(HeldLock{lock, name});
}

void LockOrderRegistry::on_release(const void* lock) {
  if (t_stack.destroyed) return;  // exit-time teardown; see HeldStack
  std::vector<HeldLock>& t_held = t_stack.held;
  // Search from the top: releases are LIFO in practice, but a scoped lock
  // released out of order must still unwind correctly.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock this thread does not hold: Mutex::unlock() without a
  // matching lock() is UB at the std::mutex layer already; ignore here
  // (the sanitizers in the same CI jobs catch it).
}

LockOrderRegistry::ViolationHandler LockOrderRegistry::set_violation_handler(
    ViolationHandler handler) {
  SpinGuard guard(impl_->spin);
  ViolationHandler previous = std::move(impl_->handler);
  impl_->handler = std::move(handler);
  return previous;
}

bool LockOrderRegistry::has_edge(const std::string& before,
                                 const std::string& after) const {
  SpinGuard guard(impl_->spin);
  const auto it = impl_->graph.find(before);
  return it != impl_->graph.end() &&
         it->second.find(after) != it->second.end();
}

std::size_t LockOrderRegistry::edge_count() const {
  SpinGuard guard(impl_->spin);
  std::size_t count = 0;
  for (const auto& [node, out_edges] : impl_->graph) {
    count += out_edges.size();
  }
  return count;
}

std::size_t LockOrderRegistry::held_count() const {
  return t_stack.destroyed ? 0 : t_stack.held.size();
}

void LockOrderRegistry::reset() {
  SpinGuard guard(impl_->spin);
  impl_->graph.clear();
}

}  // namespace debug
}  // namespace epim
